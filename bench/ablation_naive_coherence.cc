/**
 * @file
 * Ablation (§4.3.1): the naive coherence solution vs the PIPM coherence
 * design. Both use identical partial/incremental migration policy and
 * mechanism; the naive variant lacks the ME/I' states, so every local
 * access to a migrated line still pays a CXL link round trip, a device
 * directory lookup and a CXL memory read to check the in-memory bit
 * (Fig. 8) — "negating the benefits of page migration for local
 * accesses". This harness quantifies that claim.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "ablation_naive_coherence",
        "Ablation (4.3.1): naive coherence vs the PIPM ME/I' design.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();

    TablePrinter table("Ablation: naive 1-bit coherence (Fig. 8) vs PIPM "
                       "coherence (Fig. 9), speedup over Native");
    table.header({"workload", "pipm-naive", "pipm", "PIPM advantage"});
    const auto workloads = table1Workloads(cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        sweep.add(cfg, Scheme::native, *workload);
        sweep.add(cfg, Scheme::pipmNaive, *workload);
        sweep.add(cfg, Scheme::pipmFull, *workload);
    }
    sweep.run();

    std::vector<double> naive_col, pipm_col;
    for (const auto &workload : workloads) {
        const RunResult native =
            cachedRun(cfg, Scheme::native, *workload, opts);
        const RunResult naive =
            cachedRun(cfg, Scheme::pipmNaive, *workload, opts);
        const RunResult pipm =
            cachedRun(cfg, Scheme::pipmFull, *workload, opts);
        const double s_naive = speedupOver(native, naive);
        const double s_pipm = speedupOver(native, pipm);
        naive_col.push_back(s_naive);
        pipm_col.push_back(s_pipm);
        table.row({workload->name(),
                   TablePrinter::num(s_naive, 2) + "x",
                   TablePrinter::num(s_pipm, 2) + "x",
                   TablePrinter::pct(s_pipm / s_naive - 1.0)});
    }
    table.row({"geomean", TablePrinter::num(geomean(naive_col), 2) + "x",
               TablePrinter::num(geomean(pipm_col), 2) + "x",
               TablePrinter::pct(geomean(pipm_col) / geomean(naive_col) -
                                 1.0)});
    table.print(std::cout);
    std::cout << "Paper (qualitative, §4.3.1): the naive design's device "
                 "round trips on local accesses negate the migration "
                 "benefit; the ME/I' states remove them.\n";
    return 0;
}
