/**
 * @file
 * Ablation (§4.5): host-count scalability of the majority vote. The
 * paper argues the vote "continues to suppress performance-degrading
 * migrations and consistently outperforms prior designs" as hosts
 * increase; this harness compares PIPM and Memtis against Native at 2,
 * 4 and 8 hosts on a workload subset. Total compute scales with hosts
 * (4 cores each); the CXL pool and per-host DRAM follow Table 2.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "ablation_scalability",
        "Ablation (4.5): host-count scalability of the majority vote.");
    using namespace pipm;
    using namespace pipmbench;

    Options opts = optionsFromEnv();
    // Scale the run length down for the 8-host runs to keep the total
    // simulated work comparable.
    const unsigned host_counts[] = {2, 4, 8};
    const char *names[] = {"pr", "tc", "tpcc"};

    TablePrinter table("Ablation: host-count scaling (speedup over "
                       "Native at the same host count)");
    table.header({"workload", "hosts", "memtis", "pipm",
                  "pipm local hit rate"});

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool
    // (the workload objects must outlive the sweep).
    Sweep sweep(opts);
    std::vector<std::unique_ptr<Workload>> keep;
    for (const char *name : names) {
        for (unsigned hosts : host_counts) {
            SystemConfig cfg = defaultConfig();
            cfg.numHosts = hosts;
            keep.push_back(workloadByName(name, cfg.footprintScale));
            const Workload &w = *keep.back();
            sweep.add(cfg, Scheme::native, w);
            sweep.add(cfg, Scheme::memtis, w);
            sweep.add(cfg, Scheme::pipmFull, w);
        }
    }
    sweep.run();

    for (const char *name : names) {
        for (unsigned hosts : host_counts) {
            SystemConfig cfg = defaultConfig();
            cfg.numHosts = hosts;
            auto workload = workloadByName(name, cfg.footprintScale);
            const RunResult native =
                cachedRun(cfg, Scheme::native, *workload, opts);
            const RunResult memtis =
                cachedRun(cfg, Scheme::memtis, *workload, opts);
            const RunResult pipm =
                cachedRun(cfg, Scheme::pipmFull, *workload, opts);
            table.row({name, std::to_string(hosts),
                       TablePrinter::num(speedupOver(native, memtis), 2) +
                           "x",
                       TablePrinter::num(speedupOver(native, pipm), 2) +
                           "x",
                       TablePrinter::pct(pipm.localHitRate())});
        }
    }
    table.print(std::cout);
    std::cout << "Paper (§4.5, qualitative): the vote keeps suppressing "
                 "harmful migrations and PIPM keeps outperforming prior "
                 "designs as hosts increase.\n";
    return 0;
}
