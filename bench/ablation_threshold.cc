/**
 * @file
 * Ablation (§5.1.4): sensitivity of PIPM to the majority-vote migration
 * threshold. The paper reports "similar performance with threshold
 * ranging from 4 to 16"; this harness sweeps {2, 4, 8, 16, 32} on a
 * representative workload subset.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "ablation_threshold",
        "Ablation (5.1.4): migration-threshold sensitivity sweep.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const unsigned thresholds[] = {2, 4, 8, 16, 32};
    const char *names[] = {"pr", "bc", "streamcluster", "tpcc", "ycsb"};

    TablePrinter table("Ablation: PIPM majority-vote threshold "
                       "(speedup over Native)");
    std::vector<std::string> header = {"workload"};
    for (unsigned t : thresholds)
        header.push_back("t=" + std::to_string(t));
    table.header(header);

    const SystemConfig base_cfg = defaultConfig();

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool
    // (the workload objects must outlive the sweep).
    Sweep sweep(opts);
    std::vector<std::unique_ptr<Workload>> keep;
    for (const char *name : names) {
        keep.push_back(workloadByName(name, base_cfg.footprintScale));
        const Workload &w = *keep.back();
        sweep.add(base_cfg, Scheme::native, w);
        for (unsigned t : thresholds) {
            SystemConfig cfg = base_cfg;
            cfg.pipm.migrationThreshold = t;
            sweep.add(cfg, Scheme::pipmFull, w);
        }
    }
    sweep.run();

    std::vector<std::vector<double>> cols(std::size(thresholds));
    for (const char *name : names) {
        auto workload = workloadByName(name, base_cfg.footprintScale);
        const RunResult native =
            cachedRun(base_cfg, Scheme::native, *workload, opts);
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < std::size(thresholds); ++i) {
            SystemConfig cfg = base_cfg;
            cfg.pipm.migrationThreshold = thresholds[i];
            const RunResult r =
                cachedRun(cfg, Scheme::pipmFull, *workload, opts);
            const double s = speedupOver(native, r);
            cols[i].push_back(s);
            row.push_back(TablePrinter::num(s, 2) + "x");
        }
        table.row(row);
    }
    std::vector<std::string> avg = {"geomean"};
    for (auto &col : cols)
        avg.push_back(TablePrinter::num(geomean(col), 2) + "x");
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: thresholds 4..16 perform similarly (the default "
                 "is 8).\n";
    return 0;
}
