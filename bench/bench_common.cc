#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace pipmbench
{

using namespace pipm;

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/** Serialise a RunResult as tab-separated fields. */
std::string
serialize(const RunResult &r)
{
    std::ostringstream os;
    os << r.execCycles << '\t' << r.instructions << '\t' << r.ipc << '\t'
       << r.sharedAccesses << '\t' << r.sharedLlcMisses << '\t'
       << r.localServedMisses << '\t' << r.cxlServedMisses << '\t'
       << r.interHostAccesses << '\t' << r.interHostStallCycles << '\t'
       << r.mgmtStallCycles << '\t' << r.migrationTransferBytes << '\t'
       << r.osMigrations << '\t' << r.osDemotions << '\t'
       << r.pipmPromotions << '\t' << r.pipmRevocations << '\t'
       << r.pipmLinesIn << '\t' << r.pipmLinesBack << '\t'
       << r.harmfulMigrations << '\t' << r.totalTrackedMigrations << '\t'
       << r.pageFootprintFrac << '\t' << r.lineFootprintFrac << '\t'
       << r.linkCrcErrors << '\t' << r.linkRetrainEvents << '\t'
       << r.poisonEvents << '\t' << r.degradedAccesses << '\t'
       << r.migrationAborts << '\t' << r.migrationsDeferred << '\t'
       << r.hostCrashes << '\t' << r.hostRejoins << '\t'
       << r.crashLinesReclaimed << '\t' << r.crashDirtyLinesLost << '\t'
       << r.crashRecoveryCycles;
    return os.str();
}

bool
deserialize(const std::string &line, RunResult &r)
{
    std::istringstream is(line);
    if (!(is >> r.execCycles >> r.instructions >> r.ipc >>
          r.sharedAccesses >> r.sharedLlcMisses >> r.localServedMisses >>
          r.cxlServedMisses >> r.interHostAccesses >>
          r.interHostStallCycles >> r.mgmtStallCycles >>
          r.migrationTransferBytes >> r.osMigrations >> r.osDemotions >>
          r.pipmPromotions >> r.pipmRevocations >> r.pipmLinesIn >>
          r.pipmLinesBack >> r.harmfulMigrations >>
          r.totalTrackedMigrations >> r.pageFootprintFrac >>
          r.lineFootprintFrac))
        return false;
    // The fault and crash columns are later additions; entries cached
    // before them lack the trailing fields (and were necessarily
    // fault-free / crash-free runs), so they default to zero.
    is >> r.linkCrcErrors >> r.linkRetrainEvents >> r.poisonEvents >>
        r.degradedAccesses >> r.migrationAborts >> r.migrationsDeferred;
    is >> r.hostCrashes >> r.hostRejoins >> r.crashLinesReclaimed >>
        r.crashDirtyLinesLost >> r.crashRecoveryCycles;
    return true;
}

/** FNV-1a over a string, hex-encoded. */
std::string
hashKey(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

Options
optionsFromEnv()
{
    Options opts;
    opts.measureRefs = envU64("PIPM_BENCH_REFS", opts.measureRefs);
    opts.warmupRefs = envU64("PIPM_BENCH_WARMUP", opts.warmupRefs);
    opts.seed = envU64("PIPM_BENCH_SEED", opts.seed);
    if (const char *p = std::getenv("PIPM_BENCH_CACHE"))
        opts.cachePath = p;
    return opts;
}

RunConfig
runConfigOf(const Options &opts)
{
    RunConfig run;
    run.measureRefsPerCore = opts.measureRefs;
    run.warmupRefsPerCore = opts.warmupRefs;
    run.seed = opts.seed;
    run.footprintSampleEvery = std::max<std::uint64_t>(
        10'000, opts.measureRefs / 4);
    return run;
}

std::string
configKey(const SystemConfig &cfg)
{
    std::ostringstream os;
    os << cfg.numHosts << ',' << cfg.coresPerHost << ','
       << cfg.core.mshrs << ',' << cfg.l1Bytes() << ','
       << cfg.llcBytesPerCore() << ',' << cfg.link.latencyNs << ','
       << cfg.link.bytesPerNs << ',' << cfg.link.hasSwitch << ','
       << cfg.deviceDirectory.sets << ',' << cfg.pipm.globalCacheBytes
       << ',' << cfg.pipm.localCacheBytes << ','
       << cfg.pipm.infiniteGlobalCache << ','
       << cfg.pipm.infiniteLocalCache << ','
       << cfg.pipm.migrationThreshold << ','
       << cfg.osMigration.intervalMs << ','
       << cfg.osMigration.maxPagesPerEpoch << ','
       << cfg.osMigration.hotThreshold << ','
       << cfg.footprintScale << ',' << cfg.timeScale << ','
       << cfg.migrationBytesScale << ',' << cfg.l1Scale << ','
       << cfg.llcScale;
    if (cfg.fault.enabled) {
        // Appended only when faults are on so that fault-free keys (and
        // the entries cached before fault injection existed) are stable.
        os << ",fault:" << cfg.fault.seed << ',' << cfg.fault.linkErrorRate
           << ',' << cfg.fault.retrainIntervalNs << ','
           << cfg.fault.retrainWindowNs << ',' << cfg.fault.poisonRate
           << ',' << cfg.fault.persistentPoisonFrac << ','
           << cfg.fault.migrationAbortRate << ','
           << cfg.fault.backoffWindow << ',' << cfg.fault.backoffThreshold
           << ',' << cfg.fault.backoffBaseNs << ','
           << cfg.fault.backoffMaxExp;
        if (cfg.fault.crashMeanIntervalNs > 0.0) {
            // Appended only when a crash schedule is on, keeping crash-free
            // fault keys identical to what they were before host crashes
            // existed.
            os << ",crash:" << cfg.fault.crashMeanIntervalNs << ','
               << cfg.fault.crashRejoinNs << ','
               << cfg.fault.crashMaxEvents << ','
               << static_cast<unsigned>(cfg.fault.crashRecovery);
        }
    }
    return os.str();
}

bool
applyEnvFaults(SystemConfig &cfg)
{
    const char *v = std::getenv("PIPM_BENCH_FAULTS");
    if (!v || !*v || std::string(v) == "0")
        return false;
    // "crash" (or "2") additionally enables the host fail-stop crash and
    // rejoin schedule; any other value keeps the original fault-only
    // schedule bit-identical to what it produced before crashes existed.
    const std::string mode(v);
    cfg.fault = (mode == "crash" || mode == "2")
                    ? paperCrashFaultConfig(envU64("PIPM_BENCH_SEED", 42))
                    : paperFaultConfig(envU64("PIPM_BENCH_SEED", 42));
    return true;
}

RunResult
cachedRun(const SystemConfig &cfg, Scheme scheme, const Workload &workload,
          const Options &opts, const std::string &extra_key)
{
    cfg.validate();
    std::ostringstream key_src;
    key_src << workload.fingerprint() << '|' << toString(scheme) << '|'
            << configKey(cfg) << '|' << opts.measureRefs << '|'
            << opts.warmupRefs << '|' << opts.seed << '|' << extra_key;
    const std::string key = hashKey(key_src.str());

    // Look the key up in the cache file.
    {
        std::ifstream in(opts.cachePath);
        std::string line;
        while (std::getline(in, line)) {
            if (line.size() > 17 && line.compare(0, 16, key) == 0 &&
                line[16] == '\t') {
                RunResult r;
                if (deserialize(line.substr(17), r)) {
                    r.workload = workload.name();
                    r.scheme = scheme;
                    return r;
                }
            }
        }
    }

    std::fprintf(stderr, "[bench] running %s/%s%s%s...\n",
                 workload.name().c_str(),
                 std::string(toString(scheme)).c_str(),
                 extra_key.empty() ? "" : " ", extra_key.c_str());
    const RunResult r = runExperiment(cfg, scheme, workload,
                                      runConfigOf(opts));

    std::ofstream out(opts.cachePath, std::ios::app);
    out << key << '\t' << serialize(r) << '\n';
    return r;
}

double
speedupOver(const RunResult &base, const RunResult &x)
{
    return x.execCycles
               ? static_cast<double>(base.execCycles) /
                     static_cast<double>(x.execCycles)
               : 0.0;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace pipmbench
