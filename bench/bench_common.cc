#include "bench_common.hh"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "common/env.hh"
#include "common/hash.hh"

namespace pipmbench
{

using namespace pipm;

namespace
{

/** Serialise a RunResult as tab-separated fields. */
std::string
serialize(const RunResult &r)
{
    std::ostringstream os;
    os << r.execCycles << '\t' << r.instructions << '\t' << r.ipc << '\t'
       << r.sharedAccesses << '\t' << r.sharedLlcMisses << '\t'
       << r.localServedMisses << '\t' << r.cxlServedMisses << '\t'
       << r.interHostAccesses << '\t' << r.interHostStallCycles << '\t'
       << r.mgmtStallCycles << '\t' << r.migrationTransferBytes << '\t'
       << r.osMigrations << '\t' << r.osDemotions << '\t'
       << r.pipmPromotions << '\t' << r.pipmRevocations << '\t'
       << r.pipmLinesIn << '\t' << r.pipmLinesBack << '\t'
       << r.harmfulMigrations << '\t' << r.totalTrackedMigrations << '\t'
       << r.pageFootprintFrac << '\t' << r.lineFootprintFrac << '\t'
       << r.linkCrcErrors << '\t' << r.linkRetrainEvents << '\t'
       << r.poisonEvents << '\t' << r.degradedAccesses << '\t'
       << r.migrationAborts << '\t' << r.migrationsDeferred << '\t'
       << r.hostCrashes << '\t' << r.hostRejoins << '\t'
       << r.crashLinesReclaimed << '\t' << r.crashDirtyLinesLost << '\t'
       << r.crashRecoveryCycles;
    return os.str();
}

bool
deserialize(const std::string &line, RunResult &r)
{
    std::istringstream is(line);
    if (!(is >> r.execCycles >> r.instructions >> r.ipc >>
          r.sharedAccesses >> r.sharedLlcMisses >> r.localServedMisses >>
          r.cxlServedMisses >> r.interHostAccesses >>
          r.interHostStallCycles >> r.mgmtStallCycles >>
          r.migrationTransferBytes >> r.osMigrations >> r.osDemotions >>
          r.pipmPromotions >> r.pipmRevocations >> r.pipmLinesIn >>
          r.pipmLinesBack >> r.harmfulMigrations >>
          r.totalTrackedMigrations >> r.pageFootprintFrac >>
          r.lineFootprintFrac))
        return false;
    // The fault and crash columns are later additions; entries cached
    // before them lack the trailing fields (and were necessarily
    // fault-free / crash-free runs), so they default to zero.
    is >> r.linkCrcErrors >> r.linkRetrainEvents >> r.poisonEvents >>
        r.degradedAccesses >> r.migrationAborts >> r.migrationsDeferred;
    is >> r.hostCrashes >> r.hostRejoins >> r.crashLinesReclaimed >>
        r.crashDirtyLinesLost >> r.crashRecoveryCycles;
    return true;
}

/** Cache key of one experiment (16 hex chars). */
std::string
experimentKey(const SystemConfig &cfg, Scheme scheme,
              const Workload &workload, const Options &opts,
              const std::string &extra_key)
{
    std::ostringstream key_src;
    key_src << workload.fingerprint() << '|' << toString(scheme) << '|'
            << configKey(cfg) << '|' << opts.measureRefs << '|'
            << opts.warmupRefs << '|' << opts.seed << '|' << extra_key;
    return fnv1aHex(key_src.str());
}

/**
 * Load the cache file as key -> serialized-result. Malformed rows
 * (truncated writes, corrupted keys, short result columns) are skipped
 * with a warning; the next merge drops them from the file.
 */
std::map<std::string, std::string>
loadCache(const std::string &path)
{
    std::map<std::string, std::string> rows;
    std::ifstream in(path);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        bool ok = line.size() > 17 && line[16] == '\t';
        if (ok) {
            for (std::size_t i = 0; i < 16; ++i)
                ok = ok && std::isxdigit(
                               static_cast<unsigned char>(line[i]));
        }
        RunResult parsed;
        ok = ok && deserialize(line.substr(17), parsed);
        if (!ok) {
            std::fprintf(stderr,
                         "[bench] warning: skipping malformed cache row "
                         "%s:%zu\n",
                         path.c_str(), lineno);
            continue;
        }
        rows[line.substr(0, 16)] = line.substr(17);
    }
    return rows;
}

/**
 * Merge `fresh` rows into the cache file with a single atomic replace:
 * re-read the file (another process may have added rows), overlay the
 * new entries, write a temp file in canonical key order and rename it
 * over the original. Readers never observe a partial file, and the
 * row order is independent of the execution order that produced it.
 */
void
mergeCache(const std::string &path,
           const std::map<std::string, std::string> &fresh)
{
    std::map<std::string, std::string> rows = loadCache(path);
    for (const auto &[key, row] : fresh)
        rows[key] = row;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        for (const auto &[key, row] : rows)
            out << key << '\t' << row << '\n';
        if (!out) {
            std::fprintf(stderr,
                         "[bench] warning: cannot write cache temp %s\n",
                         tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr,
                     "[bench] warning: cannot replace cache %s\n",
                     path.c_str());
        std::remove(tmp.c_str());
    }
}

} // namespace

Options
optionsFromEnv()
{
    Options opts;
    opts.measureRefs = envU64("PIPM_BENCH_REFS", opts.measureRefs);
    opts.warmupRefs = envU64("PIPM_BENCH_WARMUP", opts.warmupRefs);
    opts.seed = envU64("PIPM_BENCH_SEED", opts.seed);
    if (const char *p = std::getenv("PIPM_BENCH_CACHE"))
        opts.cachePath = p;
    opts.jobs = static_cast<unsigned>(
        std::max<std::uint64_t>(1, envU64("PIPM_BENCH_JOBS", 1)));
    if (const char *p = std::getenv("PIPM_STATS_JSON"))
        opts.statsJsonPath = p;
    opts.obsInterval = envU64("PIPM_OBS_INTERVAL", 0);
    opts.obsTrace = envU64("PIPM_OBS_TRACE", 0);
    if (const char *p = std::getenv("PIPM_OBS_WATCH"))
        opts.obsWatch = p;
    return opts;
}

void
handleHarnessArgs(int argc, char **argv, const char *name,
                  const char *what)
{
    for (int i = 1; i < argc; ++i) {
        const bool help = std::strcmp(argv[i], "--help") == 0 ||
                          std::strcmp(argv[i], "-h") == 0;
        std::ostream &os = help ? std::cout : std::cerr;
        if (!help)
            os << name << ": unknown argument '" << argv[i] << "'\n\n";
        os << "usage: " << name << " [--help]\n\n"
           << what << "\n\n"
           << "All knobs are environment variables:\n"
              "  PIPM_BENCH_REFS    measured references per core "
              "(default 150000)\n"
              "  PIPM_BENCH_WARMUP  warmup references per core "
              "(default 40000)\n"
              "  PIPM_BENCH_SEED    RNG seed (default 42)\n"
              "  PIPM_BENCH_CACHE   cache file path "
              "(default ./pipm_bench_cache.tsv)\n"
              "  PIPM_BENCH_JOBS    sweep worker threads (default 1)\n"
              "  PIPM_BENCH_FAULTS  enable the paper-default fault "
              "schedule\n"
              "  PIPM_STATS_JSON, PIPM_OBS_INTERVAL, PIPM_OBS_TRACE,\n"
              "  PIPM_OBS_WATCH     observability exports "
              "(DESIGN.md §10)\n";
        std::exit(help ? 0 : 2);
    }
}

RunConfig
runConfigOf(const Options &opts)
{
    RunConfig run;
    run.measureRefsPerCore = opts.measureRefs;
    run.warmupRefsPerCore = opts.warmupRefs;
    run.seed = opts.seed;
    run.footprintSampleEvery = std::max<std::uint64_t>(
        10'000, opts.measureRefs / 4);
    // The environment was already resolved into opts (once, up front);
    // runExperiment must not re-read it, or parallel sweep workers would
    // all inherit the same PIPM_STATS_JSON output path.
    run.obsFromEnv = false;
    run.statsJsonPath = opts.statsJsonPath;
    run.obsIntervalAccesses = opts.obsInterval;
    run.obsTraceCapacity = opts.obsTrace;
    run.obsWatchLines = opts.obsWatch;
    return run;
}

std::string
configKey(const SystemConfig &cfg)
{
    // The fingerprint moved into SystemConfig (the stats.json exporter
    // hashes it too); the format is byte-identical to what this function
    // always produced, so existing cache files stay valid.
    return cfg.measurementKey();
}

bool
applyEnvFaults(SystemConfig &cfg)
{
    const char *v = std::getenv("PIPM_BENCH_FAULTS");
    if (!v || !*v || std::string(v) == "0")
        return false;
    // "crash" (or "2") additionally enables the host fail-stop crash and
    // rejoin schedule; "suspect" (or "3") layers the lease-based failure
    // detector, gray-failure stall windows and transaction retries on
    // top of that (DESIGN.md §11); "meta" (or "4") layers the
    // device-metadata corruption schedule — scrub-and-repair, journal
    // replay, degraded fallback and the migration circuit breaker — on
    // the base rates (DESIGN.md §12); any other value keeps the original
    // fault-only schedule bit-identical to what it produced before
    // crashes existed.
    const std::string mode(v);
    const std::uint64_t fseed = envU64("PIPM_BENCH_SEED", 42);
    cfg.fault = (mode == "meta" || mode == "4")
                    ? paperMetaFaultConfig(fseed)
                : (mode == "suspect" || mode == "3")
                    ? paperSuspicionFaultConfig(fseed)
                : (mode == "crash" || mode == "2")
                    ? paperCrashFaultConfig(fseed)
                    : paperFaultConfig(fseed);
    return true;
}

RunResult
cachedRun(const SystemConfig &cfg, Scheme scheme, const Workload &workload,
          const Options &opts, const std::string &extra_key)
{
    cfg.validate();
    const std::string key =
        experimentKey(cfg, scheme, workload, opts, extra_key);

    // Look the key up in the cache file.
    {
        std::ifstream in(opts.cachePath);
        std::string line;
        while (std::getline(in, line)) {
            if (line.size() > 17 && line.compare(0, 16, key) == 0 &&
                line[16] == '\t') {
                RunResult r;
                if (deserialize(line.substr(17), r)) {
                    r.workload = workload.name();
                    r.scheme = scheme;
                    return r;
                }
            }
        }
    }

    std::fprintf(stderr, "[bench] running %s/%s%s%s...\n",
                 workload.name().c_str(),
                 std::string(toString(scheme)).c_str(),
                 extra_key.empty() ? "" : " ", extra_key.c_str());
    RunConfig run_cfg = runConfigOf(opts);
    // No stats.json from cached experiments: a cache hit would not
    // re-run the simulation, so the file would ambiguously reflect
    // whichever combination happened to miss last.
    run_cfg.statsJsonPath.clear();
    const RunResult r = runExperiment(cfg, scheme, workload, run_cfg);

    mergeCache(opts.cachePath, {{key, serialize(r)}});
    return r;
}

void
Sweep::add(const SystemConfig &cfg, Scheme scheme, const Workload &workload,
           const std::string &extra_key)
{
    cfg.validate();
    items_.push_back(Item{
        cfg, scheme, &workload, extra_key,
        experimentKey(cfg, scheme, workload, opts_, extra_key)});
}

std::size_t
Sweep::run()
{
    // Drop experiments the cache already holds, and key-duplicates
    // (the same combination enqueued by nested harness loops).
    const std::map<std::string, std::string> cached =
        loadCache(opts_.cachePath);
    std::vector<const Item *> todo;
    for (const Item &item : items_) {
        if (cached.count(item.key))
            continue;
        bool dup = false;
        for (const Item *t : todo)
            dup = dup || t->key == item.key;
        if (!dup)
            todo.push_back(&item);
    }
    if (todo.empty())
        return 0;

    // Run the misses on the pool. Results land in an index-addressed
    // vector, so the merged rows are independent of completion order;
    // each experiment is a self-contained seeded simulation, so the
    // row *values* are independent of the job count too.
    std::vector<std::string> results(todo.size());
    std::atomic<std::size_t> next{0};
    const unsigned jobs = std::max(
        1u, std::min(opts_.jobs,
                     static_cast<unsigned>(todo.size())));
    RunConfig run_cfg = runConfigOf(opts_);
    // Parallel workers share this one config; a stats.json path here
    // would have every worker overwrite the same file.
    run_cfg.statsJsonPath.clear();
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= todo.size())
                return;
            const Item &item = *todo[i];
            std::fprintf(stderr, "[bench] running %s/%s%s%s...\n",
                         item.workload->name().c_str(),
                         std::string(toString(item.scheme)).c_str(),
                         item.extraKey.empty() ? "" : " ",
                         item.extraKey.c_str());
            results[i] = serialize(runExperiment(
                item.cfg, item.scheme, *item.workload, run_cfg));
        }
    };
    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    // Single-writer merge of all new rows in one atomic replace.
    std::map<std::string, std::string> fresh;
    for (std::size_t i = 0; i < todo.size(); ++i)
        fresh[todo[i]->key] = results[i];
    mergeCache(opts_.cachePath, fresh);
    return todo.size();
}

double
speedupOver(const RunResult &base, const RunResult &x)
{
    return x.execCycles
               ? static_cast<double>(base.execCycles) /
                     static_cast<double>(x.execCycles)
               : 0.0;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace pipmbench
