/**
 * @file
 * Shared infrastructure for the figure/table harnesses.
 *
 * Many figures consume the same (workload, scheme) runs — Fig. 10's
 * end-to-end matrix also feeds Figs. 11, 12 and 13. Since each harness is
 * its own binary, runs are memoised in a TSV cache file keyed by the full
 * experiment fingerprint (workload, scheme, configuration, run length,
 * seed), so `for b in build/bench/*; do $b; done` simulates each
 * combination exactly once.
 *
 * Environment knobs:
 *   PIPM_BENCH_REFS    measured references per core (default 150000)
 *   PIPM_BENCH_WARMUP  warmup references per core (default 40000)
 *   PIPM_BENCH_SEED    RNG seed (default 42)
 *   PIPM_BENCH_CACHE   cache file path (default ./pipm_bench_cache.tsv)
 *   PIPM_BENCH_FAULTS  any value but empty/"0": enable the paper-default
 *                      fault schedule (harnesses calling applyEnvFaults);
 *                      "crash" or "2" additionally enables the host
 *                      fail-stop crash/rejoin schedule (DESIGN.md §8)
 */

#ifndef PIPM_BENCH_COMMON_HH
#define PIPM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"
#include "sim/scheme.hh"
#include "workloads/workload.hh"

namespace pipmbench
{

/** Run-length options resolved from the environment. */
struct Options
{
    std::uint64_t measureRefs = 150'000;
    std::uint64_t warmupRefs = 40'000;
    std::uint64_t seed = 42;
    std::string cachePath = "pipm_bench_cache.tsv";
};

/** Read the PIPM_BENCH_* environment variables. */
Options optionsFromEnv();

/** Build the RunConfig corresponding to the options. */
pipm::RunConfig runConfigOf(const Options &opts);

/**
 * Run (or load from cache) one experiment.
 * @param extra_key disambiguates runs whose difference is not captured by
 *        the config fingerprint (should normally be empty)
 */
pipm::RunResult cachedRun(const pipm::SystemConfig &cfg,
                          pipm::Scheme scheme,
                          const pipm::Workload &workload,
                          const Options &opts,
                          const std::string &extra_key = "");

/** Fingerprint of every config field that affects measurements. */
std::string configKey(const pipm::SystemConfig &cfg);

/**
 * Enable the paper-default fault schedule on `cfg` when the
 * PIPM_BENCH_FAULTS environment variable is set (and not "0").
 * @return whether faults were enabled
 */
bool applyEnvFaults(pipm::SystemConfig &cfg);

/** base.execCycles / x.execCycles (speedup of x over base). */
double speedupOver(const pipm::RunResult &base, const pipm::RunResult &x);

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &xs);

} // namespace pipmbench

#endif // PIPM_BENCH_COMMON_HH
