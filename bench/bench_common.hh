/**
 * @file
 * Shared infrastructure for the figure/table harnesses.
 *
 * Many figures consume the same (workload, scheme) runs — Fig. 10's
 * end-to-end matrix also feeds Figs. 11, 12 and 13. Since each harness is
 * its own binary, runs are memoised in a TSV cache file keyed by the full
 * experiment fingerprint (workload, scheme, configuration, run length,
 * seed), so running every harness binary in sequence simulates each
 * combination exactly once.
 *
 * Harnesses enqueue every (config, scheme, workload) combination they
 * will read into a Sweep up front; Sweep::run() executes the ones the
 * cache does not already hold on a PIPM_BENCH_JOBS-sized thread pool.
 * Each experiment is a self-contained seeded simulation, so the results
 * — and the cache rows written — are bit-identical regardless of the
 * job count. Cache writes go through a single-writer merge: the file is
 * re-read, merged with the new rows, and atomically replaced via a
 * temp file + rename, with rows in canonical (key-sorted) order.
 * Malformed or truncated rows (e.g. from an interrupted run) are
 * skipped with a warning and dropped on the next merge.
 *
 * Environment knobs:
 *   PIPM_BENCH_REFS    measured references per core (default 150000)
 *   PIPM_BENCH_WARMUP  warmup references per core (default 40000)
 *   PIPM_BENCH_SEED    RNG seed (default 42)
 *   PIPM_BENCH_CACHE   cache file path (default ./pipm_bench_cache.tsv)
 *   PIPM_BENCH_JOBS    worker threads for Sweep::run (default 1)
 *   PIPM_BENCH_FAULTS  any value but empty/"0": enable the paper-default
 *                      fault schedule (harnesses calling applyEnvFaults);
 *                      "crash" or "2" additionally enables the host
 *                      fail-stop crash/rejoin schedule (DESIGN.md §8)
 *
 * The observability knobs (PIPM_STATS_JSON, PIPM_OBS_INTERVAL,
 * PIPM_OBS_TRACE, PIPM_OBS_WATCH — DESIGN.md §10) are resolved once in
 * optionsFromEnv() and forwarded through runConfigOf() with
 * RunConfig::obsFromEnv false, so every harness sees one consistent
 * resolution. Sweep::run() and cachedRun() clear the export path: cached
 * experiments may not re-run at all, and parallel sweep workers must not
 * race on a single output file. Direct runExperiment() callers
 * (obs_report, perf_throughput) do export.
 */

#ifndef PIPM_BENCH_COMMON_HH
#define PIPM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"
#include "sim/scheme.hh"
#include "workloads/workload.hh"

namespace pipmbench
{

/** Run-length options resolved from the environment. */
struct Options
{
    std::uint64_t measureRefs = 150'000;
    std::uint64_t warmupRefs = 40'000;
    std::uint64_t seed = 42;
    std::string cachePath = "pipm_bench_cache.tsv";
    unsigned jobs = 1;   ///< Sweep::run worker threads

    // Observability (DESIGN.md §10), resolved from PIPM_STATS_JSON /
    // PIPM_OBS_INTERVAL / PIPM_OBS_TRACE / PIPM_OBS_WATCH.
    std::string statsJsonPath;      ///< "" disables the export
    std::uint64_t obsInterval = 0;  ///< measured accesses per interval
    std::uint64_t obsTrace = 0;     ///< event-trace ring capacity
    std::string obsWatch;           ///< comma-separated watched lines
};

/** Read the PIPM_BENCH_* environment variables. */
Options optionsFromEnv();

/**
 * Shared argv handling for harnesses whose knobs are all environment
 * variables: prints usage (with the PIPM_BENCH_* knob table and the
 * harness's one-line description `what`) and exits 0 on --help/-h, and
 * exits 2 on any other argument. Previously every harness silently
 * ignored argv, so a typo like `fig10_end_to_end --refs=100` ran the
 * full default sweep instead of failing fast. No-op when argc == 1.
 */
void handleHarnessArgs(int argc, char **argv, const char *name,
                       const char *what);

/** Build the RunConfig corresponding to the options. */
pipm::RunConfig runConfigOf(const Options &opts);

/**
 * Run (or load from cache) one experiment.
 * @param extra_key disambiguates runs whose difference is not captured by
 *        the config fingerprint (should normally be empty)
 */
pipm::RunResult cachedRun(const pipm::SystemConfig &cfg,
                          pipm::Scheme scheme,
                          const pipm::Workload &workload,
                          const Options &opts,
                          const std::string &extra_key = "");

/**
 * A batch of experiments executed on a thread pool.
 *
 * Harnesses add() every combination they will later read (duplicates
 * are fine — they dedupe by cache key), call run() once, and then keep
 * their existing cachedRun() reporting loops, which all hit the cache.
 * run() simulates only the cache misses, with PIPM_BENCH_JOBS worker
 * threads, and merges the new rows into the cache file in one atomic
 * replace. Results are independent of the job count: every experiment
 * is a self-contained seeded simulation.
 */
class Sweep
{
  public:
    explicit Sweep(const Options &opts) : opts_(opts) {}

    /** Enqueue one experiment (the config is copied). */
    void add(const pipm::SystemConfig &cfg, pipm::Scheme scheme,
             const pipm::Workload &workload,
             const std::string &extra_key = "");

    /**
     * Simulate every enqueued experiment the cache does not hold and
     * merge the results into the cache file.
     * @return number of experiments actually simulated
     */
    std::size_t run();

  private:
    struct Item
    {
        pipm::SystemConfig cfg;
        pipm::Scheme scheme;
        const pipm::Workload *workload;
        std::string extraKey;
        std::string key;
    };

    Options opts_;
    std::vector<Item> items_;
};

/** Fingerprint of every config field that affects measurements. */
std::string configKey(const pipm::SystemConfig &cfg);

/**
 * Enable the paper-default fault schedule on `cfg` when the
 * PIPM_BENCH_FAULTS environment variable is set (and not "0").
 * @return whether faults were enabled
 */
bool applyEnvFaults(pipm::SystemConfig &cfg);

/** base.execCycles / x.execCycles (speedup of x over base). */
double speedupOver(const pipm::RunResult &base, const pipm::RunResult &x);

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &xs);

} // namespace pipmbench

#endif // PIPM_BENCH_COMMON_HH
