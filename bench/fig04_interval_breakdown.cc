/**
 * @file
 * Figure 4: execution-time breakdown of Nomad and Memtis at 100 ms,
 * 10 ms and 1 ms migration intervals, normalised to the no-migration
 * (Native) baseline. Each bar splits into the base execution, the
 * migration-management overhead (kernel stalls, shootdowns) and the
 * page-transfer overhead.
 *
 * Paper reference points: at 100 ms Nomad +10.5% / Memtis -1.4%; at
 * 10 ms both improve (-4.8% / -12.2%); at 1 ms both degrade (+26.1% /
 * +15.4%) as management and transfer overheads dominate (Take-aways 3-4).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig04_interval_breakdown",
        "Fig. 4: execution-time breakdown of Nomad/Memtis migration intervals.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const double intervals_ms[] = {100.0, 10.0, 1.0};
    const Scheme schemes[] = {Scheme::nomad, Scheme::memtis};

    TablePrinter table(
        "Figure 4: normalised execution time breakdown vs migration "
        "interval (total = base + mgmt + transfer)");
    table.header({"workload", "scheme", "interval", "total", "base",
                  "mgmt", "transfer", "migrations"});

    const SystemConfig base_cfg = defaultConfig();
    const unsigned total_cores = base_cfg.numHosts * base_cfg.coresPerHost;

    const auto workloads = table1Workloads(base_cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        sweep.add(base_cfg, Scheme::native, *workload);
        for (Scheme s : schemes) {
            for (double interval : intervals_ms) {
                SystemConfig cfg = base_cfg;
                cfg.osMigration.intervalMs = interval;
                sweep.add(cfg, s, *workload);
            }
        }
    }
    sweep.run();

    for (const auto &workload : workloads) {
        const RunResult native =
            cachedRun(base_cfg, Scheme::native, *workload, opts);
        for (Scheme s : schemes) {
            for (double interval : intervals_ms) {
                SystemConfig cfg = base_cfg;
                cfg.osMigration.intervalMs = interval;
                const RunResult r = cachedRun(cfg, s, *workload, opts);

                const double total =
                    static_cast<double>(r.execCycles) /
                    static_cast<double>(native.execCycles);
                // Management: kernel stalls summed over cores, expressed
                // as a fraction of the native run's core-cycles.
                const double mgmt =
                    static_cast<double>(r.mgmtStallCycles) /
                    (static_cast<double>(native.execCycles) * total_cores);
                // Transfer: the link time consumed by page copies.
                const double bytes_per_cycle =
                    cfg.link.bytesPerNs / cyclesPerNs;
                const double transfer =
                    static_cast<double>(r.migrationTransferBytes /
                                        cfg.migrationBytesScale) /
                    bytes_per_cycle / cfg.numHosts /
                    static_cast<double>(native.execCycles);
                const double base_part =
                    std::max(0.0, total - mgmt - transfer);

                table.row({workload->name(), std::string(toString(s)),
                           TablePrinter::num(interval, 0) + "ms",
                           TablePrinter::num(total, 2),
                           TablePrinter::num(base_part, 2),
                           TablePrinter::num(mgmt, 3),
                           TablePrinter::num(transfer, 3),
                           std::to_string(r.osMigrations +
                                          r.osDemotions)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "Paper: 100ms Nomad +10.5% / Memtis -1.4%; 10ms -4.8% / "
                 "-12.2%; 1ms +26.1% / +15.4% (overheads dominate).\n";
    return 0;
}
