/**
 * @file
 * Figure 5: percentage of harmful page migrations under Nomad and Memtis
 * (default 10 ms interval). A migration is harmful when the inter-host
 * penalty it imposes on other hosts (plus its kernel cost) outweighs the
 * local-access benefit (§3.2.1).
 *
 * Paper reference points: 34% (Nomad) and 29% (Memtis) on average.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig05_harmful_migrations",
        "Fig. 5: percentage of harmful page migrations under Nomad and Memtis.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();

    TablePrinter table("Figure 5: percentage of harmful page migrations");
    table.header({"workload", "nomad", "memtis"});
    const auto workloads = table1Workloads(cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        sweep.add(cfg, Scheme::nomad, *workload);
        sweep.add(cfg, Scheme::memtis, *workload);
    }
    sweep.run();

    std::vector<double> nomad_pct, memtis_pct;
    for (const auto &workload : workloads) {
        const RunResult nomad =
            cachedRun(cfg, Scheme::nomad, *workload, opts);
        const RunResult memtis =
            cachedRun(cfg, Scheme::memtis, *workload, opts);
        nomad_pct.push_back(nomad.harmfulFraction());
        memtis_pct.push_back(memtis.harmfulFraction());
        table.row({workload->name(),
                   TablePrinter::pct(nomad.harmfulFraction()),
                   TablePrinter::pct(memtis.harmfulFraction())});
    }
    double nomad_avg = 0, memtis_avg = 0;
    for (std::size_t i = 0; i < nomad_pct.size(); ++i) {
        nomad_avg += nomad_pct[i];
        memtis_avg += memtis_pct[i];
    }
    nomad_avg /= static_cast<double>(nomad_pct.size());
    memtis_avg /= static_cast<double>(memtis_pct.size());
    table.row({"average", TablePrinter::pct(nomad_avg),
               TablePrinter::pct(memtis_avg)});
    table.print(std::cout);
    std::cout << "Paper: Nomad 34% and Memtis 29% harmful on average.\n";
    return 0;
}
