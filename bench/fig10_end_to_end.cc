/**
 * @file
 * Figure 10: end-to-end performance of every scheme on every Table 1
 * workload, normalised to Native CXL-DSM.
 *
 * Paper reference points: PIPM 1.86x average (up to 2.54x) and 0.73x of
 * the Local-only ideal; OS-skew +31.5%; HW-static +15.7%; Nomad/Memtis/
 * HeMem marginal (down to -18% on some workloads). Graph workloads gain
 * the most, databases the least.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig10_end_to_end",
        "Fig. 10: end-to-end performance of every scheme on every workload.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    SystemConfig cfg = defaultConfig();
    const bool faulty = applyEnvFaults(cfg);

    TablePrinter table(
        "Figure 10: end-to-end speedup over Native CXL-DSM");
    std::vector<std::string> header = {"workload"};
    for (Scheme s : allSchemes)
        header.push_back(std::string(toString(s)));
    table.header(header);

    const auto workloads = table1Workloads(cfg.footprintScale);

    // Enqueue the whole matrix up front so the cache misses run on the
    // PIPM_BENCH_JOBS pool; the loops below then read from the cache.
    Sweep sweep(opts);
    for (const auto &workload : workloads)
        for (Scheme s : allSchemes)
            sweep.add(cfg, s, *workload);
    sweep.run();

    std::vector<std::vector<double>> columns(allSchemes.size());
    RunResult faultTotals;
    for (const auto &workload : workloads) {
        const RunResult native =
            cachedRun(cfg, Scheme::native, *workload, opts);
        std::vector<std::string> row = {workload->name()};
        for (std::size_t i = 0; i < allSchemes.size(); ++i) {
            const Scheme s = allSchemes[i];
            const RunResult r =
                s == Scheme::native ? native
                                    : cachedRun(cfg, s, *workload, opts);
            const double speedup = speedupOver(native, r);
            columns[i].push_back(speedup);
            row.push_back(TablePrinter::num(speedup, 2) + "x");
            faultTotals.linkCrcErrors += r.linkCrcErrors;
            faultTotals.linkRetrainEvents += r.linkRetrainEvents;
            faultTotals.poisonEvents += r.poisonEvents;
            faultTotals.degradedAccesses += r.degradedAccesses;
            faultTotals.migrationAborts += r.migrationAborts;
            faultTotals.migrationsDeferred += r.migrationsDeferred;
            faultTotals.hostCrashes += r.hostCrashes;
            faultTotals.hostRejoins += r.hostRejoins;
            faultTotals.crashLinesReclaimed += r.crashLinesReclaimed;
            faultTotals.crashDirtyLinesLost += r.crashDirtyLinesLost;
            faultTotals.crashRecoveryCycles += r.crashRecoveryCycles;
        }
        table.row(row);
    }

    std::vector<std::string> mean_row = {"geomean"};
    for (auto &col : columns)
        mean_row.push_back(TablePrinter::num(geomean(col), 2) + "x");
    table.row(mean_row);
    table.print(std::cout);

    if (faulty) {
        std::cout << "Fault injection (PIPM_BENCH_FAULTS): "
                  << faultTotals.linkCrcErrors << " link CRC errors, "
                  << faultTotals.linkRetrainEvents << " retrain events, "
                  << faultTotals.poisonEvents << " poisoned lines, "
                  << faultTotals.degradedAccesses << " degraded accesses, "
                  << faultTotals.migrationAborts << " migration aborts, "
                  << faultTotals.migrationsDeferred
                  << " migrations deferred (totals across runs).\n";
        if (faultTotals.hostCrashes || faultTotals.hostRejoins) {
            std::cout << "Host crashes (PIPM_BENCH_FAULTS=crash): "
                      << faultTotals.hostCrashes << " fail-stop crashes, "
                      << faultTotals.hostRejoins << " cold rejoins, "
                      << faultTotals.crashLinesReclaimed
                      << " lines reclaimed, "
                      << faultTotals.crashDirtyLinesLost
                      << " dirty lines lost, "
                      << faultTotals.crashRecoveryCycles
                      << " recovery cycles (totals across runs).\n";
        }
    }

    std::cout << "Paper: PIPM 1.86x avg (max 2.54x) over native; "
                 "0.73x of local-only; OS-skew +31.5%; HW-static +15.7%; "
                 "Nomad/Memtis/HeMem marginal.\n";
    return 0;
}
