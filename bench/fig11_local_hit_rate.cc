/**
 * @file
 * Figure 11: local memory hit rates — the fraction of shared LLC misses
 * served from the accessing host's own local DRAM (misses otherwise go
 * to CXL memory or another host's memory).
 *
 * Paper reference points: PIPM 56.1% average vs Nomad 26.5%, Memtis
 * 31.0%, HeMem 28.1%, HW-static 21.6%; OS-skew relatively high.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig11_local_hit_rate",
        "Fig. 11: local memory hit rates per scheme and workload.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();
    const Scheme schemes[] = {Scheme::nomad,    Scheme::memtis,
                              Scheme::hemem,    Scheme::osSkew,
                              Scheme::hwStatic, Scheme::pipmFull};

    TablePrinter table("Figure 11: local memory hit rates");
    std::vector<std::string> header = {"workload"};
    for (Scheme s : schemes)
        header.push_back(std::string(toString(s)));
    table.header(header);

    const auto workloads = table1Workloads(cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads)
        for (Scheme s : schemes)
            sweep.add(cfg, s, *workload);
    sweep.run();

    std::vector<double> sums(std::size(schemes), 0.0);
    unsigned count = 0;
    for (const auto &workload : workloads) {
        std::vector<std::string> row = {workload->name()};
        for (std::size_t i = 0; i < std::size(schemes); ++i) {
            const RunResult r =
                cachedRun(cfg, schemes[i], *workload, opts);
            sums[i] += r.localHitRate();
            row.push_back(TablePrinter::pct(r.localHitRate()));
        }
        table.row(row);
        ++count;
    }
    std::vector<std::string> avg = {"average"};
    for (double s : sums)
        avg.push_back(TablePrinter::pct(s / count));
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: PIPM 56.1% avg vs Nomad 26.5% / Memtis 31.0% / "
                 "HeMem 28.1% / HW-static 21.6%.\n";
    return 0;
}
