/**
 * @file
 * Figure 12: stalling cycles of inter-host memory accesses, normalised
 * to the Native CXL-DSM total execution time (core-cycles).
 *
 * Paper reference points: Nomad 19.1%, Memtis 16.6%, HeMem 16.8%,
 * OS-skew 8.7%, HW-static 4.1%, PIPM 1.5% on average.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig12_interhost_stalls",
        "Fig. 12: inter-host stalling cycles normalised to Native.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();
    const unsigned total_cores = cfg.numHosts * cfg.coresPerHost;
    const Scheme schemes[] = {Scheme::nomad,    Scheme::memtis,
                              Scheme::hemem,    Scheme::osSkew,
                              Scheme::hwStatic, Scheme::pipmFull};

    TablePrinter table("Figure 12: inter-host access stall cycles / "
                       "native execution time");
    std::vector<std::string> header = {"workload"};
    for (Scheme s : schemes)
        header.push_back(std::string(toString(s)));
    table.header(header);

    const auto workloads = table1Workloads(cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        sweep.add(cfg, Scheme::native, *workload);
        for (Scheme s : schemes)
            sweep.add(cfg, s, *workload);
    }
    sweep.run();

    std::vector<double> sums(std::size(schemes), 0.0);
    unsigned count = 0;
    for (const auto &workload : workloads) {
        const RunResult native =
            cachedRun(cfg, Scheme::native, *workload, opts);
        std::vector<std::string> row = {workload->name()};
        for (std::size_t i = 0; i < std::size(schemes); ++i) {
            const RunResult r =
                cachedRun(cfg, schemes[i], *workload, opts);
            const double frac =
                static_cast<double>(r.interHostStallCycles) /
                (static_cast<double>(native.execCycles) * total_cores);
            sums[i] += frac;
            row.push_back(TablePrinter::pct(frac));
        }
        table.row(row);
        ++count;
    }
    std::vector<std::string> avg = {"average"};
    for (double s : sums)
        avg.push_back(TablePrinter::pct(s / count));
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: Nomad 19.1% / Memtis 16.6% / HeMem 16.8% / "
                 "OS-skew 8.7% / HW-static 4.1% / PIPM 1.5%.\n";
    return 0;
}
