/**
 * @file
 * Figure 13: average ratio of per-host local memory footprint to total
 * memory footprint. For PIPM, both the page-level allocation (local
 * frames reserved) and the line-level footprint (lines actually
 * migrated) are reported, as in the paper's PIPM-page / PIPM-line bars.
 *
 * Paper reference points: Nomad 7.4%, HeMem 6.0%, Memtis 5.2%, OS-skew
 * 4.6%, HW-static fixed 25%, PIPM-page 7.3%, PIPM-line 5.5%.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig13_memory_footprint",
        "Fig. 13: per-host local memory footprint ratios.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();
    const Scheme schemes[] = {Scheme::nomad, Scheme::hemem,
                              Scheme::memtis, Scheme::osSkew,
                              Scheme::hwStatic};

    TablePrinter table("Figure 13: per-host local footprint / total "
                       "footprint");
    table.header({"workload", "nomad", "hemem", "memtis", "os-skew",
                  "hw-static", "pipm-page", "pipm-line"});

    const auto workloads = table1Workloads(cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        for (Scheme s : schemes)
            sweep.add(cfg, s, *workload);
        sweep.add(cfg, Scheme::pipmFull, *workload);
    }
    sweep.run();

    std::vector<double> sums(std::size(schemes) + 2, 0.0);
    unsigned count = 0;
    for (const auto &workload : workloads) {
        std::vector<std::string> row = {workload->name()};
        for (std::size_t i = 0; i < std::size(schemes); ++i) {
            const RunResult r =
                cachedRun(cfg, schemes[i], *workload, opts);
            sums[i] += r.pageFootprintFrac;
            row.push_back(TablePrinter::pct(r.pageFootprintFrac));
        }
        const RunResult pipm =
            cachedRun(cfg, Scheme::pipmFull, *workload, opts);
        sums[std::size(schemes)] += pipm.pageFootprintFrac;
        sums[std::size(schemes) + 1] += pipm.lineFootprintFrac;
        row.push_back(TablePrinter::pct(pipm.pageFootprintFrac));
        row.push_back(TablePrinter::pct(pipm.lineFootprintFrac));
        table.row(row);
        ++count;
    }
    std::vector<std::string> avg = {"average"};
    for (double s : sums)
        avg.push_back(TablePrinter::pct(s / count));
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: Nomad 7.4% / HeMem 6.0% / Memtis 5.2% / OS-skew "
                 "4.6% / HW-static 25% / PIPM-page 7.3% / PIPM-line "
                 "5.5%.\n";
    return 0;
}
