/**
 * @file
 * Figure 14: PIPM's speedup over Native CXL-DSM under different CXL link
 * latencies — 50 ns per direction (direct attach, the default) and
 * 100 ns (a configuration with a CXL switch).
 *
 * Paper reference point: at 100 ns, PIPM's improvement grows by 55.7% on
 * average (up to 193.1%) relative to the 50 ns configuration, because
 * local-memory hits avoid ever-more-expensive link crossings.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig14_link_latency",
        "Fig. 14: PIPM speedup under different CXL link latencies.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    const double latencies_ns[] = {50.0, 100.0};

    TablePrinter table("Figure 14: PIPM speedup over Native vs CXL link "
                       "latency");
    table.header({"workload", "50ns", "100ns", "extra gain @100ns"});

    const SystemConfig base_cfg = defaultConfig();
    const auto workloads = table1Workloads(base_cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        for (double latency : latencies_ns) {
            SystemConfig cfg = base_cfg;
            cfg.link.latencyNs = latency;
            sweep.add(cfg, Scheme::native, *workload);
            sweep.add(cfg, Scheme::pipmFull, *workload);
        }
    }
    sweep.run();

    std::vector<double> base_speedups, high_speedups;
    for (const auto &workload : workloads) {
        double speedups[2];
        for (int i = 0; i < 2; ++i) {
            SystemConfig cfg = base_cfg;
            cfg.link.latencyNs = latencies_ns[i];
            const RunResult native =
                cachedRun(cfg, Scheme::native, *workload, opts);
            const RunResult pipm =
                cachedRun(cfg, Scheme::pipmFull, *workload, opts);
            speedups[i] = speedupOver(native, pipm);
        }
        base_speedups.push_back(speedups[0]);
        high_speedups.push_back(speedups[1]);
        table.row({workload->name(),
                   TablePrinter::num(speedups[0], 2) + "x",
                   TablePrinter::num(speedups[1], 2) + "x",
                   TablePrinter::pct(speedups[1] / speedups[0] - 1.0)});
    }
    table.row({"geomean", TablePrinter::num(geomean(base_speedups), 2) +
                              "x",
               TablePrinter::num(geomean(high_speedups), 2) + "x",
               TablePrinter::pct(geomean(high_speedups) /
                                     geomean(base_speedups) -
                                 1.0)});
    table.print(std::cout);
    std::cout << "Paper: +55.7% additional improvement on average (up to "
                 "+193.1%) at 100ns.\n";
    return 0;
}
