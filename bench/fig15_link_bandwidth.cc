/**
 * @file
 * Figure 15: PIPM's speedup over Native CXL-DSM under different CXL link
 * bandwidths — x8 lanes (2.5 GB/s effective), x16 (5 GB/s, default) and
 * x32 (10 GB/s).
 *
 * Paper reference points: at half bandwidth PIPM's gain grows by 48.4%
 * (up to 96%) relative to x16; at double bandwidth it retains 97.9% of
 * the x16 improvement (workloads remain latency-bound).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig15_link_bandwidth",
        "Fig. 15: PIPM speedup under different CXL link bandwidths.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    struct Point
    {
        const char *label;
        double bytesPerNs;
    };
    const Point points[] = {{"x8 (2.5GB/s)", 2.5},
                            {"x16 (5GB/s)", 5.0},
                            {"x32 (10GB/s)", 10.0}};

    TablePrinter table("Figure 15: PIPM speedup over Native vs CXL link "
                       "bandwidth");
    table.header({"workload", points[0].label, points[1].label,
                  points[2].label});

    const SystemConfig base_cfg = defaultConfig();
    const auto workloads = table1Workloads(base_cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        for (const Point &p : points) {
            SystemConfig cfg = base_cfg;
            cfg.link.bytesPerNs = p.bytesPerNs;
            sweep.add(cfg, Scheme::native, *workload);
            sweep.add(cfg, Scheme::pipmFull, *workload);
        }
    }
    sweep.run();

    std::vector<std::vector<double>> cols(3);
    for (const auto &workload : workloads) {
        std::vector<std::string> row = {workload->name()};
        for (int i = 0; i < 3; ++i) {
            SystemConfig cfg = base_cfg;
            cfg.link.bytesPerNs = points[i].bytesPerNs;
            const RunResult native =
                cachedRun(cfg, Scheme::native, *workload, opts);
            const RunResult pipm =
                cachedRun(cfg, Scheme::pipmFull, *workload, opts);
            const double s = speedupOver(native, pipm);
            cols[i].push_back(s);
            row.push_back(TablePrinter::num(s, 2) + "x");
        }
        table.row(row);
    }
    std::vector<std::string> avg = {"geomean"};
    for (auto &col : cols)
        avg.push_back(TablePrinter::num(geomean(col), 2) + "x");
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: x8 gain +48.4% (up to +96%) vs x16; x32 retains "
                 "97.9% of the x16 improvement.\n";
    return 0;
}
