/**
 * @file
 * Figure 16: PIPM performance versus local remapping cache size,
 * normalised to an infinite local remapping cache. The local remapping
 * lookup is on the critical path of every shared LLC miss, so this cache
 * matters more than the global one (Fig. 17).
 *
 * Paper reference point: a 1 MB local remapping cache reaches 97.8% of
 * the infinite-cache performance.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig16_local_remap_cache",
        "Fig. 16: PIPM performance versus local remapping cache size.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    // Capacities scale with the footprint (1/footprintScale): the
    // paper's 1 MB point over a 48 GB RSS corresponds to 4 KB over our
    // scaled heaps, preserving the entries-to-pages ratio under study.
    const std::uint64_t sizes[] = {1ull << 10, 4ull << 10, 16ull << 10};

    TablePrinter table("Figure 16: performance vs local remapping cache "
                       "size (normalised to infinite)");
    table.header({"workload", "1KB (~256KB)", "4KB (~1MB)",
                  "16KB (~4MB)", "infinite"});

    const SystemConfig base_cfg = defaultConfig();
    const auto workloads = table1Workloads(base_cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        SystemConfig inf_cfg = base_cfg;
        inf_cfg.pipm.infiniteLocalCache = true;
        sweep.add(inf_cfg, Scheme::pipmFull, *workload);
        for (std::uint64_t size : sizes) {
            SystemConfig cfg = base_cfg;
            cfg.pipm.localCacheBytes = size;
            sweep.add(cfg, Scheme::pipmFull, *workload);
        }
    }
    sweep.run();

    std::vector<std::vector<double>> cols(std::size(sizes));
    for (const auto &workload : workloads) {
        SystemConfig inf_cfg = base_cfg;
        inf_cfg.pipm.infiniteLocalCache = true;
        const RunResult infinite =
            cachedRun(inf_cfg, Scheme::pipmFull, *workload, opts);

        std::vector<std::string> row = {workload->name()};
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            SystemConfig cfg = base_cfg;
            cfg.pipm.localCacheBytes = sizes[i];
            const RunResult r =
                cachedRun(cfg, Scheme::pipmFull, *workload, opts);
            const double rel = speedupOver(r, infinite) > 0
                                   ? static_cast<double>(
                                         infinite.execCycles) /
                                         static_cast<double>(r.execCycles)
                                   : 0.0;
            cols[i].push_back(rel);
            row.push_back(TablePrinter::pct(rel));
        }
        row.push_back("100.0%");
        table.row(row);
    }
    std::vector<std::string> avg = {"geomean"};
    for (auto &col : cols)
        avg.push_back(TablePrinter::pct(geomean(col)));
    avg.push_back("100.0%");
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: 1MB local remapping cache achieves 97.8% of "
                 "infinite.\n";
    return 0;
}
