/**
 * @file
 * Figure 17: PIPM performance versus global remapping cache size,
 * normalised to an infinite global remapping cache. Global remapping
 * lookups occur only when forwarding inter-host accesses, so even a tiny
 * cache suffices.
 *
 * Paper reference point: a 16 KB global remapping cache reaches 99.8% of
 * the infinite-cache performance.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "fig17_global_remap_cache",
        "Fig. 17: PIPM performance versus global remapping cache size.");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    // Capacities scale with the footprint (1/footprintScale): the
    // paper's 16 KB point corresponds to 64 B over our scaled pools.
    const std::uint64_t sizes[] = {64ull, 256ull, 1024ull};

    TablePrinter table("Figure 17: performance vs global remapping cache "
                       "size (normalised to infinite)");
    table.header({"workload", "64B (~16KB)", "256B (~64KB)",
                  "1KB (~256KB)", "infinite"});

    const SystemConfig base_cfg = defaultConfig();
    const auto workloads = table1Workloads(base_cfg.footprintScale);

    // Enqueue every combination up front for the PIPM_BENCH_JOBS pool.
    Sweep sweep(opts);
    for (const auto &workload : workloads) {
        SystemConfig inf_cfg = base_cfg;
        inf_cfg.pipm.infiniteGlobalCache = true;
        sweep.add(inf_cfg, Scheme::pipmFull, *workload);
        for (std::uint64_t size : sizes) {
            SystemConfig cfg = base_cfg;
            cfg.pipm.globalCacheBytes = size;
            sweep.add(cfg, Scheme::pipmFull, *workload);
        }
    }
    sweep.run();

    std::vector<std::vector<double>> cols(std::size(sizes));
    for (const auto &workload : workloads) {
        SystemConfig inf_cfg = base_cfg;
        inf_cfg.pipm.infiniteGlobalCache = true;
        const RunResult infinite =
            cachedRun(inf_cfg, Scheme::pipmFull, *workload, opts);

        std::vector<std::string> row = {workload->name()};
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            SystemConfig cfg = base_cfg;
            cfg.pipm.globalCacheBytes = sizes[i];
            const RunResult r =
                cachedRun(cfg, Scheme::pipmFull, *workload, opts);
            const double rel =
                static_cast<double>(infinite.execCycles) /
                static_cast<double>(r.execCycles);
            cols[i].push_back(rel);
            row.push_back(TablePrinter::pct(rel));
        }
        row.push_back("100.0%");
        table.row(row);
    }
    std::vector<std::string> avg = {"geomean"};
    for (auto &col : cols)
        avg.push_back(TablePrinter::pct(geomean(col)));
    avg.push_back("100.0%");
    table.row(avg);
    table.print(std::cout);
    std::cout << "Paper: 16KB global remapping cache achieves 99.8% of "
                 "infinite.\n";
    return 0;
}
