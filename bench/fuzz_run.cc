/**
 * @file
 * Differential configuration fuzzing driver (DESIGN.md §13).
 *
 * Samples seeded random valid configurations (src/fuzz), runs each
 * under the cross-checking oracles, and greedily minimizes any failure
 * into a ready-to-paste regression test. On top of the four library
 * oracles (sched, faultzero, invariants, statsjson) this driver adds
 * the bench-layer "jobs" oracle: the same sweep executed with one and
 * with four worker threads must produce byte-identical bench-cache
 * files (the Sweep contract every figure harness depends on).
 *
 * Environment (flags override):
 *   PIPM_FUZZ_SEEDS        cases to sample (default 16)
 *   PIPM_FUZZ_REFS         max measured references per core (default 4000)
 *   PIPM_FUZZ_TIME_BUDGET  wall-clock budget in seconds (0: unlimited)
 *
 * Exit status: 0 when every case passes every oracle, 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hh"
#include "common/logging.hh"
#include "fuzz/fuzz.hh"
#include "workloads/catalog.hh"

namespace
{

using namespace pipm;
using namespace pipm::fuzz;

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? std::strtoull(v, nullptr, 10) : fallback;
}

void
usage(std::ostream &os)
{
    os << "usage: fuzz_run [--help] [--seeds N] [--seed0 S] [--refs N]\n"
          "                [--time-budget SEC] [--oracle NAME[,NAME...]]\n"
          "                [--out FILE]\n"
          "\n"
          "Differential configuration fuzzing (DESIGN.md §13): sample\n"
          "seeded random valid configurations, cross-check each under\n"
          "independent implementations of the simulator's equivalence\n"
          "contracts, and minimize any failure to a regression test.\n"
          "\n"
          "  --seeds N        cases to sample (default 16)\n"
          "  --seed0 S        first sample seed (default 1)\n"
          "  --refs N         max measured references per core (4000)\n"
          "  --time-budget S  stop sampling after S seconds (0: none)\n"
          "  --oracle NAMES   comma-separated subset of: sched,\n"
          "                   faultzero, invariants, statsjson, jobs\n"
          "                   (default: all)\n"
          "  --out FILE       append failing seeds and minimized\n"
          "                   reproducers to FILE (for CI artifacts)\n"
          "\n"
          "Environment (flags override): PIPM_FUZZ_SEEDS,\n"
          "PIPM_FUZZ_REFS, PIPM_FUZZ_TIME_BUDGET.\n"
          "PIPM_FUZZ_TRACE_DIR=DIR mixes the .pipmt traces in DIR\n"
          "into the sampled workload population (trace:<path>).\n";
}

/** Scoped detail::throwOnError so fatal()/panic() raise SimError. */
struct ThrowGuard
{
    bool saved = detail::throwOnError;
    ThrowGuard() { detail::throwOnError = true; }
    ~ThrowGuard() { detail::throwOnError = saved; }
};

/** A process-unique temp path for one bench-cache file. */
std::string
tempCachePath()
{
    static unsigned counter = 0;
    std::ostringstream name;
    name << "pipm_fuzz_cache_" << ::getpid() << "_" << ++counter << ".tsv";
    return (std::filesystem::temp_directory_path() / name.str()).string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * The bench-layer oracle: one sweep over the case (plus two baseline
 * schemes, so multi-threaded runs actually fan out) executed with
 * jobs=1 and jobs=4 into fresh cache files must produce byte-identical
 * rows — every experiment is a self-contained seeded simulation and the
 * cache merge writes rows in canonical order.
 */
OracleResult
checkJobs(const FuzzCase &c)
{
    ThrowGuard guard;
    std::string contents[2];
    try {
        const auto wl = caseWorkload(c);
        for (int i = 0; i < 2; ++i) {
            pipmbench::Options opts;
            opts.measureRefs = c.measureRefs;
            opts.warmupRefs = c.warmupRefs;
            opts.seed = c.runSeed;
            opts.jobs = i == 0 ? 1 : 4;
            opts.cachePath = tempCachePath();
            pipmbench::Sweep sweep(opts);
            sweep.add(c.cfg, c.scheme, *wl);
            sweep.add(c.cfg, Scheme::native, *wl);
            sweep.add(c.cfg, Scheme::pipmFull, *wl);
            sweep.run();
            contents[i] = slurp(opts.cachePath);
            std::remove(opts.cachePath.c_str());
        }
    } catch (const SimError &e) {
        return {false, "panic/fatal during sweep: " + e.message};
    }
    if (contents[0].empty())
        return {false, "jobs=1 sweep produced no cache rows"};
    if (contents[0] != contents[1])
        return {false, "bench cache rows differ between jobs=1 and jobs=4"};
    return {};
}

struct Failure
{
    std::uint64_t seed;
    std::string oracle;
    MinimizedCase minimized;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seeds = envU64("PIPM_FUZZ_SEEDS", 16);
    std::uint64_t seed0 = 1;
    std::uint64_t refs = envU64("PIPM_FUZZ_REFS", 4'000);
    std::uint64_t budget_sec = envU64("PIPM_FUZZ_TIME_BUDGET", 0);
    std::string oracle_names = "all";
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "fuzz_run: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--seeds") {
            seeds = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--seed0") {
            seed0 = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--refs") {
            refs = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--time-budget") {
            budget_sec = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--oracle") {
            oracle_names = value();
        } else if (arg == "--out") {
            out_path = value();
        } else {
            std::cerr << "fuzz_run: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    refs = std::max<std::uint64_t>(refs, 4);

    // Resolve the oracle set: the four library oracles plus "jobs".
    std::vector<Oracle> oracles;
    {
        std::vector<Oracle> all = coreOracles();
        all.push_back({"jobs", checkJobs});
        if (oracle_names == "all") {
            oracles = all;
        } else {
            std::istringstream ss(oracle_names);
            std::string name;
            while (std::getline(ss, name, ',')) {
                bool found = false;
                for (const Oracle &o : all) {
                    if (o.name == name) {
                        oracles.push_back(o);
                        found = true;
                    }
                }
                if (!found) {
                    std::cerr << "fuzz_run: unknown oracle '" << name
                              << "'\n";
                    return 2;
                }
            }
        }
    }
    if (oracles.empty()) {
        std::cerr << "fuzz_run: no oracles selected\n";
        return 2;
    }

    FuzzLimits lim;
    lim.maxRefs = refs;
    lim.minRefs = std::max<std::uint64_t>(1, refs / 4);
    lim.maxWarmup = std::max<std::uint64_t>(1, refs / 4);

    const auto start = std::chrono::steady_clock::now();
    auto out_of_budget = [&]() {
        if (!budget_sec)
            return false;
        return std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - start)
                   .count() >= static_cast<long>(budget_sec);
    };

    std::vector<Failure> failures;
    std::uint64_t sampled = 0;
    for (std::uint64_t s = seed0; s < seed0 + seeds; ++s) {
        if (out_of_budget()) {
            std::cout << "fuzz_run: time budget reached after " << sampled
                      << " of " << seeds << " cases\n";
            break;
        }
        const FuzzCase c = sampleCase(s, lim);
        ++sampled;
        std::string why;
        if (!caseValid(c, &why)) {
            // A repaired sample must always validate; this is a sampler
            // bug and every seed would hide it if we skipped silently.
            std::cerr << "fuzz_run: seed " << s
                      << " repaired to an invalid case: " << why << "\n";
            failures.push_back({s, "sampler", MinimizedCase{c, {false, why}}});
            continue;
        }
        std::cout << "seed " << s << ": " << describeCase(c) << std::endl;
        for (const Oracle &o : oracles) {
            const OracleResult r = o.check(c);
            if (r.ok)
                continue;
            std::cout << "  FAIL [" << o.name << "] " << r.detail << "\n"
                      << "  minimizing...\n";
            Failure f{s, o.name, minimizeCase(c, o)};
            std::cout << "  minimized (" << f.minimized.shrinks
                      << " shrinks, " << f.minimized.evals << " evals, "
                      << f.minimized.best.cfg.fault.activeDomains()
                      << " fault domains): "
                      << describeCase(f.minimized.best) << "\n"
                      << "  " << f.minimized.failure.detail << "\n";
            failures.push_back(std::move(f));
        }
    }

    if (!failures.empty()) {
        std::ostream *out = &std::cout;
        std::ofstream file;
        if (!out_path.empty()) {
            file.open(out_path, std::ios::app);
            if (file)
                out = &file;
            else
                std::cerr << "fuzz_run: cannot open " << out_path << "\n";
        }
        for (const Failure &f : failures) {
            *out << "# fuzz seed " << f.seed << ", oracle " << f.oracle
                 << "\n# " << describeCase(f.minimized.best) << "\n# "
                 << f.minimized.failure.detail << "\n";
            const bool core =
                f.oracle == "sched" || f.oracle == "faultzero" ||
                f.oracle == "invariants" || f.oracle == "statsjson";
            if (core) {
                // Ready-to-paste gtest reproducer.
                *out << renderRegressionTest(f.minimized.best, f.oracle,
                                             f.seed)
                     << "\n";
            } else {
                // The jobs oracle lives in this driver, not the library;
                // emit the case so it can be replayed with --oracle.
                *out << renderCaseCode(f.minimized.best) << "\n";
            }
        }
    }

    std::cout << "fuzz_run: " << sampled << " cases, "
              << oracles.size() << " oracles, " << failures.size()
              << " failures\n";
    return failures.empty() ? 0 : 1;
}
