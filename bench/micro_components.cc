/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the hot
 * structures the simulator exercises on every access — the set-
 * associative arrays, remapping caches, majority vote, DRAM/link timing
 * models, the OoO core model, trace generation, and a full end-to-end
 * access through the assembled system.
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "mem/dram.hh"
#include "os/address_space.hh"
#include "pipm/pipm_state.hh"
#include "pipm/remap_cache.hh"
#include "sim/core.hh"
#include "sim/system.hh"
#include "verify/checker.hh"
#include "workloads/catalog.hh"

namespace
{

using namespace pipm;

void
BM_SetAssocLookup(benchmark::State &state)
{
    SetAssoc<int> cache(1024, 16);
    for (std::uint64_t k = 0; k < 8192; ++k)
        cache.insert(k, 0);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(rng.below(8192)));
}
BENCHMARK(BM_SetAssocLookup);

void
BM_SetAssocInsertEvict(benchmark::State &state)
{
    SetAssoc<int> cache(256, 16);
    std::uint64_t k = 0;
    for (auto _ : state) {
        if (!cache.probe(k))
            benchmark::DoNotOptimize(cache.insert(k, 0));
        ++k;
    }
}
BENCHMARK(BM_SetAssocInsertEvict);

void
BM_RemapCacheLookup(benchmark::State &state)
{
    const SystemConfig cfg = defaultConfig();
    RemapCache cache(cfg.pipm.localCacheBytes, 4, cfg.pipm.localCacheWays,
                     cfg.pipm.localCacheRoundTrip, "rc");
    Rng rng(2);
    for (auto _ : state) {
        const PageFrame page = rng.below(200'000);
        if (!cache.lookup(page))
            cache.fill(page);
    }
}
BENCHMARK(BM_RemapCacheLookup);

void
BM_MajorityVote(benchmark::State &state)
{
    SystemConfig cfg = testConfig();
    AddressSpace space(cfg, 1024 * pageBytes, 8 * pageBytes);
    PipmState pipm(cfg.pipm, cfg.numHosts, PipmMode::vote, space);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(pipm.deviceAccess(
            rng.below(1024), static_cast<HostId>(rng.below(2))));
    }
}
BENCHMARK(BM_MajorityVote);

void
BM_DramAccess(benchmark::State &state)
{
    DramDevice dram(defaultConfig().localDram, "d");
    Rng rng(4);
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dram.access(rng.below(1u << 27), now, false));
        now += 40;
    }
}
BENCHMARK(BM_DramAccess);

void
BM_CoreIssueLoad(benchmark::State &state)
{
    OooCore core(defaultConfig().core);
    for (auto _ : state) {
        core.advanceGap(20);
        core.issueLoad(400);
    }
}
BENCHMARK(BM_CoreIssueLoad);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto wl = workloadByName("pr", defaultConfig().footprintScale);
    auto trace = wl->makeTrace(0, 0, 4, 4, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace->next());
}
BENCHMARK(BM_TraceGeneration);

void
BM_EndToEndAccess(benchmark::State &state)
{
    const SystemConfig cfg = defaultConfig();
    auto wl = workloadByName("pr", cfg.footprintScale);
    MultiHostSystem system(cfg, Scheme::pipmFull, *wl, 1);
    auto trace = wl->makeTrace(0, 0, cfg.coresPerHost, cfg.numHosts, 1);
    Cycles now = 0;
    for (auto _ : state) {
        const MemRef ref = trace->next();
        benchmark::DoNotOptimize(system.access(0, 0, ref, now));
        now += 50;
    }
}
BENCHMARK(BM_EndToEndAccess);

void
BM_ProtocolCheck2Hosts(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(checkProtocol(2));
}
BENCHMARK(BM_ProtocolCheck2Hosts);

} // namespace

// Expanded BENCHMARK_MAIN(): identical flag handling, except that
// arguments google-benchmark does not recognise exit 2 instead of being
// silently ignored (the benchmark library only warns by default when
// run under some versions; ReportUnrecognizedArguments makes it
// uniform and fatal here, matching the other harnesses).
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 2;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
