/**
 * @file
 * Observability report harness (DESIGN.md §10).
 *
 * Default mode runs one experiment with the stats.json export enabled,
 * validates the emitted document (schema + accounting invariants), and
 * renders the per-interval breakdown table — the same quantities
 * fig04_interval_breakdown aggregates over whole runs, here resolved in
 * time. The harness then cross-checks the interval columns against the
 * RunResult the very same run returned: every aggregate must match
 * exactly, or it exits non-zero.
 *
 * With --file <stats.json> no simulation runs: an existing export is
 * validated and rendered instead (e.g. a CI artifact).
 *
 *   obs_report [--file <stats.json>] [--scheme <name>]
 *              [--workload <name>] [--out <path>]
 *
 * Environment: the PIPM_BENCH_* run-length knobs and the PIPM_OBS_*
 * observability knobs apply (see bench_common.hh); --out defaults to
 * PIPM_STATS_JSON, then "stats.json".
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "obs/json.hh"
#include "obs/stats_json.hh"
#include "workloads/catalog.hh"

namespace
{

using namespace pipm;

/** Index of a counter column in the schema; -1 when absent. */
int
columnOf(const JsonValue &counters, const std::string &name)
{
    for (std::size_t i = 0; i < counters.arr.size(); ++i) {
        if (counters.arr[i].raw == name)
            return static_cast<int>(i);
    }
    return -1;
}

/** Sum one counter column across all interval samples. */
std::uint64_t
columnTotal(const JsonValue &samples, int col)
{
    if (col < 0)
        return 0;
    std::uint64_t sum = 0;
    for (const JsonValue &s : samples.arr) {
        const JsonValue *c = s.find("counters");
        if (c && static_cast<std::size_t>(col) < c->arr.size())
            sum += c->arr[static_cast<std::size_t>(col)].asU64();
    }
    return sum;
}

/** Sum every counter column whose name ends with `suffix`, per sample. */
std::uint64_t
suffixValue(const JsonValue &counters, const JsonValue &sample,
            const std::string &suffix)
{
    const JsonValue *c = sample.find("counters");
    if (!c)
        return 0;
    std::uint64_t sum = 0;
    for (std::size_t i = 0;
         i < counters.arr.size() && i < c->arr.size(); ++i) {
        const std::string &name = counters.arr[i].raw;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            sum += c->arr[i].asU64();
        }
    }
    return sum;
}

std::uint64_t
cellValue(const JsonValue &sample, int col)
{
    if (col < 0)
        return 0;
    const JsonValue *c = sample.find("counters");
    if (!c || static_cast<std::size_t>(col) >= c->arr.size())
        return 0;
    return c->arr[static_cast<std::size_t>(col)].asU64();
}

/** Render the per-interval breakdown table of one parsed document. */
void
renderReport(const JsonValue &doc)
{
    const JsonValue *meta = doc.find("meta");
    const JsonValue *intervals = doc.find("intervals");
    const JsonValue *counters = intervals->find("counters");
    const JsonValue *samples = intervals->find("samples");

    std::ostringstream title;
    title << "Interval breakdown: " << meta->find("workload")->raw << '/'
          << meta->find("scheme")->raw << " (interval = "
          << meta->find("interval_accesses")->asU64()
          << " accesses, config " << meta->find("config_hash")->raw
          << ", " << meta->find("git_describe")->raw << ")";
    TablePrinter table(title.str());
    table.header({"ivl", "accesses", "Mcycles", "local-hit", "promo",
                  "revoke", "ln-in", "ln-back", "os-mig", "crc", "crash"});

    const int llc = columnOf(*counters, "system.shared_llc_misses");
    const int local = columnOf(*counters, "system.local_served_misses");
    const int promo = columnOf(*counters, "pipm.promotions");
    const int revoke = columnOf(*counters, "pipm.revocations");
    const int lin = columnOf(*counters, "pipm.lines_in");
    const int lback = columnOf(*counters, "pipm.lines_back");
    const int osm = columnOf(*counters, "system.os_migrations");
    const int crash = columnOf(*counters, "fault.host_crashes");

    unsigned idx = 0;
    for (const JsonValue &s : samples->arr) {
        const std::uint64_t accesses =
            s.find("end_access")->asU64() - s.find("start_access")->asU64();
        const std::uint64_t misses = cellValue(s, llc);
        const double hit_rate =
            misses ? static_cast<double>(cellValue(s, local)) /
                         static_cast<double>(misses)
                   : 0.0;
        table.row({std::to_string(idx++), std::to_string(accesses),
                   TablePrinter::num(static_cast<double>(
                                         s.find("end_cycle")->asU64()) /
                                         1e6,
                                     1),
                   TablePrinter::num(hit_rate, 3),
                   std::to_string(cellValue(s, promo)),
                   std::to_string(cellValue(s, revoke)),
                   std::to_string(cellValue(s, lin)),
                   std::to_string(cellValue(s, lback)),
                   std::to_string(cellValue(s, osm)),
                   std::to_string(
                       suffixValue(*counters, s, ".link.crc_errors")),
                   std::to_string(cellValue(s, crash))});
    }
    table.print(std::cout);

    if (const JsonValue *trace = doc.find("trace")) {
        std::cout << "Trace: " << trace->find("recorded")->asU64()
                  << " events recorded, "
                  << trace->find("dropped")->asU64()
                  << " dropped (ring capacity "
                  << trace->find("capacity")->asU64() << ")\n";
    }
}

/** Exact cross-check of interval aggregates against the RunResult. */
bool
crossCheck(const JsonValue &doc, const RunResult &r)
{
    const JsonValue *intervals = doc.find("intervals");
    const JsonValue *counters = intervals->find("counters");
    const JsonValue *samples = intervals->find("samples");

    struct Check
    {
        const char *column;
        std::uint64_t expect;
    };
    const Check checks[] = {
        {"system.shared_accesses", r.sharedAccesses},
        {"system.shared_llc_misses", r.sharedLlcMisses},
        {"system.local_served_misses", r.localServedMisses},
        {"system.cxl_served_misses", r.cxlServedMisses},
        {"system.inter_host_accesses", r.interHostAccesses},
        {"system.inter_host_stall_cycles", r.interHostStallCycles},
        {"system.mgmt_stall_cycles", r.mgmtStallCycles},
        {"system.os_migrations", r.osMigrations},
        {"system.os_demotions", r.osDemotions},
        {"pipm.promotions", r.pipmPromotions},
        {"pipm.revocations", r.pipmRevocations},
        {"pipm.lines_in", r.pipmLinesIn},
        {"pipm.lines_back", r.pipmLinesBack},
    };
    bool ok = true;
    for (const Check &c : checks) {
        const std::uint64_t got =
            columnTotal(*samples, columnOf(*counters, c.column));
        if (got != c.expect) {
            std::fprintf(stderr,
                         "[obs] FAIL: interval sum of %s = %llu, "
                         "RunResult says %llu\n",
                         c.column, static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(c.expect));
            ok = false;
        }
    }
    return ok;
}

Scheme
schemeByName(const std::string &name)
{
    for (Scheme s : allSchemesExtended) {
        if (toString(s) == name)
            return s;
    }
    std::fprintf(stderr, "[obs] unknown scheme '%s'\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipm;
    using namespace pipmbench;

    std::string file;
    std::string out;
    std::string scheme_name = "pipm";
    std::string workload_name = "pr";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "[obs] %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: obs_report [--file stats.json] [--scheme s] "
                "[--workload w] [--out path]\n"
                "\n"
                "Without --file, runs one experiment with the stats.json "
                "export\nenabled, validates the document and renders the "
                "per-interval\nbreakdown. With --file, validates and "
                "renders an existing export.\n"
                "\n"
                "Environment: PIPM_BENCH_* run-length knobs and PIPM_OBS_* "
                "knobs\napply; --out defaults to PIPM_STATS_JSON, then "
                "\"stats.json\".\n");
            return 0;
        }
        if (arg == "--file")
            file = next();
        else if (arg == "--out")
            out = next();
        else if (arg == "--scheme")
            scheme_name = next();
        else if (arg == "--workload")
            workload_name = next();
        else {
            std::fprintf(stderr, "obs_report: unknown argument '%s'\n",
                         arg.c_str());
            std::fprintf(stderr,
                         "usage: obs_report [--file stats.json] "
                         "[--scheme s] [--workload w] [--out path]\n");
            return 2;
        }
    }

    std::string text;
    RunResult result;
    bool have_result = false;

    if (file.empty()) {
        const Options opts = optionsFromEnv();
        SystemConfig cfg = defaultConfig();
        applyEnvFaults(cfg);
        const auto workload =
            workloadByName(workload_name, cfg.footprintScale);
        RunConfig run_cfg = runConfigOf(opts);
        if (!out.empty())
            run_cfg.statsJsonPath = out;
        if (run_cfg.statsJsonPath.empty())
            run_cfg.statsJsonPath = "stats.json";
        std::fprintf(stderr, "[obs] running %s/%s -> %s\n",
                     workload->name().c_str(), scheme_name.c_str(),
                     run_cfg.statsJsonPath.c_str());
        result = runExperiment(cfg, schemeByName(scheme_name), *workload,
                               run_cfg);
        have_result = true;
        file = run_cfg.statsJsonPath;
    }

    {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "[obs] cannot read %s\n", file.c_str());
            return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    const std::vector<std::string> errors = validateStatsJson(text);
    if (!errors.empty()) {
        for (const std::string &e : errors)
            std::fprintf(stderr, "[obs] INVALID: %s\n", e.c_str());
        return 1;
    }

    std::string parse_error;
    const auto doc = parseJson(text, &parse_error);
    if (!doc) {
        std::fprintf(stderr, "[obs] parse error: %s\n",
                     parse_error.c_str());
        return 1;
    }

    renderReport(*doc);

    if (have_result && !crossCheck(*doc, result))
        return 1;
    std::cout << "stats.json valid: " << file << "\n";
    return 0;
}
