/**
 * @file
 * Simulator-throughput harness (DESIGN.md §9): times warm runExperiment
 * calls per scheme and reports wall-clock seconds and simulated
 * references per second, so data-structure or hot-path regressions show
 * up as numbers rather than anecdotes.
 *
 * Unlike the figure harnesses this never reads or writes the TSV cache
 * — the simulation itself is the thing being measured. One untimed
 * warmup run heats the allocator and code paths first; each scheme is
 * then timed with std::chrono::steady_clock.
 *
 * Output: a human-readable table on stdout and a JSON summary written
 * to PIPM_BENCH_PERF_JSON (default ./BENCH_perf.json) for CI artifact
 * upload and cross-commit comparison. When PIPM_BENCH_PERF_BASELINE
 * points at a committed BENCH_perf.json, per-scheme refs/s are compared
 * against it and a >20% drop prints a warning — non-gating, because
 * refs/s is machine-dependent (exec_cycles is the deterministic field;
 * rates only compare meaningfully on the same runner class).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "common/env.hh"
#include "common/table_printer.hh"
#include "obs/json.hh"
#include "workloads/catalog.hh"

namespace
{

/** Slurp a file; empty string when unreadable. */
std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return in.good() || in.eof() ? buf.str() : std::string();
}

/**
 * Compare this run's per-scheme rates against a committed baseline.
 * Prints warnings only; never fails the build. Parameter mismatches
 * (different refs, seed, workload or scheduler) void the comparison
 * since the rates would not be apples-to-apples.
 */
void
compareBaseline(const std::string &path, const std::string &workload,
                const pipmbench::Options &opts, const std::string &sched,
                const std::vector<std::pair<std::string, double>> &rates)
{
    using pipm::JsonValue;
    const std::string text = readFile(path);
    if (text.empty()) {
        std::fprintf(stderr,
                     "[perf] baseline %s unreadable; skipping compare\n",
                     path.c_str());
        return;
    }
    std::string err;
    const auto base = pipm::parseJson(text, &err);
    if (!base) {
        std::fprintf(stderr, "[perf] baseline %s: %s; skipping compare\n",
                     path.c_str(), err.c_str());
        return;
    }
    const JsonValue *wl = base->find("workload");
    const JsonValue *refs = base->find("measure_refs_per_core");
    const JsonValue *warm = base->find("warmup_refs_per_core");
    const JsonValue *seed = base->find("seed");
    const JsonValue *bsched = base->find("sched");
    if (!wl || wl->raw != workload ||
        !refs || refs->asU64() != opts.measureRefs ||
        !warm || warm->asU64() != opts.warmupRefs ||
        !seed || seed->asU64() != opts.seed ||
        (bsched && bsched->raw != sched)) {
        std::fprintf(stderr,
                     "[perf] baseline %s measured different parameters; "
                     "skipping compare\n",
                     path.c_str());
        return;
    }
    const JsonValue *schemes = base->find("schemes");
    if (!schemes || !schemes->isArray())
        return;
    for (const auto &[name, rate] : rates) {
        for (const JsonValue &entry : schemes->arr) {
            const JsonValue *sn = entry.find("scheme");
            const JsonValue *sr = entry.find("refs_per_s");
            if (!sn || !sr || sn->raw != name || sr->num <= 0.0)
                continue;
            const double ratio = rate / sr->num;
            if (ratio < 0.8) {
                std::fprintf(stderr,
                             "[perf] WARNING: scheme %s at %.0f refs/s is "
                             "%.0f%% of the committed baseline (%.0f); "
                             "non-gating, but worth a look\n",
                             name.c_str(), rate, ratio * 100.0, sr->num);
            } else {
                std::fprintf(stderr,
                             "[perf] scheme %s: %.2fx baseline\n",
                             name.c_str(), ratio);
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "perf_throughput",
        "Perf harness (DESIGN.md 9): simulator throughput per scheme.");
    using namespace pipm;
    using namespace pipmbench;
    using clock = std::chrono::steady_clock;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();
    const RunConfig run_cfg = runConfigOf(opts);
    const auto workload = workloadByName("pr", cfg.footprintScale);
    const std::string sched = envStr("PIPM_SCHED", "heap");

    // Simulated references fed into one run: warmup plus measurement,
    // on every core of every host.
    const double refs_per_run =
        static_cast<double>(opts.measureRefs + opts.warmupRefs) *
        cfg.numHosts * cfg.coresPerHost;

    // Untimed warmup: first-touch page faults, allocator pools and
    // branch predictors would otherwise tax the first timed scheme.
    runExperiment(cfg, Scheme::native, *workload, run_cfg);

    TablePrinter table("Simulator throughput per scheme (workload pr)");
    table.header({"scheme", "wall [s]", "refs/s", "exec cycles"});

    std::ostringstream json;
    json << "{\n  \"workload\": \"" << workload->name() << "\",\n"
         << "  \"measure_refs_per_core\": " << opts.measureRefs << ",\n"
         << "  \"warmup_refs_per_core\": " << opts.warmupRefs << ",\n"
         << "  \"seed\": " << opts.seed << ",\n"
         << "  \"sched\": \"" << sched << "\",\n  \"schemes\": [";

    double total_s = 0.0;
    bool first = true;
    std::vector<std::pair<std::string, double>> rates;
    for (Scheme s : allSchemes) {
        const auto t0 = clock::now();
        const RunResult r = runExperiment(cfg, s, *workload, run_cfg);
        const auto t1 = clock::now();
        const double wall =
            std::chrono::duration<double>(t1 - t0).count();
        const double rate = wall > 0.0 ? refs_per_run / wall : 0.0;
        total_s += wall;

        table.row({std::string(toString(s)), TablePrinter::num(wall, 3),
                   TablePrinter::num(rate, 0),
                   std::to_string(r.execCycles)});
        rates.emplace_back(std::string(toString(s)), rate);
        json << (first ? "" : ",") << "\n    {\"scheme\": \""
             << toString(s) << "\", \"wall_s\": " << wall
             << ", \"refs_per_s\": " << rate
             << ", \"exec_cycles\": " << r.execCycles << "}";
        first = false;
    }
    json << "\n  ],\n  \"total_wall_s\": " << total_s
         << ",\n  \"total_refs_per_s\": "
         << (total_s > 0.0
                 ? refs_per_run * static_cast<double>(allSchemes.size()) /
                       total_s
                 : 0.0)
         << "\n}\n";

    table.row({"total", TablePrinter::num(total_s, 3),
               TablePrinter::num(refs_per_run *
                                     static_cast<double>(
                                         allSchemes.size()) /
                                     total_s,
                                 0),
               ""});
    table.print(std::cout);

    const char *json_env = std::getenv("PIPM_BENCH_PERF_JSON");
    const std::string json_path = json_env ? json_env : "BENCH_perf.json";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out)
        std::fprintf(stderr, "[bench] warning: cannot write %s\n",
                     json_path.c_str());
    else
        std::cout << "Wrote " << json_path << "\n";

    const std::string baseline = envStr("PIPM_BENCH_PERF_BASELINE", "");
    if (!baseline.empty())
        compareBaseline(baseline, workload->name(), opts, sched, rates);
    return 0;
}
