/**
 * @file
 * Simulator-throughput harness (DESIGN.md §9): times warm runExperiment
 * calls per scheme and reports wall-clock seconds and simulated
 * references per second, so data-structure or hot-path regressions show
 * up as numbers rather than anecdotes.
 *
 * Unlike the figure harnesses this never reads or writes the TSV cache
 * — the simulation itself is the thing being measured. One untimed
 * warmup run heats the allocator and code paths first; each scheme is
 * then timed with std::chrono::steady_clock.
 *
 * Output: a human-readable table on stdout and a JSON summary written
 * to PIPM_BENCH_PERF_JSON (default ./BENCH_perf.json) for CI artifact
 * upload and cross-commit comparison.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main()
{
    using namespace pipm;
    using namespace pipmbench;
    using clock = std::chrono::steady_clock;

    const Options opts = optionsFromEnv();
    const SystemConfig cfg = defaultConfig();
    const RunConfig run_cfg = runConfigOf(opts);
    const auto workload = workloadByName("pr", cfg.footprintScale);

    // Simulated references fed into one run: warmup plus measurement,
    // on every core of every host.
    const double refs_per_run =
        static_cast<double>(opts.measureRefs + opts.warmupRefs) *
        cfg.numHosts * cfg.coresPerHost;

    // Untimed warmup: first-touch page faults, allocator pools and
    // branch predictors would otherwise tax the first timed scheme.
    runExperiment(cfg, Scheme::native, *workload, run_cfg);

    TablePrinter table("Simulator throughput per scheme (workload pr)");
    table.header({"scheme", "wall [s]", "refs/s", "exec cycles"});

    std::ostringstream json;
    json << "{\n  \"workload\": \"" << workload->name() << "\",\n"
         << "  \"measure_refs_per_core\": " << opts.measureRefs << ",\n"
         << "  \"warmup_refs_per_core\": " << opts.warmupRefs << ",\n"
         << "  \"seed\": " << opts.seed << ",\n  \"schemes\": [";

    double total_s = 0.0;
    bool first = true;
    for (Scheme s : allSchemes) {
        const auto t0 = clock::now();
        const RunResult r = runExperiment(cfg, s, *workload, run_cfg);
        const auto t1 = clock::now();
        const double wall =
            std::chrono::duration<double>(t1 - t0).count();
        const double rate = wall > 0.0 ? refs_per_run / wall : 0.0;
        total_s += wall;

        table.row({std::string(toString(s)), TablePrinter::num(wall, 3),
                   TablePrinter::num(rate, 0),
                   std::to_string(r.execCycles)});
        json << (first ? "" : ",") << "\n    {\"scheme\": \""
             << toString(s) << "\", \"wall_s\": " << wall
             << ", \"refs_per_s\": " << rate
             << ", \"exec_cycles\": " << r.execCycles << "}";
        first = false;
    }
    json << "\n  ],\n  \"total_wall_s\": " << total_s
         << ",\n  \"total_refs_per_s\": "
         << (total_s > 0.0
                 ? refs_per_run * static_cast<double>(allSchemes.size()) /
                       total_s
                 : 0.0)
         << "\n}\n";

    table.row({"total", TablePrinter::num(total_s, 3),
               TablePrinter::num(refs_per_run *
                                     static_cast<double>(
                                         allSchemes.size()) /
                                     total_s,
                                 0),
               ""});
    table.print(std::cout);

    const char *json_env = std::getenv("PIPM_BENCH_PERF_JSON");
    const std::string json_path = json_env ? json_env : "BENCH_perf.json";
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out)
        std::fprintf(stderr, "[bench] warning: cannot write %s\n",
                     json_path.c_str());
    else
        std::cout << "Wrote " << json_path << "\n";
    return 0;
}
