/**
 * @file
 * Table 1: the evaluated workloads, their suites and memory footprints,
 * plus the synthetic-model parameters this reproduction derives them
 * from (see DESIGN.md for the substitution rationale).
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table_printer.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "table1_workloads",
        "Table 1: evaluated workloads and synthetic-model parameters.");
    using namespace pipm;

    const SystemConfig cfg = defaultConfig();
    TablePrinter table("Table 1: evaluated workloads");
    table.header({"benchmark", "suite", "footprint", "scaled heap",
                  "affinity", "zipf", "read%", "scan%", "hot lines/page"});
    for (const PatternParams &p : table1Patterns()) {
        SyntheticWorkload wl(p, cfg.footprintScale);
        table.row({p.name, p.suite,
                   std::to_string(p.footprintFullBytes >> 30) + "GB",
                   std::to_string(wl.sharedBytes() >> 20) + "MB",
                   TablePrinter::num(p.partitionAffinity, 2),
                   TablePrinter::num(p.zipfTheta, 2),
                   TablePrinter::pct(p.readFrac, 0),
                   TablePrinter::pct(p.scanFrac, 0),
                   p.hotLinesPerPage ? std::to_string(p.hotLinesPerPage)
                                     : "all"});
    }
    table.print(std::cout);
    return 0;
}
