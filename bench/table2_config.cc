/**
 * @file
 * Table 2: the (scaled-down) system configuration, as configured in
 * common/config.hh, including the reproduction's additional scale knobs.
 */

#include <iostream>

#include "common/config.hh"

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "table2_config",
        "Table 2: the scaled-down system configuration.");
    using namespace pipm;
    const SystemConfig cfg = defaultConfig();
    std::cout << "== Table 2: scaled-down system configuration ==\n"
              << cfg.describe()
              << "Repro scaling     | footprint 1/" << cfg.footprintScale
              << ", OS-migration time 1/" << cfg.timeScale << ", L1 1/"
              << cfg.l1Scale << ", LLC 1/" << cfg.llcScale
              << ", page-copy bytes 1/" << cfg.migrationBytesScale
              << " (see DESIGN.md)\n";
    return 0;
}
