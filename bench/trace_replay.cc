/**
 * @file
 * Trace-driven end-to-end comparison (DESIGN.md §14): Fig. 10's
 * scheme-speedup rows computed over replayed PIPMT traces instead of
 * the live Table 1 synthetics — the paper's §5.1.2 methodology (Pin
 * traces replayed through the simulator) end to end.
 *
 * By default the four trace_gen models are synthesized deterministically
 * into the bench cache directory and replayed; set PIPM_TRACE_FILE to a
 * .pipmt path (or several, colon-separated) to replay recorded traces
 * instead. Replay runs use the trace's recorded host/core geometry.
 */

#include <filesystem>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "common/env.hh"
#include "common/table_printer.hh"
#include "trace/trace_gen.hh"
#include "workloads/trace_file.hh"

int
main(int argc, char **argv)
{
    pipmbench::handleHarnessArgs(argc, argv, "trace_replay",
        "Fig. 10-style speedups over replayed PIPMT traces "
        "(PIPM_TRACE_FILE overrides the generated suite).");
    using namespace pipm;
    using namespace pipmbench;

    const Options opts = optionsFromEnv();
    SystemConfig cfg = defaultConfig();
    const bool faulty = applyEnvFaults(cfg);

    // Resolve the trace set: recorded files from PIPM_TRACE_FILE
    // (colon-separated), else the generated model suite at the
    // config's geometry.
    std::vector<std::string> paths;
    const std::string env_traces = envStr("PIPM_TRACE_FILE", "");
    if (!env_traces.empty()) {
        std::string::size_type pos = 0;
        while (pos <= env_traces.size()) {
            const auto colon = env_traces.find(':', pos);
            const auto end =
                colon == std::string::npos ? env_traces.size() : colon;
            if (end > pos)
                paths.push_back(env_traces.substr(pos, end - pos));
            pos = end + 1;
        }
    } else {
        const auto dir = std::filesystem::temp_directory_path() /
                         "pipm_trace_replay_suite";
        std::filesystem::create_directories(dir);
        for (const std::string &model : genModels()) {
            GenSpec spec;
            spec.model = model;
            spec.numHosts = cfg.numHosts;
            spec.coresPerHost = cfg.coresPerHost;
            spec.refsPerStream = opts.warmupRefs + opts.measureRefs;
            spec.seed = opts.seed;
            const std::string path =
                (dir / ("gen_" + model + ".pipmt")).string();
            // Generation is deterministic, so regenerating over a
            // stale file of the same spec writes identical bytes.
            generateTrace(spec).writeTo(path);
            paths.push_back(path);
        }
    }

    std::vector<std::unique_ptr<TraceFileWorkload>> workloads;
    for (const std::string &path : paths)
        workloads.push_back(std::make_unique<TraceFileWorkload>(path));

    TablePrinter table(
        "Trace replay: end-to-end speedup over Native CXL-DSM");
    std::vector<std::string> header = {"trace"};
    for (Scheme s : allSchemes)
        header.push_back(std::string(toString(s)));
    table.header(header);

    Sweep sweep(opts);
    std::vector<SystemConfig> configs;
    for (const auto &workload : workloads) {
        // Replay at the recorded geometry: the trace defines the run.
        SystemConfig c = cfg;
        c.numHosts = workload->recordedHosts();
        c.coresPerHost = workload->recordedCoresPerHost();
        c.validate();
        configs.push_back(c);
        for (Scheme s : allSchemes)
            sweep.add(c, s, *workload);
    }
    sweep.run();

    std::vector<std::vector<double>> columns(allSchemes.size());
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &workload = *workloads[w];
        const RunResult native =
            cachedRun(configs[w], Scheme::native, workload, opts);
        std::vector<std::string> row = {workload.name()};
        for (std::size_t i = 0; i < allSchemes.size(); ++i) {
            const Scheme s = allSchemes[i];
            const RunResult r =
                s == Scheme::native
                    ? native
                    : cachedRun(configs[w], s, workload, opts);
            const double speedup = speedupOver(native, r);
            columns[i].push_back(speedup);
            row.push_back(TablePrinter::num(speedup, 2) + "x");
        }
        table.row(row);
    }

    std::vector<std::string> mean_row = {"geomean"};
    for (auto &col : columns)
        mean_row.push_back(TablePrinter::num(geomean(col), 2) + "x");
    table.row(mean_row);
    table.print(std::cout);

    if (faulty)
        std::cout << "(paper-default fault schedule active: "
                     "PIPM_BENCH_FAULTS)\n";
    std::cout << "Replayed " << workloads.size() << " trace(s); "
                 "streams loop when a run consumes more references "
                 "than the trace holds.\n";
    return 0;
}
