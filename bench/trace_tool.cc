/**
 * @file
 * trace_tool: the PIPMT trace swiss-army knife (DESIGN.md §14).
 *
 *   gen        synthesize a trace from one of the trace_gen models
 *   record     run an experiment, capturing the consumed streams
 *   info       print a trace's header and per-stream record counts
 *   replay     run an experiment over a trace file
 *   merge      interleave several traces round-robin into one
 *   roundtrip  record + replay + compare: exit 1 (keeping the trace)
 *              unless the replayed RunResult is bit-identical
 *
 * `roundtrip` is the CI smoke for the subsystem's headline contract:
 * a trace captured from a live run — fault injection included —
 * replays to a byte-identical RunResult.
 */

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/config.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "fuzz/fuzz.hh"
#include "sim/runner.hh"
#include "trace/recorder.hh"
#include "trace/trace.hh"
#include "trace/trace_gen.hh"
#include "workloads/catalog.hh"
#include "workloads/trace_file.hh"

namespace
{

using namespace pipm;

void
usage(std::ostream &os)
{
    os << "usage: trace_tool <command> [options]\n"
          "\n"
          "PIPMT trace capture, generation and replay (DESIGN.md §14).\n"
          "\n"
          "commands:\n"
          "  gen --model M --out FILE [gen options]\n"
          "      synthesize a trace; models: ";
    const char *sep = "";
    for (const std::string &m : genModels()) {
        os << sep << m;
        sep = ", ";
    }
    os << "\n"
          "  record --out FILE [run options] [--workload W] [--scale N]\n"
          "      run an experiment and capture the streams it consumes\n"
          "  info FILE...\n"
          "      print header, checksum and per-stream record counts\n"
          "  replay FILE [run options]\n"
          "      run an experiment over the trace and print a summary\n"
          "  merge --out FILE IN IN...\n"
          "      round-robin interleave the inputs' per-core streams\n"
          "  roundtrip [run options] [--keep FILE]\n"
          "      record + replay; exit 1 (keeping the trace) on any\n"
          "      RunResult divergence\n"
          "\n"
          "run options (record/replay/roundtrip):\n"
          "  --hosts N     hosts (default: 2; replay: recorded value)\n"
          "  --cores N     cores per host (default 1; replay: recorded)\n"
          "  --refs N      measured references per core (default 2000)\n"
          "  --warmup N    warmup references per core (default 200)\n"
          "  --seed S      run seed (default 42)\n"
          "  --scheme S    scheme name as in Fig. 10 (default pipm)\n"
          "  --faults      enable the paper-default fault schedule\n"
          "\n"
          "gen options:\n"
          "  --refs N / --hosts N / --cores N / --seed S as above\n"
          "  --shared-pages N, --private-pages N, --write-frac F,\n"
          "  --private-frac F, --gap-mean N, --hot-pages N,\n"
          "  --half-life N, --handoff-pages N, --phase-refs N,\n"
          "  --zipf-theta T\n";
}

/** Exit 2 with usage on a malformed command line. */
[[noreturn]] void
badArgs(const std::string &why)
{
    std::cerr << "trace_tool: " << why << "\n";
    usage(std::cerr);
    std::exit(2);
}

Scheme
schemeByName(const std::string &name)
{
    for (Scheme s : allSchemesExtended) {
        if (name == toString(s))
            return s;
    }
    badArgs("unknown scheme '" + name + "'");
}

/** Flag cursor: `value()` consumes the argument after argv[i]. */
struct Args
{
    int argc;
    char **argv;
    int i = 2;

    std::string
    value(const std::string &flag)
    {
        if (i + 1 >= argc)
            badArgs("missing value for " + flag);
        return argv[++i];
    }

    std::uint64_t
    num(const std::string &flag)
    {
        const std::string v = value(flag);
        char *end = nullptr;
        const std::uint64_t n = std::strtoull(v.c_str(), &end, 10);
        if (!end || *end)
            badArgs("bad number '" + v + "' for " + flag);
        return n;
    }

    double
    real(const std::string &flag)
    {
        const std::string v = value(flag);
        char *end = nullptr;
        const double x = std::strtod(v.c_str(), &end);
        if (!end || *end)
            badArgs("bad number '" + v + "' for " + flag);
        return x;
    }
};

/** The run options shared by record/replay/roundtrip. */
struct RunOpts
{
    unsigned hosts = 2;
    unsigned cores = 1;
    bool hostsSet = false;
    bool coresSet = false;
    std::uint64_t refs = 2'000;
    std::uint64_t warmup = 200;
    std::uint64_t seed = 42;
    Scheme scheme = Scheme::pipmFull;
    bool faults = false;

    /** Consume one flag if it is a run option. */
    bool
    consume(Args &a, const std::string &arg)
    {
        if (arg == "--hosts") {
            hosts = static_cast<unsigned>(a.num(arg));
            hostsSet = true;
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(a.num(arg));
            coresSet = true;
        } else if (arg == "--refs") {
            refs = a.num(arg);
        } else if (arg == "--warmup") {
            warmup = a.num(arg);
        } else if (arg == "--seed") {
            seed = a.num(arg);
        } else if (arg == "--scheme") {
            scheme = schemeByName(a.value(arg));
        } else if (arg == "--faults") {
            faults = true;
        } else {
            return false;
        }
        return true;
    }

    SystemConfig
    config() const
    {
        SystemConfig cfg = testConfig();
        cfg.numHosts = hosts;
        cfg.coresPerHost = cores;
        if (faults)
            cfg.fault = paperFaultConfig(seed);
        cfg.validate();
        return cfg;
    }

    RunConfig
    runConfig() const
    {
        RunConfig run;
        run.warmupRefsPerCore = warmup;
        run.measureRefsPerCore = refs;
        run.seed = seed;
        run.obsFromEnv = false;
        return run;
    }
};

void
printSummary(const RunResult &r)
{
    std::cout << "workload=" << r.workload << " scheme="
              << toString(r.scheme) << " execCycles=" << r.execCycles
              << " ipc=" << r.ipc << " sharedAccesses="
              << r.sharedAccesses << " interHost=" << r.interHostAccesses
              << " promotions=" << r.pipmPromotions << " crashes="
              << r.hostCrashes << "\n";
}

int
cmdGen(Args &a)
{
    GenSpec spec;
    std::string out;
    for (; a.i < a.argc; ++a.i) {
        const std::string arg = a.argv[a.i];
        if (arg == "--model") {
            spec.model = a.value(arg);
        } else if (arg == "--out") {
            out = a.value(arg);
        } else if (arg == "--hosts") {
            spec.numHosts = static_cast<unsigned>(a.num(arg));
        } else if (arg == "--cores") {
            spec.coresPerHost = static_cast<unsigned>(a.num(arg));
        } else if (arg == "--refs") {
            spec.refsPerStream = a.num(arg);
        } else if (arg == "--seed") {
            spec.seed = a.num(arg);
        } else if (arg == "--shared-pages") {
            spec.sharedPages = a.num(arg);
        } else if (arg == "--private-pages") {
            spec.privatePages = a.num(arg);
        } else if (arg == "--write-frac") {
            spec.writeFrac = a.real(arg);
        } else if (arg == "--private-frac") {
            spec.privateFrac = a.real(arg);
        } else if (arg == "--gap-mean") {
            spec.gapMean = static_cast<unsigned>(a.num(arg));
        } else if (arg == "--hot-pages") {
            spec.hotPages = a.num(arg);
        } else if (arg == "--half-life") {
            spec.halfLifeRefs = a.num(arg);
        } else if (arg == "--handoff-pages") {
            spec.handoffPages = a.num(arg);
        } else if (arg == "--phase-refs") {
            spec.phaseRefs = a.num(arg);
        } else if (arg == "--zipf-theta") {
            spec.zipfTheta = a.real(arg);
        } else {
            badArgs("unknown gen argument '" + arg + "'");
        }
    }
    if (out.empty())
        badArgs("gen needs --out FILE");
    if (!knownGenModel(spec.model))
        badArgs("unknown model '" + spec.model + "'");
    TraceWriter w = generateTrace(spec);
    w.writeTo(out);
    std::cout << "wrote " << out << ": " << w.totalRecords()
              << " records, " << spec.numHosts << "x" << spec.coresPerHost
              << " streams, model " << spec.model << "\n";
    return 0;
}

int
cmdRecord(Args &a)
{
    RunOpts opts;
    std::string out;
    std::string workload_name = "ycsb";
    std::uint64_t scale = 256;
    for (; a.i < a.argc; ++a.i) {
        const std::string arg = a.argv[a.i];
        if (opts.consume(a, arg))
            continue;
        if (arg == "--out")
            out = a.value(arg);
        else if (arg == "--workload")
            workload_name = a.value(arg);
        else if (arg == "--scale")
            scale = a.num(arg);
        else
            badArgs("unknown record argument '" + arg + "'");
    }
    if (out.empty())
        badArgs("record needs --out FILE");
    const SystemConfig cfg = opts.config();
    const auto workload = workloadByName(workload_name, scale);
    TraceRecorder recorder(*workload, cfg.numHosts, cfg.coresPerHost);
    const RunResult r =
        runExperiment(cfg, opts.scheme, recorder, opts.runConfig());
    recorder.writeTo(out);
    std::cout << "recorded " << recorder.recordedRefs() << " refs to "
              << out << "\n";
    printSummary(r);
    return 0;
}

int
cmdInfo(Args &a)
{
    if (a.i >= a.argc)
        badArgs("info needs at least one FILE");
    for (; a.i < a.argc; ++a.i) {
        const std::string path = a.argv[a.i];
        if (path.rfind("--", 0) == 0)
            badArgs("unknown info argument '" + path + "'");
        TraceReader in(path);
        const TraceMeta &m = in.meta();
        std::cout << path << ":\n"
                  << "  name       " << m.name << "\n"
                  << "  source     " << m.sourceFingerprint << "\n"
                  << "  geometry   " << m.numHosts << " hosts x "
                  << m.coresPerHost << " cores, " << m.pageBytes
                  << " B pages / " << m.lineBytes << " B lines\n"
                  << "  footprint  " << m.footprintBytes << " B ("
                  << m.sharedBytes << " shared, " << m.privateBytesPerHost
                  << " private per host)\n"
                  << "  checksum   " << hashHex(in.checksum()) << "\n"
                  << "  records    " << in.totalRecords() << "\n";
        for (unsigned h = 0; h < m.numHosts; ++h) {
            for (unsigned c = 0; c < m.coresPerHost; ++c) {
                const unsigned s = m.streamIndex(h, c);
                std::cout << "    h" << h << "c" << c << "  "
                          << in.records(s) << " records, "
                          << in.streamBytes(s) << " B\n";
            }
        }
    }
    return 0;
}

int
cmdReplay(Args &a)
{
    RunOpts opts;
    std::string path;
    for (; a.i < a.argc; ++a.i) {
        const std::string arg = a.argv[a.i];
        if (opts.consume(a, arg))
            continue;
        if (arg.rfind("--", 0) == 0)
            badArgs("unknown replay argument '" + arg + "'");
        if (!path.empty())
            badArgs("replay takes exactly one FILE");
        path = arg;
    }
    if (path.empty())
        badArgs("replay needs a FILE");
    TraceFileWorkload workload(path);
    if (!opts.hostsSet)
        opts.hosts = workload.recordedHosts();
    if (!opts.coresSet)
        opts.cores = workload.recordedCoresPerHost();
    const RunResult r = runExperiment(opts.config(), opts.scheme,
                                      workload, opts.runConfig());
    printSummary(r);
    return 0;
}

int
cmdMerge(Args &a)
{
    std::string out;
    std::vector<std::string> inputs;
    for (; a.i < a.argc; ++a.i) {
        const std::string arg = a.argv[a.i];
        if (arg == "--out")
            out = a.value(arg);
        else if (arg.rfind("--", 0) == 0)
            badArgs("unknown merge argument '" + arg + "'");
        else
            inputs.push_back(arg);
    }
    if (out.empty())
        badArgs("merge needs --out FILE");
    if (inputs.size() < 2)
        badArgs("merge needs at least two inputs");
    TraceWriter w = mergeTraces(inputs);
    w.writeTo(out);
    std::cout << "merged " << inputs.size() << " traces ("
              << w.totalRecords() << " records) into " << out << "\n";
    return 0;
}

int
cmdRoundtrip(Args &a)
{
    RunOpts opts;
    std::string keep;
    std::string workload_name = "ycsb";
    std::uint64_t scale = 256;
    for (; a.i < a.argc; ++a.i) {
        const std::string arg = a.argv[a.i];
        if (opts.consume(a, arg))
            continue;
        if (arg == "--keep")
            keep = a.value(arg);
        else if (arg == "--workload")
            workload_name = a.value(arg);
        else if (arg == "--scale")
            scale = a.num(arg);
        else
            badArgs("unknown roundtrip argument '" + arg + "'");
    }
    std::string trace_path = keep;
    if (trace_path.empty()) {
        std::ostringstream name;
        name << "pipm_roundtrip_" << ::getpid() << "_" << opts.seed
             << ".pipmt";
        trace_path =
            (std::filesystem::temp_directory_path() / name.str())
                .string();
    }

    const SystemConfig cfg = opts.config();
    const auto source = workloadByName(workload_name, scale);
    TraceRecorder recorder(*source, cfg.numHosts, cfg.coresPerHost);
    const RunResult recorded =
        runExperiment(cfg, opts.scheme, recorder, opts.runConfig());
    recorder.writeTo(trace_path);

    TraceFileWorkload replay_workload(trace_path);
    const RunResult replayed = runExperiment(
        cfg, opts.scheme, replay_workload, opts.runConfig());

    const std::string fp_rec = fuzz::fingerprintResult(recorded);
    const std::string fp_rep = fuzz::fingerprintResult(replayed);
    if (fp_rec != fp_rep) {
        // Report the first diverging measurement line-by-line.
        std::istringstream ra(fp_rec), rb(fp_rep);
        std::string la, lb;
        while (std::getline(ra, la) && std::getline(rb, lb)) {
            if (la != lb) {
                std::cerr << "roundtrip: FIRST DIVERGENCE\n  recorded: "
                          << la << "\n  replayed: " << lb << "\n";
                break;
            }
        }
        std::cerr << "roundtrip: FAILED (seed " << opts.seed
                  << (opts.faults ? ", faults on" : "")
                  << "); trace kept at " << trace_path << "\n";
        return 1;
    }
    std::cout << "roundtrip: OK (seed " << opts.seed << ", "
              << recorder.recordedRefs() << " refs"
              << (opts.faults ? ", faults on" : "") << ")\n";
    if (keep.empty())
        std::filesystem::remove(trace_path);
    else
        std::cout << "trace kept at " << trace_path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(std::cerr);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage(std::cout);
        return 0;
    }
    Args a{argc, argv};
    if (cmd == "gen")
        return cmdGen(a);
    if (cmd == "record")
        return cmdRecord(a);
    if (cmd == "info")
        return cmdInfo(a);
    if (cmd == "replay")
        return cmdReplay(a);
    if (cmd == "merge")
        return cmdMerge(a);
    if (cmd == "roundtrip")
        return cmdRoundtrip(a);
    std::cerr << "trace_tool: unknown command '" << cmd << "'\n";
    usage(std::cerr);
    return 2;
}
