/**
 * @file
 * Crash-schedule verification (DESIGN.md §8): drives the full system
 * under randomised host fail-stop crash and cold-rejoin schedules layered
 * on the paper-default fault rates, with a last-writer data oracle that
 * accepts stale values only for lines the system explicitly reported
 * lost, and the cross-structure invariants (including the post-crash
 * no-dead-references checks) asserted throughout.
 *
 * Environment:
 *   PIPM_VERIFY_SEED       base seed (default 1; also first CLI argument)
 *   PIPM_VERIFY_SCHEDULES  schedules per scheme (default 4)
 *   PIPM_VERIFY_ACCESSES   accesses per schedule (default 20000)
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "verify/fault_schedule.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: verify_crash [--help] [seed]\n"
          "\n"
          "Checks host fail-stop crash/rejoin schedules against a\n"
          "last-writer data oracle and the cross-structure invariants.\n"
          "\n"
          "  seed    base seed (default 1; overrides PIPM_VERIFY_SEED)\n"
          "\n"
          "Environment:\n"
          "  PIPM_VERIFY_SEED       base seed (default 1)\n"
          "  PIPM_VERIFY_SCHEDULES  schedules per scheme (default 4)\n"
          "  PIPM_VERIFY_ACCESSES   accesses per schedule (default "
          "20000)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipm;

    auto env_u64 = [](const char *name, std::uint64_t fallback) {
        const char *v = std::getenv(name);
        return v && *v ? std::strtoull(v, nullptr, 10) : fallback;
    };
    std::uint64_t seed = env_u64("PIPM_VERIFY_SEED", 1);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::isdigit(static_cast<unsigned char>(arg[0]))) {
            seed = std::strtoull(arg, nullptr, 10);
            continue;
        }
        std::cerr << "verify_crash: unknown argument '" << arg << "'\n";
        usage(std::cerr);
        return 2;
    }
    const auto schedules = static_cast<unsigned>(
        env_u64("PIPM_VERIFY_SCHEDULES", 4));
    const std::uint64_t accesses = env_u64("PIPM_VERIFY_ACCESSES", 20'000);

    // 4 hosts so schedules can crash (and rejoin) several of them while
    // always leaving survivors to keep issuing accesses.
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;

    TablePrinter table("Crash-schedule checking (host fail-stop + "
                       "directory reclamation + rejoin)");
    table.header({"scheme", "result", "schedules", "accesses", "crashes",
                  "rejoins", "lost"});
    bool all_ok = true;
    for (Scheme s : {Scheme::pipmFull, Scheme::hwStatic}) {
        const FaultCheckResult result = checkFaultSchedules(
            cfg, s, schedules, accesses, seed, /*with_crashes=*/true);
        all_ok = all_ok && result.ok;
        table.row({std::string(toString(s)),
                   result.ok ? "SAFE" : "VIOLATION: " + result.violation,
                   std::to_string(result.schedules),
                   std::to_string(result.accesses),
                   std::to_string(result.crashes),
                   std::to_string(result.rejoins),
                   std::to_string(result.linesLost)});
    }
    table.print(std::cout);

    std::cout << "Invariants: SWMR, data-value against the last-writer "
                 "oracle (stale reads accepted only for explicitly lost "
                 "lines), directory holds no dead sharers, remap tables "
                 "hold no dead-host references, epoch parity, dead hosts "
                 "cache nothing.\n";
    return all_ok ? 0 : 1;
}
