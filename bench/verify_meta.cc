/**
 * @file
 * Metadata-corruption verification (DESIGN.md §12): drives the full
 * system with the device-metadata corruption schedule layered on the
 * base fault rates. Directory entries and PIPM remap entries are
 * quarantined by seeded bit-flip events, then repaired by the periodic
 * scrubber or by the demand access that trips over them: probe-and-
 * rebuild when the shadow checksum survived, redo-journal replay for
 * in-flight migration metadata, and the degraded fallback (persistent
 * line poison / page force-reclaim with dirty-loss accounting) when
 * neither applies. The last-writer data oracle accepts stale values
 * only for lines the system explicitly reported lost, and the
 * cross-structure invariants are asserted throughout.
 *
 * With --combined, the crash/rejoin schedule, the lease-based failure
 * detector and gray-failure stall windows are layered underneath the
 * corruption schedule (the chaos-soak configuration).
 *
 * Environment:
 *   PIPM_VERIFY_SEED       base seed (default 1; also a CLI argument)
 *   PIPM_VERIFY_SCHEDULES  schedules per scheme (default 3)
 *   PIPM_VERIFY_ACCESSES   accesses per schedule (default 12000)
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "verify/fault_schedule.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: verify_meta [--help] [--combined] [--require-repair]\n"
          "                   [--require-unrepairable] [--require-breaker]\n"
          "                   [seed]\n"
          "\n"
          "Checks device-metadata corruption schedules (scrub-and-repair,\n"
          "journal replay, degraded fallback, migration circuit breaker)\n"
          "against a last-writer data oracle and the cross-structure\n"
          "invariants.\n"
          "\n"
          "  seed    base seed (default 1; overrides PIPM_VERIFY_SEED)\n"
          "  --combined\n"
          "          also layer host crashes, the lease detector and\n"
          "          gray-failure stalls under the corruption schedule\n"
          "          (the chaos-soak configuration)\n"
          "  --require-repair\n"
          "          exit nonzero unless at least one corrupted entry was\n"
          "          repaired in place (probe-and-rebuild)\n"
          "  --require-unrepairable\n"
          "          exit nonzero unless at least one entry hit the\n"
          "          degraded fallback (shadow-checksum hit)\n"
          "  --require-breaker\n"
          "          exit nonzero unless at least one migration circuit\n"
          "          breaker tripped and later half-opened\n"
          "\n"
          "Environment:\n"
          "  PIPM_VERIFY_SEED       base seed (default 1)\n"
          "  PIPM_VERIFY_SCHEDULES  schedules per scheme (default 3)\n"
          "  PIPM_VERIFY_ACCESSES   accesses per schedule (default "
          "12000)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipm;

    auto env_u64 = [](const char *name, std::uint64_t fallback) {
        const char *v = std::getenv(name);
        return v && *v ? std::strtoull(v, nullptr, 10) : fallback;
    };
    std::uint64_t seed = env_u64("PIPM_VERIFY_SEED", 1);
    bool combined = false;
    bool require_repair = false;
    bool require_unrepairable = false;
    bool require_breaker = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strcmp(arg, "--combined") == 0) {
            combined = true;
            continue;
        }
        if (std::strcmp(arg, "--require-repair") == 0) {
            require_repair = true;
            continue;
        }
        if (std::strcmp(arg, "--require-unrepairable") == 0) {
            require_unrepairable = true;
            continue;
        }
        if (std::strcmp(arg, "--require-breaker") == 0) {
            require_breaker = true;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(arg[0]))) {
            seed = std::strtoull(arg, nullptr, 10);
            continue;
        }
        std::cerr << "verify_meta: unknown argument '" << arg << "'\n";
        usage(std::cerr);
        return 2;
    }
    const auto schedules = static_cast<unsigned>(
        env_u64("PIPM_VERIFY_SCHEDULES", 3));
    const std::uint64_t accesses = env_u64("PIPM_VERIFY_ACCESSES", 12'000);

    // 4 hosts: enough directory/remap population for the corruption
    // events to find victims, with survivors under --combined crashes.
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;

    FaultCheckOptions opt;
    opt.withMetaCorruption = true;
    if (combined) {
        opt.withCrashes = true;
        opt.withSuspicion = true;
    }

    TablePrinter table(combined
                           ? "Metadata-corruption + crash + stall checking "
                             "(chaos soak)"
                           : "Metadata-corruption checking (scrub, "
                             "journal, degraded fallback, breaker)");
    table.header({"scheme", "result", "schedules", "accesses", "corrupt",
                  "repair", "replay", "degrade", "trip", "halfopen",
                  "lost"});
    bool all_ok = true;
    std::uint64_t total_repairs = 0;
    std::uint64_t total_unrepairable = 0;
    std::uint64_t total_trips = 0;
    std::uint64_t total_half_opens = 0;
    for (Scheme s : {Scheme::pipmFull, Scheme::hwStatic}) {
        const FaultCheckResult result =
            checkFaultSchedules(cfg, s, schedules, accesses, seed, opt);
        all_ok = all_ok && result.ok;
        total_repairs += result.scrubRepairs + result.journalReplays;
        total_unrepairable += result.scrubUnrepairable;
        total_trips += result.breakerTrips;
        total_half_opens += result.breakerHalfOpens;
        table.row({std::string(toString(s)),
                   result.ok ? "SAFE" : "VIOLATION: " + result.violation,
                   std::to_string(result.schedules),
                   std::to_string(result.accesses),
                   std::to_string(result.metaCorruptions),
                   std::to_string(result.scrubRepairs),
                   std::to_string(result.journalReplays),
                   std::to_string(result.scrubUnrepairable),
                   std::to_string(result.breakerTrips),
                   std::to_string(result.breakerHalfOpens),
                   std::to_string(result.linesLost)});
    }
    table.print(std::cout);

    std::cout << "Invariants: SWMR, data-value against the last-writer "
                 "oracle (stale reads accepted only for explicitly lost "
                 "lines), quarantined metadata never consumed, poisoned "
                 "lines uncached and directory-untracked, breaker-shed "
                 "pages keep serving demand traffic.\n";
    if (require_repair && total_repairs == 0) {
        std::cerr << "verify_meta: no in-place repair or journal replay "
                     "observed (required by --require-repair); pick a "
                     "seed or raise PIPM_VERIFY_ACCESSES.\n";
        return 3;
    }
    if (require_unrepairable && total_unrepairable == 0) {
        std::cerr << "verify_meta: no degraded fallback observed "
                     "(required by --require-unrepairable); pick a seed "
                     "whose corruption events hit shadow checksums.\n";
        return 3;
    }
    if (require_breaker && (total_trips == 0 || total_half_opens == 0)) {
        std::cerr << "verify_meta: no breaker trip + half-open observed "
                     "(required by --require-breaker); pick a seed with "
                     "denser corruption or lower the breaker threshold.\n";
        return 3;
    }
    return all_ok ? 0 : 1;
}
