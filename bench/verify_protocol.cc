/**
 * @file
 * §5.1.4 verification: exhaustive explicit-state checking of the PIPM
 * coherence protocol (the reproduction's Murphi analog). Verifies SWMR,
 * the data-value invariant, the I'/ME encoding rules and directory
 * precision over every interleaving of reads/writes/evictions/
 * promotions/revocations for 2, 3 and 4 hosts, and reports the explored
 * state space.
 */

#include <cstring>
#include <iostream>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "verify/checker.hh"
#include "verify/fault_schedule.hh"
#include "verify/multiline_model.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: verify_protocol [--help]\n"
          "\n"
          "Exhaustive explicit-state checking of the PIPM coherence\n"
          "protocol (single-line 2-4 hosts, two-line page model 2-3\n"
          "hosts) plus randomised fault-schedule checking of the full\n"
          "system. Takes no other arguments; exits 0 when every check\n"
          "is SAFE, 1 on a violation.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipm;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        std::cerr << "verify_protocol: unknown argument '" << argv[i]
                  << "'\n";
        usage(std::cerr);
        return 2;
    }

    TablePrinter table("Protocol verification (Murphi-analog explicit-"
                       "state checking)");
    table.header({"hosts", "result", "states", "transitions"});
    bool all_ok = true;
    for (unsigned hosts = 2; hosts <= 4; ++hosts) {
        const CheckResult result = checkProtocol(hosts);
        all_ok = all_ok && result.ok;
        table.row({std::to_string(hosts),
                   result.ok ? "SAFE" : "VIOLATION: " + result.violation,
                   std::to_string(result.statesExplored),
                   std::to_string(result.transitions)});
        if (!result.ok)
            std::cerr << result.traceString(hosts);
    }
    table.print(std::cout);

    TablePrinter table2("Two-line page model (page-level couplings: "
                        "shared entry, whole-page revocation)");
    table2.header({"hosts", "result", "states", "transitions"});
    for (unsigned hosts = 2; hosts <= 3; ++hosts) {
        const CheckResult result = checkMultiLineProtocol(hosts);
        all_ok = all_ok && result.ok;
        table2.row({std::to_string(hosts),
                    result.ok ? "SAFE"
                              : "VIOLATION: " + result.violation,
                    std::to_string(result.statesExplored),
                    std::to_string(result.transitions)});
    }
    table2.print(std::cout);

    TablePrinter table3("Fault-schedule checking (full system under "
                        "injected link/poison/abort faults)");
    table3.header({"scheme", "result", "schedules", "accesses", "faults"});
    for (Scheme s : {Scheme::pipmFull, Scheme::hwStatic}) {
        const FaultCheckResult result =
            checkFaultSchedules(testConfig(), s, 4, 20'000);
        all_ok = all_ok && result.ok;
        table3.row({std::string(toString(s)),
                    result.ok ? "SAFE" : "VIOLATION: " + result.violation,
                    std::to_string(result.schedules),
                    std::to_string(result.accesses),
                    std::to_string(result.faultsInjected)});
    }
    table3.print(std::cout);

    std::cout << "Invariants: single-writer-multiple-reader, data-value "
                 "(reads return the latest write), I'/ME encoding "
                 "consistency, directory precision, deadlock freedom; "
                 "under faults additionally remap-table consistency and "
                 "poisoned-lines-uncached.\n";
    return all_ok ? 0 : 1;
}
