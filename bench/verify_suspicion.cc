/**
 * @file
 * Suspicion-schedule verification (DESIGN.md §11): drives the full system
 * with the lease-based failure detector, gray-failure stall windows and
 * the transaction timeout/retry engine layered on the crash schedules of
 * verify_crash. Crashed hosts are reclaimed only when their lease expires
 * (or a retry budget runs out), stalled-but-alive hosts may be falsely
 * suspected and fenced as zombies, and readmission goes through the
 * cold-rejoin path. The last-writer data oracle accepts stale values only
 * for lines the system explicitly reported lost — whether lost to a real
 * crash or to a fence — and the cross-structure invariants (including the
 * deferred-reclaim relaxations) are asserted throughout.
 *
 * Environment:
 *   PIPM_VERIFY_SEED       base seed (default 1; also a CLI argument)
 *   PIPM_VERIFY_SCHEDULES  schedules per scheme (default 4)
 *   PIPM_VERIFY_ACCESSES   accesses per schedule (default 20000)
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "verify/fault_schedule.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: verify_suspicion [--help] [--require-false-suspicion] "
          "[seed]\n"
          "\n"
          "Checks lease-detection (suspect -> fence -> readmit) schedules\n"
          "against a last-writer data oracle and the cross-structure\n"
          "invariants.\n"
          "\n"
          "  seed    base seed (default 1; overrides PIPM_VERIFY_SEED)\n"
          "  --require-false-suspicion\n"
          "          exit nonzero unless at least one alive host was\n"
          "          falsely suspected and fenced (gating runs use this\n"
          "          to prove the zombie path was exercised)\n"
          "\n"
          "Environment:\n"
          "  PIPM_VERIFY_SEED       base seed (default 1)\n"
          "  PIPM_VERIFY_SCHEDULES  schedules per scheme (default 4)\n"
          "  PIPM_VERIFY_ACCESSES   accesses per schedule (default "
          "20000)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipm;

    auto env_u64 = [](const char *name, std::uint64_t fallback) {
        const char *v = std::getenv(name);
        return v && *v ? std::strtoull(v, nullptr, 10) : fallback;
    };
    std::uint64_t seed = env_u64("PIPM_VERIFY_SEED", 1);
    bool require_false_suspicion = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(std::cout);
            return 0;
        }
        if (std::strcmp(arg, "--require-false-suspicion") == 0) {
            require_false_suspicion = true;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(arg[0]))) {
            seed = std::strtoull(arg, nullptr, 10);
            continue;
        }
        std::cerr << "verify_suspicion: unknown argument '" << arg
                  << "'\n";
        usage(std::cerr);
        return 2;
    }
    const auto schedules = static_cast<unsigned>(
        env_u64("PIPM_VERIFY_SCHEDULES", 4));
    const std::uint64_t accesses = env_u64("PIPM_VERIFY_ACCESSES", 20'000);

    // 4 hosts so schedules can crash, stall and fence several of them
    // while always leaving survivors to keep issuing accesses.
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;

    TablePrinter table("Suspicion-schedule checking (lease expiry + "
                       "gray-failure fencing + txn retry)");
    table.header({"scheme", "result", "schedules", "accesses", "suspect",
                  "false", "fenced", "retries", "lost"});
    bool all_ok = true;
    std::uint64_t total_false = 0;
    for (Scheme s : {Scheme::pipmFull, Scheme::hwStatic}) {
        const FaultCheckResult result = checkFaultSchedules(
            cfg, s, schedules, accesses, seed,
            FaultCheckOptions{/*withCrashes=*/true,
                              /*withSuspicion=*/true});
        all_ok = all_ok && result.ok;
        total_false += result.falseSuspicions;
        table.row({std::string(toString(s)),
                   result.ok ? "SAFE" : "VIOLATION: " + result.violation,
                   std::to_string(result.schedules),
                   std::to_string(result.accesses),
                   std::to_string(result.suspicions),
                   std::to_string(result.falseSuspicions),
                   std::to_string(result.fencedRequests),
                   std::to_string(result.txnRetries),
                   std::to_string(result.linesLost)});
    }
    table.print(std::cout);

    std::cout << "Invariants: SWMR, data-value against the last-writer "
                 "oracle (stale reads accepted only for explicitly lost "
                 "lines), deferred reclaim tolerated only while a dead "
                 "host's lease has not expired, fenced zombies readmit "
                 "cold under a fresh epoch, epoch parity, dead hosts "
                 "cache nothing.\n";
    if (require_false_suspicion && total_false == 0) {
        std::cerr << "verify_suspicion: no false suspicion observed "
                     "(required by --require-false-suspicion); pick a "
                     "seed whose stall windows outlast the lease.\n";
        return 3;
    }
    return all_ok ? 0 : 1;
}
