file(REMOVE_RECURSE
  "CMakeFiles/ablation_naive_coherence.dir/ablation_naive_coherence.cc.o"
  "CMakeFiles/ablation_naive_coherence.dir/ablation_naive_coherence.cc.o.d"
  "CMakeFiles/ablation_naive_coherence.dir/bench_common.cc.o"
  "CMakeFiles/ablation_naive_coherence.dir/bench_common.cc.o.d"
  "ablation_naive_coherence"
  "ablation_naive_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_naive_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
