# Empty compiler generated dependencies file for ablation_naive_coherence.
# This may be replaced when dependencies are built.
