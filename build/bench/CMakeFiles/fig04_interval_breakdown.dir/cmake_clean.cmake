file(REMOVE_RECURSE
  "CMakeFiles/fig04_interval_breakdown.dir/bench_common.cc.o"
  "CMakeFiles/fig04_interval_breakdown.dir/bench_common.cc.o.d"
  "CMakeFiles/fig04_interval_breakdown.dir/fig04_interval_breakdown.cc.o"
  "CMakeFiles/fig04_interval_breakdown.dir/fig04_interval_breakdown.cc.o.d"
  "fig04_interval_breakdown"
  "fig04_interval_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_interval_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
