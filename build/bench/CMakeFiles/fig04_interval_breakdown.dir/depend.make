# Empty dependencies file for fig04_interval_breakdown.
# This may be replaced when dependencies are built.
