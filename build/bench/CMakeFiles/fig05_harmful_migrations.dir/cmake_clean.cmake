file(REMOVE_RECURSE
  "CMakeFiles/fig05_harmful_migrations.dir/bench_common.cc.o"
  "CMakeFiles/fig05_harmful_migrations.dir/bench_common.cc.o.d"
  "CMakeFiles/fig05_harmful_migrations.dir/fig05_harmful_migrations.cc.o"
  "CMakeFiles/fig05_harmful_migrations.dir/fig05_harmful_migrations.cc.o.d"
  "fig05_harmful_migrations"
  "fig05_harmful_migrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_harmful_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
