# Empty dependencies file for fig05_harmful_migrations.
# This may be replaced when dependencies are built.
