file(REMOVE_RECURSE
  "CMakeFiles/fig10_end_to_end.dir/bench_common.cc.o"
  "CMakeFiles/fig10_end_to_end.dir/bench_common.cc.o.d"
  "CMakeFiles/fig10_end_to_end.dir/fig10_end_to_end.cc.o"
  "CMakeFiles/fig10_end_to_end.dir/fig10_end_to_end.cc.o.d"
  "fig10_end_to_end"
  "fig10_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
