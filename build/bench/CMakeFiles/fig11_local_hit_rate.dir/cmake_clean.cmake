file(REMOVE_RECURSE
  "CMakeFiles/fig11_local_hit_rate.dir/bench_common.cc.o"
  "CMakeFiles/fig11_local_hit_rate.dir/bench_common.cc.o.d"
  "CMakeFiles/fig11_local_hit_rate.dir/fig11_local_hit_rate.cc.o"
  "CMakeFiles/fig11_local_hit_rate.dir/fig11_local_hit_rate.cc.o.d"
  "fig11_local_hit_rate"
  "fig11_local_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_local_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
