# Empty compiler generated dependencies file for fig11_local_hit_rate.
# This may be replaced when dependencies are built.
