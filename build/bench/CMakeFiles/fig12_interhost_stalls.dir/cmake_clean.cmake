file(REMOVE_RECURSE
  "CMakeFiles/fig12_interhost_stalls.dir/bench_common.cc.o"
  "CMakeFiles/fig12_interhost_stalls.dir/bench_common.cc.o.d"
  "CMakeFiles/fig12_interhost_stalls.dir/fig12_interhost_stalls.cc.o"
  "CMakeFiles/fig12_interhost_stalls.dir/fig12_interhost_stalls.cc.o.d"
  "fig12_interhost_stalls"
  "fig12_interhost_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_interhost_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
