# Empty compiler generated dependencies file for fig12_interhost_stalls.
# This may be replaced when dependencies are built.
