file(REMOVE_RECURSE
  "CMakeFiles/fig13_memory_footprint.dir/bench_common.cc.o"
  "CMakeFiles/fig13_memory_footprint.dir/bench_common.cc.o.d"
  "CMakeFiles/fig13_memory_footprint.dir/fig13_memory_footprint.cc.o"
  "CMakeFiles/fig13_memory_footprint.dir/fig13_memory_footprint.cc.o.d"
  "fig13_memory_footprint"
  "fig13_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
