# Empty dependencies file for fig13_memory_footprint.
# This may be replaced when dependencies are built.
