# Empty dependencies file for fig14_link_latency.
# This may be replaced when dependencies are built.
