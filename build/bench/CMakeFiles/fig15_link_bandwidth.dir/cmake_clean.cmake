file(REMOVE_RECURSE
  "CMakeFiles/fig15_link_bandwidth.dir/bench_common.cc.o"
  "CMakeFiles/fig15_link_bandwidth.dir/bench_common.cc.o.d"
  "CMakeFiles/fig15_link_bandwidth.dir/fig15_link_bandwidth.cc.o"
  "CMakeFiles/fig15_link_bandwidth.dir/fig15_link_bandwidth.cc.o.d"
  "fig15_link_bandwidth"
  "fig15_link_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_link_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
