# Empty dependencies file for fig15_link_bandwidth.
# This may be replaced when dependencies are built.
