file(REMOVE_RECURSE
  "CMakeFiles/fig16_local_remap_cache.dir/bench_common.cc.o"
  "CMakeFiles/fig16_local_remap_cache.dir/bench_common.cc.o.d"
  "CMakeFiles/fig16_local_remap_cache.dir/fig16_local_remap_cache.cc.o"
  "CMakeFiles/fig16_local_remap_cache.dir/fig16_local_remap_cache.cc.o.d"
  "fig16_local_remap_cache"
  "fig16_local_remap_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_local_remap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
