# Empty dependencies file for fig16_local_remap_cache.
# This may be replaced when dependencies are built.
