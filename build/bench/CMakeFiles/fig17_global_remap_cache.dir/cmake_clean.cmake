file(REMOVE_RECURSE
  "CMakeFiles/fig17_global_remap_cache.dir/bench_common.cc.o"
  "CMakeFiles/fig17_global_remap_cache.dir/bench_common.cc.o.d"
  "CMakeFiles/fig17_global_remap_cache.dir/fig17_global_remap_cache.cc.o"
  "CMakeFiles/fig17_global_remap_cache.dir/fig17_global_remap_cache.cc.o.d"
  "fig17_global_remap_cache"
  "fig17_global_remap_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_global_remap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
