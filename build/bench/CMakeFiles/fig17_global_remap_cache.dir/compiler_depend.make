# Empty compiler generated dependencies file for fig17_global_remap_cache.
# This may be replaced when dependencies are built.
