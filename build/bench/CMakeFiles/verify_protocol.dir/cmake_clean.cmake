file(REMOVE_RECURSE
  "CMakeFiles/verify_protocol.dir/bench_common.cc.o"
  "CMakeFiles/verify_protocol.dir/bench_common.cc.o.d"
  "CMakeFiles/verify_protocol.dir/verify_protocol.cc.o"
  "CMakeFiles/verify_protocol.dir/verify_protocol.cc.o.d"
  "verify_protocol"
  "verify_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
