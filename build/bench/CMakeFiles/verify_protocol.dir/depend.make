# Empty dependencies file for verify_protocol.
# This may be replaced when dependencies are built.
