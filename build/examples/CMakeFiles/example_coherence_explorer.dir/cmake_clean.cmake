file(REMOVE_RECURSE
  "CMakeFiles/example_coherence_explorer.dir/coherence_explorer.cpp.o"
  "CMakeFiles/example_coherence_explorer.dir/coherence_explorer.cpp.o.d"
  "example_coherence_explorer"
  "example_coherence_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_coherence_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
