# Empty compiler generated dependencies file for example_coherence_explorer.
# This may be replaced when dependencies are built.
