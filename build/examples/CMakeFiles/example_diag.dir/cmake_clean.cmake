file(REMOVE_RECURSE
  "CMakeFiles/example_diag.dir/diag.cpp.o"
  "CMakeFiles/example_diag.dir/diag.cpp.o.d"
  "example_diag"
  "example_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
