# Empty dependencies file for example_diag.
# This may be replaced when dependencies are built.
