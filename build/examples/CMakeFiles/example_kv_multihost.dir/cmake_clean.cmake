file(REMOVE_RECURSE
  "CMakeFiles/example_kv_multihost.dir/kv_multihost.cpp.o"
  "CMakeFiles/example_kv_multihost.dir/kv_multihost.cpp.o.d"
  "example_kv_multihost"
  "example_kv_multihost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kv_multihost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
