# Empty compiler generated dependencies file for example_kv_multihost.
# This may be replaced when dependencies are built.
