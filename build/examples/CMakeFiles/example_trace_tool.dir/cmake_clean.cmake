file(REMOVE_RECURSE
  "CMakeFiles/example_trace_tool.dir/trace_tool.cpp.o"
  "CMakeFiles/example_trace_tool.dir/trace_tool.cpp.o.d"
  "example_trace_tool"
  "example_trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
