# Empty dependencies file for example_trace_tool.
# This may be replaced when dependencies are built.
