
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/pipm.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/pipm.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/coherence/device_directory.cc" "src/CMakeFiles/pipm.dir/coherence/device_directory.cc.o" "gcc" "src/CMakeFiles/pipm.dir/coherence/device_directory.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/pipm.dir/common/config.cc.o" "gcc" "src/CMakeFiles/pipm.dir/common/config.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/pipm.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/pipm.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/pipm.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/pipm.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/pipm.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/pipm.dir/common/table_printer.cc.o.d"
  "/root/repo/src/cxl/link.cc" "src/CMakeFiles/pipm.dir/cxl/link.cc.o" "gcc" "src/CMakeFiles/pipm.dir/cxl/link.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/pipm.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/pipm.dir/mem/dram.cc.o.d"
  "/root/repo/src/migration/harmful.cc" "src/CMakeFiles/pipm.dir/migration/harmful.cc.o" "gcc" "src/CMakeFiles/pipm.dir/migration/harmful.cc.o.d"
  "/root/repo/src/migration/hemem.cc" "src/CMakeFiles/pipm.dir/migration/hemem.cc.o" "gcc" "src/CMakeFiles/pipm.dir/migration/hemem.cc.o.d"
  "/root/repo/src/migration/memtis.cc" "src/CMakeFiles/pipm.dir/migration/memtis.cc.o" "gcc" "src/CMakeFiles/pipm.dir/migration/memtis.cc.o.d"
  "/root/repo/src/migration/nomad.cc" "src/CMakeFiles/pipm.dir/migration/nomad.cc.o" "gcc" "src/CMakeFiles/pipm.dir/migration/nomad.cc.o.d"
  "/root/repo/src/migration/os_skew.cc" "src/CMakeFiles/pipm.dir/migration/os_skew.cc.o" "gcc" "src/CMakeFiles/pipm.dir/migration/os_skew.cc.o.d"
  "/root/repo/src/os/address_space.cc" "src/CMakeFiles/pipm.dir/os/address_space.cc.o" "gcc" "src/CMakeFiles/pipm.dir/os/address_space.cc.o.d"
  "/root/repo/src/pipm/pipm_state.cc" "src/CMakeFiles/pipm.dir/pipm/pipm_state.cc.o" "gcc" "src/CMakeFiles/pipm.dir/pipm/pipm_state.cc.o.d"
  "/root/repo/src/pipm/remap_cache.cc" "src/CMakeFiles/pipm.dir/pipm/remap_cache.cc.o" "gcc" "src/CMakeFiles/pipm.dir/pipm/remap_cache.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/pipm.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/pipm.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/pipm.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/pipm.dir/sim/system.cc.o.d"
  "/root/repo/src/verify/checker.cc" "src/CMakeFiles/pipm.dir/verify/checker.cc.o" "gcc" "src/CMakeFiles/pipm.dir/verify/checker.cc.o.d"
  "/root/repo/src/verify/multiline_model.cc" "src/CMakeFiles/pipm.dir/verify/multiline_model.cc.o" "gcc" "src/CMakeFiles/pipm.dir/verify/multiline_model.cc.o.d"
  "/root/repo/src/verify/protocol_model.cc" "src/CMakeFiles/pipm.dir/verify/protocol_model.cc.o" "gcc" "src/CMakeFiles/pipm.dir/verify/protocol_model.cc.o.d"
  "/root/repo/src/workloads/catalog.cc" "src/CMakeFiles/pipm.dir/workloads/catalog.cc.o" "gcc" "src/CMakeFiles/pipm.dir/workloads/catalog.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/pipm.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/pipm.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/trace_file.cc" "src/CMakeFiles/pipm.dir/workloads/trace_file.cc.o" "gcc" "src/CMakeFiles/pipm.dir/workloads/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
