file(REMOVE_RECURSE
  "libpipm.a"
)
