# Empty dependencies file for pipm.
# This may be replaced when dependencies are built.
