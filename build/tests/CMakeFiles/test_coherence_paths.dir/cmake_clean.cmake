file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_paths.dir/test_coherence_paths.cc.o"
  "CMakeFiles/test_coherence_paths.dir/test_coherence_paths.cc.o.d"
  "test_coherence_paths"
  "test_coherence_paths.pdb"
  "test_coherence_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
