# Empty dependencies file for test_coherence_paths.
# This may be replaced when dependencies are built.
