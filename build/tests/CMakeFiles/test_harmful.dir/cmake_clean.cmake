file(REMOVE_RECURSE
  "CMakeFiles/test_harmful.dir/test_harmful.cc.o"
  "CMakeFiles/test_harmful.dir/test_harmful.cc.o.d"
  "test_harmful"
  "test_harmful.pdb"
  "test_harmful[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harmful.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
