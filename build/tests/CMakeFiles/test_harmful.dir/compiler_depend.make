# Empty compiler generated dependencies file for test_harmful.
# This may be replaced when dependencies are built.
