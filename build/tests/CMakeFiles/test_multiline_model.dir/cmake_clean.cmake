file(REMOVE_RECURSE
  "CMakeFiles/test_multiline_model.dir/test_multiline_model.cc.o"
  "CMakeFiles/test_multiline_model.dir/test_multiline_model.cc.o.d"
  "test_multiline_model"
  "test_multiline_model.pdb"
  "test_multiline_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiline_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
