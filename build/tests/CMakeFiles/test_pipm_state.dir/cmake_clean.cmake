file(REMOVE_RECURSE
  "CMakeFiles/test_pipm_state.dir/test_pipm_state.cc.o"
  "CMakeFiles/test_pipm_state.dir/test_pipm_state.cc.o.d"
  "test_pipm_state"
  "test_pipm_state.pdb"
  "test_pipm_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipm_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
