# Empty dependencies file for test_pipm_state.
# This may be replaced when dependencies are built.
