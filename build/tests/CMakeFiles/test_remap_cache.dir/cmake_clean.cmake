file(REMOVE_RECURSE
  "CMakeFiles/test_remap_cache.dir/test_remap_cache.cc.o"
  "CMakeFiles/test_remap_cache.dir/test_remap_cache.cc.o.d"
  "test_remap_cache"
  "test_remap_cache.pdb"
  "test_remap_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
