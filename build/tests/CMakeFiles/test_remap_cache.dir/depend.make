# Empty dependencies file for test_remap_cache.
# This may be replaced when dependencies are built.
