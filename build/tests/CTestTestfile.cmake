# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_paths[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_directory[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_harmful[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_link[1]_include.cmake")
include("/root/repo/build/tests/test_model_properties[1]_include.cmake")
include("/root/repo/build/tests/test_multiline_model[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_pipm_state[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_remap_cache[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
