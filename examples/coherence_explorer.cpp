/**
 * @file
 * Coherence explorer: drives MultiHostSystem directly through the PIPM
 * lifecycle of one page — the majority vote, incremental migration on
 * writeback (case 1), local service from migrated lines (case 3),
 * inter-host pull-back (cases 2/5/6) and revocation — printing the state
 * transitions as they happen. Also runs the explicit-state model checker
 * to show the protocol-safety story of §5.1.4.
 */

#include <iostream>

#include "common/config.hh"
#include "sim/system.hh"
#include "verify/checker.hh"
#include "workloads/workload.hh"

namespace
{

using namespace pipm;

class NoTraces : public Workload
{
  public:
    std::string name() const override { return "explorer"; }
    std::string suite() const override { return "example"; }
    std::uint64_t footprintBytes() const override { return 1 << 20; }
    std::uint64_t sharedBytes() const override { return 256 * pageBytes; }
    std::uint64_t privateBytesPerHost() const override
    {
        return 16 * pageBytes;
    }
    std::string fingerprint() const override { return "explorer"; }
    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        return nullptr;
    }
};

MemRef
ref(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = op;
    return r;
}

} // namespace

int
main()
{
    using namespace pipm;

    SystemConfig cfg = testConfig();
    cfg.numHosts = 2;
    NoTraces workload;
    MultiHostSystem sys(cfg, Scheme::pipmFull, workload, 1);
    PipmState &pipm = *sys.pipmState();

    const std::uint64_t page = 5;
    const PageFrame cxl_page =
        pageOf(pageBase(sys.space().sharedFrame(page)));
    Cycles now = 0;

    std::cout << "=== 1. Majority vote (threshold "
              << cfg.pipm.migrationThreshold << ") ===\n";
    // Write three thresholds' worth of lines: the vote fires on the
    // 8th access; the rest keep recharging the page's local counter
    // (each post-promotion local miss bumps it, saturating the 4-bit
    // counter at 15) and widen the migrated-line set for step 4.
    for (unsigned i = 0; i < 3 * cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, ref(page, i, MemOp::write), now, 0x100 + i);
        now += 5'000;
        const GlobalRemapEntry &g = pipm.globalEntry(cxl_page);
        std::cout << "  host0 writes line " << i
                  << ": candidate=h" << int(g.candHost)
                  << " counter=" << int(g.counter)
                  << (pipm.migratedHostOf(cxl_page) != invalidHost
                          ? "  -> PROMOTED"
                          : "")
                  << '\n';
    }

    std::cout << "\n=== 2. Incremental migration (case 1: writebacks) "
                 "===\n";
    // Stream unrelated pages to force LLC evictions of the M lines.
    for (std::uint64_t p = 64; p < 256; ++p) {
        for (unsigned l = 0; l < linesPerPage; l += 4) {
            sys.access(0, 0, ref(p, l, MemOp::read), now);
            now += 200;
        }
    }
    std::cout << "  lines migrated into host0 local DRAM: "
              << pipm.linesIn.value() << " (page bitmap has "
              << pipm.migratedLinesOn(0) << " lines)\n";

    std::cout << "\n=== 3. Local service from migrated lines (case 3) "
                 "===\n";
    unsigned shown = 0;
    for (unsigned l = 0; l < linesPerPage && shown < 4; ++l) {
        if (!pipm.lineMigrated(0, cxl_page, l))
            continue;
        ++shown;
        const std::uint64_t before = sys.localServedMisses.value();
        const AccessResult r0 =
            sys.access(0, 0, ref(page, l, MemOp::read), now);
        now += 1'000;
        std::cout << "  host0 reads line " << l << ": data=0x" << std::hex
                  << r0.data << std::dec << " latency=" << r0.latency
                  << " cycles ("
                  << (sys.localServedMisses.value() > before
                          ? "served from LOCAL DRAM"
                          : "cache hit")
                  << ")\n";
    }

    std::cout << "\n=== 4. Inter-host access migrates lines back (cases "
                 "2/5/6) and drains the local counter ===\n";
    bool revoked = false;
    for (unsigned round = 0; round < 32 && !revoked; ++round) {
        for (unsigned l = 0; l < linesPerPage && !revoked; ++l) {
            if (!pipm.lineMigrated(0, cxl_page, l))
                continue;
            const AccessResult r1 =
                sys.access(1, 0, ref(page, l, MemOp::read), now);
            now += 2'000;
            std::cout << "  host1 reads line " << l << ": data=0x"
                      << std::hex << r1.data << std::dec
                      << ", line migrated back; ";
            if (pipm.hasLocalEntry(0, cxl_page)) {
                std::cout << "page still promoted\n";
            } else {
                std::cout << "local counter hit 0 -> REVOKED\n";
                revoked = true;
            }
        }
        if (!pipm.hasLocalEntry(0, cxl_page))
            revoked = true;
    }
    std::cout << "  totals: lines in " << pipm.linesIn.value()
              << ", lines back " << pipm.linesBack.value()
              << ", revocations " << pipm.revocations.value() << '\n';

    sys.checkInvariants();
    std::cout << "\n=== 5. System-wide invariants hold; running the "
                 "protocol model checker ===\n";
    for (unsigned hosts = 2; hosts <= 3; ++hosts) {
        const CheckResult result = checkProtocol(hosts);
        std::cout << "  " << hosts << " hosts: "
                  << (result.ok ? "SAFE" : result.violation) << " ("
                  << result.statesExplored << " states, "
                  << result.transitions << " transitions)\n";
    }
    return 0;
}
