/**
 * @file
 * Diagnostics utility: runs one (workload, scheme) combination without
 * the measurement harness and dumps every internal stat group — the
 * system counters, cache/LLC, link, DRAM, PIPM and remapping-cache
 * stats. Useful when investigating where cycles go under a new
 * configuration or workload.
 *
 * Usage: example_diag [workload] [refs-per-core] [scheme] [faults]
 *
 * Passing "faults" as the fourth argument enables the paper-default
 * fault-injection schedule (CXL link CRC errors, retraining windows,
 * poisoned lines, migration aborts) and dumps the fault stats too.
 */
#include <cstdlib>
#include <iostream>

#include "common/config.hh"
#include "sim/core.hh"
#include "sim/system.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace pipm;
    SystemConfig cfg = defaultConfig();
    auto wl = workloadByName(argc > 1 ? argv[1] : "pr", cfg.footprintScale);
    Scheme scheme = Scheme::native;
    if (argc > 3) {
        const std::string want = argv[3];
        for (Scheme s : allSchemes) {
            if (want == toString(s))
                scheme = s;
        }
    }
    if (argc > 4 && std::string(argv[4]) == "faults")
        cfg.fault = paperFaultConfig();
    MultiHostSystem sys(cfg, scheme, *wl, 42);

    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000;

    std::vector<OooCore> cores;
    std::vector<std::unique_ptr<CoreTrace>> traces;
    for (unsigned h = 0; h < cfg.numHosts; ++h) {
        for (unsigned c = 0; c < cfg.coresPerHost; ++c) {
            cores.emplace_back(cfg.core);
            traces.push_back(wl->makeTrace(h, c, cfg.coresPerHost,
                                           cfg.numHosts, 42 + h * 64 + c));
        }
    }
    std::vector<std::uint64_t> done(cores.size(), 0);
    std::uint64_t finished = 0;
    while (finished < cores.size()) {
        std::size_t best = 0;
        Cycles bt = maxCycles;
        for (std::size_t i = 0; i < cores.size(); ++i) {
            if (done[i] < refs && cores[i].now() < bt) {
                bt = cores[i].now();
                best = i;
            }
        }
        auto &core = cores[best];
        const MemRef ref = traces[best]->next();
        core.advanceGap(ref.gap);
        sys.tick(core.now());
        const auto h = static_cast<HostId>(best / cfg.coresPerHost);
        const auto c = static_cast<CoreId>(best % cfg.coresPerHost);
        auto res = sys.access(h, c, ref, core.now());
        if (res.stall)
            core.stall(res.stall);
        if (ref.op == MemOp::read)
            core.issueLoad(res.latency);
        else
            core.issueStore(res.latency);
        if (++done[best] == refs)
            ++finished;
    }
    Cycles maxc = 0;
    std::uint64_t instr = 0;
    for (auto &core : cores) {
        core.drainAll();
        maxc = std::max(maxc, core.now());
        instr += core.instructions();
    }
    std::cout << "cycles=" << maxc << " instr=" << instr
              << " ipc/core=" << double(instr) / maxc / cores.size()
              << "\n\n";
    std::cout << sys.stats().dump() << '\n';
    std::cout << sys.hierarchy(0).stats().dump() << '\n';
    std::cout << sys.link(0).stats().dump() << '\n';
    std::cout << sys.cxlDram().stats().dump() << '\n';
    std::cout << sys.localDram(0).stats().dump() << '\n';
    if (sys.pipmState())
        std::cout << sys.pipmState()->stats().dump() << '\n';
    if (sys.localRemapCache(0))
        std::cout << sys.localRemapCache(0)->stats().dump() << '\n';
    if (sys.globalRemapCache())
        std::cout << sys.globalRemapCache()->stats().dump() << '\n';
    if (sys.faultInjector())
        std::cout << sys.faultInjector()->stats().dump() << '\n';
    return 0;
}
