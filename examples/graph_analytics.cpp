/**
 * @file
 * Graph analytics on multi-host CXL-DSM: runs a PageRank-style workload
 * (partitioned vertex set, iterative partition scans, power-law hubs)
 * under every memory-management scheme and reports the Figure-10-style
 * comparison plus the memory-system detail behind it.
 *
 * This is the scenario the paper's introduction motivates: worker
 * threads with strong per-partition locality, where partial and
 * incremental migration shines, while hub pages shared by every host
 * punish side-effect-blind whole-page migration.
 */

#include <cstdlib>
#include <iostream>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "sim/runner.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace pipm;

    const std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120'000;

    SystemConfig cfg = defaultConfig();
    auto workload = workloadByName("pr", cfg.footprintScale);

    RunConfig run;
    run.warmupRefsPerCore = refs / 4;
    run.measureRefsPerCore = refs;

    std::cout << "Multi-host graph analytics (PageRank model): "
              << cfg.numHosts << " hosts x " << cfg.coresPerHost
              << " cores, " << (workload->sharedBytes() >> 20)
              << " MB shared graph in CXL-DSM\n\n";

    const RunResult native =
        runExperiment(cfg, Scheme::native, *workload, run);

    TablePrinter table("scheme comparison (PageRank)");
    table.header({"scheme", "speedup", "local hit rate",
                  "inter-host accesses", "migrations"});
    for (Scheme s : allSchemes) {
        const RunResult r =
            s == Scheme::native
                ? native
                : runExperiment(cfg, s, *workload, run);
        const double speedup =
            static_cast<double>(native.execCycles) /
            static_cast<double>(r.execCycles);
        std::string migrations = "-";
        if (usesOsMigration(s)) {
            migrations = std::to_string(r.osMigrations) + " pages";
        } else if (usesPipmMechanism(s)) {
            migrations = std::to_string(r.pipmLinesIn) + " lines in, " +
                         std::to_string(r.pipmLinesBack) + " back";
        }
        table.row({std::string(toString(s)),
                   TablePrinter::num(speedup, 2) + "x",
                   TablePrinter::pct(r.localHitRate()),
                   std::to_string(r.interHostAccesses), migrations});
    }
    table.print(std::cout);

    std::cout << "Reading the table: PIPM converts partition-scan misses "
                 "into local DRAM hits\nwithout page-table updates or "
                 "whole-page copies, while the majority vote keeps\n"
                 "hub pages (accessed by every host) in CXL memory where "
                 "they stay cacheable\nfor everyone.\n";
    return 0;
}
