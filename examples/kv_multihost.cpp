/**
 * @file
 * A multi-host key-value store (YCSB R:W 4:1 model) on CXL-DSM,
 * exploring how PIPM's migration threshold and the OS schemes' epoch
 * length change the outcome on a scattered, zipfian workload — the
 * hardest case for page migration (§5.2.1: databases gain the least).
 */

#include <cstdlib>
#include <iostream>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "sim/runner.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace pipm;

    const std::uint64_t refs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;

    SystemConfig cfg = defaultConfig();
    auto workload = workloadByName("ycsb", cfg.footprintScale);

    RunConfig run;
    run.warmupRefsPerCore = refs / 4;
    run.measureRefsPerCore = refs;

    std::cout << "Multi-host KV store (YCSB R:W 4:1 model): zipfian keys, "
              << cfg.numHosts << " hosts, "
              << (workload->sharedBytes() >> 20) << " MB shared store\n\n";

    const RunResult native =
        runExperiment(cfg, Scheme::native, *workload, run);

    // Sweep PIPM's majority-vote threshold (paper: 4..16 behave alike).
    TablePrinter pipm_table(
        "PIPM migration threshold sweep (speedup over native)");
    pipm_table.header({"threshold", "speedup", "promotions",
                       "revocations", "lines in", "lines back"});
    for (unsigned threshold : {4u, 8u, 16u}) {
        SystemConfig c = cfg;
        c.pipm.migrationThreshold = threshold;
        const RunResult r =
            runExperiment(c, Scheme::pipmFull, *workload, run);
        pipm_table.row({std::to_string(threshold),
                        TablePrinter::num(
                            double(native.execCycles) / r.execCycles, 2) +
                            "x",
                        std::to_string(r.pipmPromotions),
                        std::to_string(r.pipmRevocations),
                        std::to_string(r.pipmLinesIn),
                        std::to_string(r.pipmLinesBack)});
    }
    pipm_table.print(std::cout);

    // Sweep the OS epoch for Memtis (Take-away 3: shorter helps, until
    // management overhead dominates - Take-away 4).
    TablePrinter os_table(
        "Memtis migration interval sweep (speedup over native)");
    os_table.header({"interval", "speedup", "migrations",
                     "mgmt stall cycles"});
    for (double interval_ms : {100.0, 10.0, 1.0}) {
        SystemConfig c = cfg;
        c.osMigration.intervalMs = interval_ms;
        const RunResult r =
            runExperiment(c, Scheme::memtis, *workload, run);
        os_table.row({TablePrinter::num(interval_ms, 0) + "ms",
                      TablePrinter::num(
                          double(native.execCycles) / r.execCycles, 2) +
                          "x",
                      std::to_string(r.osMigrations + r.osDemotions),
                      std::to_string(r.mgmtStallCycles)});
    }
    os_table.print(std::cout);
    return 0;
}
