/**
 * @file
 * Quickstart: build the Table 2 machine, run one workload under Native
 * CXL-DSM and under PIPM, and print the headline comparison.
 *
 * Usage: example_quickstart [workload] [refs-per-core]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "sim/runner.hh"
#include "workloads/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace pipm;

    const std::string name = argc > 1 ? argv[1] : "pr";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150'000;

    SystemConfig cfg = defaultConfig();
    auto workload = workloadByName(name, cfg.footprintScale);

    RunConfig run;
    run.warmupRefsPerCore = refs / 4;
    run.measureRefsPerCore = refs;

    std::cout << "PIPM quickstart: workload '" << name << "' ("
              << workload->suite() << ", "
              << (workload->footprintBytes() >> 30) << " GB footprint, "
              << "scaled 1/" << cfg.footprintScale << ")\n\n";
    std::cout << cfg.describe() << '\n';

    const RunResult native =
        runExperiment(cfg, Scheme::native, *workload, run);
    const RunResult pipm =
        runExperiment(cfg, Scheme::pipmFull, *workload, run);

    TablePrinter table("native CXL-DSM vs PIPM");
    table.header({"metric", "native", "pipm"});
    table.row({"exec cycles", std::to_string(native.execCycles),
               std::to_string(pipm.execCycles)});
    table.row({"IPC/core", TablePrinter::num(native.ipc, 3),
               TablePrinter::num(pipm.ipc, 3)});
    table.row({"local memory hit rate",
               TablePrinter::pct(native.localHitRate()),
               TablePrinter::pct(pipm.localHitRate())});
    table.row({"inter-host accesses",
               std::to_string(native.interHostAccesses),
               std::to_string(pipm.interHostAccesses)});
    table.row({"lines migrated in", "-",
               std::to_string(pipm.pipmLinesIn)});
    table.row({"lines migrated back", "-",
               std::to_string(pipm.pipmLinesBack)});
    table.row({"pages promoted", "-",
               std::to_string(pipm.pipmPromotions)});
    table.print(std::cout);

    const double speedup = pipm.execCycles
                               ? static_cast<double>(native.execCycles) /
                                     static_cast<double>(pipm.execCycles)
                               : 0.0;
    std::cout << "PIPM speedup over native CXL-DSM: "
              << TablePrinter::num(speedup, 2) << "x\n";
    return 0;
}
