/**
 * @file
 * Trace record/replay tool, mirroring the paper's trace-driven
 * methodology (§5.1.2): record a synthetic workload's reference streams
 * to disk once, then replay them through the simulator under any scheme.
 *
 * Usage:
 *   example_trace_tool record <workload> <dir> [refs-per-core]
 *   example_trace_tool replay <dir> [scheme] [refs-per-core]
 *   example_trace_tool info   <dir>
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/table_printer.hh"
#include "sim/runner.hh"
#include "workloads/catalog.hh"
#include "workloads/trace_file.hh"

namespace
{

using namespace pipm;

int
usage()
{
    std::cerr << "usage:\n"
              << "  example_trace_tool record <workload> <dir> [refs]\n"
              << "  example_trace_tool replay <dir> [scheme] [refs]\n"
              << "  example_trace_tool info <dir>\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pipm;
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const SystemConfig cfg = defaultConfig();

    if (cmd == "record") {
        if (argc < 4)
            return usage();
        const std::string name = argv[2];
        const std::string dir = argv[3];
        const std::uint64_t refs =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200'000;
        auto workload = workloadByName(name, cfg.footprintScale);
        recordTraces(*workload, dir, refs, cfg.numHosts,
                     cfg.coresPerHost, 42);
        std::cout << "recorded " << cfg.numHosts * cfg.coresPerHost
                  << " core traces of " << refs << " refs each to "
                  << dir << '\n';
        return 0;
    }

    if (cmd == "info") {
        TraceFileWorkload workload(argv[2]);
        std::cout << "trace set: " << workload.name() << "\n"
                  << "geometry: " << workload.recordedHosts() << " hosts x "
                  << workload.recordedCoresPerHost() << " cores\n"
                  << "refs per core: " << workload.refsPerCore() << "\n"
                  << "shared heap: " << (workload.sharedBytes() >> 20)
                  << " MB, private: "
                  << (workload.privateBytesPerHost() >> 10)
                  << " KB per host\n";
        return 0;
    }

    if (cmd == "replay") {
        TraceFileWorkload workload(argv[2]);
        Scheme scheme = Scheme::pipmFull;
        if (argc > 3) {
            const std::string want = argv[3];
            bool found = false;
            for (Scheme s : allSchemesExtended) {
                if (want == toString(s)) {
                    scheme = s;
                    found = true;
                }
            }
            if (!found) {
                std::cerr << "unknown scheme '" << want << "'\n";
                return 1;
            }
        }
        RunConfig run;
        run.measureRefsPerCore =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                     : workload.refsPerCore() * 3 / 4;
        run.warmupRefsPerCore = run.measureRefsPerCore / 4;

        const RunResult r = runExperiment(cfg, scheme, workload, run);
        TablePrinter table("replay of '" + workload.name() + "' under " +
                           std::string(toString(scheme)));
        table.header({"metric", "value"});
        table.row({"exec cycles", std::to_string(r.execCycles)});
        table.row({"IPC/core", TablePrinter::num(r.ipc, 3)});
        table.row({"local hit rate", TablePrinter::pct(r.localHitRate())});
        table.row({"inter-host accesses",
                   std::to_string(r.interHostAccesses)});
        table.print(std::cout);
        return 0;
    }
    return usage();
}
