#include "cache/hierarchy.hh"

namespace pipm
{

namespace
{

/** Sets for a cache of sizeBytes with 64 B lines and `ways` ways. */
unsigned
setsFor(const CacheConfig &c)
{
    return static_cast<unsigned>(c.sizeBytes / (lineBytes * c.ways));
}

} // namespace

CacheHierarchy::CacheHierarchy(const SystemConfig &cfg, std::uint64_t seed)
    : numCores_(cfg.coresPerHost),
      l1Rt_(cfg.l1.roundTrip),
      llcRt_(cfg.llcPerCore.roundTrip),
      llc_(setsFor(CacheConfig{cfg.llcBytesPerCore() * cfg.coresPerHost,
                               cfg.llcPerCore.ways, cfg.llcPerCore.roundTrip}),
           cfg.llcPerCore.ways, ReplPolicy::lru, seed),
      stats_("cache")
{
    panic_if(numCores_ > 32, "L1-presence mask supports at most 32 cores "
             "per host, got ", numCores_);
    l1s_.reserve(numCores_);
    for (unsigned c = 0; c < numCores_; ++c) {
        l1s_.emplace_back(
            setsFor(CacheConfig{cfg.l1Bytes(), cfg.l1.ways,
                                cfg.l1.roundTrip}),
            cfg.l1.ways, ReplPolicy::lru, seed + 17 * (c + 1));
    }
    stats_.addCounter(&l1Hits, "l1_hits", "accesses satisfied by the L1");
    stats_.addCounter(&llcHits, "llc_hits", "accesses satisfied by the LLC");
    stats_.addCounter(&misses, "misses", "accesses missing the hierarchy");
    stats_.addCounter(&llcEvictions, "llc_evictions",
                      "lines evicted from the LLC for capacity");
}

CacheHierarchy::LookupResult
CacheHierarchy::lookup(CoreId core, LineAddr line)
{
    panic_if(core >= numCores_, "core id ", core, " out of range");
    LlcMeta *llc_line = llc_.lookup(line);
    if (!llc_line) {
        // Inclusive hierarchy: absent from LLC implies absent from L1s.
        misses.inc();
        return {HitLevel::miss, HostState::I};
    }
    if (l1s_[core].lookup(line)) {
        l1Hits.inc();
        return {HitLevel::l1, llc_line->state};
    }
    llcHits.inc();
    return {HitLevel::llc, llc_line->state};
}

void
CacheHierarchy::recordWrite(CoreId core, LineAddr line, std::uint64_t data)
{
    LlcMeta *llc_line = llc_.lookup(line);
    panic_if(!llc_line, "recordWrite on uncached line ", line);
    panic_if(llc_line->state != HostState::M &&
                 llc_line->state != HostState::ME,
             "write to line ", line, " in non-writable state ",
             toString(llc_line->state));
    llc_line->dirty = true;
    llc_line->data = data;
    dropFromL1s(line, static_cast<int>(core), llc_line->l1Mask);
    if ((llc_line->l1Mask >> core) & 1) {
        if (L1Meta *l1_line = l1s_[core].lookup(line))
            l1_line->dirty = true;
    }
}

std::optional<CacheHierarchy::Eviction>
CacheHierarchy::fill(CoreId core, LineAddr line, HostState state, bool dirty,
                     std::uint64_t data)
{
    panic_if(state == HostState::I, "filling line ", line, " in state I");
    std::optional<Eviction> out;
    std::optional<SetAssoc<LlcMeta>::Entry> victim;
    bool resident = false;
    LlcMeta *m =
        llc_.acquire(line, LlcMeta{state, dirty, 0, data}, victim, resident);
    if (resident) {
        // Already resident (e.g. upgrade fill): refresh state/data.
        m->state = state;
        m->dirty = m->dirty || dirty;
        m->data = data;
    } else if (victim) {
        llcEvictions.inc();
        // Inclusive: back-invalidate the victim from all L1s. A dirty
        // L1 copy cannot be newer than the LLC copy because writes
        // update both (recordWrite), so no data merge is needed.
        dropFromL1s(victim->key, -1, victim->meta.l1Mask);
        out = Eviction{victim->key, victim->meta.state,
                       victim->meta.dirty, victim->meta.data};
    }
    // L1 victims need no writeback: the LLC copy is authoritative.
    l1s_[core].insertIfAbsent(line, L1Meta{false});
    m->l1Mask |= 1u << core;
    return out;
}

HostState
CacheHierarchy::stateOf(LineAddr line) const
{
    const LlcMeta *m = llc_.probe(line);
    return m ? m->state : HostState::I;
}

void
CacheHierarchy::setState(LineAddr line, HostState state)
{
    LlcMeta *m = llc_.lookup(line);
    panic_if(!m, "setState on uncached line ", line);
    panic_if(state == HostState::I,
             "use invalidateLine to drop a line, not setState(I)");
    m->state = state;
}

std::optional<CacheHierarchy::Eviction>
CacheHierarchy::invalidateLine(LineAddr line)
{
    auto entry = llc_.invalidate(line);
    if (!entry)
        return std::nullopt;
    dropFromL1s(line, -1, entry->meta.l1Mask);
    return Eviction{line, entry->meta.state, entry->meta.dirty,
                    entry->meta.data};
}

std::uint64_t
CacheHierarchy::dataOf(LineAddr line) const
{
    const LlcMeta *m = llc_.probe(line);
    panic_if(!m, "dataOf on uncached line ", line);
    return m->data;
}

void
CacheHierarchy::markClean(LineAddr line)
{
    LlcMeta *m = llc_.lookup(line);
    panic_if(!m, "markClean on uncached line ", line);
    m->dirty = false;
}

std::vector<CacheHierarchy::Eviction>
CacheHierarchy::flushAll()
{
    std::vector<Eviction> out;
    llc_.forEach([&out](const SetAssoc<LlcMeta>::Entry &e) {
        out.push_back(Eviction{e.key, e.meta.state, e.meta.dirty,
                               e.meta.data});
    });
    llc_.clear();
    for (auto &l1 : l1s_)
        l1.clear();
    return out;
}

} // namespace pipm
