/**
 * @file
 * Per-host cache hierarchy: one private L1 per core plus an inclusive
 * shared LLC.
 *
 * The local coherence directory of Fig. 2 is modelled as the LLC's tag
 * metadata: because the hierarchy is inclusive, the set of lines a host
 * caches equals its LLC content, and the host-level coherence state
 * (HostState) is stored alongside each LLC line. Lines in the PIPM I'
 * state live in local DRAM, not in any cache, so they consume no
 * space here (see coherence/state.hh).
 *
 * The hierarchy is purely functional-plus-occupancy: callers charge hit
 * latencies from the config and drive coherence transactions on misses.
 * Each line carries a 64-bit data token so that integration tests can
 * check the single-writer-multiple-reader and data-value invariants.
 */

#ifndef PIPM_CACHE_HIERARCHY_HH
#define PIPM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/set_assoc.hh"
#include "coherence/state.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** Where a lookup was satisfied. */
enum class HitLevel : std::uint8_t { l1, llc, miss };

/** The cache hierarchy of a single host. */
class CacheHierarchy
{
  public:
    /** A line leaving the LLC (capacity eviction or invalidation). */
    struct Eviction
    {
        LineAddr line = 0;
        HostState state = HostState::I;
        bool dirty = false;
        std::uint64_t data = 0;
    };

    /** Outcome of a lookup. */
    struct LookupResult
    {
        HitLevel level = HitLevel::miss;
        HostState state = HostState::I;   ///< host-level state (I on miss)
    };

    CacheHierarchy(const SystemConfig &cfg, std::uint64_t seed);

    /**
     * Probe the hierarchy for a demand access. Updates replacement state
     * on hits but performs no fills, dirty-marking or state changes.
     */
    LookupResult lookup(CoreId core, LineAddr line);

    /**
     * Complete a write hit: mark the line dirty, update its data token and
     * invalidate any other core's L1 copy (intra-host coherence).
     * The caller must have upgraded the host state to M/ME first.
     */
    void recordWrite(CoreId core, LineAddr line, std::uint64_t data);

    /**
     * Fill a line into the LLC and the requesting core's L1 after a miss
     * is resolved.
     * @return the LLC capacity eviction caused by the fill, if any,
     *         which the caller must handle (writeback / migration).
     */
    std::optional<Eviction> fill(CoreId core, LineAddr line,
                                 HostState state, bool dirty,
                                 std::uint64_t data);

    /** Host-level state of a line (I if not cached). */
    HostState stateOf(LineAddr line) const;

    /** Change the host-level state of a cached line (up/downgrades). */
    void setState(LineAddr line, HostState state);

    /**
     * Remove a line everywhere in the host (remote invalidation or recall).
     * @return the line's content if it was cached
     */
    std::optional<Eviction> invalidateLine(LineAddr line);

    /** Data token of a cached line (panics if absent). */
    std::uint64_t dataOf(LineAddr line) const;

    /** Mark a cached line clean (after its dirty data was written back). */
    void markClean(LineAddr line);

    /** Drop every cached line, returning dirty ones for writeback. */
    std::vector<Eviction> flushAll();

    Cycles l1RoundTrip() const { return l1Rt_; }
    Cycles llcRoundTrip() const { return llcRt_; }

    StatGroup &stats() { return stats_; }

    Counter l1Hits;
    Counter llcHits;
    Counter misses;
    Counter llcEvictions;

  private:
    struct L1Meta
    {
        bool dirty = false;
    };

    struct LlcMeta
    {
        HostState state = HostState::I;
        bool dirty = false;
        std::uint64_t data = 0;
    };

    /** Invalidate a line from every L1 except `except` (-1: all). */
    void dropFromL1s(LineAddr line, int except);

    unsigned numCores_;
    Cycles l1Rt_;
    Cycles llcRt_;
    std::vector<SetAssoc<L1Meta>> l1s_;   ///< one per core
    SetAssoc<LlcMeta> llc_;
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_CACHE_HIERARCHY_HH
