/**
 * @file
 * Per-host cache hierarchy: one private L1 per core plus an inclusive
 * shared LLC.
 *
 * The local coherence directory of Fig. 2 is modelled as the LLC's tag
 * metadata: because the hierarchy is inclusive, the set of lines a host
 * caches equals its LLC content, and the host-level coherence state
 * (HostState) is stored alongside each LLC line. Lines in the PIPM I'
 * state live in local DRAM, not in any cache, so they consume no
 * space here (see coherence/state.hh).
 *
 * The hierarchy is purely functional-plus-occupancy: callers charge hit
 * latencies from the config and drive coherence transactions on misses.
 * Each line carries a 64-bit data token so that integration tests can
 * check the single-writer-multiple-reader and data-value invariants.
 */

#ifndef PIPM_CACHE_HIERARCHY_HH
#define PIPM_CACHE_HIERARCHY_HH

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "cache/set_assoc.hh"
#include "coherence/state.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** Where a lookup was satisfied. */
enum class HitLevel : std::uint8_t { l1, llc, miss };

/** The cache hierarchy of a single host. */
class CacheHierarchy
{
  public:
    /** A line leaving the LLC (capacity eviction or invalidation). */
    struct Eviction
    {
        LineAddr line = 0;
        HostState state = HostState::I;
        bool dirty = false;
        std::uint64_t data = 0;
    };

    /** Outcome of a lookup. */
    struct LookupResult
    {
        HitLevel level = HitLevel::miss;
        HostState state = HostState::I;   ///< host-level state (I on miss)
    };

    /** Outcome of a fused cachedAccess (probe + completion). */
    struct CachedAccess
    {
        HitLevel level = HitLevel::miss;
        HostState state = HostState::I;   ///< state at probe time (I on miss)
        std::uint64_t data = 0;           ///< read data (valid on hits)
        bool completed = false;           ///< write applied (state was M/ME)
    };

    CacheHierarchy(const SystemConfig &cfg, std::uint64_t seed);

    /**
     * Probe the hierarchy for a demand access. Updates replacement state
     * on hits but performs no fills, dirty-marking or state changes.
     */
    LookupResult lookup(CoreId core, LineAddr line);

    /**
     * Fused demand access for the hit path (DESIGN.md §9): one scan of
     * the LLC and one of the core's L1 resolve the hit level, refill the
     * L1 on an LLC hit, and complete the read (data out) or the write
     * (dirty + data + cross-L1 invalidation) when the line is writable.
     * A write that finds a non-writable state is left for the caller
     * (`completed` false: upgrade path or recordWrite panic). Misses
     * only count and return. State evolution — counters, replacement
     * order, metadata — is exactly that of the historical
     * lookup/dataOf/fill/recordWrite sequence, with redundant same-entry
     * replacement touches collapsed (order-preserving under LRU).
     */
    CachedAccess cachedAccess(CoreId core, LineAddr line, bool isWrite,
                              std::uint64_t wdata);

    /**
     * Fused fill-and-complete for the miss path: insert the resolved
     * line into LLC + L1 and apply the write (or leave the fill data for
     * the read) in the same scans. Equivalent to fill() followed by
     * recordWrite() on a write; the caller still handles the returned
     * LLC capacity eviction.
     */
    std::optional<Eviction> fillAccess(CoreId core, LineAddr line,
                                       HostState state, bool dirty,
                                       std::uint64_t data, bool isWrite,
                                       std::uint64_t wdata);

    /**
     * Complete a write hit: mark the line dirty, update its data token and
     * invalidate any other core's L1 copy (intra-host coherence).
     * The caller must have upgraded the host state to M/ME first.
     */
    void recordWrite(CoreId core, LineAddr line, std::uint64_t data);

    /**
     * Fill a line into the LLC and the requesting core's L1 after a miss
     * is resolved.
     * @return the LLC capacity eviction caused by the fill, if any,
     *         which the caller must handle (writeback / migration).
     */
    std::optional<Eviction> fill(CoreId core, LineAddr line,
                                 HostState state, bool dirty,
                                 std::uint64_t data);

    /** Host-level state of a line (I if not cached). */
    HostState stateOf(LineAddr line) const;

    /** Change the host-level state of a cached line (up/downgrades). */
    void setState(LineAddr line, HostState state);

    /**
     * Remove a line everywhere in the host (remote invalidation or recall).
     * @return the line's content if it was cached
     */
    std::optional<Eviction> invalidateLine(LineAddr line);

    /** Data token of a cached line (panics if absent). */
    std::uint64_t dataOf(LineAddr line) const;

    /** Mark a cached line clean (after its dirty data was written back). */
    void markClean(LineAddr line);

    /** Drop every cached line, returning dirty ones for writeback. */
    std::vector<Eviction> flushAll();

    Cycles l1RoundTrip() const { return l1Rt_; }
    Cycles llcRoundTrip() const { return llcRt_; }

    StatGroup &stats() { return stats_; }

    Counter l1Hits;
    Counter llcHits;
    Counter misses;
    Counter llcEvictions;

  private:
    struct L1Meta
    {
        bool dirty = false;
    };

    struct LlcMeta
    {
        HostState state = HostState::I;
        bool dirty = false;
        /**
         * Conservative L1-presence mask: bit c set means core c's L1 MAY
         * hold the line (set on every L1 fill, cleared on invalidation;
         * silent L1 capacity evictions leave stale bits). A clear bit
         * proves absence, so cross-L1 invalidations skip those scans.
         * 32 bits keeps the whole record at 16 bytes — the LLC meta
         * strip of a 16-way set is 4 cache lines instead of 6, and every
         * demand access walks that strip.
         */
        std::uint32_t l1Mask = 0;
        std::uint64_t data = 0;
    };

    /**
     * Invalidate a line from every L1 whose mask bit is set, except
     * `except` (-1: all); clears the processed bits.
     */
    void dropFromL1s(LineAddr line, int except, std::uint32_t &mask);

    unsigned numCores_;
    Cycles l1Rt_;
    Cycles llcRt_;
    std::vector<SetAssoc<L1Meta>> l1s_;   ///< one per core
    SetAssoc<LlcMeta> llc_;
    StatGroup stats_;
};

// The fused access primitives live in the header: they are the hottest
// functions in the whole simulator (every demand reference lands here),
// and inlining the scans into the protocol code is worth several
// percent of end-to-end throughput (DESIGN.md §9).

inline void
CacheHierarchy::dropFromL1s(LineAddr line, int except, std::uint32_t &mask)
{
    std::uint32_t pending = mask;
    if (except >= 0)
        pending &= ~(1u << except);
    while (pending) {
        const unsigned c =
            static_cast<unsigned>(std::countr_zero(pending));
        pending &= pending - 1;
        l1s_[c].invalidate(line);
        mask &= ~(1u << c);
    }
}

inline CacheHierarchy::CachedAccess
CacheHierarchy::cachedAccess(CoreId core, LineAddr line, bool isWrite,
                             std::uint64_t wdata)
{
    panic_if(core >= numCores_, "core id ", core, " out of range");
    CachedAccess out;
    LlcMeta *m = llc_.lookup(line);
    if (!m) {
        // Inclusive hierarchy: absent from LLC implies absent from L1s.
        misses.inc();
        return out;
    }
    out.state = m->state;
    // L1 hit: replacement touch, as lookup() did. L1 miss under an LLC
    // hit: refill the L1 (the historical lookup + fill pair).
    std::optional<SetAssoc<L1Meta>::Entry> l1_victim;   // silent L1 drop
    bool l1_resident = false;
    L1Meta *l1 =
        l1s_[core].acquire(line, L1Meta{false}, l1_victim, l1_resident);
    if (l1_resident) {
        l1Hits.inc();
        out.level = HitLevel::l1;
    } else {
        llcHits.inc();
        out.level = HitLevel::llc;
    }
    m->l1Mask |= 1u << core;
    if (isWrite) {
        if (m->state == HostState::M || m->state == HostState::ME) {
            m->dirty = true;
            m->data = wdata;
            dropFromL1s(line, static_cast<int>(core), m->l1Mask);
            l1->dirty = true;
            out.completed = true;
        }
    } else {
        out.data = m->data;
    }
    return out;
}

inline std::optional<CacheHierarchy::Eviction>
CacheHierarchy::fillAccess(CoreId core, LineAddr line, HostState state,
                           bool dirty, std::uint64_t data, bool isWrite,
                           std::uint64_t wdata)
{
    panic_if(state == HostState::I, "filling line ", line, " in state I");
    std::optional<Eviction> out;
    std::optional<SetAssoc<LlcMeta>::Entry> victim;
    bool resident = false;
    LlcMeta *m =
        llc_.acquire(line, LlcMeta{state, dirty, 0, data}, victim, resident);
    if (resident) {
        // Already resident (e.g. upgrade fill): refresh state/data.
        m->state = state;
        m->dirty = m->dirty || dirty;
        m->data = data;
    } else if (victim) {
        llcEvictions.inc();
        dropFromL1s(victim->key, -1, victim->meta.l1Mask);
        out = Eviction{victim->key, victim->meta.state, victim->meta.dirty,
                       victim->meta.data};
    }
    std::optional<SetAssoc<L1Meta>::Entry> l1_victim;   // silent L1 drop
    bool l1_resident = false;
    L1Meta *l1 = l1s_[core].insertOrGet(line, L1Meta{false}, l1_victim,
                                        l1_resident);
    m->l1Mask |= 1u << core;
    if (isWrite) {
        panic_if(m->state != HostState::M && m->state != HostState::ME,
                 "write to line ", line, " in non-writable state ",
                 toString(m->state));
        m->dirty = true;
        m->data = wdata;
        dropFromL1s(line, static_cast<int>(core), m->l1Mask);
        if (l1_resident) {
            // Parity with the historical pair (insertIfAbsent hit, then
            // recordWrite's lookup): the resident entry got one touch.
            l1s_[core].lookup(line);
        }
        l1->dirty = true;
    }
    return out;
}

} // namespace pipm

#endif // PIPM_CACHE_HIERARCHY_HH
