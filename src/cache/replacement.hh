/**
 * @file
 * Replacement policies for set-associative structures.
 *
 * Victim selection is factored out of the cache array so that caches,
 * directories and remapping caches can share policies. Policies operate on
 * small per-line replacement words maintained by the array: LRU uses a
 * monotonically increasing use stamp, SRRIP a 2-bit re-reference counter,
 * Random ignores the word entirely.
 */

#ifndef PIPM_CACHE_REPLACEMENT_HH
#define PIPM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <span>

#include "common/rng.hh"

namespace pipm
{

/** Which victim-selection policy a set-associative structure uses. */
enum class ReplPolicy : std::uint8_t { lru, random, srrip };

/** Per-line replacement state word, interpreted per policy. */
using ReplWord = std::uint64_t;

/** Maximum re-reference prediction value for 2-bit SRRIP. */
static constexpr ReplWord srripMax = 3;

/**
 * Stateless policy functions over one set's replacement words.
 * The cache passes a span of words for valid lines plus its use clock.
 */
class Replacement
{
  public:
    explicit Replacement(ReplPolicy policy, std::uint64_t seed = 1)
        : policy_(policy), rng_(seed)
    {
    }

    /** Initialise the word of a line on fill. */
    ReplWord
    onFill(std::uint64_t use_clock)
    {
        switch (policy_) {
          case ReplPolicy::lru:
            return use_clock;
          case ReplPolicy::srrip:
            return srripMax - 1;   // long re-reference prediction
          case ReplPolicy::random:
            return 0;
        }
        return 0;
    }

    /** Update the word of a line on hit. */
    ReplWord
    onHit(ReplWord word, std::uint64_t use_clock)
    {
        switch (policy_) {
          case ReplPolicy::lru:
            return use_clock;
          case ReplPolicy::srrip:
            return 0;              // near-immediate re-reference
          case ReplPolicy::random:
            return word;
        }
        return word;
    }

    /**
     * Choose a victim among valid ways.
     * @param words replacement words of the valid ways in the set
     * @return index into words of the victim
     */
    std::size_t
    victim(std::span<ReplWord> words)
    {
        switch (policy_) {
          case ReplPolicy::lru: {
            std::size_t best = 0;
            for (std::size_t i = 1; i < words.size(); ++i) {
                if (words[i] < words[best])
                    best = i;
            }
            return best;
          }
          case ReplPolicy::srrip: {
            // Age until some line reaches srripMax, then evict it.
            while (true) {
                for (std::size_t i = 0; i < words.size(); ++i) {
                    if (words[i] >= srripMax)
                        return i;
                }
                for (auto &w : words)
                    ++w;
            }
          }
          case ReplPolicy::random:
            return static_cast<std::size_t>(rng_.below(words.size()));
        }
        return 0;
    }

    ReplPolicy policy() const { return policy_; }

  private:
    ReplPolicy policy_;
    Rng rng_;
};

} // namespace pipm

#endif // PIPM_CACHE_REPLACEMENT_HH
