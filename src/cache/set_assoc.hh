/**
 * @file
 * Generic set-associative array used for caches, coherence directories and
 * remapping caches.
 *
 * The array is keyed by an arbitrary 64-bit key (a line address for caches,
 * a page frame for remapping caches) and stores per-entry metadata of type
 * Meta. Timing is not modelled here; callers charge their own hit/miss
 * latencies. The simulator resolves each miss atomically, so no MSHRs are
 * needed at this layer — memory-level parallelism is modelled by the core's
 * instruction window instead (see sim/core.hh).
 *
 * Storage is structure-of-arrays with one-byte tag fingerprints: each way
 * has a tag byte (0 = empty, else a 7-bit hash fingerprint with the top
 * bit set), so the way scan of a lookup reads a 16-byte tag strip — one
 * cache line for a 16-way set, eight ways per SWAR step — and touches the
 * full 8-byte keys only on a fingerprint match (~1/128 false-positive
 * rate per way). Replacement words and Meta payloads live in separate
 * arrays that only hits and fills touch. Lookups dominate the simulator's
 * hot path (tens of millions of directory and LLC probes per run), which
 * makes the scan footprint a first-order throughput term; see DESIGN.md
 * §9.
 */

#ifndef PIPM_CACHE_SET_ASSOC_HH
#define PIPM_CACHE_SET_ASSOC_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/logging.hh"
#include "common/swar.hh"

namespace pipm
{

/**
 * A set-associative array of Meta entries keyed by 64-bit keys.
 * @tparam Meta per-entry payload (must be default-constructible)
 */
template <typename Meta>
class SetAssoc
{
  public:
    /** Upper bound on associativity (stack scratch sizing). */
    static constexpr unsigned maxWays = 64;

    /** One resident entry, exposed to callers on hit/eviction. */
    struct Entry
    {
        std::uint64_t key = 0;
        Meta meta{};
    };

    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     * @param policy replacement policy
     * @param seed RNG seed for random replacement
     */
    SetAssoc(unsigned sets, unsigned ways,
             ReplPolicy policy = ReplPolicy::lru, std::uint64_t seed = 1)
        : sets_(sets), ways_(ways), repl_(policy, seed),
          tags_(static_cast<std::size_t>(sets) * ways, 0),
          keys_(static_cast<std::size_t>(sets) * ways, 0),
          replWords_(static_cast<std::size_t>(sets) * ways, 0),
          meta_(static_cast<std::size_t>(sets) * ways)
    {
        panic_if(sets == 0 || (sets & (sets - 1)) != 0,
                 "set count must be a nonzero power of two, got ", sets);
        panic_if(ways == 0, "associativity must be positive");
    }

    /** Build with a total capacity in entries instead of explicit sets. */
    static SetAssoc
    withCapacity(std::uint64_t entries, unsigned ways,
                 ReplPolicy policy = ReplPolicy::lru, std::uint64_t seed = 1)
    {
        std::uint64_t sets = entries / ways;
        // Round down to a power of two; a slightly smaller cache is the
        // honest direction for a capacity that does not divide evenly.
        std::uint64_t p2 = 1;
        while (p2 * 2 <= sets)
            p2 *= 2;
        return SetAssoc(static_cast<unsigned>(p2 ? p2 : 1), ways, policy,
                        seed);
    }

    /** Look up a key; updates replacement state on hit. */
    Meta *
    lookup(std::uint64_t key)
    {
        const std::size_t i = find(key);
        if (i == npos)
            return nullptr;
        replWords_[i] = repl_.onHit(replWords_[i], ++useClock_);
        return &meta_[i];
    }

    /** Look up without touching replacement state (probe). */
    const Meta *
    probe(std::uint64_t key) const
    {
        const std::size_t i = find(key);
        return i == npos ? nullptr : &meta_[i];
    }

    /**
     * Insert a key, evicting a victim from its set if full.
     * @param key the new key (must not already be present)
     * @param meta payload for the new entry
     * @return the evicted entry, if any
     */
    std::optional<Entry>
    insert(std::uint64_t key, Meta meta)
    {
        // One pass over the set checks the no-duplicate invariant and
        // finds a free way at the same time.
        const std::uint64_t h = hashOf(key);
        const std::size_t base = baseOf(h);
        const std::uint8_t fp = fpOf(h);
        std::size_t free_way;
        panic_if(scanSet(base, fp, key, free_way) != npos,
                 "duplicate insert of key ", key);
        if (free_way != npos) {
            fill(base + free_way, fp, key, std::move(meta));
            return std::nullopt;
        }
        return evictAndFill(base, fp, key, std::move(meta));
    }

    /**
     * Insert a key unless it is already resident; the resident case
     * leaves the entry and its replacement state untouched.
     * @return the evicted entry, if the insert displaced one
     */
    std::optional<Entry>
    insertIfAbsent(std::uint64_t key, Meta meta)
    {
        const std::uint64_t h = hashOf(key);
        const std::size_t base = baseOf(h);
        const std::uint8_t fp = fpOf(h);
        std::size_t free_way;
        if (scanSet(base, fp, key, free_way) != npos)
            return std::nullopt;
        if (free_way != npos) {
            fill(base + free_way, fp, key, std::move(meta));
            return std::nullopt;
        }
        return evictAndFill(base, fp, key, std::move(meta));
    }

    /**
     * Single-scan fill: return the resident entry after an onHit touch,
     * or insert the key (evicting if the set is full). Equivalent to
     * `lookup(key)` followed by `insert` on miss, in one way scan.
     * @param evicted receives the displaced entry, if any
     * @return the resident Meta, or nullptr when the key was inserted
     */
    Meta *
    fetchOrInsert(std::uint64_t key, Meta meta,
                  std::optional<Entry> &evicted)
    {
        const std::uint64_t h = hashOf(key);
        const std::size_t base = baseOf(h);
        const std::uint8_t fp = fpOf(h);
        std::size_t free_way;
        const std::size_t i = scanSet(base, fp, key, free_way);
        if (i != npos) {
            replWords_[i] = repl_.onHit(replWords_[i], ++useClock_);
            return &meta_[i];
        }
        if (free_way != npos)
            fill(base + free_way, fp, key, std::move(meta));
        else
            evicted = evictAndFill(base, fp, key, std::move(meta));
        return nullptr;
    }

    /**
     * Single-scan acquire: like fetchOrInsert, but the returned pointer
     * is always valid — the resident entry after an onHit touch, or the
     * freshly inserted one. `resident` tells the caller which happened.
     * @param evicted receives the displaced entry, if any
     */
    Meta *
    acquire(std::uint64_t key, Meta meta, std::optional<Entry> &evicted,
            bool &resident)
    {
        const std::uint64_t h = hashOf(key);
        const std::size_t base = baseOf(h);
        const std::uint8_t fp = fpOf(h);
        std::size_t free_way;
        const std::size_t i = scanSet(base, fp, key, free_way);
        if (i != npos) {
            replWords_[i] = repl_.onHit(replWords_[i], ++useClock_);
            resident = true;
            return &meta_[i];
        }
        resident = false;
        std::size_t slot = 0;
        if (free_way != npos) {
            slot = base + free_way;
            fill(slot, fp, key, std::move(meta));
        } else {
            evicted = evictAndFill(base, fp, key, std::move(meta), &slot);
        }
        return &meta_[slot];
    }

    /**
     * Single-scan insertIfAbsent that also returns the entry: the
     * resident one untouched (no replacement-state update, matching
     * insertIfAbsent), or the freshly inserted one.
     * @param evicted receives the displaced entry, if any
     */
    Meta *
    insertOrGet(std::uint64_t key, Meta meta, std::optional<Entry> &evicted,
                bool &resident)
    {
        const std::uint64_t h = hashOf(key);
        const std::size_t base = baseOf(h);
        const std::uint8_t fp = fpOf(h);
        std::size_t free_way;
        const std::size_t i = scanSet(base, fp, key, free_way);
        if (i != npos) {
            resident = true;
            return &meta_[i];
        }
        resident = false;
        std::size_t slot = 0;
        if (free_way != npos) {
            slot = base + free_way;
            fill(slot, fp, key, std::move(meta));
        } else {
            evicted = evictAndFill(base, fp, key, std::move(meta), &slot);
        }
        return &meta_[slot];
    }

    /** Remove a key if present; returns its entry. */
    std::optional<Entry>
    invalidate(std::uint64_t key)
    {
        const std::size_t i = find(key);
        if (i == npos)
            return std::nullopt;
        tags_[i] = 0;
        return Entry{keys_[i], meta_[i]};
    }

    /** Apply fn to every valid entry (e.g. flush, stats, invariants). */
    void
    forEach(const std::function<void(const Entry &)> &fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (tags_[i])
                fn(Entry{keys_[i], meta_[i]});
        }
    }

    /** Drop every entry without notifying anyone. */
    void
    clear()
    {
        std::fill(tags_.begin(), tags_.end(),
                  static_cast<std::uint8_t>(0));
    }

    /** Number of valid entries (O(capacity); for stats/tests only). */
    std::uint64_t
    occupancy() const
    {
        std::uint64_t n = 0;
        for (std::uint8_t t : tags_)
            n += t != 0;
        return n;
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::uint64_t capacity() const { return std::uint64_t(sets_) * ways_; }

  private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Multiplicative hash; spreads page-strided keys across sets. */
    static std::uint64_t
    hashOf(std::uint64_t key)
    {
        return key * 0x9e3779b97f4a7c15ull;
    }

    /** First slot of the key's set (hash bits 32..). */
    std::size_t
    baseOf(std::uint64_t h) const
    {
        return static_cast<std::size_t>((h >> 32) & (sets_ - 1)) * ways_;
    }

    /**
     * Tag fingerprint: hash bits 56..62 with the top bit forced so a
     * resident tag is never 0 (the empty marker). Disjoint from the
     * set-index bits up to 2^24 sets.
     */
    static std::uint8_t
    fpOf(std::uint64_t h)
    {
        return static_cast<std::uint8_t>((h >> 56) | 0x80u);
    }

    /**
     * One pass over a set's tag strip, eight ways per step: the way
     * holding `key` (npos if absent) and, through `free_way`, the lowest
     * empty way (npos if the set is full). Exactly the way-order
     * semantics of the byte-at-a-time loop it replaces.
     */
    std::size_t
    scanSet(std::size_t base, std::uint8_t fp, std::uint64_t key,
            std::size_t &free_way) const
    {
        const std::uint8_t *tags = tags_.data() + base;
        const std::uint64_t *keys = keys_.data() + base;
        free_way = npos;
        unsigned w = 0;
        for (; w + 8 <= ways_; w += 8) {
            const std::uint64_t word = swarLoad(tags + w);
            std::uint64_t m = swarMatchMask(word, fp);
            while (m) {
                const unsigned c =
                    w + static_cast<unsigned>(std::countr_zero(m)) / 8;
                if (keys[c] == key) {
                    // A hit never consults free_way; leaving it at the
                    // lowest empty way of *earlier* words only is fine.
                    return base + c;
                }
                m &= m - 1;
            }
            if (free_way == npos) {
                const std::uint64_t z = swarMatchMask(word, 0);
                if (z) {
                    free_way =
                        w + static_cast<unsigned>(std::countr_zero(z)) / 8;
                }
            }
        }
        for (; w < ways_; ++w) {
            const std::uint8_t t = tags[w];
            if (t == 0) {
                if (free_way == npos)
                    free_way = w;
            } else if (t == fp && keys[w] == key) {
                return base + w;
            }
        }
        return npos;
    }

    /** Index of a resident key's way slot, or npos. */
    std::size_t
    find(std::uint64_t key) const
    {
        const std::uint64_t h = hashOf(key);
        const std::size_t base = baseOf(h);
        const std::uint8_t fp = fpOf(h);
        const std::uint8_t *tags = tags_.data() + base;
        const std::uint64_t *keys = keys_.data() + base;
        unsigned w = 0;
        for (; w + 8 <= ways_; w += 8) {
            std::uint64_t m = swarMatchMask(swarLoad(tags + w), fp);
            while (m) {
                const unsigned c =
                    w + static_cast<unsigned>(std::countr_zero(m)) / 8;
                if (keys[c] == key)
                    return base + c;
                m &= m - 1;
            }
        }
        for (; w < ways_; ++w) {
            if (tags[w] == fp && keys[w] == key)
                return base + w;
        }
        return npos;
    }

    void
    fill(std::size_t i, std::uint8_t fp, std::uint64_t key, Meta meta)
    {
        tags_[i] = fp;
        replWords_[i] = repl_.onFill(++useClock_);
        keys_[i] = key;
        meta_[i] = std::move(meta);
    }

    /** Evict the set's policy victim and fill the new key in its place. */
    std::optional<Entry>
    evictAndFill(std::size_t base, std::uint8_t fp, std::uint64_t key,
                 Meta meta, std::size_t *slot_out = nullptr)
    {
        std::size_t victim_way;
        if (repl_.policy() == ReplPolicy::lru) {
            // LRU never mutates the words while choosing, so the argmin
            // runs straight over the stored strip (same first-minimum
            // tie-break as Replacement::victim) — no scratch copy, no
            // out-of-line call on the capacity-fill hot path.
            const ReplWord *words = replWords_.data() + base;
            victim_way = 0;
            for (unsigned w = 1; w < ways_; ++w) {
                if (words[w] < words[victim_way])
                    victim_way = w;
            }
        } else {
            // Associativity is bounded, so the scratch words live on the
            // stack (hot path: one per capacity fill).
            panic_if(ways_ > maxWays, "associativity above ", maxWays);
            ReplWord words[maxWays];
            for (unsigned w = 0; w < ways_; ++w)
                words[w] = replWords_[base + w];
            victim_way = repl_.victim(std::span<ReplWord>(words, ways_));
            // SRRIP ages the whole set while choosing; write them back.
            if (repl_.policy() == ReplPolicy::srrip) {
                for (unsigned w = 0; w < ways_; ++w)
                    replWords_[base + w] = words[w];
            }
        }
        const std::size_t victim = base + victim_way;
        Entry evicted{keys_[victim], std::move(meta_[victim])};
        fill(victim, fp, key, std::move(meta));
        if (slot_out)
            *slot_out = victim;
        return evicted;
    }

    unsigned sets_;
    unsigned ways_;
    Replacement repl_;
    std::uint64_t useClock_ = 0;
    std::vector<std::uint8_t> tags_;     ///< 0 = empty, else fingerprint
    std::vector<std::uint64_t> keys_;    ///< confirmed on tag match only
    std::vector<ReplWord> replWords_;    ///< touched on hit/fill only
    std::vector<Meta> meta_;             ///< touched on hit/fill only
};

} // namespace pipm

#endif // PIPM_CACHE_SET_ASSOC_HH
