/**
 * @file
 * Generic set-associative array used for caches, coherence directories and
 * remapping caches.
 *
 * The array is keyed by an arbitrary 64-bit key (a line address for caches,
 * a page frame for remapping caches) and stores per-entry metadata of type
 * Meta. Timing is not modelled here; callers charge their own hit/miss
 * latencies. The simulator resolves each miss atomically, so no MSHRs are
 * needed at this layer — memory-level parallelism is modelled by the core's
 * instruction window instead (see sim/core.hh).
 */

#ifndef PIPM_CACHE_SET_ASSOC_HH
#define PIPM_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/logging.hh"

namespace pipm
{

/**
 * A set-associative array of Meta entries keyed by 64-bit keys.
 * @tparam Meta per-entry payload (must be default-constructible)
 */
template <typename Meta>
class SetAssoc
{
  public:
    /** Upper bound on associativity (stack scratch sizing). */
    static constexpr unsigned maxWays = 64;

    /** One resident entry, exposed to callers on hit/eviction. */
    struct Entry
    {
        std::uint64_t key = 0;
        Meta meta{};
    };

    /**
     * @param sets number of sets (power of two)
     * @param ways associativity
     * @param policy replacement policy
     * @param seed RNG seed for random replacement
     */
    SetAssoc(unsigned sets, unsigned ways,
             ReplPolicy policy = ReplPolicy::lru, std::uint64_t seed = 1)
        : sets_(sets), ways_(ways), repl_(policy, seed),
          lines_(static_cast<std::size_t>(sets) * ways)
    {
        panic_if(sets == 0 || (sets & (sets - 1)) != 0,
                 "set count must be a nonzero power of two, got ", sets);
        panic_if(ways == 0, "associativity must be positive");
    }

    /** Build with a total capacity in entries instead of explicit sets. */
    static SetAssoc
    withCapacity(std::uint64_t entries, unsigned ways,
                 ReplPolicy policy = ReplPolicy::lru, std::uint64_t seed = 1)
    {
        std::uint64_t sets = entries / ways;
        // Round down to a power of two; a slightly smaller cache is the
        // honest direction for a capacity that does not divide evenly.
        std::uint64_t p2 = 1;
        while (p2 * 2 <= sets)
            p2 *= 2;
        return SetAssoc(static_cast<unsigned>(p2 ? p2 : 1), ways, policy,
                        seed);
    }

    /** Look up a key; updates replacement state on hit. */
    Meta *
    lookup(std::uint64_t key)
    {
        Slot *slot = find(key);
        if (!slot)
            return nullptr;
        slot->repl = repl_.onHit(slot->repl, ++useClock_);
        return &slot->entry.meta;
    }

    /** Look up without touching replacement state (probe). */
    const Meta *
    probe(std::uint64_t key) const
    {
        const Slot *slot = const_cast<SetAssoc *>(this)->find(key);
        return slot ? &slot->entry.meta : nullptr;
    }

    /**
     * Insert a key, evicting a victim from its set if full.
     * @param key the new key (must not already be present)
     * @param meta payload for the new entry
     * @return the evicted entry, if any
     */
    std::optional<Entry>
    insert(std::uint64_t key, Meta meta)
    {
        panic_if(find(key) != nullptr, "duplicate insert of key ", key);
        const std::size_t base = setBase(key);
        // Prefer an invalid way.
        for (unsigned w = 0; w < ways_; ++w) {
            Slot &slot = lines_[base + w];
            if (!slot.valid) {
                fill(slot, key, std::move(meta));
                return std::nullopt;
            }
        }
        // Evict per policy. Associativity is bounded, so the scratch
        // words live on the stack (hot path: one per fill).
        panic_if(ways_ > maxWays, "associativity above ", maxWays);
        ReplWord words[maxWays];
        for (unsigned w = 0; w < ways_; ++w)
            words[w] = lines_[base + w].repl;
        const std::size_t victim_way =
            repl_.victim(std::span<ReplWord>(words, ways_));
        // SRRIP ages the whole set while choosing; write the words back.
        if (repl_.policy() == ReplPolicy::srrip) {
            for (unsigned w = 0; w < ways_; ++w)
                lines_[base + w].repl = words[w];
        }
        Slot &victim = lines_[base + victim_way];
        Entry evicted = victim.entry;
        fill(victim, key, std::move(meta));
        return evicted;
    }

    /** Remove a key if present; returns its entry. */
    std::optional<Entry>
    invalidate(std::uint64_t key)
    {
        Slot *slot = find(key);
        if (!slot)
            return std::nullopt;
        Entry out = slot->entry;
        slot->valid = false;
        return out;
    }

    /** Apply fn to every valid entry (e.g. flush, stats, invariants). */
    void
    forEach(const std::function<void(const Entry &)> &fn) const
    {
        for (const Slot &slot : lines_) {
            if (slot.valid)
                fn(slot.entry);
        }
    }

    /** Apply fn to every valid entry, allowing mutation of the meta. */
    void
    forEachMutable(const std::function<void(Entry &)> &fn)
    {
        for (Slot &slot : lines_) {
            if (slot.valid)
                fn(slot.entry);
        }
    }

    /** Drop every entry without notifying anyone. */
    void
    clear()
    {
        for (Slot &slot : lines_)
            slot.valid = false;
    }

    /** Number of valid entries (O(capacity); for stats/tests only). */
    std::uint64_t
    occupancy() const
    {
        std::uint64_t n = 0;
        for (const Slot &slot : lines_) {
            if (slot.valid)
                ++n;
        }
        return n;
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::uint64_t capacity() const { return std::uint64_t(sets_) * ways_; }

  private:
    struct Slot
    {
        bool valid = false;
        ReplWord repl = 0;
        Entry entry{};
    };

    std::size_t
    setBase(std::uint64_t key) const
    {
        // Multiplicative hash spreads page-strided keys across sets.
        const std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>((h >> 32) & (sets_ - 1)) * ways_;
    }

    Slot *
    find(std::uint64_t key)
    {
        const std::size_t base = setBase(key);
        for (unsigned w = 0; w < ways_; ++w) {
            Slot &slot = lines_[base + w];
            if (slot.valid && slot.entry.key == key)
                return &slot;
        }
        return nullptr;
    }

    void
    fill(Slot &slot, std::uint64_t key, Meta meta)
    {
        slot.valid = true;
        slot.repl = repl_.onFill(++useClock_);
        slot.entry.key = key;
        slot.entry.meta = std::move(meta);
    }

    unsigned sets_;
    unsigned ways_;
    Replacement repl_;
    std::uint64_t useClock_ = 0;
    std::vector<Slot> lines_;
};

} // namespace pipm

#endif // PIPM_CACHE_SET_ASSOC_HH
