#include "coherence/device_directory.hh"

#include <algorithm>

namespace pipm
{

DeviceDirectory::DeviceDirectory(const DirectoryConfig &cfg)
    : slices_(cfg.slices),
      roundTrip_(cfg.roundTrip),
      serviceCycles_(std::max<Cycles>(1, cfg.roundTrip / 8)),
      sliceBusyUntil_(cfg.slices, 0),
      entries_(cfg.sets * cfg.slices, cfg.ways, ReplPolicy::lru),
      stats_("device_dir")
{
    if (slices_ != 0 && (slices_ & (slices_ - 1)) == 0)
        sliceMask_ = slices_ - 1;
    stats_.addCounter(&lookups, "lookups", "directory lookups");
    stats_.addCounter(&recalls, "recalls",
                      "entries recalled for capacity");
}

Cycles
DeviceDirectory::accessLatency(LineAddr line, Cycles now)
{
    lookups.inc();
    lastNow_ = now;
    const unsigned slice =
        sliceMask_ ? static_cast<unsigned>(line) & sliceMask_
                   : static_cast<unsigned>(line % slices_);
    const Cycles start = std::max(now, sliceBusyUntil_[slice]);
    sliceBusyUntil_[slice] = start + serviceCycles_;
    return (start - now) + roundTrip_;
}

DirEntry *
DeviceDirectory::lookup(LineAddr line)
{
    return entries_.lookup(line);
}

const DirEntry *
DeviceDirectory::probe(LineAddr line) const
{
    return entries_.probe(line);
}

std::optional<DeviceDirectory::Recall>
DeviceDirectory::allocate(LineAddr line, DirEntry entry)
{
    if (trace_ && trace_->lineWatched(line)) {
        trace_->record(ObsEventType::dirAllocate, lastNow_, line,
                       entry.state == DevState::M
                           ? entry.owner(32)
                           : invalidHost,
                       static_cast<std::uint32_t>(entry.state));
    }
    auto victim = entries_.insert(line, entry);
    if (!victim)
        return std::nullopt;
    recalls.inc();
    // The victim's metadata word is dropped with the entry; an
    // outstanding corruption of it is moot (the recall below works on
    // the checksum-protected image we hand back).
    clearCorruption(victim->key);
    if (trace_ && trace_->lineWatched(victim->key)) {
        trace_->record(ObsEventType::dirDeallocate, lastNow_, victim->key,
                       invalidHost,
                       static_cast<std::uint32_t>(victim->meta.state));
    }
    return Recall{victim->key, victim->meta};
}

std::optional<DirEntry>
DeviceDirectory::deallocate(LineAddr line)
{
    auto e = entries_.invalidate(line);
    if (!e)
        return std::nullopt;
    clearCorruption(line);
    if (trace_ && trace_->lineWatched(line)) {
        trace_->record(ObsEventType::dirDeallocate, lastNow_, line,
                       invalidHost,
                       static_cast<std::uint32_t>(e->meta.state));
    }
    return e->meta;
}

bool
DeviceDirectory::corruptEntry(LineAddr line, std::uint64_t bits,
                              bool shadow_hit)
{
    if (!entries_.probe(line) || entryCorrupted(line))
        return false;
    corrupt_[line] = MetaCorruption{bits, shadow_hit};
    return true;
}

const DeviceDirectory::MetaCorruption *
DeviceDirectory::corruptionOf(LineAddr line) const
{
    const auto it = corrupt_.find(line);
    return it == corrupt_.end() ? nullptr : &it->second;
}

void
DeviceDirectory::forEach(
    const std::function<void(LineAddr, const DirEntry &)> &fn) const
{
    entries_.forEach([&](const auto &entry) { fn(entry.key, entry.meta); });
}

} // namespace pipm
