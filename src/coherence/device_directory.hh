/**
 * @file
 * The device coherence directory on the CXL memory node (Fig. 2).
 *
 * Tracks, for each CXL-DSM line cached by any host, the device-level
 * coherence state and the set of sharer hosts. The directory is a finite
 * sliced set-associative structure (Table 2: 2048 sets x 16 ways x 16
 * slices); allocating an entry for a line whose set is full *recalls* a
 * victim line — the caller must invalidate it at its sharers (and collect
 * dirty data) before the new entry is live.
 *
 * Lines in the PIPM I' state are represented by the in-memory bit, not by
 * directory entries, so partial migration reduces directory pressure
 * (§4.3.3 "PIPM does not introduce extra CXL directory resource
 * contention ... but instead reduces it").
 */

#ifndef PIPM_COHERENCE_DEVICE_DIRECTORY_HH
#define PIPM_COHERENCE_DEVICE_DIRECTORY_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>

#include "cache/set_assoc.hh"
#include "coherence/state.hh"
#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"

namespace pipm
{

/** Directory record for one CXL line. */
struct DirEntry
{
    DevState state = DevState::I;
    std::uint32_t sharers = 0;     ///< bitmask of hosts holding the line
    /**
     * Epoch of the owning host when this entry went to state M. A host's
     * epoch advances on every crash and rejoin, so a stale entry naming
     * a since-crashed owner is rejected instead of forwarded to (see
     * MultiHostSystem::cxlAccess and DESIGN.md §8). Meaningless in S.
     */
    std::uint32_t ownerEpoch = 0;

    bool has(HostId h) const { return sharers & (1u << h); }
    void add(HostId h) { sharers |= 1u << h; }
    void remove(HostId h) { sharers &= ~(1u << h); }

    /**
     * The owning host. Only meaningful in state M (debug-asserted): an
     * S entry has no owner, and consulting the first set bit of its mask
     * would silently fabricate one.
     * @param num_hosts bound of the sharer scan (configured host count)
     */
    HostId
    owner(unsigned num_hosts) const
    {
        assert(state == DevState::M &&
               "DirEntry::owner() consulted in a non-owner state");
        for (unsigned h = 0; h < num_hosts; ++h) {
            if (sharers & (1u << h))
                return static_cast<HostId>(h);
        }
        return invalidHost;
    }
};

/** The sliced device directory with recall-on-eviction semantics. */
class DeviceDirectory
{
  public:
    /** A victim entry that must be recalled from its sharers. */
    struct Recall
    {
        LineAddr line = 0;
        DirEntry entry{};
    };

    explicit DeviceDirectory(const DirectoryConfig &cfg);

    /**
     * Charge the latency of one directory access, including slice
     * contention (each slice serves one request per service slot).
     */
    Cycles accessLatency(LineAddr line, Cycles now);

    /** Find the entry for a line; nullptr if untracked (state I). */
    DirEntry *lookup(LineAddr line);

    /** Probe without updating replacement state. */
    const DirEntry *probe(LineAddr line) const;

    /**
     * Allocate an entry for a line (which must be untracked).
     * @return a victim to recall first, if the set was full
     */
    std::optional<Recall> allocate(LineAddr line, DirEntry entry);

    /** Drop the entry for a line (last sharer gone / migrated to I'). */
    std::optional<DirEntry> deallocate(LineAddr line);

    /**
     * Visit every tracked line. Used by the crash sweep (collect the
     * lines referencing a dead host, then mutate via lookup/deallocate)
     * and by invariant checks; fn must not modify the directory.
     */
    void forEach(
        const std::function<void(LineAddr, const DirEntry &)> &fn) const;

    // ---- Metadata fault domain (DESIGN.md §12) ---------------------------
    //
    // A corruption event flips bits in an entry's stored image. Every
    // directory read validates the entry against its per-entry shadow
    // checksum, so corrupted metadata is never *consumed*: the entry is
    // quarantined (the corruption record below) until the scrubber or
    // the faulting demand access rebuilds it — by probing the sharer
    // hosts when the checksum survives, or by the degraded fallback when
    // the fault spans the checksum too. The simulator therefore keeps
    // the pristine image in place and tracks the corruption beside it;
    // what it models is the detection, the repair traffic/latency and
    // the fallback, which is all a checksum-validated directory exposes.

    /** Outstanding corruption of one entry's stored image. */
    struct MetaCorruption
    {
        std::uint64_t bits = 0;   ///< bit-flip mask the fault applied
        bool shadowHit = false;   ///< checksum also hit: unrepairable
    };

    /**
     * Quarantine the entry for `line` as corrupted.
     * @return false when the line is untracked (nothing to corrupt) or
     *         already quarantined
     */
    bool corruptEntry(LineAddr line, std::uint64_t bits, bool shadow_hit);

    /** Whether the entry for `line` is quarantined. */
    bool entryCorrupted(LineAddr line) const
    {
        return !corrupt_.empty() && corrupt_.contains(line);
    }

    /** The corruption record, or nullptr when not quarantined. */
    const MetaCorruption *corruptionOf(LineAddr line) const;

    /** The entry was rebuilt (or dropped): lift the quarantine. */
    void clearCorruption(LineAddr line) { corrupt_.erase(line); }

    /** Quarantined lines in address order (deterministic scrub walk). */
    std::vector<LineAddr> corruptedLines() const
    {
        return corrupt_.sortedKeys();
    }

    std::size_t corruptedCount() const { return corrupt_.size(); }

    /**
     * Attach an event trace (nullptr: detach). Allocations and
     * deallocations of watched lines are recorded; the timestamp is the
     * last accessLatency() clock, since allocate/deallocate are called
     * within the access transaction that already charged the directory
     * trip.
     */
    void attachTrace(ObsTrace *trace) { trace_ = trace; }

    StatGroup &stats() { return stats_; }

    Counter lookups;
    Counter recalls;

  private:
    unsigned slices_;
    // line % slices_ as an AND when the slice count is a power of two
    // (all shipped configs); 0 selects the modulo fallback.
    unsigned sliceMask_ = 0;
    Cycles roundTrip_;
    Cycles serviceCycles_;
    std::vector<Cycles> sliceBusyUntil_;
    SetAssoc<DirEntry> entries_;
    FlatMap<LineAddr, MetaCorruption> corrupt_;   ///< quarantined entries
    ObsTrace *trace_ = nullptr;
    Cycles lastNow_ = 0;   ///< clock of the last accessLatency()
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_COHERENCE_DEVICE_DIRECTORY_HH
