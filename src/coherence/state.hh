/**
 * @file
 * Coherence state taxonomy for multi-host CXL-DSM, including the PIPM
 * extensions of §4.3.2.
 *
 * Host-level states describe a line's status within one host (its local
 * coherence directory / inclusive LLC). Device-level states describe the
 * CXL device coherence directory's view of which hosts cache a CXL line.
 *
 * PIPM adds:
 *  - ME (Migrated-Modified/Exclusive): the line's latest value has been
 *    migrated into this host's local DRAM and is cached exclusively here;
 *    local accesses need no device directory traffic.
 *  - I' (Migrated-Invalid): the line has been migrated into the host's
 *    local DRAM but is not currently cached. I' is *encoded*, not stored:
 *    directory state I plus an in-memory bit of 1 (so it costs no
 *    directory capacity). The simulator represents the in-memory bit as
 *    the per-line bitmap in the local/global remapping state and exposes
 *    I' through queries, exactly mirroring the encoding of Fig. 9.
 */

#ifndef PIPM_COHERENCE_STATE_HH
#define PIPM_COHERENCE_STATE_HH

#include <cstdint>
#include <string_view>

namespace pipm
{

/** Host-level (local directory) stable states. */
enum class HostState : std::uint8_t
{
    I,   ///< not cached in this host
    S,   ///< cached, clean, possibly shared with other hosts
    M,   ///< cached, exclusive and writable (MSI-style M, may be clean)
    ME   ///< PIPM: migrated to local DRAM, cached exclusively here
};

/** Device directory stable states for a CXL line. */
enum class DevState : std::uint8_t
{
    I,   ///< no host caches the line (latest in CXL memory, or I' if bit=1)
    S,   ///< one or more hosts hold clean copies
    M    ///< exactly one host owns the latest (dirty) copy
};

constexpr std::string_view
toString(HostState s)
{
    switch (s) {
      case HostState::I: return "I";
      case HostState::S: return "S";
      case HostState::M: return "M";
      case HostState::ME: return "ME";
    }
    return "?";
}

constexpr std::string_view
toString(DevState s)
{
    switch (s) {
      case DevState::I: return "I";
      case DevState::S: return "S";
      case DevState::M: return "M";
    }
    return "?";
}

} // namespace pipm

#endif // PIPM_COHERENCE_STATE_HH
