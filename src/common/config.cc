#include "common/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace pipm
{

namespace
{

/** Whether p is a probability. */
bool
inUnit(double p)
{
    return p >= 0.0 && p <= 1.0;
}

} // namespace

void
FaultConfig::validate() const
{
    fatal_if(!inUnit(linkErrorRate),
             "fault.linkErrorRate must be in [0,1], got ", linkErrorRate);
    fatal_if(!inUnit(poisonRate),
             "fault.poisonRate must be in [0,1], got ", poisonRate);
    fatal_if(!inUnit(persistentPoisonFrac),
             "fault.persistentPoisonFrac must be in [0,1], got ",
             persistentPoisonFrac);
    fatal_if(!inUnit(migrationAbortRate),
             "fault.migrationAbortRate must be in [0,1], got ",
             migrationAbortRate);
    fatal_if(!inUnit(backoffThreshold),
             "fault.backoffThreshold must be in [0,1], got ",
             backoffThreshold);
    fatal_if(retrainIntervalNs < 0.0,
             "fault.retrainIntervalNs must be non-negative");
    fatal_if(retrainWindowNs < 0.0,
             "fault.retrainWindowNs must be non-negative");
    fatal_if(retrainIntervalNs > 0.0 &&
                 retrainWindowNs >= retrainIntervalNs,
             "fault.retrainWindowNs (", retrainWindowNs,
             ") must be shorter than retrainIntervalNs (",
             retrainIntervalNs, ")");
    fatal_if(crashMeanIntervalNs < 0.0,
             "fault.crashMeanIntervalNs must be non-negative");
    fatal_if(crashRejoinNs < 0.0,
             "fault.crashRejoinNs must be non-negative");
    fatal_if(crashMeanIntervalNs > 0.0 && crashMaxEvents == 0,
             "fault.crashMaxEvents must be positive when crashes are on");
    fatal_if(crashMaxEvents > 4096,
             "fault.crashMaxEvents above 4096 is not a crash schedule, "
             "it is a denial of service");
    fatal_if(leaseNs < 0.0, "fault.leaseNs must be non-negative");
    fatal_if(heartbeatIntervalNs < 0.0,
             "fault.heartbeatIntervalNs must be non-negative");
    fatal_if(leaseNs > 0.0 && heartbeatIntervalNs <= 0.0,
             "fault.heartbeatIntervalNs must be positive when a lease "
             "is configured");
    fatal_if(leaseNs > 0.0 && heartbeatIntervalNs >= leaseNs,
             "fault.heartbeatIntervalNs (", heartbeatIntervalNs,
             ") must be shorter than fault.leaseNs (", leaseNs,
             "): a lease that can expire between renewals suspects "
             "every host");
    fatal_if(leaseNs > 0.0 && txnTimeoutNs <= 0.0,
             "fault.txnTimeoutNs must be positive when a lease is "
             "configured, got ", txnTimeoutNs);
    fatal_if(txnTimeoutNs < 0.0, "fault.txnTimeoutNs must be non-negative");
    fatal_if(txnRetryLimit == 0 && txnBackoffBaseNs > 0.0,
             "fault.txnRetryLimit of 0 with txnBackoffBaseNs ",
             txnBackoffBaseNs, " arms a backoff that can never fire; "
             "set the backoff base to 0 or allow at least one retry");
    fatal_if(txnBackoffBaseNs < 0.0,
             "fault.txnBackoffBaseNs must be non-negative");
    fatal_if(txnBackoffMaxExp > 20,
             "fault.txnBackoffMaxExp above 20 overflows any realistic "
             "run");
    fatal_if(readmitDelayNs < 0.0,
             "fault.readmitDelayNs must be non-negative");
    fatal_if(stallMeanIntervalNs < 0.0,
             "fault.stallMeanIntervalNs must be non-negative");
    fatal_if(stallWindowNs < 0.0, "fault.stallWindowNs must be non-negative");
    fatal_if(stallMeanIntervalNs > 0.0 && leaseNs <= 0.0,
             "fault.stallMeanIntervalNs requires a lease (fault.leaseNs "
             "> 0): gray-failure stalls are only observable through a "
             "failure detector");
    fatal_if(stallMeanIntervalNs > 0.0 && stallWindowNs <= 0.0,
             "fault.stallWindowNs must be positive when stall windows "
             "are on");
    fatal_if(stallMeanIntervalNs > 0.0 && stallMaxEvents == 0,
             "fault.stallMaxEvents must be positive when stall windows "
             "are on");
    fatal_if(stallMaxEvents > 4096,
             "fault.stallMaxEvents above 4096 is not a stall schedule, "
             "it is a denial of service");
    fatal_if(metaCorruptMeanIntervalNs < 0.0,
             "fault.metaCorruptMeanIntervalNs must be non-negative");
    fatal_if(!inUnit(metaShadowHitFrac),
             "fault.metaShadowHitFrac must be in [0,1], got ",
             metaShadowHitFrac);
    fatal_if(metaCorruptMeanIntervalNs > 0.0 && metaCorruptMaxEvents == 0,
             "fault.metaCorruptMaxEvents must be positive when metadata "
             "corruption is on");
    fatal_if(metaCorruptMaxEvents > 4096,
             "fault.metaCorruptMaxEvents above 4096 is not a corruption "
             "schedule, it is a denial of service");
    fatal_if(metaJournalPages > 4096,
             "fault.metaJournalPages above 4096 is not a journal, it is "
             "an unbounded log");
    fatal_if(metaScrubIntervalNs < 0.0,
             "fault.metaScrubIntervalNs must be non-negative");
    fatal_if(metaCorruptMeanIntervalNs > 0.0 && metaScrubIntervalNs <= 0.0,
             "fault.metaScrubIntervalNs must be positive when metadata "
             "corruption is on: corruption that is never scrubbed never "
             "heals");
    fatal_if(metaCorruptMeanIntervalNs > 0.0 && metaScrubBudget == 0,
             "fault.metaScrubBudget must be positive when metadata "
             "corruption is on");
    fatal_if(metaCorruptMeanIntervalNs > 0.0 && metaBreakerThreshold == 0,
             "fault.metaBreakerThreshold must be positive when metadata "
             "corruption is on");
    fatal_if(metaCorruptMeanIntervalNs > 0.0 && metaBreakerWindowNs <= 0.0,
             "fault.metaBreakerWindowNs must be positive when metadata "
             "corruption is on");
    fatal_if(metaCorruptMeanIntervalNs > 0.0 &&
                 metaBreakerCooldownNs <= 0.0,
             "fault.metaBreakerCooldownNs must be positive when metadata "
             "corruption is on");
    fatal_if(metaBreakerMaxExp > 20,
             "fault.metaBreakerMaxExp above 20 overflows any realistic "
             "run");
    fatal_if(metaCorruptMeanIntervalNs > 0.0 && metaBreakerGroupPages == 0,
             "fault.metaBreakerGroupPages must be positive when metadata "
             "corruption is on");
    fatal_if(backoffWindow == 0, "fault.backoffWindow must be positive");
    fatal_if(backoffBaseNs < 0.0,
             "fault.backoffBaseNs must be non-negative");
    fatal_if(backoffMaxExp > 20,
             "fault.backoffMaxExp above 20 overflows any realistic run");
}

unsigned
FaultConfig::activeDomains() const
{
    if (!enabled)
        return 0;
    unsigned n = 0;
    // §7: anything that perturbs the link/media fault stream.
    if (linkErrorRate > 0.0 || retrainIntervalNs > 0.0 ||
        poisonRate > 0.0 || migrationAbortRate > 0.0)
        ++n;
    if (crashMeanIntervalNs > 0.0)                        // §8
        ++n;
    if (leaseNs > 0.0 || stallMeanIntervalNs > 0.0)       // §11
        ++n;
    if (metaCorruptMeanIntervalNs > 0.0)                  // §12
        ++n;
    return n;
}

void
SystemConfig::validate() const
{
    fatal_if(numHosts == 0 || numHosts > 32,
             "numHosts must be in [1,32] (5-bit host IDs), got ", numHosts);
    fatal_if(coresPerHost == 0, "coresPerHost must be positive");
    fatal_if(footprintScale == 0, "footprintScale must be positive");
    fatal_if(timeScale == 0, "timeScale must be positive");
    fatal_if(localBytesPerHost() < pageBytes,
             "local DRAM per host smaller than one page");
    fatal_if(cxlPoolBytes() < pageBytes, "CXL pool smaller than one page");
    fatal_if(l1Scale == 0 || llcScale == 0, "cache scales must be positive");
    fatal_if(l1.ways == 0 || llcPerCore.ways == 0,
             "cache associativity must be positive");
    fatal_if((l1Bytes() % (lineBytes * l1.ways)) != 0,
             "scaled L1 size not divisible into sets");
    fatal_if((llcBytesPerCore() % (lineBytes * llcPerCore.ways)) != 0,
             "scaled LLC size not divisible into sets");
    // SetAssoc requires power-of-two set counts; reject here with the
    // geometry spelled out instead of letting its constructor panic
    // deep inside system construction.
    const auto pow2 = [](std::uint64_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    fatal_if(!pow2(l1Bytes() / (lineBytes * l1.ways)),
             "scaled L1 set count must be a power of two, got ",
             l1Bytes() / (lineBytes * l1.ways), " (", l1Bytes(),
             " B / ", l1.ways, " ways)");
    fatal_if(!pow2(llcBytesPerCore() * coresPerHost /
                   (lineBytes * llcPerCore.ways)),
             "scaled LLC set count must be a power of two, got ",
             llcBytesPerCore() * coresPerHost /
                 (lineBytes * llcPerCore.ways),
             " (", llcBytesPerCore(), " B per core x ", coresPerHost,
             " cores / ", llcPerCore.ways, " ways)");
    fatal_if(!pow2(static_cast<std::uint64_t>(deviceDirectory.sets) *
                   deviceDirectory.slices),
             "device directory sets x slices must be a power of two, "
             "got ", deviceDirectory.sets, " x ",
             deviceDirectory.slices);
    fatal_if(core.width == 0, "core retire width must be positive");
    fatal_if(core.robEntries == 0, "ROB size must be positive");
    fatal_if(core.mshrs == 0, "core MSHR count must be positive");
    fatal_if(link.bytesPerNs <= 0.0,
             "CXL link bandwidth must be positive, got ", link.bytesPerNs);
    fatal_if(link.latencyNs < 0.0, "CXL link latency must be non-negative");
    fatal_if(link.hasSwitch && link.switchBytesPerNs <= 0.0,
             "CXL switch bandwidth must be positive, got ",
             link.switchBytesPerNs);
    fatal_if(localDram.bytesPerCycle <= 0.0 ||
                 cxlDram.bytesPerCycle <= 0.0,
             "DRAM bandwidth must be positive");
    fatal_if(localDram.channels == 0 || cxlDram.channels == 0,
             "DRAM channel count must be positive");
    fatal_if(deviceDirectory.ways == 0 || deviceDirectory.sets == 0 ||
                 deviceDirectory.slices == 0,
             "device directory geometry must be non-zero");
    fatal_if(localDirectory.ways == 0 || localDirectory.sets == 0,
             "local directory geometry must be non-zero");
    fatal_if(pipm.globalCacheWays == 0 || pipm.localCacheWays == 0,
             "remapping cache associativity must be positive");
    fatal_if(pipm.migrationThreshold == 0,
             "PIPM migration threshold must be positive");
    fatal_if(pipm.globalCounterBits == 0 || pipm.globalCounterBits > 8 ||
                 pipm.localCounterBits == 0 || pipm.localCounterBits > 8,
             "PIPM counter widths must be in [1,8] bits");
    fatal_if(pipm.migrationThreshold >=
                 (1u << pipm.globalCounterBits),
             "migration threshold (", pipm.migrationThreshold,
             ") must fit in the ", pipm.globalCounterBits,
             "-bit global vote counter");
    fatal_if(osMigration.maxPagesPerEpoch == 0,
             "maxPagesPerEpoch must be positive");
    fatal_if(osMigration.intervalMs <= 0.0,
             "osMigration.intervalMs must be positive, got ",
             osMigration.intervalMs);
    fault.validate();
}

std::string
SystemConfig::measurementKey() const
{
    std::ostringstream os;
    os << numHosts << ',' << coresPerHost << ','
       << core.mshrs << ',' << l1Bytes() << ','
       << llcBytesPerCore() << ',' << link.latencyNs << ','
       << link.bytesPerNs << ',' << link.hasSwitch << ','
       << deviceDirectory.sets << ',' << pipm.globalCacheBytes
       << ',' << pipm.localCacheBytes << ','
       << pipm.infiniteGlobalCache << ','
       << pipm.infiniteLocalCache << ','
       << pipm.migrationThreshold << ','
       << osMigration.intervalMs << ','
       << osMigration.maxPagesPerEpoch << ','
       << osMigration.hotThreshold << ','
       << footprintScale << ',' << timeScale << ','
       << migrationBytesScale << ',' << l1Scale << ','
       << llcScale;
    if (fault.enabled) {
        // Appended only when faults are on so that fault-free keys (and
        // the entries cached before fault injection existed) are stable.
        os << ",fault:" << fault.seed << ',' << fault.linkErrorRate
           << ',' << fault.retrainIntervalNs << ','
           << fault.retrainWindowNs << ',' << fault.poisonRate
           << ',' << fault.persistentPoisonFrac << ','
           << fault.migrationAbortRate << ','
           << fault.backoffWindow << ',' << fault.backoffThreshold
           << ',' << fault.backoffBaseNs << ','
           << fault.backoffMaxExp;
        if (fault.crashMeanIntervalNs > 0.0) {
            // Appended only when a crash schedule is on, keeping crash-free
            // fault keys identical to what they were before host crashes
            // existed.
            os << ",crash:" << fault.crashMeanIntervalNs << ','
               << fault.crashRejoinNs << ','
               << fault.crashMaxEvents << ','
               << static_cast<unsigned>(fault.crashRecovery);
        }
        if (fault.leaseNs > 0.0) {
            // Appended only when the lease detector is on, keeping
            // oracle-mode (leaseNs == 0) keys identical to what they were
            // before detected failures existed.
            os << ",lease:" << fault.leaseNs << ','
               << fault.heartbeatIntervalNs << ',' << fault.txnTimeoutNs
               << ',' << fault.txnRetryLimit << ','
               << fault.txnBackoffBaseNs << ',' << fault.txnBackoffMaxExp
               << ',' << fault.readmitDelayNs << ','
               << fault.stallMeanIntervalNs << ',' << fault.stallWindowNs
               << ',' << fault.stallMaxEvents;
        }
        if (fault.metaCorruptMeanIntervalNs > 0.0) {
            // Appended only when metadata corruption is on, keeping
            // corruption-free keys identical to what they were before the
            // device-metadata fault domain existed.
            os << ",meta:" << fault.metaCorruptMeanIntervalNs << ','
               << fault.metaCorruptMaxEvents << ','
               << fault.metaShadowHitFrac << ','
               << fault.metaJournalPages << ','
               << fault.metaScrubIntervalNs << ','
               << fault.metaScrubBudget << ','
               << fault.metaBreakerThreshold << ','
               << fault.metaBreakerWindowNs << ','
               << fault.metaBreakerCooldownNs << ','
               << fault.metaBreakerMaxExp << ','
               << fault.metaBreakerGroupPages;
        }
    }
    return os.str();
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << "Architecture     | " << numHosts << " hosts, 1 single-socket CPU "
       << "each host\n"
       << "CPU              | " << coresPerHost << " OoO cores, 4GHz, "
       << core.width << "-wide, " << core.robEntries << "-entry ROB, "
       << core.loadQueue << "-entry LQ, " << core.storeQueue
       << "-entry SQ\n"
       << "Private L1-(I/D) | " << l1.sizeBytes / 1024 << "KB, " << l1.ways
       << "-way, " << l1.roundTrip << " cycle RT latency\n"
       << "Shared LLC       | " << llcPerCore.sizeBytes / (1024 * 1024)
       << "MB per core, " << llcPerCore.ways << "-way, "
       << llcPerCore.roundTrip << "-cycle RT latency\n"
       << "DRAM             | " << cxlDram.channels << "x DDR5-4800 channels "
       << (cxlPoolBytesFull >> 30) << "GB CXL-DSM; " << localDram.channels
       << "x DDR5-4800 channel " << (localBytesPerHostFull >> 30)
       << "GB DRAM per host (footprint scale 1/" << footprintScale << ")\n"
       << "tRC-tRCD-tCL-tRP | " << localDram.tRCns << "-" << localDram.tRCDns
       << "-" << localDram.tCLns << "-" << localDram.tRPns << " ns\n"
       << "CXL link         | latency: " << link.latencyNs
       << "ns, bandwidth: " << link.bytesPerNs
       << "GB/s (per direction)\n"
       << "CXL Directory    | " << deviceDirectory.sets << "-set, "
       << deviceDirectory.ways << "-way per slice, "
       << deviceDirectory.slices << " slices, "
       << deviceDirectory.roundTrip / 2 << "-cycle RT @2GHz\n"
       << "PIPM parameters  | " << pipm.globalCacheBytes / 1024
       << "KB " << pipm.globalCacheWays << "-way global remapping cache, "
       << pipm.globalCacheRoundTrip << "-cycle RT; "
       << pipm.localCacheBytes / (1024 * 1024) << "MB "
       << pipm.localCacheWays << "-way local remapping cache, "
       << pipm.localCacheRoundTrip << "-cycle RT; Migration threshold: "
       << pipm.migrationThreshold << "\n"
       << "OS migration     | interval " << osMigration.intervalMs
       << "ms, 4KB costs " << osMigration.perPageInitiatorUs
       << "us initiator / " << osMigration.perPageOtherUs
       << "us others (time scale 1/" << timeScale << ")\n";
    return os.str();
}

SystemConfig
defaultConfig()
{
    SystemConfig cfg;      // Table 2 values are the member defaults.
    cfg.validate();
    return cfg;
}

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.numHosts = 2;
    cfg.coresPerHost = 1;
    cfg.l1 = CacheConfig{4 * 1024, 4, 4};
    cfg.llcPerCore = CacheConfig{64 * 1024, 8, 24};
    cfg.l1Scale = 1;      // test sizes are already small
    cfg.llcScale = 1;
    cfg.localBytesPerHostFull = 64ull << 20;   // 64 MB
    cfg.cxlPoolBytesFull = 256ull << 20;       // 256 MB
    cfg.footprintScale = 4;                    // -> 16 MB local, 64 MB CXL
    cfg.timeScale = 1000;
    cfg.pipm.globalCacheBytes = 4 * 1024;
    cfg.pipm.localCacheBytes = 64 * 1024;
    cfg.deviceDirectory.sets = 256;
    cfg.localDirectory.sets = 256;
    cfg.validate();
    return cfg;
}

FaultConfig
paperFaultConfig(std::uint64_t seed)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    f.linkErrorRate = 5e-4;
    f.retrainIntervalNs = 200'000.0;   // one window per 0.2 ms per host
    f.retrainWindowNs = 2'000.0;
    f.poisonRate = 1e-4;
    f.persistentPoisonFrac = 0.25;
    f.migrationAbortRate = 0.02;
    f.validate();
    return f;
}

FaultConfig
paperCrashFaultConfig(std::uint64_t seed, double mean_interval_ns,
                      double rejoin_ns)
{
    FaultConfig f = paperFaultConfig(seed);
    f.crashMeanIntervalNs = mean_interval_ns;
    f.crashRejoinNs = rejoin_ns;
    f.validate();
    return f;
}

FaultConfig
paperSuspicionFaultConfig(std::uint64_t seed, double lease_ns,
                          double stall_mean_interval_ns)
{
    FaultConfig f = paperCrashFaultConfig(seed);
    f.leaseNs = lease_ns;
    f.heartbeatIntervalNs = lease_ns / 5.0;
    f.txnTimeoutNs = 2'000.0;
    f.txnRetryLimit = 3;
    f.txnBackoffBaseNs = 1'000.0;
    f.txnBackoffMaxExp = 3;
    f.readmitDelayNs = 10'000.0;
    f.stallMeanIntervalNs = stall_mean_interval_ns;
    // Mean window length 1.5x the lease: drawn lengths span
    // [0.75, 2.25] x lease, so some stalls are ridden out by retries and
    // the rest expire the lease and fence the (alive) host.
    f.stallWindowNs = 1.5 * lease_ns;
    f.validate();
    return f;
}

void
addPaperMetaFaults(FaultConfig &fault, double mean_interval_ns)
{
    fault.metaCorruptMeanIntervalNs = mean_interval_ns;
    // Member defaults for the remaining §12 knobs (shadow-hit fraction,
    // journal capacity, scrub cadence/budget, breaker shape) are the
    // paper configuration; only the event rate is a parameter.
    fault.validate();
}

FaultConfig
paperMetaFaultConfig(std::uint64_t seed, double mean_interval_ns)
{
    FaultConfig f = paperFaultConfig(seed);
    addPaperMetaFaults(f, mean_interval_ns);
    return f;
}

} // namespace pipm
