#include "common/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace pipm
{

void
SystemConfig::validate() const
{
    fatal_if(numHosts == 0 || numHosts > 32,
             "numHosts must be in [1,32] (5-bit host IDs), got ", numHosts);
    fatal_if(coresPerHost == 0, "coresPerHost must be positive");
    fatal_if(footprintScale == 0, "footprintScale must be positive");
    fatal_if(timeScale == 0, "timeScale must be positive");
    fatal_if(localBytesPerHost() < pageBytes,
             "local DRAM per host smaller than one page");
    fatal_if(cxlPoolBytes() < pageBytes, "CXL pool smaller than one page");
    fatal_if(l1Scale == 0 || llcScale == 0, "cache scales must be positive");
    fatal_if((l1Bytes() % (lineBytes * l1.ways)) != 0,
             "scaled L1 size not divisible into sets");
    fatal_if((llcBytesPerCore() % (lineBytes * llcPerCore.ways)) != 0,
             "scaled LLC size not divisible into sets");
    fatal_if(pipm.migrationThreshold == 0,
             "PIPM migration threshold must be positive");
    fatal_if(pipm.migrationThreshold >=
                 (1u << pipm.globalCounterBits),
             "migration threshold must fit in the global counter");
    fatal_if(osMigration.maxPagesPerEpoch == 0,
             "maxPagesPerEpoch must be positive");
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << "Architecture     | " << numHosts << " hosts, 1 single-socket CPU "
       << "each host\n"
       << "CPU              | " << coresPerHost << " OoO cores, 4GHz, "
       << core.width << "-wide, " << core.robEntries << "-entry ROB, "
       << core.loadQueue << "-entry LQ, " << core.storeQueue
       << "-entry SQ\n"
       << "Private L1-(I/D) | " << l1.sizeBytes / 1024 << "KB, " << l1.ways
       << "-way, " << l1.roundTrip << " cycle RT latency\n"
       << "Shared LLC       | " << llcPerCore.sizeBytes / (1024 * 1024)
       << "MB per core, " << llcPerCore.ways << "-way, "
       << llcPerCore.roundTrip << "-cycle RT latency\n"
       << "DRAM             | " << cxlDram.channels << "x DDR5-4800 channels "
       << (cxlPoolBytesFull >> 30) << "GB CXL-DSM; " << localDram.channels
       << "x DDR5-4800 channel " << (localBytesPerHostFull >> 30)
       << "GB DRAM per host (footprint scale 1/" << footprintScale << ")\n"
       << "tRC-tRCD-tCL-tRP | " << localDram.tRCns << "-" << localDram.tRCDns
       << "-" << localDram.tCLns << "-" << localDram.tRPns << " ns\n"
       << "CXL link         | latency: " << link.latencyNs
       << "ns, bandwidth: " << link.bytesPerNs
       << "GB/s (per direction)\n"
       << "CXL Directory    | " << deviceDirectory.sets << "-set, "
       << deviceDirectory.ways << "-way per slice, "
       << deviceDirectory.slices << " slices, "
       << deviceDirectory.roundTrip / 2 << "-cycle RT @2GHz\n"
       << "PIPM parameters  | " << pipm.globalCacheBytes / 1024
       << "KB " << pipm.globalCacheWays << "-way global remapping cache, "
       << pipm.globalCacheRoundTrip << "-cycle RT; "
       << pipm.localCacheBytes / (1024 * 1024) << "MB "
       << pipm.localCacheWays << "-way local remapping cache, "
       << pipm.localCacheRoundTrip << "-cycle RT; Migration threshold: "
       << pipm.migrationThreshold << "\n"
       << "OS migration     | interval " << osMigration.intervalMs
       << "ms, 4KB costs " << osMigration.perPageInitiatorUs
       << "us initiator / " << osMigration.perPageOtherUs
       << "us others (time scale 1/" << timeScale << ")\n";
    return os.str();
}

SystemConfig
defaultConfig()
{
    SystemConfig cfg;      // Table 2 values are the member defaults.
    cfg.validate();
    return cfg;
}

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.numHosts = 2;
    cfg.coresPerHost = 1;
    cfg.l1 = CacheConfig{4 * 1024, 4, 4};
    cfg.llcPerCore = CacheConfig{64 * 1024, 8, 24};
    cfg.l1Scale = 1;      // test sizes are already small
    cfg.llcScale = 1;
    cfg.localBytesPerHostFull = 64ull << 20;   // 64 MB
    cfg.cxlPoolBytesFull = 256ull << 20;       // 256 MB
    cfg.footprintScale = 4;                    // -> 16 MB local, 64 MB CXL
    cfg.timeScale = 1000;
    cfg.pipm.globalCacheBytes = 4 * 1024;
    cfg.pipm.localCacheBytes = 64 * 1024;
    cfg.deviceDirectory.sets = 256;
    cfg.localDirectory.sets = 256;
    cfg.validate();
    return cfg;
}

} // namespace pipm
