/**
 * @file
 * Configuration of the simulated multi-host CXL-DSM machine.
 *
 * Defaults reproduce Table 2 of the paper (the "scaled-down system
 * configuration"): 4 hosts x 4 OoO cores, 32 KB L1s, 2 MB/core shared LLC,
 * DDR5-4800 local DRAM + CXL-DSM pool, 50 ns / 5 GB/s CXL links, a 16-slice
 * device coherence directory, and the PIPM remapping caches (16 KB global,
 * 1 MB local) with migration threshold 8.
 *
 * Two additional scale knobs keep experiments laptop-sized (see DESIGN.md):
 *
 *  - footprintScale divides every workload footprint (48 GB -> 768 MB at
 *    the default of 64) together with the DRAM capacities, preserving the
 *    working-set-to-LLC and pages-to-remap-cache ratios;
 *  - timeScale divides the OS page-migration epoch *and* every per-epoch
 *    kernel cost by the same factor, preserving the overhead ratios that
 *    Fig. 4 measures while shrinking the cycles simulated per epoch.
 *
 * Demand-access latencies (cache, DRAM, CXL link) are never scaled; they
 * are the physics under study.
 */

#ifndef PIPM_COMMON_CONFIG_HH
#define PIPM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pipm
{

/** Core clock: 4 GHz, so 1 ns is 4 cycles. */
static constexpr unsigned cyclesPerNs = 4;

/** Convert nanoseconds to core cycles. */
constexpr Cycles
nsToCycles(double ns)
{
    return static_cast<Cycles>(ns * cyclesPerNs);
}

/** Out-of-order core parameters (Table 2). */
struct CoreConfig
{
    unsigned width = 6;           ///< retire width per cycle
    unsigned robEntries = 224;    ///< in-flight instruction window
    unsigned loadQueue = 72;      ///< max outstanding loads
    unsigned storeQueue = 56;     ///< max outstanding stores
    /**
     * L1 miss-status registers: bounds the number of long-latency loads
     * in flight (the LQ also holds cache hits, so it alone would
     * overstate achievable memory-level parallelism).
     */
    unsigned mshrs = 16;
    /** Latency above which a load occupies an MSHR slot. */
    Cycles mshrLatencyThreshold = 40;
};

/** One cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;
    unsigned ways = 8;
    Cycles roundTrip = 4;         ///< hit round-trip latency (core cycles)
};

/** DDR5 channel timing (Table 2: tRC-tRCD-tCL-tRP = 48-15-20-15 ns). */
struct DramConfig
{
    double tRCns = 48.0;
    double tRCDns = 15.0;
    double tCLns = 20.0;
    double tRPns = 15.0;
    unsigned channels = 1;
    unsigned banksPerChannel = 32;
    unsigned rowBytes = 8192;
    /** Peak per-channel bandwidth: DDR5-4800 is 38.4 GB/s ~= 9.6 B/cycle. */
    double bytesPerCycle = 9.6;
    /** Fixed controller/PHY overhead per access. */
    double controllerNs = 10.0;
};

/** One CXL link direction: fixed latency plus serialisation bandwidth. */
struct CxlLinkConfig
{
    double latencyNs = 50.0;       ///< per-direction propagation (Table 2)
    double bytesPerNs = 5.0;       ///< 5 GB/s per direction (Table 2)
    bool hasSwitch = false;        ///< extra hop through a CXL switch
    double switchNs = 25.0;        ///< per-traversal switch latency
    /** Aggregate switch bandwidth per direction (shared by all hosts). */
    double switchBytesPerNs = 20.0;
};

/** Device coherence directory on the CXL memory node (Table 2). */
struct DirectoryConfig
{
    unsigned sets = 2048;
    unsigned ways = 16;
    unsigned slices = 16;
    /** 32-cycle RT at 2 GHz = 16 ns = 64 core cycles. */
    Cycles roundTrip = nsToCycles(16.0);
};

/** The per-host local coherence directory. */
struct LocalDirectoryConfig
{
    unsigned sets = 4096;
    unsigned ways = 16;
    Cycles roundTrip = 8;
};

/** PIPM remapping structures (Sections 4.2 and 4.4, Table 2). */
struct PipmConfig
{
    /** Global remapping cache on the CXL device: 16 KB, 2 B entries. */
    std::uint64_t globalCacheBytes = 16 * 1024;
    unsigned globalCacheWays = 8;
    Cycles globalCacheRoundTrip = 4;
    /** Local remapping cache on each host RC: 1 MB, 4 B entries. */
    std::uint64_t localCacheBytes = 1024 * 1024;
    unsigned localCacheWays = 8;
    Cycles localCacheRoundTrip = 8;
    /** Majority-vote promotion threshold (global counter target). */
    unsigned migrationThreshold = 8;
    /** Width of the per-page global counter (6 bits, §4.2). */
    unsigned globalCounterBits = 6;
    /** Width of the per-page local counter (4 bits, §4.2). */
    unsigned localCounterBits = 4;
    /** Two-level radix local table: root access + leaf access on miss. */
    unsigned tableLevels = 2;
    /** Ideal-size baselines for the Fig. 16/17 sweeps. */
    bool infiniteLocalCache = false;
    bool infiniteGlobalCache = false;
};

/** Per-core TLB (see os/tlb.hh). Off by default: Table 2 does not
 *  specify TLB parameters and the calibrated migration costs already
 *  subsume shootdown overhead; enable to make refill costs emergent. */
struct TlbModelConfig
{
    bool enabled = false;
    unsigned entries = 1536;
    unsigned ways = 8;
    Cycles hitCycles = 1;
    Cycles walkCycles = 120;
};

/**
 * What the device does about dirty data lost with a crashed host (see
 * DESIGN.md §8). Device-resident data always survives a fail-stop; the
 * policy decides how the *stale* device copy of a lost-dirty line is
 * served afterwards.
 */
enum class CrashRecoveryPolicy : std::uint8_t
{
    /** Serve the stale device copy silently (count it as a dirty loss). */
    stale,
    /** Additionally mark lost-dirty lines persistently poisoned, so every
     *  later access takes the degraded uncacheable path and software can
     *  observe the loss. */
    poison
};

/**
 * Fault-injection parameters (see DESIGN.md §7 and §8). All faults are
 * drawn from a dedicated deterministic stream seeded by `seed`, so a
 * fault schedule replays bit-for-bit. A config with `enabled` set but
 * every rate at zero behaves identically to a disabled one (no RNG draws
 * are made), which the replay tests rely on.
 */
struct FaultConfig
{
    bool enabled = false;
    /** Seed of the fault stream (independent of the run seed). */
    std::uint64_t seed = 1;

    /** Per-message probability that a CXL flit fails CRC and is
     *  replayed (retry latency plus a second bandwidth charge). */
    double linkErrorRate = 0.0;

    /** Period of deterministic link-retraining windows; 0 disables.
     *  Each host's link retrains on its own phase within the period. */
    double retrainIntervalNs = 0.0;
    /** Length of each retraining window (link down, traffic stalls). */
    double retrainWindowNs = 2'000.0;

    /** Per-line probability that CXL DRAM holds a poisoned line. */
    double poisonRate = 0.0;
    /** Fraction of poisoned lines whose poison is persistent: the line
     *  becomes uncacheable and is served by a degraded retry path. */
    double persistentPoisonFrac = 0.25;

    /** Per-migration probability that a fault lands mid-migration and
     *  the partial migration must abort and roll back. */
    double migrationAbortRate = 0.0;

    /**
     * Mean interval between host fail-stop crashes; 0 disables crashes.
     * The schedule is pre-generated at construction from a *separate*
     * stream derived from `seed`, so enabling crashes does not perturb
     * the ordered link/migration fault draws (and a zero crash rate is
     * bit-identical to the pre-crash fault model).
     */
    double crashMeanIntervalNs = 0.0;
    /** Downtime before a crashed host rejoins (cold caches/TLB/remap
     *  tables under a fresh epoch); 0 means crashed hosts never rejoin. */
    double crashRejoinNs = 0.0;
    /** Upper bound on scheduled crash events per run. */
    unsigned crashMaxEvents = 64;
    /** How stale device copies of lost-dirty lines are served. */
    CrashRecoveryPolicy crashRecovery = CrashRecoveryPolicy::stale;

    /**
     * Lease duration for device-side failure detection (DESIGN.md §11);
     * 0 keeps the PR-2 *oracle* model where crashHost() reclaims
     * synchronously. When positive, each host renews its lease with a
     * heartbeat every heartbeatIntervalNs and the device only reclaims a
     * host's lines after the lease expires (the host becomes
     * *suspected*). A host suspected while actually alive (gray failure)
     * is fenced as a zombie and must readmit through the cold-rejoin
     * path.
     */
    double leaseNs = 0.0;
    /** Heartbeat renewal period; must be shorter than the lease. */
    double heartbeatIntervalNs = 5'000.0;
    /** Per-attempt coherence-transaction response timeout. */
    double txnTimeoutNs = 2'000.0;
    /** Retries after the first timed-out attempt before the requester
     *  gives up and suspects the target. */
    unsigned txnRetryLimit = 4;
    /** Base retry backoff; doubles per attempt up to txnBackoffMaxExp,
     *  plus deterministic per-transaction jitter. 0 disables backoff
     *  (retries depart immediately after each timeout). */
    double txnBackoffBaseNs = 500.0;
    /** Cap on the retry-backoff exponent. */
    unsigned txnBackoffMaxExp = 4;
    /** Delay between a fenced zombie observing the NACK on its stale
     *  request and completing cold readmission. */
    double readmitDelayNs = 10'000.0;

    /**
     * Mean interval between gray-failure *stall windows* (host alive but
     * unresponsive); 0 disables. Windows are pre-generated on a separate
     * RNG stream (like the crash schedule) so enabling them leaves the
     * crash/link/poison schedules bit-identical. Requires leaseNs > 0:
     * stalls are only meaningful under a failure detector.
     */
    double stallMeanIntervalNs = 0.0;
    /** Mean stall-window length; actual lengths are drawn uniformly in
     *  [0.5, 1.5] x this. Windows longer than the lease cause *false*
     *  suspicions (zombie fencing); shorter ones are ridden out by the
     *  transaction retry path. */
    double stallWindowNs = 30'000.0;
    /** Upper bound on generated stall windows per run. */
    unsigned stallMaxEvents = 64;

    /**
     * Mean interval between device *metadata* corruption events
     * (DESIGN.md §12); 0 disables the metadata fault domain entirely.
     * Each event flips bits in one directory entry or one PIPM remap
     * entry. Events are pre-generated on a separate "meta-ev" RNG
     * stream (like the crash and stall schedules), so enabling them
     * leaves the crash/link/poison/stall schedules bit-identical.
     */
    double metaCorruptMeanIntervalNs = 0.0;
    /** Upper bound on generated metadata corruption events per run. */
    unsigned metaCorruptMaxEvents = 256;
    /** Fraction of corruption events that also span the per-entry
     *  shadow checksum, making the entry unrepairable by scrubbing:
     *  directory entries fall back to the degraded uncacheable path,
     *  remap entries are replayed from the journal or force-reclaimed. */
    double metaShadowHitFrac = 0.25;
    /** Capacity (in pages) of the migration-metadata redo journal that
     *  backstops shadow-checksum hits on remap entries; 0 disables the
     *  journal (every shadow hit on a remap entry force-reclaims). */
    unsigned metaJournalPages = 16;
    /** Period of the device-side metadata scrubber; must be positive
     *  whenever corruption is enabled (corruption that is never
     *  scrubbed never heals). */
    double metaScrubIntervalNs = 25'000.0;
    /** Max quarantined entries one scrub pass repairs. */
    unsigned metaScrubBudget = 64;

    /** Repairs within one window that trip a page group's migration
     *  circuit breaker (graceful degradation, DESIGN.md §12.4). */
    unsigned metaBreakerThreshold = 2;
    /** Length of the breaker's strike-counting window. */
    double metaBreakerWindowNs = 50'000.0;
    /** Open-state cool-down before the breaker half-opens; doubles per
     *  consecutive trip up to metaBreakerMaxExp. */
    double metaBreakerCooldownNs = 100'000.0;
    /** Cap on the cool-down exponent. */
    unsigned metaBreakerMaxExp = 4;
    /** Pages per circuit-breaker group. */
    unsigned metaBreakerGroupPages = 8;

    /** Link messages per error-rate observation window. */
    std::uint64_t backoffWindow = 512;
    /** Observed error rate above which migrations back off. */
    double backoffThreshold = 0.02;
    /** Base backoff duration; doubles per consecutive bad window. */
    double backoffBaseNs = 100'000.0;
    /** Cap on the backoff exponent (max backoff = base * 2^maxExp). */
    unsigned backoffMaxExp = 6;

    /** Validate ranges; fatal()s on user error. */
    void validate() const;

    /**
     * Number of active failure domains: CXL link/media faults (§7),
     * host fail-stop crashes (§8), lease-based detection with gray
     * failures (§11), and device-metadata corruption (§12). A disabled
     * config has zero; the fuzzer's minimizer shrinks failing samples
     * toward zero (DESIGN.md §13).
     */
    unsigned activeDomains() const;
};

/** OS page-migration mechanism parameters (§5.1.4). */
struct OsMigrationConfig
{
    /** Epoch between policy invocations; paper default 10 ms. */
    double intervalMs = 10.0;
    /** Per-4KB-page cost on the initiating core; paper: 20 us. */
    double perPageInitiatorUs = 20.0;
    /** Per-4KB-page cost on every other core (TLB shootdown); 5 us. */
    double perPageOtherUs = 5.0;
    /** Max pages migrated per epoch per host (batched transfers). */
    unsigned maxPagesPerEpoch = 512;
    /** Promotion threshold (accesses per epoch) for hotness policies. */
    unsigned hotThreshold = 8;
};

/** Full system configuration. */
struct SystemConfig
{
    unsigned numHosts = 4;
    unsigned coresPerHost = 4;

    CoreConfig core;
    CacheConfig l1{32 * 1024, 8, 4};
    /** Shared LLC: 2 MB per core, 16-way, 24-cycle RT. */
    CacheConfig llcPerCore{2 * 1024 * 1024, 16, 24};

    DramConfig localDram;          ///< one DDR5-4800 channel per host
    DramConfig cxlDram{48, 15, 20, 15, 2, 32, 8192, 9.6, 10.0}; ///< 2 ch

    CxlLinkConfig link;
    DirectoryConfig deviceDirectory;
    LocalDirectoryConfig localDirectory;
    PipmConfig pipm;
    OsMigrationConfig osMigration;
    TlbModelConfig tlb;
    FaultConfig fault;

    /** Capacities before footprint scaling (Table 2). */
    std::uint64_t localBytesPerHostFull = 32ull << 30;  ///< 32 GB
    std::uint64_t cxlPoolBytesFull = 128ull << 30;      ///< 128 GB

    /** Footprint divisor (capacities and workload footprints). */
    unsigned footprintScale = 256;
    /** Epoch/cost divisor for OS migration (see file comment). */
    unsigned timeScale = 250;
    /**
     * Cache-capacity divisor. Shrinking the heap 256x while keeping
     * Table 2's 8 MB/host LLC would let the LLC cover 17% of the heap
     * (the paper's ratio is 0.07%), suppressing the capacity evictions
     * that drive both writebacks and incremental migration. Scaling the
     * cache capacities (L1 by l1Scale, LLC by llcScale) restores the
     * working-set-greatly-exceeds-LLC regime. Latencies are unchanged.
     */
    unsigned l1Scale = 4;
    unsigned llcScale = 16;
    /** Divisor on per-page migration copy bytes (see
     *  osPageTransferBytes). */
    unsigned migrationBytesScale = 4;

    /** Effective (scaled) L1 capacity in bytes. */
    std::uint64_t
    l1Bytes() const
    {
        return l1.sizeBytes / l1Scale;
    }

    /** Effective (scaled) LLC capacity per core in bytes. */
    std::uint64_t
    llcBytesPerCore() const
    {
        return llcPerCore.sizeBytes / llcScale;
    }

    /** Scaled local DRAM capacity per host. */
    std::uint64_t
    localBytesPerHost() const
    {
        return localBytesPerHostFull / footprintScale;
    }

    /** Scaled CXL-DSM pool capacity. */
    std::uint64_t
    cxlPoolBytes() const
    {
        return cxlPoolBytesFull / footprintScale;
    }

    /** Total shared-LLC capacity of one host. */
    std::uint64_t
    llcBytesPerHost() const
    {
        return llcPerCore.sizeBytes * coresPerHost;
    }

    /**
     * OS migration epoch in core cycles after time scaling. Clamped to
     * >= 1: a large timeScale can round the scaled interval down to 0,
     * which would turn the policy timer into an every-cycle busy loop.
     */
    Cycles
    osEpochCycles() const
    {
        const Cycles c = nsToCycles(osMigration.intervalMs * 1e6) / timeScale;
        return c ? c : 1;
    }

    /** Scaled initiating-core cost of migrating one page, in cycles. */
    Cycles
    osPageInitiatorCycles() const
    {
        return nsToCycles(osMigration.perPageInitiatorUs * 1e3) / timeScale;
    }

    /** Scaled per-other-core shootdown cost of one page, in cycles. */
    Cycles
    osPageOtherCycles() const
    {
        return nsToCycles(osMigration.perPageOtherUs * 1e3) / timeScale;
    }

    /**
     * Scaled bytes charged to the CXL link per migrated 4 KB page. The
     * transfer competes with demand traffic for bandwidth. Because the
     * simulated runs compress execution time (timeScale) while migrating
     * footprint-proportional page counts, charging the full 4 KB would
     * overstate — and charging 4 KB/timeScale would erase — the bandwidth
     * fraction migration consumes; migrationBytesScale is calibrated so
     * that fraction lands in the regime Fig. 4 reports.
     */
    std::uint64_t
    osPageTransferBytes() const
    {
        const std::uint64_t bytes = pageBytes / migrationBytesScale;
        return bytes ? bytes : 1;
    }

    // ---- Unified physical address map -------------------------------
    // [host0 local][host1 local]...[hostN-1 local][CXL pool]

    /** Base of host h's local DRAM in the unified space. */
    PhysAddr
    localBase(HostId h) const
    {
        return static_cast<PhysAddr>(h) * localBytesPerHost();
    }

    /** Base of the CXL-DSM pool in the unified space. */
    PhysAddr
    cxlBase() const
    {
        return static_cast<PhysAddr>(numHosts) * localBytesPerHost();
    }

    /** One-past-the-end of the unified space. */
    PhysAddr
    addressSpaceEnd() const
    {
        return cxlBase() + cxlPoolBytes();
    }

    /** Range-check a unified PA (the check real CXL hosts do, §4.3.3). */
    AddrRegion
    regionOf(PhysAddr pa) const
    {
        return pa >= cxlBase() ? AddrRegion::cxlPool : AddrRegion::hostLocal;
    }

    /** For a hostLocal PA, which host's DRAM holds it. */
    HostId
    homeHostOf(PhysAddr pa) const
    {
        return static_cast<HostId>(pa / localBytesPerHost());
    }

    /** Validate internal consistency; fatal()s on user error. */
    void validate() const;

    /** Render the configuration as Table 2-style rows. */
    std::string describe() const;

    /**
     * Canonical one-line key over every measurement-relevant field,
     * including the fault/crash schedule when enabled. Two configs with
     * equal keys produce bit-identical runs; the bench cache and the
     * stats.json exporter both key on (hashes of) this string, so the
     * format must stay stable.
     */
    std::string measurementKey() const;
};

/** The Table 2 default configuration. */
SystemConfig defaultConfig();

/** A tiny configuration for unit tests (2 hosts, small memories). */
SystemConfig testConfig();

/**
 * The paper-default fault schedule: a mildly lossy fabric (CRC errors on
 * ~1 in 2000 flits), periodic per-host link retraining, rare poisoned
 * lines (a quarter persistent) and occasional mid-migration faults.
 */
FaultConfig paperFaultConfig(std::uint64_t seed = 1);

/**
 * The paper-default fault schedule plus host fail-stop crashes: every
 * `mean_interval_ns` (on average) one host crashes and — after
 * `rejoin_ns` of downtime — rejoins cold under a fresh epoch. Used by
 * the crash-schedule verifier and the PIPM_BENCH_FAULTS=crash bench
 * mode.
 */
FaultConfig paperCrashFaultConfig(std::uint64_t seed = 1,
                                  double mean_interval_ns = 150'000.0,
                                  double rejoin_ns = 100'000.0);

/**
 * The crash schedule under *detected* (non-oracle) failures: leases with
 * heartbeat renewal, coherence-transaction timeout/retry/backoff, and
 * gray-failure stall windows whose mean length straddles the lease so
 * both ridden-out stalls and false suspicions (zombie fencing) occur.
 * Used by the suspicion-schedule verifier and the
 * PIPM_BENCH_FAULTS=suspect bench mode.
 */
FaultConfig paperSuspicionFaultConfig(std::uint64_t seed = 1,
                                      double lease_ns = 20'000.0,
                                      double stall_mean_interval_ns =
                                          120'000.0);

/**
 * Layer the paper-default device-metadata fault domain (DESIGN.md §12)
 * onto an existing fault schedule: periodic directory/remap corruption
 * with scrub-and-repair, a redo journal for migration metadata, and the
 * per-page-group migration circuit breaker. Exists as a separate helper
 * so the verifiers can combine metadata faults with the crash and
 * suspicion schedules.
 */
void addPaperMetaFaults(FaultConfig &fault,
                        double mean_interval_ns = 4'000.0);

/**
 * The paper-default fault schedule plus device-metadata corruption.
 * Used by the metadata-schedule verifier and the PIPM_BENCH_FAULTS=meta
 * bench mode.
 */
FaultConfig paperMetaFaultConfig(std::uint64_t seed = 1,
                                 double mean_interval_ns = 4'000.0);

} // namespace pipm

#endif // PIPM_COMMON_CONFIG_HH
