/**
 * @file
 * Environment-variable override helpers shared by the runner and the
 * bench harnesses (previously copy-pasted in both).
 *
 * A variable that is unset *or set to the empty string* yields the
 * fallback: an empty value means "not configured", never "zero". This
 * follows the PIPM_CHECK_INVARIANTS pattern established in the runner.
 */

#ifndef PIPM_COMMON_ENV_HH
#define PIPM_COMMON_ENV_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace pipm
{

/** Numeric env override; unset/empty returns `fallback`. */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *env = std::getenv(name)) {
        if (*env != '\0')
            return std::strtoull(env, nullptr, 10);
    }
    return fallback;
}

/** String env override; unset/empty returns `fallback`. */
inline std::string
envStr(const char *name, std::string fallback)
{
    if (const char *env = std::getenv(name)) {
        if (*env != '\0')
            return env;
    }
    return fallback;
}

} // namespace pipm

#endif // PIPM_COMMON_ENV_HH
