/**
 * @file
 * Open-addressing hash containers for the per-access hot path.
 *
 * The simulator's hottest associative state (the sparse memory image, the
 * PIPM remap tables, the poison map, the harmful-migration records) is
 * keyed by dense integer-like identifiers (line addresses, page frames).
 * libstdc++'s std::unordered_map resolves every probe through a bucket
 * pointer chase and node allocation; FlatMap stores key/value pairs
 * inline in a power-of-two slot array and resolves collisions by linear
 * probing, so a lookup is one hash, one indexed load and (almost always)
 * one key compare. Deletion uses backward-shift compaction instead of
 * tombstones, so probe sequences never grow with churn.
 *
 * Determinism caveat: iteration order is probe order, which depends on
 * capacity history (insert/erase sequence), unlike measurement results it
 * feeds. Any consumer whose *output* depends on visit order must collect
 * and sort keys first (see DESIGN.md §9); order-insensitive folds
 * (counter sums, invariant checks) may iterate directly.
 *
 * References and iterators are invalidated by rehash (any insert may
 * grow) and by erase (backward shift moves elements); do not hold them
 * across mutations.
 */

#ifndef PIPM_COMMON_FLAT_MAP_HH
#define PIPM_COMMON_FLAT_MAP_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/swar.hh"

namespace pipm
{

/** Finalizer-quality mix so page-strided keys spread over pow-2 slots. */
constexpr std::uint64_t
flatHashMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/**
 * Open-addressing hash map from an integer-like key to a value.
 * @tparam K key type, convertible to std::uint64_t for hashing
 * @tparam V mapped type (default-constructible)
 */
template <typename K, typename V>
class FlatMap
{
  public:
    using value_type = std::pair<K, V>;

    template <bool Const>
    class Iter
    {
      public:
        using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
        using Ref = std::conditional_t<Const, const value_type &,
                                       value_type &>;
        using Ptr = std::conditional_t<Const, const value_type *,
                                       value_type *>;

        Iter() = default;
        Iter(Map *map, std::size_t idx) : map_(map), idx_(idx) {}

        /** Implicit iterator-to-const_iterator conversion. */
        operator Iter<true>() const { return Iter<true>(map_, idx_); }

        Ref operator*() const { return map_->slots_[idx_]; }
        Ptr operator->() const { return &map_->slots_[idx_]; }

        Iter &
        operator++()
        {
            ++idx_;
            skip();
            return *this;
        }

        bool operator==(const Iter &o) const { return idx_ == o.idx_; }
        bool operator!=(const Iter &o) const { return idx_ != o.idx_; }

      private:
        friend class FlatMap;

        void
        skip()
        {
            while (idx_ < map_->slots_.size() && !map_->filled_[idx_])
                ++idx_;
        }

        Map *map_ = nullptr;
        std::size_t idx_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    // ---- Capacity ------------------------------------------------------

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /** Ensure `n` elements fit without a rehash. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = minCapacity;
        while (cap * maxLoadNum < n * maxLoadDen)
            cap *= 2;
        if (cap > slots_.size())
            rehash(cap);
    }

    void
    clear()
    {
        std::fill(filled_.begin(), filled_.end(),
                  static_cast<std::uint8_t>(0));
        size_ = 0;
    }

    // ---- Lookup --------------------------------------------------------

    iterator
    find(const K &key)
    {
        const std::size_t i = findSlot(key);
        return i == npos ? end() : iterator(this, i);
    }

    const_iterator
    find(const K &key) const
    {
        const std::size_t i = findSlot(key);
        return i == npos ? end() : const_iterator(this, i);
    }

    bool contains(const K &key) const { return findSlot(key) != npos; }

    /** The value of a key that must be present. */
    const V &
    at(const K &key) const
    {
        const std::size_t i = findSlot(key);
        panic_if(i == npos, "FlatMap::at: key ", std::uint64_t(key),
                 " not present");
        return slots_[i].second;
    }

    V &
    at(const K &key)
    {
        const std::size_t i = findSlot(key);
        panic_if(i == npos, "FlatMap::at: key ", std::uint64_t(key),
                 " not present");
        return slots_[i].second;
    }

    // ---- Mutation ------------------------------------------------------

    /** The value of a key, default-constructed if absent. */
    V &
    operator[](const K &key)
    {
        return slots_[insertSlot(key)].second;
    }

    /** Insert if absent; returns (iterator, inserted). */
    std::pair<iterator, bool>
    emplace(const K &key, V value)
    {
        const std::size_t before = size_;
        const std::size_t i = insertSlot(key);
        const bool inserted = size_ != before;
        if (inserted)
            slots_[i].second = std::move(value);
        return {iterator(this, i), inserted};
    }

    /** Insert or overwrite. */
    void
    insert_or_assign(const K &key, V value)
    {
        slots_[insertSlot(key)].second = std::move(value);
    }

    /** Erase a key if present. @return whether it was present */
    bool
    erase(const K &key)
    {
        const std::size_t i = findSlot(key);
        if (i == npos)
            return false;
        eraseSlot(i);
        return true;
    }

    /** Erase by iterator (invalidates all iterators). */
    void erase(const_iterator it) { eraseSlot(it.idx_); }

    // ---- Iteration (probe order: see file comment) --------------------

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skip();
        return it;
    }

    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skip();
        return it;
    }

    iterator end() { return iterator(this, slots_.size()); }
    const_iterator end() const { return const_iterator(this, slots_.size()); }

    /**
     * All keys in ascending order: the deterministic starting point for
     * any iteration whose side effects depend on visit order.
     */
    std::vector<K>
    sortedKeys() const
    {
        std::vector<K> keys;
        keys.reserve(size_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (filled_[i])
                keys.push_back(slots_[i].first);
        }
        std::sort(keys.begin(), keys.end());
        return keys;
    }

  private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    static constexpr std::size_t minCapacity = 16;
    /** Grow beyond 7/8 load: probe runs stay short. */
    static constexpr std::size_t maxLoadNum = 7;
    static constexpr std::size_t maxLoadDen = 8;

    static std::uint64_t
    hashOf(const K &key)
    {
        return flatHashMix(static_cast<std::uint64_t>(key));
    }

    /**
     * Occupancy byte for a slot: top hash bits with the high bit forced
     * so it never reads as empty (0). Probes compare this byte — one
     * contiguous-array load — and only touch the 16-byte slot on a tag
     * match, which keeps long probe runs near the 7/8 load limit cheap.
     */
    static std::uint8_t
    tagOf(std::uint64_t hash)
    {
        return static_cast<std::uint8_t>(0x80u | (hash >> 57));
    }

    std::size_t
    homeOf(const K &key) const
    {
        return static_cast<std::size_t>(hashOf(key) & (slots_.size() - 1));
    }

    /** Slot of a present key, or npos. */
    std::size_t
    findSlot(const K &key) const
    {
        if (slots_.empty())
            return npos;
        const std::size_t mask = slots_.size() - 1;
        const std::uint64_t h = hashOf(key);
        const std::uint8_t tag = tagOf(h);
        std::size_t i = static_cast<std::size_t>(h) & mask;
        // Probe runs near the 7/8 load limit average tens of slots, so
        // walk the occupancy array eight bytes per step while a full
        // word fits before the wrap; the byte loop finishes the (rare)
        // run that crosses the array end. Probe order — and therefore
        // which slot is found — is exactly the byte loop's.
        const std::uint8_t *f = filled_.data();
        while (i + 8 <= filled_.size()) {
            const std::uint64_t word = swarLoad(f + i);
            const std::uint64_t mz = swarMatchMask(word, 0);
            std::uint64_t mt = swarMatchMask(word, tag);
            if (mz)
                mt &= (mz & -mz) - 1;   // candidates before the 1st empty
            while (mt) {
                const std::size_t c =
                    i + static_cast<std::size_t>(std::countr_zero(mt)) / 8;
                if (slots_[c].first == key)
                    return c;
                mt &= mt - 1;
            }
            if (mz)
                return npos;
            i += 8;
        }
        i &= mask;   // the word walk may stop exactly at the array end
        while (filled_[i]) {
            if (filled_[i] == tag && slots_[i].first == key)
                return i;
            i = (i + 1) & mask;
        }
        return npos;
    }

    /** Slot of a key, inserting a default-valued entry if absent. */
    std::size_t
    insertSlot(const K &key)
    {
        if (slots_.empty() ||
            (size_ + 1) * maxLoadDen > slots_.size() * maxLoadNum)
            rehash(slots_.empty() ? minCapacity : slots_.size() * 2);
        const std::size_t mask = slots_.size() - 1;
        const std::uint64_t h = hashOf(key);
        const std::uint8_t tag = tagOf(h);
        std::size_t i = static_cast<std::size_t>(h) & mask;
        // Word-at-a-time probe mirroring findSlot; the first empty byte
        // is the insertion point.
        const std::uint8_t *f = filled_.data();
        while (i + 8 <= filled_.size()) {
            const std::uint64_t word = swarLoad(f + i);
            const std::uint64_t mz = swarMatchMask(word, 0);
            std::uint64_t mt = swarMatchMask(word, tag);
            if (mz)
                mt &= (mz & -mz) - 1;
            while (mt) {
                const std::size_t c =
                    i + static_cast<std::size_t>(std::countr_zero(mt)) / 8;
                if (slots_[c].first == key)
                    return c;
                mt &= mt - 1;
            }
            if (mz) {
                i += static_cast<std::size_t>(std::countr_zero(mz)) / 8;
                filled_[i] = tag;
                slots_[i].first = key;
                slots_[i].second = V{};
                ++size_;
                return i;
            }
            i += 8;
        }
        i &= mask;   // the word walk may stop exactly at the array end
        while (filled_[i]) {
            if (filled_[i] == tag && slots_[i].first == key)
                return i;
            i = (i + 1) & mask;
        }
        filled_[i] = tag;
        slots_[i].first = key;
        slots_[i].second = V{};
        ++size_;
        return i;
    }

    /** Backward-shift deletion: no tombstones, probe runs stay minimal. */
    void
    eraseSlot(std::size_t i)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask;
            if (!filled_[j])
                break;
            // Move j's element into the hole at i unless its home lies
            // cyclically within (i, j] — then the hole does not break
            // its probe path and it must stay.
            const std::size_t home = homeOf(slots_[j].first);
            if (((j - home) & mask) >= ((j - i) & mask)) {
                slots_[i] = std::move(slots_[j]);
                filled_[i] = filled_[j];
                i = j;
            }
        }
        filled_[i] = 0;
        --size_;
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<value_type> old_slots = std::move(slots_);
        std::vector<std::uint8_t> old_filled = std::move(filled_);
        slots_.assign(new_cap, value_type{});
        filled_.assign(new_cap, 0);
        const std::size_t mask = new_cap - 1;
        for (std::size_t s = 0; s < old_slots.size(); ++s) {
            if (!old_filled[s])
                continue;
            std::size_t i = homeOf(old_slots[s].first);
            while (filled_[i])
                i = (i + 1) & mask;
            filled_[i] = old_filled[s];
            slots_[i] = std::move(old_slots[s]);
        }
    }

    std::vector<value_type> slots_;
    std::vector<std::uint8_t> filled_;
    std::size_t size_ = 0;
};

/** Open-addressing hash set over an integer-like key. */
template <typename K>
class FlatSet
{
  public:
    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void reserve(std::size_t n) { map_.reserve(n); }
    void clear() { map_.clear(); }

    bool contains(const K &key) const { return map_.contains(key); }

    /** @return whether the key was newly inserted */
    bool
    insert(const K &key)
    {
        return map_.emplace(key, Unit{}).second;
    }

    /** @return whether the key was present */
    bool erase(const K &key) { return map_.erase(key); }

    /** All members in ascending order (deterministic iteration). */
    std::vector<K> sortedKeys() const { return map_.sortedKeys(); }

  private:
    struct Unit
    {
    };

    FlatMap<K, Unit> map_;
};

} // namespace pipm

#endif // PIPM_COMMON_FLAT_MAP_HH
