/**
 * @file
 * Small deterministic string hashing helpers shared by the bench cache
 * keys and the stats.json config hash. FNV-1a is used for its stable,
 * platform-independent output — these hashes end up in cache files and
 * exported artifacts, so they must never depend on std::hash.
 */

#ifndef PIPM_COMMON_HASH_HH
#define PIPM_COMMON_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace pipm
{

/** 64-bit FNV-1a over a byte string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** FNV-1a hex-encoded as 16 lowercase hex characters. */
inline std::string
fnv1aHex(std::string_view s)
{
    static const char digits[] = "0123456789abcdef";
    std::uint64_t h = fnv1a(s);
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

} // namespace pipm

#endif // PIPM_COMMON_HASH_HH
