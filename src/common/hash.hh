/**
 * @file
 * Small deterministic string hashing helpers shared by the bench cache
 * keys and the stats.json config hash. FNV-1a is used for its stable,
 * platform-independent output — these hashes end up in cache files and
 * exported artifacts, so they must never depend on std::hash.
 */

#ifndef PIPM_COMMON_HASH_HH
#define PIPM_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pipm
{

/** 64-bit FNV-1a over a byte string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Render a 64-bit hash as 16 lowercase hex characters. */
inline std::string
hashHex(std::uint64_t h)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

/** FNV-1a hex-encoded as 16 lowercase hex characters. */
inline std::string
fnv1aHex(std::string_view s)
{
    return hashHex(fnv1a(s));
}

/**
 * Incremental 64-bit FNV-1a over a byte stream. Feeding the same bytes
 * in any chunking yields the same digest as one fnv1a() call over the
 * concatenation; the trace subsystem uses it to checksum payloads that
 * are produced stream by stream (DESIGN.md §14).
 */
class Fnv1a
{
  public:
    /** Absorb one byte. */
    void put(std::uint8_t byte)
    {
        h_ ^= byte;
        h_ *= 1099511628211ull;
    }

    /** Absorb a byte range. */
    void put(const std::uint8_t *data, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i)
            put(data[i]);
    }

    /** Current digest (absorbing may continue afterwards). */
    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = 1469598103934665603ull;
};

} // namespace pipm

#endif // PIPM_COMMON_HASH_HH
