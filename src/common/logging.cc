#include "common/logging.hh"

namespace pipm
{
namespace detail
{

bool throwOnError = false;

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = concat("panic: ", msg, " @ ", file, ":", line);
    if (throwOnError)
        throw SimError{full};
    std::fprintf(stderr, "%s\n", full.c_str());
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = concat("fatal: ", msg, " @ ", file, ":", line);
    if (throwOnError)
        throw SimError{full};
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pipm
