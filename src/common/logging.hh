/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef PIPM_COMMON_LOGGING_HH
#define PIPM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pipm
{

namespace detail
{

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Test hook: when set, panic/fatal throw instead of aborting. */
extern bool throwOnError;

} // namespace detail

/** Thrown instead of aborting when detail::throwOnError is set (tests). */
struct SimError
{
    std::string message;
};

/** Call for conditions that indicate a simulator bug. Never returns. */
#define panic(...) \
    ::pipm::detail::panicImpl(__FILE__, __LINE__, \
                              ::pipm::detail::concat(__VA_ARGS__))

/** Call for user-caused errors (bad configuration etc.). Never returns. */
#define fatal(...) \
    ::pipm::detail::fatalImpl(__FILE__, __LINE__, \
                              ::pipm::detail::concat(__VA_ARGS__))

/** panic() if a simulator invariant does not hold. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic("assertion '" #cond "' failed: ", \
                  ::pipm::detail::concat(__VA_ARGS__)); \
    } while (0)

/** fatal() if a user-facing precondition does not hold. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(::pipm::detail::concat(__VA_ARGS__)); \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace pipm

#endif // PIPM_COMMON_LOGGING_HH
