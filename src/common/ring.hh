/**
 * @file
 * Fixed-capacity ring buffer for the simulator's bounded FIFO queues.
 *
 * The core model's in-flight queues (load queue, store queue, MSHRs) are
 * small and hard-bounded by configuration, yet sit on the per-reference
 * hot path: every simulated access pushes and pops them several times.
 * std::deque pays segment bookkeeping and occasional allocation for
 * unbounded growth these queues never use; the ring keeps the elements
 * in one contiguous power-of-two array with index masking, so push/pop
 * are a store/increment and the whole queue stays in one or two cache
 * lines. FIFO semantics are identical to the deque usage it replaces.
 */

#ifndef PIPM_COMMON_RING_HH
#define PIPM_COMMON_RING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace pipm
{

/** Bounded FIFO over a power-of-two array. */
template <typename T>
class RingBuf
{
  public:
    /** Sized to hold at least `capacity` elements (rounded up to 2^k). */
    explicit RingBuf(std::size_t capacity = 1)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }

    T &front() { return buf_[head_ & mask_]; }
    const T &front() const { return buf_[head_ & mask_]; }
    T &back() { return buf_[(tail_ - 1) & mask_]; }
    const T &back() const { return buf_[(tail_ - 1) & mask_]; }

    void
    push_back(const T &v)
    {
        panic_if(size() > mask_, "RingBuf overflow beyond capacity ",
                 mask_ + 1);
        buf_[tail_ & mask_] = v;
        ++tail_;
    }

    void pop_front() { ++head_; }

    void clear() { head_ = tail_ = 0; }

  private:
    std::vector<T> buf_;
    std::size_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace pipm

#endif // PIPM_COMMON_RING_HH
