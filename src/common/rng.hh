/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulator (workload generation, random
 * replacement, tie-breaking) draws from explicitly seeded Rng instances so
 * that every experiment is reproducible bit-for-bit. The core generator is
 * xoshiro256**, which is fast and has no observable bias at our scales.
 */

#ifndef PIPM_COMMON_RNG_HH
#define PIPM_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace pipm
{

/** xoshiro256** pseudo-random generator with convenience distributions. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free multiply-shift; bias is < 2^-64 * bound
        // which is negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    std::uint64_t state_[4];
};

/**
 * Zipfian rank sampler over [0, n) with skew parameter theta, using the
 * Gray et al. approximation (the same construction YCSB uses). Rank 0 is
 * the hottest item.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta)
    {
        zetan_ = zeta(n);
        zeta2_ = zeta(2);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
               (1.0 - zeta2_ / zetan_);
        halfPowTheta_ = std::pow(0.5, theta_);
    }

    /** Draw a rank in [0, n). */
    std::uint64_t
    sample(Rng &rng) const
    {
        const double u = rng.real();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + halfPowTheta_)
            return 1;
        const auto rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= n_ ? n_ - 1 : rank;
    }

    std::uint64_t itemCount() const { return n_; }

  private:
    double
    zeta(std::uint64_t n) const
    {
        // Exact up to a cutoff, then the Euler-Maclaurin tail; accurate to
        // well under 0.1% for the n we use and O(1)-ish to compute.
        constexpr std::uint64_t cutoff = 100000;
        double sum = 0.0;
        const std::uint64_t m = n < cutoff ? n : cutoff;
        for (std::uint64_t i = 1; i <= m; ++i)
            sum += std::pow(1.0 / static_cast<double>(i), theta_);
        if (n > cutoff) {
            const double a = static_cast<double>(cutoff);
            const double b = static_cast<double>(n);
            sum += (std::pow(b, 1.0 - theta_) - std::pow(a, 1.0 - theta_)) /
                   (1.0 - theta_);
        }
        return sum;
    }

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double zeta2_;
    double alpha_;
    double eta_;
    double halfPowTheta_;   ///< pow(0.5, theta), hoisted off the draw path
};

} // namespace pipm

#endif // PIPM_COMMON_RNG_HH
