#include "common/stats.hh"

#include <sstream>

namespace pipm
{

void
StatGroup::addCounter(Counter *c, std::string name, std::string desc)
{
    counters_.push_back({c, std::move(name), std::move(desc)});
}

void
StatGroup::addAverage(Average *a, std::string name, std::string desc)
{
    averages_.push_back({a, std::move(name), std::move(desc)});
}

void
StatGroup::addHistogram(Histogram *h, std::string name, std::string desc)
{
    histograms_.push_back({h, std::move(name), std::move(desc)});
}

void
StatGroup::resetAll()
{
    for (auto &e : counters_)
        e.stat->reset();
    for (auto &e : averages_)
        e.stat->reset();
    for (auto &e : histograms_)
        e.stat->reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &e : counters_) {
        os << name_ << '.' << e.name << ' ' << e.stat->value()
           << "  # " << e.desc << '\n';
    }
    for (const auto &e : averages_) {
        os << name_ << '.' << e.name << ' ' << e.stat->mean()
           << " (n=" << e.stat->count() << ")  # " << e.desc << '\n';
    }
    for (const auto &e : histograms_) {
        os << name_ << '.' << e.name << " mean=" << e.stat->mean()
           << " n=" << e.stat->count() << "  # " << e.desc << '\n';
    }
    return os.str();
}

} // namespace pipm
