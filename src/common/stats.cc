#include "common/stats.hh"

#include <iomanip>
#include <locale>
#include <sstream>

namespace pipm
{

void
StatGroup::addCounter(Counter *c, std::string name, std::string desc)
{
    counters_.push_back({c, std::move(name), std::move(desc)});
}

void
StatGroup::addAverage(Average *a, std::string name, std::string desc)
{
    averages_.push_back({a, std::move(name), std::move(desc)});
}

void
StatGroup::addHistogram(Histogram *h, std::string name, std::string desc)
{
    histograms_.push_back({h, std::move(name), std::move(desc)});
}

void
StatGroup::resetAll()
{
    for (auto &e : counters_)
        e.stat->reset();
    for (auto &e : averages_)
        e.stat->reset();
    for (auto &e : histograms_)
        e.stat->reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    // Byte-stable output: the default stream locale can group digits or
    // swap the decimal separator, and the default precision (6
    // significant digits) truncates large means. Pin both.
    os.imbue(std::locale::classic());
    os << std::fixed << std::setprecision(6);
    for (const auto &e : counters_) {
        os << name_ << '.' << e.name << ' ' << e.stat->value()
           << "  # " << e.desc << '\n';
    }
    for (const auto &e : averages_) {
        os << name_ << '.' << e.name << ' ' << e.stat->mean()
           << " (n=" << e.stat->count() << ")  # " << e.desc << '\n';
    }
    for (const auto &e : histograms_) {
        const Histogram &h = *e.stat;
        os << name_ << '.' << e.name << " mean=" << h.mean()
           << " n=" << h.count() << "  # " << e.desc << '\n';
        const auto &counts = h.buckets();
        const std::uint64_t w = h.bucketWidth();
        for (std::size_t b = 0; b < counts.size(); ++b) {
            if (!counts[b])
                continue;
            os << name_ << '.' << e.name << '[';
            if (b + 1 == counts.size())
                os << (w * b) << "+";
            else
                os << (w * b) << ',' << (w * (b + 1) - 1);
            os << "] " << counts[b];
            if (b + 1 == counts.size())
                os << "  # overflow";
            os << '\n';
        }
    }
    return os.str();
}

} // namespace pipm
