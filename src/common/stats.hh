/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar counters,
 * averages and histograms registered in a StatGroup, dumpable as text.
 *
 * Stats are plain members of the owning component; registration only records
 * name and description for dumping. All stats are reset together so that a
 * warmup phase can be excluded from measurement.
 */

#ifndef PIPM_COMMON_STATS_HH
#define PIPM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pipm
{

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of samples (sum / count). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, max) with overflow bucket. */
class Histogram
{
  public:
    /**
     * A bucket_width of 0 is clamped to 1: sample() divides by the width,
     * and a width-0 histogram would otherwise fault on the first sample.
     * Likewise at least one regular bucket is kept in front of the
     * overflow bucket.
     */
    Histogram(std::uint64_t bucket_width = 64, unsigned buckets = 32)
        : width_(bucket_width ? bucket_width : 1),
          counts_((buckets ? buckets : 1) + 1, 0)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::uint64_t b = v / width_;
        if (b >= counts_.size() - 1)
            b = counts_.size() - 1;
        ++counts_[b];
        sum_ += v;
        ++total_;
    }

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        sum_ = 0;
        total_ = 0;
    }

    std::uint64_t count() const { return total_; }
    double mean() const { return total_ ? double(sum_) / double(total_) : 0; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t bucketWidth() const { return width_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of stats belonging to one component. Components
 * register their stat members once; the group can dump and reset them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(Counter *c, std::string name, std::string desc);
    void addAverage(Average *a, std::string name, std::string desc);
    void addHistogram(Histogram *h, std::string name, std::string desc);

    /** Reset every registered stat (used after warmup). */
    void resetAll();

    /** Render all stats as "group.name value  # desc" lines. */
    std::string dump() const;

    const std::string &name() const { return name_; }

    /**
     * Visit every registered stat in registration order. Callbacks take
     * (name, const Stat &); used by the observability layer to snapshot
     * groups without the group knowing about the registry.
     */
    template <typename Fn>
    void
    forEachCounter(Fn &&fn) const
    {
        for (const auto &e : counters_)
            fn(e.name, static_cast<const Counter &>(*e.stat));
    }

    template <typename Fn>
    void
    forEachAverage(Fn &&fn) const
    {
        for (const auto &e : averages_)
            fn(e.name, static_cast<const Average &>(*e.stat));
    }

    template <typename Fn>
    void
    forEachHistogram(Fn &&fn) const
    {
        for (const auto &e : histograms_)
            fn(e.name, static_cast<const Histogram &>(*e.stat));
    }

  private:
    struct CounterEntry { Counter *stat; std::string name, desc; };
    struct AverageEntry { Average *stat; std::string name, desc; };
    struct HistEntry { Histogram *stat; std::string name, desc; };

    std::string name_;
    std::vector<CounterEntry> counters_;
    std::vector<AverageEntry> averages_;
    std::vector<HistEntry> histograms_;
};

} // namespace pipm

#endif // PIPM_COMMON_STATS_HH
