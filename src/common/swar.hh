/**
 * @file
 * SWAR (SIMD-within-a-register) byte-scan helpers.
 *
 * The simulator's associative structures (SetAssoc tag strips, FlatMap
 * occupancy arrays) filter probes through contiguous one-byte tag
 * arrays. These helpers scan eight tag bytes per step with plain 64-bit
 * arithmetic, which is what makes long probe runs cheap on the hot path.
 */

#ifndef PIPM_COMMON_SWAR_HH
#define PIPM_COMMON_SWAR_HH

#include <cstdint>
#include <cstring>

namespace pipm
{

/** Unaligned 64-bit load of eight consecutive tag bytes. */
inline std::uint64_t
swarLoad(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/**
 * Bit 7 of every byte of `word` equal to `b` is set in the result — the
 * classic zero-byte detector applied to `word ^ broadcast(b)`. Borrow
 * propagation can false-flag bytes *above* the lowest true match (e.g.
 * an 0x01 byte above a 0x00), never below it, and never misses a match:
 * the lowest set bit is exact, and higher candidates just need
 * confirming, which every caller does anyway (key compare, or taking
 * only the lowest bit).
 */
inline std::uint64_t
swarMatchMask(std::uint64_t word, std::uint8_t b)
{
    const std::uint64_t x = word ^ (0x0101010101010101ull * b);
    return (x - 0x0101010101010101ull) & ~x & 0x8080808080808080ull;
}

} // namespace pipm

#endif // PIPM_COMMON_SWAR_HH
