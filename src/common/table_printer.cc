#include "common/table_printer.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pipm
{

void
TablePrinter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i];
            if (i + 1 < cells.size())
                os << "  ";
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    os << '\n';
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << '%';
    return os.str();
}

} // namespace pipm
