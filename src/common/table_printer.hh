/**
 * @file
 * Aligned ASCII table output used by the benchmark harnesses to print the
 * rows/series each paper table or figure reports.
 */

#ifndef PIPM_COMMON_TABLE_PRINTER_HH
#define PIPM_COMMON_TABLE_PRINTER_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace pipm
{

/** Collects rows of string cells and prints them with aligned columns. */
class TablePrinter
{
  public:
    /** @param title Heading printed above the table. */
    explicit TablePrinter(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; cell counts may differ from the header. */
    void row(std::vector<std::string> cells);

    /** Render to a stream with per-column alignment and separators. */
    void print(std::ostream &os) const;

    /** Format a double with fixed precision (helper for cells). */
    static std::string num(double v, int precision = 2);

    /** Format a value as a percentage string, e.g. "42.3%". */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pipm

#endif // PIPM_COMMON_TABLE_PRINTER_HH
