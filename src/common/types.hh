/**
 * @file
 * Fundamental address, identifier and time types shared by every subsystem
 * of the multi-host CXL-DSM simulator.
 *
 * The simulated machine uses a single *unified physical address space*
 * (CXL 3.1 GIM style): every host's local DRAM and the CXL-DSM pool are
 * carved out of one flat range of physical addresses. Virtual addresses are
 * per-process; the OS layer maps them onto the unified space.
 */

#ifndef PIPM_COMMON_TYPES_HH
#define PIPM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace pipm
{

/** Simulated time in core clock cycles (4 GHz by default, 0.25 ns each). */
using Cycles = std::uint64_t;

/** A virtual address within one host's process address space. */
using VirtAddr = std::uint64_t;

/** An address in the unified (GIM-style) physical address space. */
using PhysAddr = std::uint64_t;

/** Page frame number: PhysAddr >> pageShift. */
using PageFrame = std::uint64_t;

/** Cache-line number: PhysAddr >> lineShift. */
using LineAddr = std::uint64_t;

/** Identifies one host (compute node). Up to 32 hosts (5-bit IDs, §4.2). */
using HostId = std::uint8_t;

/** Identifies one core within a host. */
using CoreId = std::uint16_t;

static constexpr HostId invalidHost = std::numeric_limits<HostId>::max();
static constexpr Cycles maxCycles = std::numeric_limits<Cycles>::max();

static constexpr unsigned lineShift = 6;    ///< 64 B cache lines.
static constexpr unsigned lineBytes = 1u << lineShift;
static constexpr unsigned pageShift = 12;   ///< 4 KB pages.
static constexpr unsigned pageBytes = 1u << pageShift;
/** Cache lines per page (64 with 4 KB pages and 64 B lines). */
static constexpr unsigned linesPerPage = pageBytes / lineBytes;

/** Extract the page frame of a physical address. */
constexpr PageFrame
pageOf(PhysAddr pa)
{
    return pa >> pageShift;
}

/** Extract the line address of a physical address. */
constexpr LineAddr
lineOf(PhysAddr pa)
{
    return pa >> lineShift;
}

/** Line index within its page, in [0, linesPerPage). */
constexpr unsigned
lineInPage(PhysAddr pa)
{
    return (pa >> lineShift) & (linesPerPage - 1);
}

/** First byte address of a page frame. */
constexpr PhysAddr
pageBase(PageFrame pfn)
{
    return pfn << pageShift;
}

/** First byte address of a cache line. */
constexpr PhysAddr
lineBase(LineAddr line)
{
    return line << lineShift;
}

/** Page frame containing a line address. */
constexpr PageFrame
pageOfLine(LineAddr line)
{
    return line >> (pageShift - lineShift);
}

/** Kind of memory operation a core issues. */
enum class MemOp : std::uint8_t { read, write };

/**
 * Where in the unified physical address space an address lives. Decided by
 * a simple range check, exactly as §4.3.3 describes for real CXL hosts.
 */
enum class AddrRegion : std::uint8_t
{
    hostLocal,   ///< some host's local DRAM (private or GIM-exposed)
    cxlPool      ///< the shared CXL-DSM pool
};

} // namespace pipm

#endif // PIPM_COMMON_TYPES_HH
