/**
 * @file
 * LEB128 varint and zigzag codecs shared by the trace subsystem
 * (DESIGN.md §14).
 *
 * Unsigned values are encoded little-endian base-128 (7 payload bits
 * per byte, high bit = continuation), so small magnitudes — the common
 * case for delta-encoded page indices and compute gaps — take one
 * byte. Signed deltas go through the zigzag mapping first (0, -1, 1,
 * -2, ... -> 0, 1, 2, 3, ...), which keeps small negative deltas small
 * instead of sign-extending them to ten bytes.
 *
 * Decoding is bounds-checked and returns the number of bytes consumed
 * (0 on truncation or a >10-byte overlong encoding), never reading past
 * `end`; trace files are untrusted inputs.
 */

#ifndef PIPM_COMMON_VARINT_HH
#define PIPM_COMMON_VARINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pipm
{

/** Longest legal LEB128 encoding of a 64-bit value, in bytes. */
static constexpr std::size_t maxVarintBytes = 10;

/** Append the LEB128 encoding of v to out. */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode one LEB128 value from [p, end).
 * @return bytes consumed, or 0 when the input is truncated or overlong
 */
inline std::size_t
getVarint(const std::uint8_t *p, const std::uint8_t *end,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (std::size_t i = 0; i < maxVarintBytes && p + i < end; ++i) {
        const std::uint8_t byte = p[i];
        // The tenth byte may only carry the top bit of a 64-bit value.
        if (i == maxVarintBytes - 1 && (byte & ~std::uint8_t{1}) != 0)
            return 0;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            out = v;
            return i + 1;
        }
        shift += 7;
    }
    return 0;
}

/** Map a signed delta onto the zigzag unsigned encoding. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Invert zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace pipm

#endif // PIPM_COMMON_VARINT_HH
