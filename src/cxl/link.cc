#include "cxl/link.hh"

#include <algorithm>

#include "fault/fault_injector.hh"

namespace pipm
{

CxlSwitch::CxlSwitch(double bytes_per_ns, double latency_ns)
    : bytesPerCycle_(bytes_per_ns / cyclesPerNs),
      latency_(nsToCycles(latency_ns)),
      stats_("cxl_switch")
{
    stats_.addCounter(&messages, "messages", "messages switched");
    stats_.addAverage(&queueDelay, "queue_delay",
                      "cycles waiting for switch bandwidth");
}

Cycles
CxlSwitch::traverse(LinkDir dir, unsigned bytes, Cycles now)
{
    const auto idx = static_cast<unsigned>(dir);
    const Cycles start = std::max(now, busyUntil_[idx]);
    queueDelay.sample(static_cast<double>(start - now));
    const auto serialisation = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(bytes) / bytesPerCycle_));
    busyUntil_[idx] = start + serialisation;
    messages.inc();
    return (start - now) + serialisation + latency_;
}

CxlLink::CxlLink(const CxlLinkConfig &cfg, std::string name,
                 CxlSwitch *shared_switch)
    : bytesPerCycle_(cfg.bytesPerNs / cyclesPerNs),
      propagation_(nsToCycles(cfg.latencyNs) +
                   (cfg.hasSwitch && !shared_switch
                        ? nsToCycles(cfg.switchNs)
                        : 0)),
      switch_(cfg.hasSwitch ? shared_switch : nullptr),
      stats_(std::move(name))
{
    stats_.addCounter(&messages, "messages", "messages transferred");
    stats_.addCounter(&bytesToDevice, "bytes_to_device",
                      "bytes sent host->device");
    stats_.addCounter(&bytesToHost, "bytes_to_host",
                      "bytes sent device->host");
    stats_.addAverage(&queueDelay, "queue_delay",
                      "cycles waiting for the wire");
    stats_.addCounter(&crcErrors, "crc_errors",
                      "messages corrupted and replayed");
    stats_.addCounter(&replayBytes, "replay_bytes",
                      "extra wire bytes spent on CRC replays");
}

Cycles
CxlLink::transfer(LinkDir dir, unsigned bytes, Cycles now)
{
    const auto idx = static_cast<unsigned>(dir);
    // A retraining link accepts no traffic; the message queues behind
    // the end of the window (and behind earlier queued messages).
    const Cycles retrain =
        faults_ ? faults_->retrainDelay(host_, now) : 0;
    const Cycles start = std::max(now + retrain, busyUntil_[idx]);
    queueDelay.sample(static_cast<double>(start - now));
    const auto serialisation = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(bytes) / bytesPerCycle_));
    busyUntil_[idx] = start + serialisation;
    messages.inc();
    if (dir == LinkDir::toDevice)
        bytesToDevice.inc(bytes);
    else
        bytesToHost.inc(bytes);
    Cycles lat = (start - now) + serialisation + propagation_;
    if (faults_ && faults_->corruptMessage(now)) {
        // CRC failure: the receiver NAKs (one propagation back) and the
        // sender re-serialises the whole message. The wire is occupied
        // for the replay too, so following traffic queues behind it.
        crcErrors.inc();
        replayBytes.inc(bytes);
        if (dir == LinkDir::toDevice)
            bytesToDevice.inc(bytes);
        else
            bytesToHost.inc(bytes);
        busyUntil_[idx] += serialisation;
        lat += 2 * propagation_ + serialisation;
    }
    if (switch_)
        lat += switch_->traverse(dir, bytes, now + lat);
    return lat;
}

} // namespace pipm
