#include "cxl/link.hh"

#include <algorithm>

#include "fault/fault_injector.hh"

namespace pipm
{

CxlSwitch::CxlSwitch(double bytes_per_ns, double latency_ns)
    : bytesPerCycle_(bytes_per_ns / cyclesPerNs),
      latency_(nsToCycles(latency_ns)),
      stats_("cxl_switch")
{
    stats_.addCounter(&messages, "messages", "messages switched");
    stats_.addAverage(&queueDelay, "queue_delay",
                      "cycles waiting for switch bandwidth");
}

Cycles
CxlSwitch::traverse(LinkDir dir, unsigned bytes, Cycles now)
{
    const auto idx = static_cast<unsigned>(dir);
    const Cycles start = std::max(now, busyUntil_[idx]);
    queueDelay.sample(static_cast<double>(start - now));
    const auto serialisation = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(bytes) / bytesPerCycle_));
    busyUntil_[idx] = start + serialisation;
    messages.inc();
    return (start - now) + serialisation + latency_;
}

CxlLink::CxlLink(const CxlLinkConfig &cfg, std::string name,
                 CxlSwitch *shared_switch)
    : bytesPerCycle_(cfg.bytesPerNs / cyclesPerNs),
      propagation_(nsToCycles(cfg.latencyNs) +
                   (cfg.hasSwitch && !shared_switch
                        ? nsToCycles(cfg.switchNs)
                        : 0)),
      switch_(cfg.hasSwitch ? shared_switch : nullptr),
      stats_(std::move(name))
{
    stats_.addCounter(&messages, "messages", "messages transferred");
    stats_.addCounter(&bytesToDevice, "bytes_to_device",
                      "bytes sent host->device");
    stats_.addCounter(&bytesToHost, "bytes_to_host",
                      "bytes sent device->host");
    stats_.addAverage(&queueDelay, "queue_delay",
                      "cycles waiting for the wire");
    stats_.addCounter(&crcErrors, "crc_errors",
                      "messages corrupted and replayed");
    stats_.addCounter(&replayBytes, "replay_bytes",
                      "extra wire bytes spent on CRC replays");
}

Cycles
CxlLink::transfer(LinkDir dir, unsigned bytes, Cycles now)
{
    const auto idx = static_cast<unsigned>(dir);
    // A retraining link accepts no traffic; the message queues behind
    // the end of the window (and behind earlier queued messages).
    const Cycles retrain =
        faults_ ? faults_->retrainDelay(host_, now) : 0;
    const Cycles start = std::max(now + retrain, busyUntil_[idx]);
    queueDelay.sample(static_cast<double>(start - now));
    const auto serialisation = std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(bytes) / bytesPerCycle_));
    busyUntil_[idx] = start + serialisation;
    messages.inc();
    if (dir == LinkDir::toDevice)
        bytesToDevice.inc(bytes);
    else
        bytesToHost.inc(bytes);
    Cycles lat = (start - now) + serialisation + propagation_;
    if (faults_ && faults_->corruptMessage(now)) {
        // CRC failure: the receiver NAKs (one propagation back) and the
        // sender re-serialises the whole message. The wire is occupied
        // for the replay too, so following traffic queues behind it.
        crcErrors.inc();
        replayBytes.inc(bytes);
        if (dir == LinkDir::toDevice)
            bytesToDevice.inc(bytes);
        else
            bytesToHost.inc(bytes);
        busyUntil_[idx] += serialisation;
        lat += 2 * propagation_ + serialisation;
    }
    if (switch_)
        lat += switch_->traverse(dir, bytes, now + lat);
    return lat;
}

TxnAwait
CxlLink::awaitResponse(Cycles now, Cycles responsive_at,
                       std::uint64_t jitter_key)
{
    TxnAwait out;
    if (!faults_ || responsive_at <= now)
        return out;
    const FaultConfig &fc = faults_->config();
    const Cycles timeout = nsToCycles(fc.txnTimeoutNs);
    const Cycles base = nsToCycles(fc.txnBackoffBaseNs);
    Cycles depart = now;
    for (unsigned attempt = 0;; ++attempt) {
        if (depart >= responsive_at)
            break;   // this attempt reaches a responsive target
        faults_->noteTxnTimeout();
        if (attempt >= fc.txnRetryLimit) {
            // Budget exhausted: eat the last timeout and give up; the
            // caller suspects the target.
            depart += timeout;
            out.ok = false;
            break;
        }
        const unsigned exp = std::min(attempt, fc.txnBackoffMaxExp);
        // Deterministic jitter in [0, base/4]: desynchronises retries of
        // concurrent transactions without consuming any RNG stream.
        const Cycles jitter =
            base ? faults_->hashDraw(jitter_key ^ (attempt + 1)) %
                       (base / 4 + 1)
                 : 0;
        depart += timeout + base * (Cycles{1} << exp) + jitter;
        ++out.retries;
        faults_->noteTxnRetry(host_, depart, attempt + 1);
    }
    out.latency = depart - now;
    return out;
}

} // namespace pipm
