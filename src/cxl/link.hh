/**
 * @file
 * CXL link model: fixed per-direction propagation latency plus
 * serialisation bandwidth, with an optional switch hop (Table 2 / §5.4.1).
 *
 * Each host connects to the CXL memory node by one full-duplex link. The
 * model tracks a busy-until clock per direction: a message waits for the
 * wire, occupies it for size/bandwidth cycles, then takes the propagation
 * delay (plus the switch traversal when configured). This captures both
 * the latency sensitivity of Fig. 14 and the bandwidth sensitivity of
 * Fig. 15, including contention between demand traffic and page-migration
 * transfers.
 */

#ifndef PIPM_CXL_LINK_HH
#define PIPM_CXL_LINK_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

class FaultInjector;

/** Direction of travel over a host<->device link. */
enum class LinkDir : std::uint8_t { toDevice, toHost };

/** Outcome of awaiting a response from a possibly-unresponsive target. */
struct TxnAwait
{
    Cycles latency = 0;    ///< cycles burned on timeouts and backoff
    unsigned retries = 0;  ///< retry attempts after the first timeout
    bool ok = true;        ///< false: retry budget exhausted, give up
};

/**
 * CXL message sizes (bytes) charged on the wire. The configured link
 * bandwidth is the *effective* data bandwidth (Table 2 footnote: 8 GB/s
 * raw, 5 GB/s effective), so protocol framing is already accounted for:
 * a data message charges exactly one line and control messages charge a
 * nominal 8 bytes.
 */
struct CxlFlits
{
    static constexpr unsigned header = 8;         ///< req/ack/inv
    static constexpr unsigned data = lineBytes;   ///< carrying a line
};

/**
 * A shared CXL switch stage (§2.1 "optional CXL switches"): every
 * host<->device message of every link crosses it, contending for its
 * aggregate bandwidth and paying its traversal latency. Modelled like a
 * link direction pair with a common byte budget.
 */
class CxlSwitch
{
  public:
    /**
     * @param bytes_per_ns aggregate switching bandwidth per direction
     * @param latency_ns per-traversal latency
     */
    CxlSwitch(double bytes_per_ns, double latency_ns);

    /** Cross the switch; returns queueing + traversal latency. */
    Cycles traverse(LinkDir dir, unsigned bytes, Cycles now);

    StatGroup &stats() { return stats_; }

    Counter messages;
    Average queueDelay;

  private:
    double bytesPerCycle_;
    Cycles latency_;
    Cycles busyUntil_[2] = {0, 0};
    StatGroup stats_;
};

/** One full-duplex host<->device CXL link. */
class CxlLink
{
  public:
    /**
     * @param cfg link parameters
     * @param name stat-group name
     * @param shared_switch optional switch every message crosses
     *        (replaces the fixed per-traversal switch latency)
     */
    CxlLink(const CxlLinkConfig &cfg, std::string name,
            CxlSwitch *shared_switch = nullptr);

    /**
     * Transmit one message.
     * @param dir direction of travel
     * @param bytes wire size of the message
     * @param now departure time
     * @return latency from `now` until the message arrives
     */
    Cycles transfer(LinkDir dir, unsigned bytes, Cycles now);

    /** Propagation-only latency of one traversal (no queuing). */
    Cycles propagation() const { return propagation_; }

    /**
     * Timeout/retry engine of the detection layer (DESIGN.md §11): wait
     * for a response from a target that becomes responsive at
     * `responsive_at`. Each attempt that departs before that instant
     * times out after fault.txnTimeoutNs; the retry departs after an
     * exponentially growing backoff (base x 2^min(attempt, maxExp)) plus
     * deterministic jitter hashed from `jitter_key`, up to
     * fault.txnRetryLimit retries. Retries are idempotent — the caller
     * performs the actual transfer once, after a successful await.
     *
     * @return accumulated timeout+backoff latency, the retry count, and
     *         whether an attempt finally got through (`ok`). With a
     *         responsive target ({latency 0, retries 0, ok}) the engine
     *         is free, so oracle-mode runs are untouched.
     */
    TxnAwait awaitResponse(Cycles now, Cycles responsive_at,
                           std::uint64_t jitter_key);

    /**
     * Attach the system's fault injector: messages may then be CRC-
     * corrupted (replay latency + a second bandwidth charge) or stalled
     * behind this host's retraining windows.
     * @param host the host this link belongs to (retraining phase)
     */
    void
    attachFaults(FaultInjector *faults, HostId host)
    {
        faults_ = faults;
        host_ = host;
    }

    StatGroup &stats() { return stats_; }

    Counter messages;
    Counter bytesToDevice;
    Counter bytesToHost;
    Counter crcErrors;     ///< messages corrupted and replayed
    Counter replayBytes;   ///< extra wire bytes spent on replays
    Average queueDelay;

  private:
    double bytesPerCycle_;
    Cycles propagation_;
    CxlSwitch *switch_;
    FaultInjector *faults_ = nullptr;
    HostId host_ = 0;
    Cycles busyUntil_[2] = {0, 0};
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_CXL_LINK_HH
