#include "fault/fault_injector.hh"

#include <limits>

namespace pipm
{

namespace
{

/** splitmix64 finaliser: a stateless hash usable as an RNG draw. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform [0,1) from a stateless hash of (seed, key). */
double
hashU01(std::uint64_t seed, std::uint64_t key)
{
    return static_cast<double>(mix(seed ^ mix(key)) >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &cfg, unsigned num_hosts,
                             std::uint64_t seed)
    : cfg_(cfg),
      numHosts_(num_hosts),
      seed_(seed),
      rng_(seed),
      retrainInterval_(nsToCycles(cfg.retrainIntervalNs)),
      retrainWindow_(nsToCycles(cfg.retrainWindowNs)),
      retrainPhase_(num_hosts, 0),
      lastRetrainEpoch_(num_hosts,
                        std::numeric_limits<std::uint64_t>::max()),
      stats_("fault")
{
    // Spread the hosts' retraining windows over the period so that at
    // most one link is usually down at a time.
    if (retrainInterval_ > 0) {
        for (unsigned h = 0; h < num_hosts; ++h)
            retrainPhase_[h] = mix(seed ^ (h + 1)) % retrainInterval_;
    }
    stats_.addCounter(&linkErrors, "link_errors",
                      "CRC-corrupted link messages replayed");
    stats_.addCounter(&retrainEvents, "retrain_events",
                      "link retraining windows entered");
    stats_.addCounter(&retrainStallCycles, "retrain_stall_cycles",
                      "cycles messages waited on a retraining link");
    stats_.addCounter(&poisonTransient, "poison_transient",
                      "transiently poisoned lines hit (ECC retry)");
    stats_.addCounter(&poisonPersistent, "poison_persistent",
                      "persistently poisoned lines discovered");
    stats_.addCounter(&degradedAccesses, "degraded_accesses",
                      "accesses served by the degraded uncached path");
    stats_.addCounter(&promotionAborts, "promotion_aborts",
                      "partial migrations aborted and rolled back");
    stats_.addCounter(&lineAborts, "line_aborts",
                      "incremental line migrations aborted");
    stats_.addCounter(&migrationsDeferred, "migrations_deferred",
                      "vote firings suppressed by link-error backoff");
    stats_.addCounter(&backoffEntries, "backoff_entries",
                      "times migration backoff was (re-)armed");
}

bool
FaultInjector::corruptMessage(Cycles now)
{
    if (cfg_.linkErrorRate <= 0.0)
        return false;
    const bool corrupted = rng_.chance(cfg_.linkErrorRate);
    ++windowMessages_;
    if (corrupted) {
        ++windowErrors_;
        linkErrors.inc();
    }
    if (windowMessages_ >= cfg_.backoffWindow) {
        const double rate = static_cast<double>(windowErrors_) /
                            static_cast<double>(windowMessages_);
        if (rate > cfg_.backoffThreshold) {
            backoffUntil_ =
                now + nsToCycles(cfg_.backoffBaseNs) *
                          (Cycles{1} << backoffExp_);
            if (backoffExp_ < cfg_.backoffMaxExp)
                ++backoffExp_;
            backoffEntries.inc();
        } else if (now >= backoffUntil_) {
            // A healthy window after the backoff drained: full reset.
            backoffExp_ = 0;
        }
        windowMessages_ = 0;
        windowErrors_ = 0;
    }
    return corrupted;
}

Cycles
FaultInjector::retrainDelay(HostId h, Cycles now)
{
    if (retrainInterval_ == 0)
        return 0;
    const Cycles t = now + retrainPhase_[h];
    const Cycles into = t % retrainInterval_;
    if (into >= retrainWindow_)
        return 0;
    const std::uint64_t epoch = t / retrainInterval_;
    if (epoch != lastRetrainEpoch_[h]) {
        lastRetrainEpoch_[h] = epoch;
        retrainEvents.inc();
    }
    const Cycles delay = retrainWindow_ - into;
    retrainStallCycles.inc(delay);
    return delay;
}

PoisonState
FaultInjector::poisonCheck(LineAddr line)
{
    if (cfg_.poisonRate <= 0.0)
        return PoisonState::clean;
    auto it = poison_.find(line);
    if (it != poison_.end())
        return it->second;
    // Stateless per-line draw: independent of access order, so the same
    // lines are poisoned regardless of which host finds them first.
    PoisonState state = PoisonState::clean;
    if (hashU01(seed_, line) < cfg_.poisonRate) {
        if (hashU01(seed_ ^ 0x706f69736f6e2137ull, line) <
            cfg_.persistentPoisonFrac) {
            state = PoisonState::persistentPoison;
            poisonPersistent.inc();
        } else {
            state = PoisonState::transientPoison;
            poisonTransient.inc();
        }
    }
    // The ECC retry scrubs transient poison: later checks see clean.
    poison_[line] = state == PoisonState::transientPoison
                        ? PoisonState::clean
                        : state;
    return state;
}

bool
FaultInjector::linePersistentlyPoisoned(LineAddr line) const
{
    auto it = poison_.find(line);
    return it != poison_.end() &&
           it->second == PoisonState::persistentPoison;
}

bool
FaultInjector::abortPromotion()
{
    if (cfg_.migrationAbortRate <= 0.0)
        return false;
    if (!rng_.chance(cfg_.migrationAbortRate))
        return false;
    promotionAborts.inc();
    return true;
}

bool
FaultInjector::abortLineMigration()
{
    if (cfg_.migrationAbortRate <= 0.0)
        return false;
    if (!rng_.chance(cfg_.migrationAbortRate))
        return false;
    lineAborts.inc();
    return true;
}

} // namespace pipm
