#include "fault/fault_injector.hh"

#include <algorithm>
#include <limits>

namespace pipm
{

namespace
{

/** splitmix64 finaliser: a stateless hash usable as an RNG draw. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform [0,1) from a stateless hash of (seed, key). */
double
hashU01(std::uint64_t seed, std::uint64_t key)
{
    return static_cast<double>(mix(seed ^ mix(key)) >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &cfg, unsigned num_hosts,
                             std::uint64_t seed)
    : cfg_(cfg),
      numHosts_(num_hosts),
      seed_(seed),
      rng_(seed),
      retrainInterval_(nsToCycles(cfg.retrainIntervalNs)),
      retrainWindow_(nsToCycles(cfg.retrainWindowNs)),
      retrainPhase_(num_hosts, 0),
      lastRetrainEpoch_(num_hosts,
                        std::numeric_limits<std::uint64_t>::max()),
      stallWindows_(num_hosts),
      stallCounted_(num_hosts, 0),
      stats_("fault")
{
    // Spread the hosts' retraining windows over the period so that at
    // most one link is usually down at a time.
    if (retrainInterval_ > 0) {
        for (unsigned h = 0; h < num_hosts; ++h)
            retrainPhase_[h] = mix(seed ^ (h + 1)) % retrainInterval_;
    }
    stats_.addCounter(&linkErrors, "link_errors",
                      "CRC-corrupted link messages replayed");
    stats_.addCounter(&retrainEvents, "retrain_events",
                      "link retraining windows entered");
    stats_.addCounter(&retrainStallCycles, "retrain_stall_cycles",
                      "cycles messages waited on a retraining link");
    stats_.addCounter(&poisonTransient, "poison_transient",
                      "transiently poisoned lines hit (ECC retry)");
    stats_.addCounter(&poisonPersistent, "poison_persistent",
                      "persistently poisoned lines discovered");
    stats_.addCounter(&degradedAccesses, "degraded_accesses",
                      "accesses served by the degraded uncached path");
    stats_.addCounter(&promotionAborts, "promotion_aborts",
                      "partial migrations aborted and rolled back");
    stats_.addCounter(&lineAborts, "line_aborts",
                      "incremental line migrations aborted");
    stats_.addCounter(&migrationsDeferred, "migrations_deferred",
                      "vote firings suppressed by link-error backoff");
    stats_.addCounter(&backoffEntries, "backoff_entries",
                      "times migration backoff was (re-)armed");
    stats_.addCounter(&hostCrashes, "host_crashes",
                      "host fail-stop crash events processed");
    stats_.addCounter(&hostRejoins, "host_rejoins",
                      "host rejoin events processed");
    stats_.addCounter(&crashDirSwept, "crash_dir_swept",
                      "directory entries reclaimed by crash sweeps");
    stats_.addCounter(&crashLinesReclaimed, "crash_lines_reclaimed",
                      "migrated lines reintegrated after a crash");
    stats_.addCounter(&crashPagesReclaimed, "crash_pages_reclaimed",
                      "remap/GIM pages reclaimed after a crash");
    stats_.addCounter(&crashDirtyLinesLost, "crash_dirty_lines_lost",
                      "lines whose latest value died with a host");
    stats_.addCounter(&crashRecoveryCycles, "crash_recovery_cycles",
                      "device cycles spent on crash reclamation");
    stats_.addCounter(&staleEpochDrops, "stale_epoch_drops",
                      "stale-epoch references rejected");
    if (cfg.leaseNs > 0.0) {
        // Registered only under a lease so that oracle-mode stats.json
        // exports keep the exact counter set they had before detection
        // existed (byte-identity of the crash-schedule exports).
        stats_.addCounter(&suspicions, "suspicions",
                          "hosts suspected by the lease detector");
        stats_.addCounter(&falseSuspicions, "false_suspicions",
                          "suspicions of hosts that were actually alive");
        stats_.addCounter(&fencedRequests, "fenced_requests",
                          "stale-epoch zombie requests NACKed");
        stats_.addCounter(&txnTimeouts, "txn_timeouts",
                          "coherence-transaction attempts timed out");
        stats_.addCounter(&txnRetries, "txn_retries",
                          "timed-out coherence transactions retried");
        stats_.addCounter(&txnAbandoned, "txn_abandoned",
                          "transactions abandoned after the retry budget");
        stats_.addCounter(&stallWindowsEntered, "stall_windows",
                          "gray-failure stall windows entered");
    }
    if (cfg.metaCorruptMeanIntervalNs > 0.0) {
        // Registered only when the metadata fault domain is on, so
        // corruption-off stats.json exports stay byte-identical to the
        // pre-§12 counter set.
        stats_.addCounter(&metaCorruptions, "meta_corruptions",
                          "metadata corruption events applied");
        stats_.addCounter(&metaCorruptSkipped, "meta_corrupt_skipped",
                          "corruption events that found no victim entry");
        stats_.addCounter(&metaScrubChecks, "meta_scrub_checks",
                          "quarantined metadata entries validated");
        stats_.addCounter(&metaScrubRepairs, "meta_scrub_repairs",
                          "metadata entries rebuilt from host state");
        stats_.addCounter(&metaJournalReplays, "meta_journal_replays",
                          "remap entries replayed from the redo journal");
        stats_.addCounter(&metaUnrepairable, "meta_unrepairable",
                          "shadow-checksum hits degraded or reclaimed");
        stats_.addCounter(&metaBreakerTrips, "meta_breaker_trips",
                          "migration circuit breakers opened");
        stats_.addCounter(&metaBreakerHalfOpens, "meta_breaker_half_opens",
                          "migration breakers half-opened after cool-down");
        breakerWindow_ = nsToCycles(cfg.metaBreakerWindowNs);
        breakerCooldown_ = nsToCycles(cfg.metaBreakerCooldownNs);
    }
    generateCrashSchedule();
    generateStallSchedule();
    generateMetaSchedule();
}

void
FaultInjector::generateMetaSchedule()
{
    if (cfg_.metaCorruptMeanIntervalNs <= 0.0)
        return;
    // A dedicated "meta-ev" stream (like the crash and stall schedules):
    // enabling metadata corruption must not move any other fault draw.
    Rng mrng(seed_ ^ 0x6d6574612d6576ull);
    const Cycles mean = nsToCycles(cfg_.metaCorruptMeanIntervalNs);

    Cycles t = 0;
    for (unsigned k = 0; k < cfg_.metaCorruptMaxEvents; ++k) {
        // Uniform spacing in [0.5, 1.5] x mean, matching the crash and
        // stall spacing law.
        t += mean / 2 + mrng.range(0, mean > 0 ? mean : 1);
        MetaCorruptEvent ev;
        ev.at = t;
        ev.pick = mrng.next();
        ev.bits = mrng.next() | 1;   // at least one bit flips
        ev.remapTarget = mrng.chance(0.5);
        ev.shadowHit = mrng.chance(cfg_.metaShadowHitFrac);
        metaSchedule_.push_back(ev);
    }
}

const MetaCorruptEvent *
FaultInjector::nextMetaCorruptEvent(Cycles now)
{
    if (metaCursor_ >= metaSchedule_.size())
        return nullptr;
    const MetaCorruptEvent &ev = metaSchedule_[metaCursor_];
    if (ev.at > now)
        return nullptr;
    ++metaCursor_;
    return &ev;
}

void
FaultInjector::noteMetaRepair(PageFrame page, Cycles now)
{
    const std::uint64_t g = page / cfg_.metaBreakerGroupPages;
    Breaker &b = breakers_[g];
    if (now - b.windowStart > breakerWindow_) {
        b.strikes = 0;
        b.windowStart = now;
    }
    if (b.open)
        return;   // already shedding; further strikes change nothing
    ++b.strikes;
    if (b.strikes >= cfg_.metaBreakerThreshold) {
        b.open = true;
        b.openUntil = now + breakerCooldown_ * (Cycles{1} << b.exp);
        if (b.exp < cfg_.metaBreakerMaxExp)
            ++b.exp;
        b.strikes = 0;
        if (!b.hot) {
            b.hot = true;
            hotBreakers_.push_back(g);
        }
        metaBreakerTrips.inc();
        if (trace_) {
            trace_->record(ObsEventType::breakerTrip, now,
                           g * cfg_.metaBreakerGroupPages, invalidHost,
                           b.exp);
        }
    }
}

bool
FaultInjector::migrationShed(PageFrame page, Cycles now) const
{
    if (breakers_.empty())
        return false;
    const auto it = breakers_.find(page / cfg_.metaBreakerGroupPages);
    return it != breakers_.end() && it->second.open &&
           now < it->second.openUntil;
}

void
FaultInjector::advanceBreakers(Cycles now)
{
    for (std::size_t i = 0; i < hotBreakers_.size();) {
        const std::uint64_t g = hotBreakers_[i];
        Breaker &b = breakers_.find(g)->second;
        if (b.open && now >= b.openUntil) {
            // Cool-down elapsed: half-open. Demand traffic was never
            // blocked; migrations resume on probation.
            b.open = false;
            b.halfOpenAt = now;
            b.strikes = 0;
            b.windowStart = now;
            metaBreakerHalfOpens.inc();
            if (trace_) {
                trace_->record(ObsEventType::breakerHalfOpen, now,
                               g * cfg_.metaBreakerGroupPages, invalidHost,
                               b.exp);
            }
        }
        if (!b.open && b.exp > 0 && b.strikes == 0 &&
            now >= b.halfOpenAt + breakerWindow_) {
            // A full clean window on probation: forget the trip history
            // so the next trip starts from the base cool-down again.
            b.exp = 0;
        }
        if (!b.open && b.exp == 0) {
            b.hot = false;
            hotBreakers_[i] = hotBreakers_.back();
            hotBreakers_.pop_back();
        } else {
            ++i;
        }
    }
}

Cycles
FaultInjector::nextBreakerEventAt() const
{
    Cycles next = maxCycles;
    for (const std::uint64_t g : hotBreakers_) {
        const Breaker &b = breakers_.find(g)->second;
        if (b.open) {
            next = std::min(next, b.openUntil);
        } else if (b.exp > 0 && b.strikes == 0) {
            next = std::min(next, b.halfOpenAt + breakerWindow_);
        }
        // !open && exp > 0 && strikes > 0: only noteMetaRepair() can move
        // this breaker, and its call sites invalidate the cached horizon.
    }
    return next;
}

void
FaultInjector::generateCrashSchedule()
{
    if (cfg_.crashMeanIntervalNs <= 0.0)
        return;
    // A dedicated stream: the ordered link/migration draws in rng_ must
    // not move when crashes are enabled (zero-crash bit-identity).
    Rng crng(seed_ ^ 0x63726173682d6576ull);
    const Cycles mean = nsToCycles(cfg_.crashMeanIntervalNs);
    const Cycles down =
        cfg_.crashRejoinNs > 0.0 ? nsToCycles(cfg_.crashRejoinNs) : 0;

    std::vector<Cycles> downUntil(numHosts_, 0);   ///< 0: host is up
    Cycles t = 0;
    for (unsigned k = 0; k < cfg_.crashMaxEvents; ++k) {
        // Uniform spacing in [0.5, 1.5] x mean.
        t += mean / 2 + crng.range(0, mean > 0 ? mean : 1);
        unsigned alive = 0;
        for (unsigned h = 0; h < numHosts_; ++h) {
            if (downUntil[h] != 0 && downUntil[h] <= t)
                downUntil[h] = 0;   // rejoined by now
            if (downUntil[h] == 0)
                ++alive;
        }
        // Never crash the last alive host: the machine must make
        // progress so the schedule stays reachable.
        if (alive <= 1)
            continue;
        std::uint64_t pick = crng.range(0, alive - 1);
        HostId victim = invalidHost;
        for (unsigned h = 0; h < numHosts_; ++h) {
            if (downUntil[h] != 0)
                continue;
            if (pick-- == 0) {
                victim = static_cast<HostId>(h);
                break;
            }
        }
        CrashEvent ev;
        ev.at = t;
        ev.host = victim;
        ev.rejoin = false;
        ev.downUntil = down ? t + down : maxCycles;
        crashSchedule_.push_back(ev);
        downUntil[victim] = down ? t + down : maxCycles;
        if (down) {
            CrashEvent re;
            re.at = t + down;
            re.host = victim;
            re.rejoin = true;
            re.downUntil = 0;
            crashSchedule_.push_back(re);
        }
    }
    // eventBefore is a strict total order (time, rejoin-first, host):
    // the old comparator left same-instant same-kind events in an
    // unspecified relative order, so the processed sequence depended on
    // the std::sort implementation.
    std::sort(crashSchedule_.begin(), crashSchedule_.end(), &eventBefore);
}

void
FaultInjector::generateStallSchedule()
{
    if (cfg_.stallMeanIntervalNs <= 0.0)
        return;
    // A dedicated stream (like the crash schedule): enabling stall
    // windows must not move the crash schedule or any ordered draw.
    Rng srng(seed_ ^ 0x7374616c6c2d6576ull);
    const Cycles mean = nsToCycles(cfg_.stallMeanIntervalNs);
    const Cycles window = nsToCycles(cfg_.stallWindowNs);

    Cycles t = 0;
    for (unsigned k = 0; k < cfg_.stallMaxEvents; ++k) {
        // Uniform spacing in [0.5, 1.5] x mean, matching the crash
        // schedule's spacing law.
        t += mean / 2 + srng.range(0, mean > 0 ? mean : 1);
        const HostId victim =
            static_cast<HostId>(srng.range(0, numHosts_ - 1));
        const Cycles dur =
            window / 2 + srng.range(0, window > 0 ? window : 1);
        auto &wins = stallWindows_[victim];
        // Windows are generated in increasing start order; merge a new
        // window that begins inside the previous one instead of letting
        // them overlap, so stallUntil can binary-search.
        if (!wins.empty() && wins.back().second > t)
            wins.back().second = std::max(wins.back().second, t + dur);
        else
            wins.emplace_back(t, t + dur);
    }
}

Cycles
FaultInjector::stallUntilAt(HostId h, Cycles now) const
{
    const auto &wins = stallWindows_[h];
    // Last window starting at or before `now`.
    auto it = std::upper_bound(
        wins.begin(), wins.end(), now,
        [](Cycles t, const std::pair<Cycles, Cycles> &w) {
            return t < w.first;
        });
    if (it == wins.begin())
        return 0;
    --it;
    return now < it->second ? it->second : 0;
}

Cycles
FaultInjector::stallUntil(HostId h, Cycles now)
{
    const Cycles until = stallUntilAt(h, now);
    if (until == 0)
        return 0;
    const auto &wins = stallWindows_[h];
    const std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(wins.begin(), wins.end(), now,
                         [](Cycles t, const std::pair<Cycles, Cycles> &w) {
                             return t < w.first;
                         }) -
        wins.begin());   // 1 + index of the covering window
    if (idx > stallCounted_[h]) {
        stallCounted_[h] = idx;
        stallWindowsEntered.inc();
        if (trace_) {
            trace_->record(ObsEventType::stallWindow, now, 0, h,
                           static_cast<std::uint32_t>(until - now));
        }
    }
    return until;
}

std::uint64_t
FaultInjector::hashDraw(std::uint64_t key) const
{
    return mix(seed_ ^ 0x74786e2d6a697474ull ^ mix(key));
}

const CrashEvent *
FaultInjector::nextCrashEvent(Cycles now)
{
    if (crashCursor_ >= crashSchedule_.size())
        return nullptr;
    const CrashEvent &ev = crashSchedule_[crashCursor_];
    if (ev.at > now)
        return nullptr;
    ++crashCursor_;
    return &ev;
}

bool
FaultInjector::corruptMessage(Cycles now)
{
    if (cfg_.linkErrorRate <= 0.0)
        return false;
    const bool corrupted = rng_.chance(cfg_.linkErrorRate);
    ++windowMessages_;
    if (corrupted) {
        ++windowErrors_;
        linkErrors.inc();
    }
    if (windowMessages_ >= cfg_.backoffWindow) {
        const double rate = static_cast<double>(windowErrors_) /
                            static_cast<double>(windowMessages_);
        if (rate > cfg_.backoffThreshold) {
            backoffUntil_ =
                now + nsToCycles(cfg_.backoffBaseNs) *
                          (Cycles{1} << backoffExp_);
            if (backoffExp_ < cfg_.backoffMaxExp)
                ++backoffExp_;
            backoffEntries.inc();
            if (trace_) {
                trace_->record(ObsEventType::backoffArmed, now, 0,
                               invalidHost, backoffExp_);
            }
        } else if (now >= backoffUntil_) {
            // A healthy window after the backoff drained: full reset.
            backoffExp_ = 0;
        }
        windowMessages_ = 0;
        windowErrors_ = 0;
    }
    return corrupted;
}

Cycles
FaultInjector::retrainDelay(HostId h, Cycles now)
{
    if (retrainInterval_ == 0)
        return 0;
    const Cycles t = now + retrainPhase_[h];
    const Cycles into = t % retrainInterval_;
    if (into >= retrainWindow_)
        return 0;
    const std::uint64_t epoch = t / retrainInterval_;
    if (epoch != lastRetrainEpoch_[h]) {
        lastRetrainEpoch_[h] = epoch;
        retrainEvents.inc();
        if (trace_) {
            trace_->record(ObsEventType::retrainWindow, now, 0, h,
                           static_cast<std::uint32_t>(retrainWindow_ - into));
        }
    }
    const Cycles delay = retrainWindow_ - into;
    retrainStallCycles.inc(delay);
    return delay;
}

PoisonState
FaultInjector::poisonCheck(LineAddr line)
{
    // The memo comes first: crash recovery (policy `poison`) can force a
    // line persistently poisoned even when the random poison rate is 0.
    auto it = poison_.find(line);
    if (it != poison_.end())
        return it->second;
    if (cfg_.poisonRate <= 0.0)
        return PoisonState::clean;
    // Stateless per-line draw: independent of access order, so the same
    // lines are poisoned regardless of which host finds them first.
    PoisonState state = PoisonState::clean;
    if (hashU01(seed_, line) < cfg_.poisonRate) {
        if (hashU01(seed_ ^ 0x706f69736f6e2137ull, line) <
            cfg_.persistentPoisonFrac) {
            state = PoisonState::persistentPoison;
            poisonPersistent.inc();
        } else {
            state = PoisonState::transientPoison;
            poisonTransient.inc();
        }
    }
    // The ECC retry scrubs transient poison: later checks see clean.
    poison_[line] = state == PoisonState::transientPoison
                        ? PoisonState::clean
                        : state;
    return state;
}

bool
FaultInjector::linePersistentlyPoisoned(LineAddr line) const
{
    auto it = poison_.find(line);
    return it != poison_.end() &&
           it->second == PoisonState::persistentPoison;
}

void
FaultInjector::poisonLineForever(LineAddr line)
{
    auto it = poison_.find(line);
    if (it != poison_.end() && it->second == PoisonState::persistentPoison)
        return;
    poison_[line] = PoisonState::persistentPoison;
    poisonPersistent.inc();
}

bool
FaultInjector::abortPromotion()
{
    if (cfg_.migrationAbortRate <= 0.0)
        return false;
    if (!rng_.chance(cfg_.migrationAbortRate))
        return false;
    promotionAborts.inc();
    return true;
}

bool
FaultInjector::abortLineMigration()
{
    if (cfg_.migrationAbortRate <= 0.0)
        return false;
    if (!rng_.chance(cfg_.migrationAbortRate))
        return false;
    lineAborts.inc();
    return true;
}

} // namespace pipm
