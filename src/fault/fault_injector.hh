/**
 * @file
 * Seeded, deterministic fault injection for the CXL fabric and the PIPM
 * migration engine (DESIGN.md §7).
 *
 * One FaultInjector is shared by the whole system and drives four fault
 * classes:
 *
 *  - transient link CRC errors: a corrupted flit costs a replay round
 *    trip and a second serialisation charge (modelled in cxl/link.cc);
 *  - link retraining: each host's link goes down for a fixed window on
 *    its own deterministic phase within a configurable period, stalling
 *    queued traffic until the window ends;
 *  - poisoned lines in CXL DRAM: transient poison forces one ECC retry
 *    read, persistent poison makes the line uncacheable — the system
 *    serves it through a degraded remote-access path that never fills a
 *    cache or allocates a directory entry;
 *  - mid-migration faults: a promotion or an incremental line migration
 *    aborts; the system rolls back (promotion) or idempotently completes
 *    (line writeback falls through to CXL memory) so that no line is
 *    ever doubly mapped or unreachable;
 *  - host fail-stop crashes (DESIGN.md §8): a pre-generated schedule of
 *    per-host crash (and optional rejoin) events. The injector only owns
 *    the *schedule* and the crash counters; the reclamation itself
 *    (directory sweep, remap reintegration, epoch bump) is done by
 *    MultiHostSystem::crashHost()/rejoinHost() when an event falls due.
 *
 * All link-message draws come from one xoshiro stream seeded from the
 * fault seed; per-line poison and retraining phases are stateless hash
 * draws, so they are independent of access order. The crash schedule is
 * generated at construction from its own derived stream, so turning
 * crashes on does not shift any other fault draw. A config with every
 * rate at zero makes no draws at all, which keeps a zero-fault run
 * bit-identical to a fault-disabled one.
 *
 * The injector also implements the degradation policy: the observed link
 * error rate is measured over windows of `backoffWindow` messages; when
 * it exceeds `backoffThreshold`, migrations are suspended for an
 * exponentially growing interval (reset by a healthy window), so the
 * migration engine stops churning remap state over a flaky fabric.
 */

#ifndef PIPM_FAULT_FAULT_INJECTOR_HH
#define PIPM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"

namespace pipm
{

/** Poison status of one CXL DRAM line. */
enum class PoisonState : std::uint8_t
{
    clean,
    transientPoison,   ///< one ECC retry scrubs it
    persistentPoison   ///< uncacheable; degraded path forever
};

/** One scheduled host fail-stop or rejoin event. */
struct CrashEvent
{
    Cycles at = 0;              ///< when the event fires
    HostId host = invalidHost;  ///< which host
    bool rejoin = false;        ///< false: crash, true: rejoin
    /** For crash events: when the host comes back (maxCycles: never). */
    Cycles downUntil = maxCycles;
};

/** Deterministic fault source shared by links, device and migration. */
class FaultInjector
{
  public:
    /**
     * @param cfg fault rates and windows
     * @param num_hosts host count (per-host retraining phases)
     * @param seed stream seed (mix of run seed and cfg.seed)
     */
    FaultInjector(const FaultConfig &cfg, unsigned num_hosts,
                  std::uint64_t seed);

    // ---- Link faults ---------------------------------------------------

    /**
     * Draw the CRC fate of one link message and feed the error-rate
     * window that drives migration backoff.
     * @return true when the message is corrupted and must be replayed
     */
    bool corruptMessage(Cycles now);

    /**
     * Cycles host h's link is still down for retraining at `now` (0 when
     * the link is up). Counts each retraining window once.
     */
    Cycles retrainDelay(HostId h, Cycles now);

    // ---- Poisoned lines ------------------------------------------------

    /**
     * Poison status of a CXL DRAM line at its first device read. The
     * per-line draw is memoised: transient poison is scrubbed by the
     * retry (later checks return clean), persistent poison is forever.
     */
    PoisonState poisonCheck(LineAddr line);

    /** Whether a line has been discovered persistently poisoned. */
    bool linePersistentlyPoisoned(LineAddr line) const;

    /** Pre-size the per-line poison memo (first-touch entries). */
    void reservePoison(std::uint64_t lines) { poison_.reserve(lines); }

    /**
     * Force a line into the persistent-poison state. Used by the crash
     * recovery policy `poison`: the device marks lines whose only
     * up-to-date copy died with a host, so later accesses observably
     * take the degraded path instead of silently reading stale data.
     */
    void poisonLineForever(LineAddr line);

    // ---- Host fail-stop crashes -----------------------------------------

    /**
     * The next scheduled crash/rejoin event due at or before `now`, or
     * nullptr. Each event is returned exactly once, in time order; the
     * caller (MultiHostSystem::tick) performs the reclamation.
     */
    const CrashEvent *nextCrashEvent(Cycles now);

    /** The full pre-generated schedule (tests and tools). */
    const std::vector<CrashEvent> &crashSchedule() const
    {
        return crashSchedule_;
    }

    // ---- Migration faults ----------------------------------------------

    /** Draw whether a fault lands mid-promotion (roll back if so). */
    bool abortPromotion();

    /** Draw whether a fault lands mid-line-migration (complete to CXL). */
    bool abortLineMigration();

    /** Whether migrations are currently backed off (degraded link). */
    bool
    migrationsSuspended(Cycles now) const
    {
        return now < backoffUntil_;
    }

    // ---- Observability ---------------------------------------------------

    /**
     * Attach an event trace (nullptr: detach). The injector records
     * retraining-window entries and backoff re-arms; poison discoveries
     * are recorded by the system layer, which knows the accessing host.
     */
    void attachTrace(ObsTrace *trace) { trace_ = trace; }

    // ---- Stats ----------------------------------------------------------

    StatGroup &stats() { return stats_; }

    Counter linkErrors;          ///< CRC-corrupted messages replayed
    Counter retrainEvents;       ///< retraining windows entered
    Counter retrainStallCycles;  ///< cycles messages waited on retraining
    Counter poisonTransient;     ///< transiently poisoned lines hit
    Counter poisonPersistent;    ///< persistently poisoned lines found
    Counter degradedAccesses;    ///< accesses served by the degraded path
    Counter promotionAborts;     ///< promotions aborted and rolled back
    Counter lineAborts;          ///< line migrations aborted mid-flight
    Counter migrationsDeferred;  ///< vote firings suppressed by backoff
    Counter backoffEntries;      ///< times the backoff window re-armed

    // Host fail-stop crash accounting (filled in by the system layer).
    Counter hostCrashes;         ///< fail-stop crash events processed
    Counter hostRejoins;         ///< rejoin events processed
    Counter crashDirSwept;       ///< directory entries reclaimed on crash
    Counter crashLinesReclaimed; ///< migrated lines reintegrated on crash
    Counter crashPagesReclaimed; ///< remap/GIM pages reclaimed on crash
    Counter crashDirtyLinesLost; ///< lines whose latest value died
    Counter crashRecoveryCycles; ///< device cycles spent on reclamation
    Counter staleEpochDrops;     ///< stale-epoch references rejected

  private:
    FaultConfig cfg_;
    unsigned numHosts_;
    std::uint64_t seed_;
    Rng rng_;

    Cycles retrainInterval_;
    Cycles retrainWindow_;
    std::vector<Cycles> retrainPhase_;              ///< per host
    std::vector<std::uint64_t> lastRetrainEpoch_;   ///< per host

    std::uint64_t windowMessages_ = 0;
    std::uint64_t windowErrors_ = 0;
    Cycles backoffUntil_ = 0;
    unsigned backoffExp_ = 0;

    FlatMap<LineAddr, PoisonState> poison_;

    /** Generate the crash schedule (constructor helper). */
    void generateCrashSchedule();

    std::vector<CrashEvent> crashSchedule_;   ///< sorted by time
    std::size_t crashCursor_ = 0;

    ObsTrace *trace_ = nullptr;

    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_FAULT_FAULT_INJECTOR_HH
