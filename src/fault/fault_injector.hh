/**
 * @file
 * Seeded, deterministic fault injection for the CXL fabric and the PIPM
 * migration engine (DESIGN.md §7).
 *
 * One FaultInjector is shared by the whole system and drives four fault
 * classes:
 *
 *  - transient link CRC errors: a corrupted flit costs a replay round
 *    trip and a second serialisation charge (modelled in cxl/link.cc);
 *  - link retraining: each host's link goes down for a fixed window on
 *    its own deterministic phase within a configurable period, stalling
 *    queued traffic until the window ends;
 *  - poisoned lines in CXL DRAM: transient poison forces one ECC retry
 *    read, persistent poison makes the line uncacheable — the system
 *    serves it through a degraded remote-access path that never fills a
 *    cache or allocates a directory entry;
 *  - mid-migration faults: a promotion or an incremental line migration
 *    aborts; the system rolls back (promotion) or idempotently completes
 *    (line writeback falls through to CXL memory) so that no line is
 *    ever doubly mapped or unreachable;
 *  - host fail-stop crashes (DESIGN.md §8): a pre-generated schedule of
 *    per-host crash (and optional rejoin) events. The injector only owns
 *    the *schedule* and the crash counters; the reclamation itself
 *    (directory sweep, remap reintegration, epoch bump) is done by
 *    MultiHostSystem::crashHost()/rejoinHost() when an event falls due;
 *  - gray-failure stall windows (DESIGN.md §11): pre-generated per-host
 *    intervals during which a host is alive but unresponsive. Like the
 *    crash schedule they come from their own derived stream, so enabling
 *    them leaves every other fault draw bit-identical. The injector only
 *    owns the window schedule; the lease detector in MultiHostSystem
 *    decides whether a stall is ridden out by transaction retries or
 *    expires the lease and fences the host.
 *
 * All link-message draws come from one xoshiro stream seeded from the
 * fault seed; per-line poison and retraining phases are stateless hash
 * draws, so they are independent of access order. The crash schedule is
 * generated at construction from its own derived stream, so turning
 * crashes on does not shift any other fault draw. A config with every
 * rate at zero makes no draws at all, which keeps a zero-fault run
 * bit-identical to a fault-disabled one.
 *
 * The injector also implements the degradation policy: the observed link
 * error rate is measured over windows of `backoffWindow` messages; when
 * it exceeds `backoffThreshold`, migrations are suspended for an
 * exponentially growing interval (reset by a healthy window), so the
 * migration engine stops churning remap state over a flaky fabric.
 */

#ifndef PIPM_FAULT_FAULT_INJECTOR_HH
#define PIPM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"

namespace pipm
{

/** Poison status of one CXL DRAM line. */
enum class PoisonState : std::uint8_t
{
    clean,
    transientPoison,   ///< one ECC retry scrubs it
    persistentPoison   ///< uncacheable; degraded path forever
};

/**
 * One scheduled device-metadata corruption event (DESIGN.md §12). The
 * injector owns only the schedule; the system layer picks the concrete
 * victim entry (directory or remap) deterministically from `pick` and
 * quarantines it until the scrubber or a demand access repairs it.
 */
struct MetaCorruptEvent
{
    Cycles at = 0;              ///< when the corruption lands
    std::uint64_t pick = 0;     ///< victim-selection draw
    std::uint64_t bits = 0;     ///< non-zero bit-flip mask
    bool remapTarget = false;   ///< false: directory entry, true: remap
    bool shadowHit = false;     ///< also spans the shadow checksum
};

/** One scheduled host fail-stop or rejoin event. */
struct CrashEvent
{
    Cycles at = 0;              ///< when the event fires
    HostId host = invalidHost;  ///< which host
    bool rejoin = false;        ///< false: crash, true: rejoin
    /** For crash events: when the host comes back (maxCycles: never). */
    Cycles downUntil = maxCycles;
};

/** Deterministic fault source shared by links, device and migration. */
class FaultInjector
{
  public:
    /**
     * @param cfg fault rates and windows
     * @param num_hosts host count (per-host retraining phases)
     * @param seed stream seed (mix of run seed and cfg.seed)
     */
    FaultInjector(const FaultConfig &cfg, unsigned num_hosts,
                  std::uint64_t seed);

    // ---- Link faults ---------------------------------------------------

    /**
     * Draw the CRC fate of one link message and feed the error-rate
     * window that drives migration backoff.
     * @return true when the message is corrupted and must be replayed
     */
    bool corruptMessage(Cycles now);

    /**
     * Cycles host h's link is still down for retraining at `now` (0 when
     * the link is up). Counts each retraining window once.
     */
    Cycles retrainDelay(HostId h, Cycles now);

    // ---- Poisoned lines ------------------------------------------------

    /**
     * Poison status of a CXL DRAM line at its first device read. The
     * per-line draw is memoised: transient poison is scrubbed by the
     * retry (later checks return clean), persistent poison is forever.
     */
    PoisonState poisonCheck(LineAddr line);

    /** Whether a line has been discovered persistently poisoned. */
    bool linePersistentlyPoisoned(LineAddr line) const;

    /** Pre-size the per-line poison memo (first-touch entries). */
    void reservePoison(std::uint64_t lines) { poison_.reserve(lines); }

    /**
     * Force a line into the persistent-poison state. Used by the crash
     * recovery policy `poison`: the device marks lines whose only
     * up-to-date copy died with a host, so later accesses observably
     * take the degraded path instead of silently reading stale data.
     */
    void poisonLineForever(LineAddr line);

    // ---- Host fail-stop crashes -----------------------------------------

    /**
     * The next scheduled crash/rejoin event due at or before `now`, or
     * nullptr. Each event is returned exactly once, in time order; the
     * caller (MultiHostSystem::tick) performs the reclamation.
     */
    const CrashEvent *nextCrashEvent(Cycles now);

    /** The full pre-generated schedule (tests and tools). */
    const std::vector<CrashEvent> &crashSchedule() const
    {
        return crashSchedule_;
    }

    /**
     * The strict total order schedule events are sorted (and processed)
     * in: earlier time first; at the same instant rejoins before
     * crashes (keeping alive counts conservative) and lower host IDs
     * first. Exposed so the regression test can pin same-instant
     * ordering. Stall windows need no entry in this order: they are
     * level-triggered state queried through stallUntil(), and a window
     * coinciding with a crash instant is subsumed because liveness is
     * always checked before stalledness.
     */
    static bool
    eventBefore(const CrashEvent &a, const CrashEvent &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        if (a.rejoin != b.rejoin)
            return a.rejoin;
        return a.host < b.host;
    }

    // ---- Gray-failure stall windows --------------------------------------

    /**
     * End of the stall window covering `now` for host h, or 0 when the
     * host is responsive. Counts (and traces) each window once, on the
     * first query that lands inside it.
     */
    Cycles stallUntil(HostId h, Cycles now);

    /** Side-effect-free variant for invariant checks and tests. */
    Cycles stallUntilAt(HostId h, Cycles now) const;

    /** Host h's pre-generated [start, end) stall windows. */
    const std::vector<std::pair<Cycles, Cycles>> &
    stallWindows(HostId h) const
    {
        return stallWindows_[h];
    }

    // ---- Device-metadata corruption (DESIGN.md §12) ----------------------

    /**
     * The next scheduled metadata corruption event due at or before
     * `now`, or nullptr. Each event is returned exactly once, in time
     * order; the caller (MultiHostSystem::tick) picks the victim entry
     * and applies the corruption.
     */
    const MetaCorruptEvent *nextMetaCorruptEvent(Cycles now);

    /** The full pre-generated corruption schedule (tests and tools). */
    const std::vector<MetaCorruptEvent> &metaCorruptSchedule() const
    {
        return metaSchedule_;
    }

    /**
     * Feed the per-page-group migration circuit breaker one
     * repair/quarantine event. Enough strikes inside one window open the
     * breaker: migrations of pages in the group are shed until the
     * cool-down (which doubles per consecutive trip) elapses and the
     * breaker half-opens.
     */
    void noteMetaRepair(PageFrame page, Cycles now);

    /** Whether page's group breaker is open (migration shed). */
    bool migrationShed(PageFrame page, Cycles now) const;

    /**
     * Advance breaker state to `now`: open breakers whose cool-down
     * elapsed half-open (counted and traced), and a breaker that stays
     * clean for a full window after half-opening forgets its trip
     * history (the cool-down exponent resets).
     */
    void advanceBreakers(Cycles now);

    // ---- Event-horizon peeks (DESIGN.md §9) ------------------------------
    // MultiHostSystem::tick() only runs its slow path when simulated time
    // reaches the earliest due event; these expose the injector-owned
    // schedule heads without consuming them.

    /** Time of the next unconsumed crash/rejoin event (maxCycles: none). */
    Cycles
    nextCrashEventAt() const
    {
        return crashCursor_ < crashSchedule_.size()
                   ? crashSchedule_[crashCursor_].at
                   : maxCycles;
    }

    /** Time of the next unconsumed corruption event (maxCycles: none). */
    Cycles
    nextMetaCorruptEventAt() const
    {
        return metaCursor_ < metaSchedule_.size()
                   ? metaSchedule_[metaCursor_].at
                   : maxCycles;
    }

    /**
     * Earliest pending breaker transition among the hot breakers: an
     * open breaker's half-open time, or a probation breaker's
     * trip-history reset time (maxCycles: none pending). A probation
     * breaker with strikes outstanding has no timed transition — its
     * next change comes through noteMetaRepair(), which the system
     * layer treats as a horizon invalidation point.
     */
    Cycles nextBreakerEventAt() const;

    // ---- Detection-layer helpers -----------------------------------------

    /** The fault configuration the injector was built with. */
    const FaultConfig &config() const { return cfg_; }

    /** Stateless uniform draw from (seed, key): retry jitter etc. */
    std::uint64_t hashDraw(std::uint64_t key) const;

    /** A coherence-transaction attempt timed out. */
    void noteTxnTimeout() { txnTimeouts.inc(); }

    /** A timed-out transaction is being retried (attempt >= 1). */
    void
    noteTxnRetry(HostId requester, Cycles now, unsigned attempt)
    {
        txnRetries.inc();
        if (trace_) {
            trace_->record(ObsEventType::txnRetry, now, 0, requester,
                           attempt);
        }
    }

    // ---- Migration faults ----------------------------------------------

    /** Draw whether a fault lands mid-promotion (roll back if so). */
    bool abortPromotion();

    /** Draw whether a fault lands mid-line-migration (complete to CXL). */
    bool abortLineMigration();

    /** Whether migrations are currently backed off (degraded link). */
    bool
    migrationsSuspended(Cycles now) const
    {
        return now < backoffUntil_;
    }

    // ---- Observability ---------------------------------------------------

    /**
     * Attach an event trace (nullptr: detach). The injector records
     * retraining-window entries and backoff re-arms; poison discoveries
     * are recorded by the system layer, which knows the accessing host.
     */
    void attachTrace(ObsTrace *trace) { trace_ = trace; }

    // ---- Stats ----------------------------------------------------------

    StatGroup &stats() { return stats_; }

    Counter linkErrors;          ///< CRC-corrupted messages replayed
    Counter retrainEvents;       ///< retraining windows entered
    Counter retrainStallCycles;  ///< cycles messages waited on retraining
    Counter poisonTransient;     ///< transiently poisoned lines hit
    Counter poisonPersistent;    ///< persistently poisoned lines found
    Counter degradedAccesses;    ///< accesses served by the degraded path
    Counter promotionAborts;     ///< promotions aborted and rolled back
    Counter lineAborts;          ///< line migrations aborted mid-flight
    Counter migrationsDeferred;  ///< vote firings suppressed by backoff
    Counter backoffEntries;      ///< times the backoff window re-armed

    // Host fail-stop crash accounting (filled in by the system layer).
    Counter hostCrashes;         ///< fail-stop crash events processed
    Counter hostRejoins;         ///< rejoin events processed
    Counter crashDirSwept;       ///< directory entries reclaimed on crash
    Counter crashLinesReclaimed; ///< migrated lines reintegrated on crash
    Counter crashPagesReclaimed; ///< remap/GIM pages reclaimed on crash
    Counter crashDirtyLinesLost; ///< lines whose latest value died
    Counter crashRecoveryCycles; ///< device cycles spent on reclamation
    Counter staleEpochDrops;     ///< stale-epoch references rejected

    // Lease detection / gray failure (filled in by the system layer).
    // Registered with the stat group only when a lease is configured, so
    // oracle-mode stats.json exports keep their pre-detection counter
    // set.
    Counter suspicions;          ///< hosts suspected by the lease detector
    Counter falseSuspicions;     ///< suspicions of hosts that were alive
    Counter fencedRequests;      ///< zombie requests NACKed at the device
    Counter txnTimeouts;         ///< transaction attempts that timed out
    Counter txnRetries;          ///< timed-out transactions retried
    Counter txnAbandoned;        ///< transactions given up after retries
    Counter stallWindowsEntered; ///< gray-failure stall windows entered

    // Device-metadata fault domain (DESIGN.md §12; mostly filled in by
    // the system layer). Registered with the stat group only when
    // metadata corruption is configured, so corruption-off stats.json
    // exports keep their pre-§12 counter set.
    Counter metaCorruptions;     ///< corruption events applied to an entry
    Counter metaCorruptSkipped;  ///< events that found no entry to corrupt
    Counter metaScrubChecks;     ///< quarantined entries validated
    Counter metaScrubRepairs;    ///< entries rebuilt from host state
    Counter metaJournalReplays;  ///< remap entries replayed from the journal
    Counter metaUnrepairable;    ///< shadow hits: degraded/force-reclaimed
    Counter metaBreakerTrips;    ///< migration circuit breakers opened
    Counter metaBreakerHalfOpens;///< breakers half-opened after cool-down

  private:
    FaultConfig cfg_;
    unsigned numHosts_;
    std::uint64_t seed_;
    Rng rng_;

    Cycles retrainInterval_;
    Cycles retrainWindow_;
    std::vector<Cycles> retrainPhase_;              ///< per host
    std::vector<std::uint64_t> lastRetrainEpoch_;   ///< per host

    std::uint64_t windowMessages_ = 0;
    std::uint64_t windowErrors_ = 0;
    Cycles backoffUntil_ = 0;
    unsigned backoffExp_ = 0;

    FlatMap<LineAddr, PoisonState> poison_;

    /** Generate the crash schedule (constructor helper). */
    void generateCrashSchedule();

    /** Generate the gray-failure stall windows (constructor helper). */
    void generateStallSchedule();

    std::vector<CrashEvent> crashSchedule_;   ///< sorted by eventBefore
    std::size_t crashCursor_ = 0;

    /** Per-host [start, end) stall windows, sorted, non-overlapping. */
    std::vector<std::vector<std::pair<Cycles, Cycles>>> stallWindows_;
    /** Per-host 1 + index of the last window counted (0: none yet). */
    std::vector<std::size_t> stallCounted_;

    /** Generate the metadata corruption schedule (constructor helper). */
    void generateMetaSchedule();

    std::vector<MetaCorruptEvent> metaSchedule_;   ///< sorted by time
    std::size_t metaCursor_ = 0;

    /** Per-page-group migration circuit breaker (DESIGN.md §12.4). */
    struct Breaker
    {
        unsigned strikes = 0;       ///< repairs seen in the current window
        Cycles windowStart = 0;     ///< start of the strike window
        Cycles openUntil = 0;       ///< when an open breaker half-opens
        Cycles halfOpenAt = 0;      ///< when the breaker last half-opened
        unsigned exp = 0;           ///< consecutive-trip cool-down exponent
        bool open = false;          ///< migrations currently shed
        bool hot = false;           ///< on the advanceBreakers work list
    };
    FlatMap<std::uint64_t, Breaker> breakers_;
    std::vector<std::uint64_t> hotBreakers_;   ///< groups needing advance
    Cycles breakerWindow_ = 0;
    Cycles breakerCooldown_ = 0;

    ObsTrace *trace_ = nullptr;

    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_FAULT_FAULT_INJECTOR_HH
