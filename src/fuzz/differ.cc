/**
 * @file
 * Differential execution and cross-checking oracles (DESIGN.md §13).
 *
 * Each oracle runs one sampled case under two independent
 * implementations of the same contract (or one implementation plus a
 * validator) and reports the first divergence. Every run happens under
 * the detail::throwOnError hook, so a panic()/fatal() inside the
 * simulator surfaces as an oracle failure carrying the message instead
 * of aborting the fuzz loop.
 */

#include "fuzz/fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/logging.hh"
#include "obs/stats_json.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace fuzz
{

namespace
{

/** Scoped detail::throwOnError so fatal()/panic() raise SimError. */
struct ThrowGuard
{
    bool saved = detail::throwOnError;
    ThrowGuard() { detail::throwOnError = true; }
    ~ThrowGuard() { detail::throwOnError = saved; }
};

/** First line present in `a` but differing from `b` (both are
 *  fingerprintResult outputs with identical line structure). */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a);
    std::istringstream sb(b);
    std::string la;
    std::string lb;
    while (std::getline(sa, la)) {
        if (!std::getline(sb, lb))
            return la + " vs <missing>";
        if (la != lb)
            return la + " vs " + lb;
    }
    if (std::getline(sb, lb))
        return "<missing> vs " + lb;
    return "<no difference>";
}

/** A process-unique temp path for one stats.json export. */
std::string
tempStatsPath()
{
    static unsigned counter = 0;
    std::ostringstream name;
    name << "pipm_fuzz_stats_" << ::getpid() << "_" << ++counter << ".json";
    return (std::filesystem::temp_directory_path() / name.str()).string();
}

/** Slurp a file ("" when unreadable). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

OracleResult
checkSched(const FuzzCase &c)
{
    ThrowGuard guard;
    try {
        RunConfig heap = runConfigFor(c);
        heap.scheduler = "heap";
        RunConfig scan = runConfigFor(c);
        scan.scheduler = "scan";
        const RunResult rh = runCase(c, heap);
        RunResult rs = runCase(c, scan);
        // Test hook: a planted scheduler divergence (see FuzzHooks).
        rs.execCycles += hooks().schedExecSkew;
        const std::string fh = fingerprintResult(rh);
        const std::string fs = fingerprintResult(rs);
        if (fh != fs)
            return {false, "heap vs scan scheduler diverge: " +
                               firstDiff(fh, fs)};
    } catch (const SimError &e) {
        return {false, "panic/fatal during run: " + e.message};
    }
    return {};
}

OracleResult
checkFaultZero(const FuzzCase &c)
{
    ThrowGuard guard;
    try {
        // Faults off entirely...
        FuzzCase off = c;
        off.cfg.fault = FaultConfig{};
        // ...versus enabled with every rate at its zero default. The
        // sampled fault seed is kept: a zero-rate schedule must make no
        // draws, so the seed must not matter.
        FuzzCase zero = c;
        zero.cfg.fault = FaultConfig{};
        zero.cfg.fault.enabled = true;
        zero.cfg.fault.seed = c.cfg.fault.seed;
        const RunResult roff = runCase(off, runConfigFor(off));
        const RunResult rzero = runCase(zero, runConfigFor(zero));
        const std::string foff = fingerprintResult(roff);
        const std::string fzero = fingerprintResult(rzero);
        if (foff != fzero)
            return {false,
                    "faults-off vs zero-rate faults diverge: " +
                        firstDiff(foff, fzero)};
    } catch (const SimError &e) {
        return {false, "panic/fatal during run: " + e.message};
    }
    return {};
}

OracleResult
checkInvariantsSweep(const FuzzCase &c)
{
    ThrowGuard guard;
    try {
        RunConfig run = runConfigFor(c);
        // The sweep is O(pool lines x hosts), so its cadence must scale
        // with the run: ~8 sweeps across the measured accesses (plus the
        // sweeps every crash/rejoin event forces regardless). The
        // PIPM_CHECK_INVARIANTS environment variable, when set,
        // overrides this cadence.
        run.checkInvariantsEvery = std::max<std::uint64_t>(
            1, c.measureRefs * c.cfg.numHosts * c.cfg.coresPerHost / 8);
        (void)runCase(c, run);
    } catch (const SimError &e) {
        return {false, "invariant violation: " + e.message};
    }
    return {};
}

OracleResult
checkStatsJson(const FuzzCase &c)
{
    ThrowGuard guard;
    const std::string path_a = tempStatsPath();
    const std::string path_b = tempStatsPath();
    OracleResult res;
    try {
        RunConfig run = runConfigFor(c);
        run.obsIntervalAccesses =
            std::max<std::uint64_t>(1, c.measureRefs / 4);
        run.statsJsonPath = path_a;
        (void)runCase(c, run);
        run.statsJsonPath = path_b;
        (void)runCase(c, run);
        const std::string doc_a = slurp(path_a);
        const std::string doc_b = slurp(path_b);
        if (doc_a.empty()) {
            res = {false, "stats.json export missing or empty"};
        } else if (doc_a != doc_b) {
            res = {false, "stats.json export is not byte-deterministic"};
        } else {
            const std::vector<std::string> bad = validateStatsJson(doc_a);
            if (!bad.empty())
                res = {false, "stats.json invalid: " + bad.front() + " (" +
                                  std::to_string(bad.size()) +
                                  " violations)"};
        }
    } catch (const SimError &e) {
        res = {false, "panic/fatal during run: " + e.message};
    }
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    return res;
}

} // namespace

RunConfig
runConfigFor(const FuzzCase &c)
{
    RunConfig run;
    run.warmupRefsPerCore = c.warmupRefs;
    run.measureRefsPerCore = c.measureRefs;
    run.seed = c.runSeed;
    run.scheduler = "heap";
    // Fuzz runs must not inherit PIPM_STATS_JSON / PIPM_OBS_* from the
    // environment: oracles own the observability knobs.
    run.obsFromEnv = false;
    return run;
}

RunResult
runCase(const FuzzCase &c, const RunConfig &run)
{
    const auto wl = caseWorkload(c);
    return runExperiment(c.cfg, c.scheme, *wl, run);
}

std::string
fingerprintResult(const RunResult &r)
{
    std::ostringstream os;
    os.precision(17);
    os << "execCycles=" << r.execCycles << '\n'
       << "instructions=" << r.instructions << '\n'
       << "ipc=" << r.ipc << '\n'
       << "sharedAccesses=" << r.sharedAccesses << '\n'
       << "sharedLlcMisses=" << r.sharedLlcMisses << '\n'
       << "localServedMisses=" << r.localServedMisses << '\n'
       << "cxlServedMisses=" << r.cxlServedMisses << '\n'
       << "interHostAccesses=" << r.interHostAccesses << '\n'
       << "interHostStallCycles=" << r.interHostStallCycles << '\n'
       << "mgmtStallCycles=" << r.mgmtStallCycles << '\n'
       << "migrationTransferBytes=" << r.migrationTransferBytes << '\n'
       << "osMigrations=" << r.osMigrations << '\n'
       << "osDemotions=" << r.osDemotions << '\n'
       << "pipmPromotions=" << r.pipmPromotions << '\n'
       << "pipmRevocations=" << r.pipmRevocations << '\n'
       << "pipmLinesIn=" << r.pipmLinesIn << '\n'
       << "pipmLinesBack=" << r.pipmLinesBack << '\n'
       << "harmfulMigrations=" << r.harmfulMigrations << '\n'
       << "totalTrackedMigrations=" << r.totalTrackedMigrations << '\n'
       << "linkCrcErrors=" << r.linkCrcErrors << '\n'
       << "linkRetrainEvents=" << r.linkRetrainEvents << '\n'
       << "poisonEvents=" << r.poisonEvents << '\n'
       << "degradedAccesses=" << r.degradedAccesses << '\n'
       << "migrationAborts=" << r.migrationAborts << '\n'
       << "migrationsDeferred=" << r.migrationsDeferred << '\n'
       << "hostCrashes=" << r.hostCrashes << '\n'
       << "hostRejoins=" << r.hostRejoins << '\n'
       << "crashLinesReclaimed=" << r.crashLinesReclaimed << '\n'
       << "crashDirtyLinesLost=" << r.crashDirtyLinesLost << '\n'
       << "crashRecoveryCycles=" << r.crashRecoveryCycles << '\n'
       << "suspicions=" << r.suspicions << '\n'
       << "falseSuspicions=" << r.falseSuspicions << '\n'
       << "fencedRequests=" << r.fencedRequests << '\n'
       << "txnTimeouts=" << r.txnTimeouts << '\n'
       << "txnRetries=" << r.txnRetries << '\n'
       << "stallWindows=" << r.stallWindows << '\n'
       << "pageFootprintFrac=" << r.pageFootprintFrac << '\n'
       << "lineFootprintFrac=" << r.lineFootprintFrac << '\n';
    return os.str();
}

FuzzHooks &
hooks()
{
    static FuzzHooks instance;
    return instance;
}

std::vector<Oracle>
coreOracles()
{
    return {
        {"sched", checkSched},
        {"faultzero", checkFaultZero},
        {"invariants", checkInvariantsSweep},
        {"statsjson", checkStatsJson},
    };
}

Oracle
coreOracle(const std::string &name)
{
    for (Oracle &o : coreOracles())
        if (o.name == name)
            return o;
    fatal("unknown fuzz oracle '", name,
          "' (expected sched, faultzero, invariants or statsjson)");
}

} // namespace fuzz
} // namespace pipm
