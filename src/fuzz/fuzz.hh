/**
 * @file
 * Differential configuration fuzzing (DESIGN.md §13).
 *
 * The simulator carries several hard equivalence contracts — heap and
 * scan schedulers are bit-identical, a zero-rate fault schedule is
 * bit-identical to no fault injection, every stats.json export
 * validates, the cross-structure invariants hold throughout any run —
 * but each was only ever checked at a handful of hand-picked seeds.
 * This module closes that gap the way CXL-DMSim cross-checks its
 * simulator against silicon: generate *valid* random configurations
 * over every knob that exists, run each under independent
 * implementations of the same contract, and flag any divergence.
 *
 * Pipeline: sampler (sample wide) -> repair (clamp into the ranges
 * SystemConfig::validate() accepts) -> differential oracles -> greedy
 * minimizer (shrink a failing sample to a minimal reproducer printed as
 * a ready-to-paste regression test).
 *
 * The oracles here are the library-level ones (they need only the pipm
 * library); bench/fuzz_run.cc layers the jobs=1-vs-N bench-cache oracle
 * on top, which needs the bench sweep infrastructure.
 */

#ifndef PIPM_FUZZ_FUZZ_HH
#define PIPM_FUZZ_FUZZ_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"
#include "sim/scheme.hh"
#include "workloads/workload.hh"

namespace pipm
{
namespace fuzz
{

/** One sampled experiment: configuration + workload + run lengths. */
struct FuzzCase
{
    SystemConfig cfg;
    Scheme scheme = Scheme::pipmFull;
    /** Table 1 name, or "trace:<path>" for a PIPMT trace replay. */
    std::string workload = "ycsb";
    std::uint64_t runSeed = 42;
    std::uint64_t warmupRefs = 500;     ///< per core
    std::uint64_t measureRefs = 2'000;  ///< per core
    /** Multi-line access-model overrides on the synthetic pattern
     *  (0 = keep the workload's Table 1 value; ignored for traces). */
    unsigned hotLinesPerPage = 0;
    unsigned seqRunLines = 0;
};

/** Sampling bounds (kept laptop-small; a fuzz case is run 2+ times). */
struct FuzzLimits
{
    std::uint64_t minRefs = 1'000;
    std::uint64_t maxRefs = 4'000;
    std::uint64_t maxWarmup = 1'000;
    unsigned maxHosts = 6;
    unsigned maxCoresPerHost = 2;
};

/** The small deterministic baseline every sample perturbs. */
FuzzCase defaultCase();

/**
 * Sample one case from `seed` (deterministic: equal seeds give equal
 * cases). Samples wide — every SystemConfig/FaultConfig knob that has a
 * validate() rule gets a range, including the lease/stall/
 * meta-corruption/breaker knobs — then repairs through repairCase(), so
 * the result always passes validate().
 */
FuzzCase sampleCase(std::uint64_t seed, const FuzzLimits &lim = {});

/** Clamp a (possibly wild) case into ranges validate() accepts. */
void repairCase(FuzzCase &c);

/** Non-fatal validate(): false (and `why`) instead of fatal(). */
bool caseValid(const FuzzCase &c, std::string *why = nullptr);

/** One-line human summary (hosts/cores/workload/scheme/fault domains). */
std::string describeCase(const FuzzCase &c);

/** Full determinism fingerprint (measurementKey + run fields). */
std::string caseKey(const FuzzCase &c);

/** `field=value` lines over every RunResult measurement; differential
 *  oracles compare these and report the first differing field. */
std::string fingerprintResult(const RunResult &r);

/**
 * Build the case's workload: a Table 1 synthetic with any multi-line
 * overrides applied, or a TraceFileWorkload for "trace:<path>" names.
 * fatal() (SimError under the test hook) on unknown names or unreadable
 * trace files.
 */
std::unique_ptr<Workload> caseWorkload(const FuzzCase &c);

/**
 * Trace files sampleCase() draws trace-backed workloads from: the
 * `.pipmt` entries of the PIPM_FUZZ_TRACE_DIR directory, sorted by
 * name for determinism. Empty when the knob is unset or the directory
 * has no traces. Scanned once per process.
 */
const std::vector<std::string> &fuzzTraceFiles();

/** Run one case (scheduler/invariant/obs knobs via `run` overrides). */
RunResult runCase(const FuzzCase &c, const RunConfig &run);

/** RunConfig for a case with observability off and env resolution off
 *  (fuzz runs must not inherit PIPM_STATS_JSON etc. from the caller). */
RunConfig runConfigFor(const FuzzCase &c);

/** Verdict of one oracle on one case. */
struct OracleResult
{
    bool ok = true;
    std::string detail;   ///< first divergence / violation when !ok
};

/** A named cross-checking oracle. */
struct Oracle
{
    std::string name;
    std::function<OracleResult(const FuzzCase &)> check;
};

/**
 * The library-level oracle classes:
 *  - "sched":     heap vs scan scheduler RunResult byte-identity
 *  - "faultzero": faults-off vs faults-on-but-zero-rate identity
 *  - "invariants": PIPM_CHECK_INVARIANTS-style full-run sweep
 *  - "statsjson": every export validates and is byte-deterministic
 */
std::vector<Oracle> coreOracles();

/** Look one core oracle up by name (fatal on unknown). */
Oracle coreOracle(const std::string &name);

/**
 * Test-only hooks. `schedExecSkew` plants a deliberate off-by-one-style
 * bug: the scan-scheduler run's execCycles is perturbed by this many
 * cycles before the "sched" oracle compares, simulating a scheduler
 * divergence so tests can prove the differential harness detects and
 * minimizes a seeded bug. Always zero outside tests.
 */
struct FuzzHooks
{
    Cycles schedExecSkew = 0;
};

FuzzHooks &hooks();

/** Outcome of minimizing one failing case. */
struct MinimizedCase
{
    FuzzCase best;          ///< smallest case still failing the oracle
    OracleResult failure;   ///< the oracle's verdict on `best`
    unsigned evals = 0;     ///< oracle evaluations spent
    unsigned shrinks = 0;   ///< accepted shrink steps
};

/**
 * Greedily shrink `failing` while the oracle keeps failing: drop fault
 * domains one at a time, halve hosts/cores/refs/footprint, reset knob
 * groups to defaults — each candidate repaired and re-validated before
 * it is tried. Stops at a fixpoint or after `max_evals` oracle runs.
 */
MinimizedCase minimizeCase(const FuzzCase &failing, const Oracle &oracle,
                           unsigned max_evals = 120);

/** C++ statements reconstructing `c` into a variable named `var`. */
std::string renderCaseCode(const FuzzCase &c, const std::string &var = "c");

/** A ready-to-paste gtest regression test pinning `oracle` on `c`. */
std::string renderRegressionTest(const FuzzCase &c,
                                 const std::string &oracle_name,
                                 std::uint64_t sample_seed);

} // namespace fuzz
} // namespace pipm

#endif // PIPM_FUZZ_FUZZ_HH
