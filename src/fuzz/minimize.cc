/**
 * @file
 * Greedy fuzz-case minimization and regression-test rendering
 * (DESIGN.md §13).
 *
 * A raw failing sample is a poor bug report: it typically has several
 * fault domains armed, a large topology, and dozens of perturbed knobs,
 * most of which are irrelevant to the failure. minimizeCase() shrinks it
 * with a fixed transform list — drop fault domains one at a time, halve
 * hosts/cores/refs/footprint, reset knob groups to the test baseline —
 * accepting a candidate only when the oracle still fails on it, until no
 * transform makes progress (or the evaluation budget runs out). The
 * result renders as a ready-to-paste regression test.
 */

#include "fuzz/fuzz.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace pipm
{
namespace fuzz
{

namespace
{

/** Render a double as a C++ literal that round-trips exactly. */
std::string
lit(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    const std::string s = os.str();
    // "25000" is an int literal; keep the assignment unambiguously
    // floating so narrowing warnings stay quiet.
    return s.find_first_of(".e") == std::string::npos ? s + ".0" : s;
}

std::string
lit(bool v)
{
    return v ? "true" : "false";
}

std::string
lit(unsigned v)
{
    return std::to_string(v);
}

std::string
lit(std::uint64_t v)
{
    return std::to_string(v) + "ull";
}

std::string
lit(CrashRecoveryPolicy v)
{
    return v == CrashRecoveryPolicy::poison
               ? "pipm::CrashRecoveryPolicy::poison"
               : "pipm::CrashRecoveryPolicy::stale";
}

std::string
lit(Scheme s)
{
    switch (s) {
      case Scheme::native: return "pipm::Scheme::native";
      case Scheme::nomad: return "pipm::Scheme::nomad";
      case Scheme::memtis: return "pipm::Scheme::memtis";
      case Scheme::hemem: return "pipm::Scheme::hemem";
      case Scheme::osSkew: return "pipm::Scheme::osSkew";
      case Scheme::hwStatic: return "pipm::Scheme::hwStatic";
      case Scheme::pipmFull: return "pipm::Scheme::pipmFull";
      case Scheme::localOnly: return "pipm::Scheme::localOnly";
      case Scheme::pipmNaive: return "pipm::Scheme::pipmNaive";
    }
    return "pipm::Scheme::pipmFull";
}

std::string
lit(const std::string &s)
{
    return '"' + s + '"';
}

/**
 * Visit every FuzzCase field as (path, value, default-value). The one
 * field walk feeds both the exact-equality signature the minimizer
 * uses and the C++ reconstruction renderCaseCode() emits, so the two
 * can never disagree about which fields exist.
 */
template <typename F>
void
forEachField(const FuzzCase &c, F &&f)
{
    const FuzzCase d;   // default-constructed baseline
    const SystemConfig &a = c.cfg;
    const SystemConfig &b = d.cfg;
#define PIPM_FIELD(path) f("cfg." #path, a.path, b.path)
    PIPM_FIELD(numHosts);
    PIPM_FIELD(coresPerHost);
    PIPM_FIELD(core.width);
    PIPM_FIELD(core.robEntries);
    PIPM_FIELD(core.loadQueue);
    PIPM_FIELD(core.storeQueue);
    PIPM_FIELD(core.mshrs);
    PIPM_FIELD(core.mshrLatencyThreshold);
    PIPM_FIELD(l1.sizeBytes);
    PIPM_FIELD(l1.ways);
    PIPM_FIELD(l1.roundTrip);
    PIPM_FIELD(llcPerCore.sizeBytes);
    PIPM_FIELD(llcPerCore.ways);
    PIPM_FIELD(llcPerCore.roundTrip);
    PIPM_FIELD(localDram.tRCns);
    PIPM_FIELD(localDram.tRCDns);
    PIPM_FIELD(localDram.tCLns);
    PIPM_FIELD(localDram.tRPns);
    PIPM_FIELD(localDram.channels);
    PIPM_FIELD(localDram.banksPerChannel);
    PIPM_FIELD(localDram.rowBytes);
    PIPM_FIELD(localDram.bytesPerCycle);
    PIPM_FIELD(localDram.controllerNs);
    PIPM_FIELD(cxlDram.tRCns);
    PIPM_FIELD(cxlDram.tRCDns);
    PIPM_FIELD(cxlDram.tCLns);
    PIPM_FIELD(cxlDram.tRPns);
    PIPM_FIELD(cxlDram.channels);
    PIPM_FIELD(cxlDram.banksPerChannel);
    PIPM_FIELD(cxlDram.rowBytes);
    PIPM_FIELD(cxlDram.bytesPerCycle);
    PIPM_FIELD(cxlDram.controllerNs);
    PIPM_FIELD(link.latencyNs);
    PIPM_FIELD(link.bytesPerNs);
    PIPM_FIELD(link.hasSwitch);
    PIPM_FIELD(link.switchNs);
    PIPM_FIELD(link.switchBytesPerNs);
    PIPM_FIELD(deviceDirectory.sets);
    PIPM_FIELD(deviceDirectory.ways);
    PIPM_FIELD(deviceDirectory.slices);
    PIPM_FIELD(deviceDirectory.roundTrip);
    PIPM_FIELD(localDirectory.sets);
    PIPM_FIELD(localDirectory.ways);
    PIPM_FIELD(localDirectory.roundTrip);
    PIPM_FIELD(pipm.globalCacheBytes);
    PIPM_FIELD(pipm.globalCacheWays);
    PIPM_FIELD(pipm.globalCacheRoundTrip);
    PIPM_FIELD(pipm.localCacheBytes);
    PIPM_FIELD(pipm.localCacheWays);
    PIPM_FIELD(pipm.localCacheRoundTrip);
    PIPM_FIELD(pipm.migrationThreshold);
    PIPM_FIELD(pipm.globalCounterBits);
    PIPM_FIELD(pipm.localCounterBits);
    PIPM_FIELD(pipm.tableLevels);
    PIPM_FIELD(pipm.infiniteLocalCache);
    PIPM_FIELD(pipm.infiniteGlobalCache);
    PIPM_FIELD(osMigration.intervalMs);
    PIPM_FIELD(osMigration.perPageInitiatorUs);
    PIPM_FIELD(osMigration.perPageOtherUs);
    PIPM_FIELD(osMigration.maxPagesPerEpoch);
    PIPM_FIELD(osMigration.hotThreshold);
    PIPM_FIELD(tlb.enabled);
    PIPM_FIELD(tlb.entries);
    PIPM_FIELD(tlb.ways);
    PIPM_FIELD(tlb.hitCycles);
    PIPM_FIELD(tlb.walkCycles);
    PIPM_FIELD(fault.enabled);
    PIPM_FIELD(fault.seed);
    PIPM_FIELD(fault.linkErrorRate);
    PIPM_FIELD(fault.retrainIntervalNs);
    PIPM_FIELD(fault.retrainWindowNs);
    PIPM_FIELD(fault.poisonRate);
    PIPM_FIELD(fault.persistentPoisonFrac);
    PIPM_FIELD(fault.migrationAbortRate);
    PIPM_FIELD(fault.crashMeanIntervalNs);
    PIPM_FIELD(fault.crashRejoinNs);
    PIPM_FIELD(fault.crashMaxEvents);
    PIPM_FIELD(fault.crashRecovery);
    PIPM_FIELD(fault.leaseNs);
    PIPM_FIELD(fault.heartbeatIntervalNs);
    PIPM_FIELD(fault.txnTimeoutNs);
    PIPM_FIELD(fault.txnRetryLimit);
    PIPM_FIELD(fault.txnBackoffBaseNs);
    PIPM_FIELD(fault.txnBackoffMaxExp);
    PIPM_FIELD(fault.readmitDelayNs);
    PIPM_FIELD(fault.stallMeanIntervalNs);
    PIPM_FIELD(fault.stallWindowNs);
    PIPM_FIELD(fault.stallMaxEvents);
    PIPM_FIELD(fault.metaCorruptMeanIntervalNs);
    PIPM_FIELD(fault.metaCorruptMaxEvents);
    PIPM_FIELD(fault.metaShadowHitFrac);
    PIPM_FIELD(fault.metaJournalPages);
    PIPM_FIELD(fault.metaScrubIntervalNs);
    PIPM_FIELD(fault.metaScrubBudget);
    PIPM_FIELD(fault.metaBreakerThreshold);
    PIPM_FIELD(fault.metaBreakerWindowNs);
    PIPM_FIELD(fault.metaBreakerCooldownNs);
    PIPM_FIELD(fault.metaBreakerMaxExp);
    PIPM_FIELD(fault.metaBreakerGroupPages);
    PIPM_FIELD(fault.backoffWindow);
    PIPM_FIELD(fault.backoffThreshold);
    PIPM_FIELD(fault.backoffBaseNs);
    PIPM_FIELD(fault.backoffMaxExp);
    PIPM_FIELD(localBytesPerHostFull);
    PIPM_FIELD(cxlPoolBytesFull);
    PIPM_FIELD(footprintScale);
    PIPM_FIELD(timeScale);
    PIPM_FIELD(l1Scale);
    PIPM_FIELD(llcScale);
    PIPM_FIELD(migrationBytesScale);
#undef PIPM_FIELD
    f("scheme", c.scheme, d.scheme);
    f("workload", c.workload, d.workload);
    f("runSeed", c.runSeed, d.runSeed);
    f("warmupRefs", c.warmupRefs, d.warmupRefs);
    f("measureRefs", c.measureRefs, d.measureRefs);
    f("hotLinesPerPage", c.hotLinesPerPage, d.hotLinesPerPage);
    f("seqRunLines", c.seqRunLines, d.seqRunLines);
}

/** Exact serialization of every field (the minimizer's equality key;
 *  caseKey() is too coarse — it only covers measurement-relevant
 *  fields). */
std::string
caseSignature(const FuzzCase &c)
{
    std::ostringstream os;
    forEachField(c, [&os](const char *path, const auto &v, const auto &) {
        if constexpr (std::is_same_v<std::decay_t<decltype(v)>,
                                     CrashRecoveryPolicy>)
            os << path << '=' << static_cast<unsigned>(v) << ';';
        else if constexpr (std::is_same_v<std::decay_t<decltype(v)>, Scheme>)
            os << path << '=' << toString(v) << ';';
        else if constexpr (std::is_same_v<std::decay_t<decltype(v)>, double>)
        {
            os.precision(17);
            os << path << '=' << v << ';';
        } else {
            os << path << '=' << v << ';';
        }
    });
    return os.str();
}

/** The shrink transforms, roughly in decreasing expected payoff. Each
 *  returns a candidate derived from the current best; the caller
 *  repairs, validates and re-runs the oracle before accepting. */
std::vector<std::pair<const char *, FuzzCase (*)(const FuzzCase &)>>
transforms()
{
    using T = FuzzCase (*)(const FuzzCase &);
    return {
        {"drop-all-faults", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.fault = FaultConfig{};
             return n;
         })},
        {"drop-link-domain", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.fault.linkErrorRate = 0.0;
             n.cfg.fault.retrainIntervalNs = 0.0;
             n.cfg.fault.poisonRate = 0.0;
             n.cfg.fault.migrationAbortRate = 0.0;
             return n;
         })},
        {"drop-crash-domain", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.fault.crashMeanIntervalNs = 0.0;
             return n;
         })},
        {"drop-lease-domain", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.fault.leaseNs = 0.0;
             n.cfg.fault.stallMeanIntervalNs = 0.0;
             return n;
         })},
        {"drop-stalls", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.fault.stallMeanIntervalNs = 0.0;
             return n;
         })},
        {"drop-meta-domain", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.fault.metaCorruptMeanIntervalNs = 0.0;
             return n;
         })},
        {"halve-hosts", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.numHosts = std::max(1u, n.cfg.numHosts / 2);
             return n;
         })},
        {"single-core", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.coresPerHost = 1;
             return n;
         })},
        {"halve-refs", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.measureRefs = std::max<std::uint64_t>(250, n.measureRefs / 2);
             return n;
         })},
        {"no-warmup", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.warmupRefs = 0;
             return n;
         })},
        {"halve-footprint", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.footprintScale *= 2;
             return n;
         })},
        {"baseline-scheme", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.scheme = Scheme::pipmFull;
             return n;
         })},
        {"baseline-workload", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.workload = "ycsb";
             return n;
         })},
        {"baseline-lines", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.hotLinesPerPage = 0;
             n.seqRunLines = 0;
             return n;
         })},
        {"baseline-core", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.core = CoreConfig{};
             return n;
         })},
        {"baseline-caches", static_cast<T>([](const FuzzCase &c) {
             const FuzzCase d = defaultCase();
             FuzzCase n = c;
             n.cfg.l1 = d.cfg.l1;
             n.cfg.llcPerCore = d.cfg.llcPerCore;
             n.cfg.l1Scale = d.cfg.l1Scale;
             n.cfg.llcScale = d.cfg.llcScale;
             return n;
         })},
        {"baseline-memory", static_cast<T>([](const FuzzCase &c) {
             const FuzzCase d = defaultCase();
             FuzzCase n = c;
             n.cfg.localDram = d.cfg.localDram;
             n.cfg.cxlDram = d.cfg.cxlDram;
             n.cfg.link = d.cfg.link;
             n.cfg.localBytesPerHostFull = d.cfg.localBytesPerHostFull;
             n.cfg.cxlPoolBytesFull = d.cfg.cxlPoolBytesFull;
             return n;
         })},
        {"baseline-pipm", static_cast<T>([](const FuzzCase &c) {
             const FuzzCase d = defaultCase();
             FuzzCase n = c;
             n.cfg.pipm = d.cfg.pipm;
             n.cfg.deviceDirectory = d.cfg.deviceDirectory;
             n.cfg.localDirectory = d.cfg.localDirectory;
             return n;
         })},
        {"baseline-os", static_cast<T>([](const FuzzCase &c) {
             const FuzzCase d = defaultCase();
             FuzzCase n = c;
             n.cfg.osMigration = d.cfg.osMigration;
             n.cfg.timeScale = d.cfg.timeScale;
             n.cfg.migrationBytesScale = d.cfg.migrationBytesScale;
             return n;
         })},
        {"tlb-off", static_cast<T>([](const FuzzCase &c) {
             FuzzCase n = c;
             n.cfg.tlb = TlbModelConfig{};
             return n;
         })},
    };
}

} // namespace

MinimizedCase
minimizeCase(const FuzzCase &failing, const Oracle &oracle,
             unsigned max_evals)
{
    MinimizedCase out;
    out.best = failing;
    out.failure = oracle.check(failing);
    ++out.evals;
    if (out.failure.ok)    // not actually failing: nothing to shrink
        return out;

    const auto ts = transforms();
    bool improved = true;
    while (improved && out.evals < max_evals) {
        improved = false;
        for (const auto &[name, t] : ts) {
            if (out.evals >= max_evals)
                break;
            FuzzCase cand = t(out.best);
            repairCase(cand);
            if (caseSignature(cand) == caseSignature(out.best))
                continue;   // transform was a no-op here
            if (!caseValid(cand))
                continue;
            const OracleResult res = oracle.check(cand);
            ++out.evals;
            if (!res.ok) {
                out.best = std::move(cand);
                out.failure = res;
                ++out.shrinks;
                improved = true;
            }
        }
    }
    return out;
}

std::string
renderCaseCode(const FuzzCase &c, const std::string &var)
{
    std::ostringstream os;
    os << "    pipm::fuzz::FuzzCase " << var << " = "
       << "pipm::fuzz::defaultCase();\n";
    // defaultCase() starts from testConfig(), not the default-constructed
    // baseline forEachField() diffs against, so emit every field that
    // differs from *either* — a few redundant assignments beat a wrong
    // reconstruction.
    const FuzzCase base = defaultCase();
    std::ostringstream body;
    forEachField(c, [&](const char *path, const auto &v, const auto &) {
        body << "    " << var << "." << path << " = " << lit(v) << ";\n";
    });
    // Emit only lines whose field differs from the defaultCase() value:
    // render base the same way and drop identical lines.
    std::ostringstream base_body;
    forEachField(base,
                 [&](const char *path, const auto &v, const auto &) {
                     base_body << "    " << var << "." << path << " = "
                               << lit(v) << ";\n";
                 });
    std::istringstream want(body.str());
    std::istringstream have(base_body.str());
    std::string wline;
    std::string hline;
    while (std::getline(want, wline) && std::getline(have, hline)) {
        if (wline != hline)
            os << wline << '\n';
    }
    return os.str();
}

std::string
renderRegressionTest(const FuzzCase &c, const std::string &oracle_name,
                     std::uint64_t sample_seed)
{
    std::ostringstream os;
    std::string camel = oracle_name;
    if (!camel.empty())
        camel[0] = static_cast<char>(std::toupper(camel[0]));
    os << "// Minimized reproducer: fuzz seed " << sample_seed
       << ", oracle \"" << oracle_name << "\".\n"
       << "TEST(FuzzRegressions, " << camel << "Seed" << sample_seed
       << ")\n{\n"
       << renderCaseCode(c, "c")
       << "    pipm::fuzz::repairCase(c);\n"
       << "    ASSERT_TRUE(pipm::fuzz::caseValid(c));\n"
       << "    const pipm::fuzz::OracleResult r =\n"
       << "        pipm::fuzz::coreOracle(\"" << oracle_name
       << "\").check(c);\n"
       << "    EXPECT_TRUE(r.ok) << r.detail;\n"
       << "}\n";
    return os.str();
}

} // namespace fuzz
} // namespace pipm
