/**
 * @file
 * Fuzz-case sampling and repair (DESIGN.md §13).
 *
 * The sampler draws every knob from a wide range — wider than
 * SystemConfig::validate() accepts — and repairCase() then clamps the
 * result into validity. Sampling wide and repairing (rather than
 * sampling narrow) keeps the boundary values validate() guards
 * reachable: a knob drawn just past its limit lands *on* the limit
 * after repair, so off-by-one bugs at the edges of the accepted ranges
 * stay in the tested population.
 *
 * Geometry note: SystemConfig::validate() rejects non-power-of-two set
 * counts outright (the same rule the SetAssoc constructors enforce), so
 * the sampler draws power-of-two sizes/ways/scales and repairCase()
 * rounds externally-supplied values down to powers of two to keep
 * repaired cases valid.
 *
 * Workloads: besides the Table 1 synthetics (with sampled multi-line
 * overrides — hotLinesPerPage / seqRunLines), the sampler emits
 * trace-backed workloads ("trace:<path>", replayed via
 * TraceFileWorkload) drawn from the .pipmt files of the directory named
 * by PIPM_FUZZ_TRACE_DIR, when set.
 */

#include "fuzz/fuzz.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "workloads/catalog.hh"
#include "workloads/synthetic.hh"
#include "workloads/trace_file.hh"

namespace pipm
{
namespace fuzz
{

namespace
{

/** Largest power of two <= v (1 for v == 0). */
std::uint64_t
floorPow2(std::uint64_t v)
{
    if (v == 0)
        return 1;
    std::uint64_t p = 1;
    while (p * 2 != 0 && p * 2 <= v)
        p *= 2;
    return p;
}

/** Power of two drawn log-uniformly from [2^lo, 2^hi]. */
std::uint64_t
pow2In(Rng &rng, unsigned lo, unsigned hi)
{
    return std::uint64_t{1} << rng.range(lo, hi);
}

/** Uniform double in [lo, hi). */
double
realIn(Rng &rng, double lo, double hi)
{
    return lo + rng.real() * (hi - lo);
}

/** The Table 1 pattern for a workload name (null when unknown). */
const PatternParams *
patternFor(const std::string &name)
{
    for (const PatternParams &p : table1Patterns()) {
        if (name == p.name)
            return &p;
    }
    return nullptr;
}

/** Scoped detail::throwOnError so fatal()/panic() raise SimError. */
struct ThrowGuard
{
    bool saved = detail::throwOnError;
    ThrowGuard() { detail::throwOnError = true; }
    ~ThrowGuard() { detail::throwOnError = saved; }
};

/** The path behind a "trace:<path>" workload name ("" otherwise). */
std::string
tracePathOf(const std::string &workload)
{
    constexpr const char prefix[] = "trace:";
    if (workload.rfind(prefix, 0) != 0)
        return "";
    return workload.substr(sizeof prefix - 1);
}

void repairFaults(SystemConfig &cfg);

} // namespace

const std::vector<std::string> &
fuzzTraceFiles()
{
    static const std::vector<std::string> files = [] {
        std::vector<std::string> found;
        const std::string dir = envStr("PIPM_FUZZ_TRACE_DIR", "");
        if (dir.empty())
            return found;
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".pipmt")
                found.push_back(entry.path().string());
        }
        if (ec)
            warn("PIPM_FUZZ_TRACE_DIR=", dir, ": ", ec.message());
        // Directory iteration order is filesystem-dependent; sampling
        // must not be.
        std::sort(found.begin(), found.end());
        return found;
    }();
    return files;
}

std::unique_ptr<Workload>
caseWorkload(const FuzzCase &c)
{
    const std::string path = tracePathOf(c.workload);
    if (!path.empty())
        return std::make_unique<TraceFileWorkload>(path);
    auto wl = workloadByName(c.workload, c.cfg.footprintScale);
    if (c.hotLinesPerPage == 0 && c.seqRunLines == 0)
        return wl;
    // Multi-line model overrides: rebuild the synthetic with the
    // pattern's line-granularity knobs replaced.
    const auto *syn = dynamic_cast<const SyntheticWorkload *>(wl.get());
    panic_if(!syn, "multi-line overrides on a non-synthetic workload");
    PatternParams p = syn->params();
    if (c.hotLinesPerPage != 0)
        p.hotLinesPerPage = c.hotLinesPerPage;
    if (c.seqRunLines != 0)
        p.seqRunLines = c.seqRunLines;
    return std::make_unique<SyntheticWorkload>(p, c.cfg.footprintScale);
}

FuzzCase
defaultCase()
{
    FuzzCase c;
    c.cfg = testConfig();
    return c;
}

FuzzCase
sampleCase(std::uint64_t seed, const FuzzLimits &lim)
{
    Rng rng(seed);
    FuzzCase c = defaultCase();
    SystemConfig &cfg = c.cfg;

    // ---- Topology ---------------------------------------------------
    cfg.numHosts = static_cast<unsigned>(
        rng.range(1, std::max(1u, lim.maxHosts)));
    cfg.coresPerHost = static_cast<unsigned>(
        floorPow2(rng.range(1, std::max(1u, lim.maxCoresPerHost))));

    // ---- Core -------------------------------------------------------
    cfg.core.width = static_cast<unsigned>(rng.range(1, 8));
    cfg.core.robEntries = static_cast<unsigned>(rng.range(32, 512));
    cfg.core.loadQueue = static_cast<unsigned>(rng.range(16, 128));
    cfg.core.storeQueue = static_cast<unsigned>(rng.range(16, 128));
    cfg.core.mshrs = static_cast<unsigned>(rng.range(1, 32));
    cfg.core.mshrLatencyThreshold = rng.range(10, 100);

    // ---- Caches (power-of-two geometry; see file comment) -----------
    cfg.l1.sizeBytes = pow2In(rng, 12, 16);             // 4 KB .. 64 KB
    cfg.l1.ways = static_cast<unsigned>(pow2In(rng, 1, 3));
    cfg.l1.roundTrip = rng.range(2, 6);
    cfg.llcPerCore.sizeBytes = pow2In(rng, 14, 18);     // 16 KB .. 256 KB
    cfg.llcPerCore.ways = static_cast<unsigned>(pow2In(rng, 2, 4));
    cfg.llcPerCore.roundTrip = rng.range(12, 40);
    cfg.l1Scale = static_cast<unsigned>(pow2In(rng, 0, 1));
    cfg.llcScale = static_cast<unsigned>(pow2In(rng, 0, 2));

    // ---- DRAM -------------------------------------------------------
    for (DramConfig *d : {&cfg.localDram, &cfg.cxlDram}) {
        d->tRCns = realIn(rng, 30.0, 60.0);
        d->tRCDns = realIn(rng, 10.0, 20.0);
        d->tCLns = realIn(rng, 15.0, 25.0);
        d->tRPns = realIn(rng, 10.0, 20.0);
        d->channels = static_cast<unsigned>(rng.range(1, 4));
        d->banksPerChannel = static_cast<unsigned>(pow2In(rng, 4, 5));
        d->rowBytes = static_cast<unsigned>(pow2In(rng, 12, 13));
        d->bytesPerCycle = realIn(rng, 4.0, 16.0);
        d->controllerNs = realIn(rng, 5.0, 15.0);
    }

    // ---- CXL link ---------------------------------------------------
    cfg.link.latencyNs = realIn(rng, 10.0, 200.0);
    cfg.link.bytesPerNs = realIn(rng, 1.0, 32.0);
    cfg.link.hasSwitch = rng.chance(0.25);
    cfg.link.switchNs = realIn(rng, 5.0, 50.0);
    cfg.link.switchBytesPerNs = realIn(rng, 4.0, 64.0);

    // ---- Directories ------------------------------------------------
    cfg.deviceDirectory.sets = static_cast<unsigned>(pow2In(rng, 6, 10));
    cfg.deviceDirectory.ways = static_cast<unsigned>(pow2In(rng, 2, 4));
    cfg.deviceDirectory.slices = static_cast<unsigned>(pow2In(rng, 0, 4));
    cfg.deviceDirectory.roundTrip = rng.range(16, 128);
    cfg.localDirectory.sets = static_cast<unsigned>(pow2In(rng, 6, 12));
    cfg.localDirectory.ways = static_cast<unsigned>(pow2In(rng, 3, 4));
    cfg.localDirectory.roundTrip = rng.range(4, 16);

    // ---- PIPM -------------------------------------------------------
    cfg.pipm.globalCacheBytes = pow2In(rng, 11, 15);
    cfg.pipm.globalCacheWays = static_cast<unsigned>(pow2In(rng, 2, 3));
    cfg.pipm.globalCacheRoundTrip = rng.range(2, 8);
    cfg.pipm.localCacheBytes = pow2In(rng, 14, 17);
    cfg.pipm.localCacheWays = static_cast<unsigned>(pow2In(rng, 2, 3));
    cfg.pipm.localCacheRoundTrip = rng.range(4, 16);
    cfg.pipm.globalCounterBits = static_cast<unsigned>(rng.range(2, 8));
    cfg.pipm.localCounterBits = static_cast<unsigned>(rng.range(1, 8));
    // Deliberately sampled one past the top: repair clamps to the
    // 2^bits - 1 boundary, keeping the boundary in the population.
    cfg.pipm.migrationThreshold = static_cast<unsigned>(
        rng.range(1, (1u << cfg.pipm.globalCounterBits)));
    cfg.pipm.tableLevels = static_cast<unsigned>(rng.range(1, 2));
    cfg.pipm.infiniteLocalCache = rng.chance(0.1);
    cfg.pipm.infiniteGlobalCache = rng.chance(0.1);

    // ---- TLB --------------------------------------------------------
    cfg.tlb.enabled = rng.chance(0.25);
    cfg.tlb.entries = static_cast<unsigned>(pow2In(rng, 8, 11));
    cfg.tlb.ways = static_cast<unsigned>(pow2In(rng, 2, 3));
    cfg.tlb.hitCycles = rng.range(1, 2);
    cfg.tlb.walkCycles = rng.range(50, 200);

    // ---- OS migration -----------------------------------------------
    cfg.osMigration.intervalMs = realIn(rng, 0.5, 20.0);
    cfg.osMigration.perPageInitiatorUs = realIn(rng, 5.0, 40.0);
    cfg.osMigration.perPageOtherUs = realIn(rng, 1.0, 10.0);
    cfg.osMigration.maxPagesPerEpoch =
        static_cast<unsigned>(rng.range(16, 1024));
    cfg.osMigration.hotThreshold = static_cast<unsigned>(rng.range(1, 64));

    // ---- Capacities and scale knobs ---------------------------------
    cfg.localBytesPerHostFull = pow2In(rng, 30, 35);    // 1 GB .. 32 GB
    cfg.cxlPoolBytesFull = pow2In(rng, 33, 37);         // 8 GB .. 128 GB
    cfg.footprintScale = static_cast<unsigned>(pow2In(rng, 6, 10));
    cfg.timeScale = static_cast<unsigned>(rng.range(100, 2000));
    cfg.migrationBytesScale = static_cast<unsigned>(pow2In(rng, 0, 3));

    // ---- Faults: each domain is an independent coin so single-domain
    // and multi-domain compositions both appear often -----------------
    FaultConfig &f = cfg.fault;
    f.enabled = rng.chance(0.75);
    f.seed = rng.next() | 1;
    if (rng.chance(0.5)) {                      // §7 link/media domain
        f.linkErrorRate = rng.chance(0.7) ? realIn(rng, 0.0, 5e-3) : 0.0;
        if (rng.chance(0.4)) {
            f.retrainIntervalNs = realIn(rng, 50'000.0, 500'000.0);
            f.retrainWindowNs = realIn(rng, 500.0, 5'000.0);
        } else {
            f.retrainIntervalNs = 0.0;
        }
        f.poisonRate = rng.chance(0.6) ? realIn(rng, 0.0, 1e-3) : 0.0;
        f.persistentPoisonFrac = rng.real();
        f.migrationAbortRate = rng.chance(0.6) ? realIn(rng, 0.0, 0.05)
                                               : 0.0;
    } else {
        f.linkErrorRate = 0.0;
        f.retrainIntervalNs = 0.0;
        f.poisonRate = 0.0;
        f.migrationAbortRate = 0.0;
    }
    f.backoffWindow = rng.range(64, 1024);
    f.backoffThreshold = realIn(rng, 0.0, 0.1);
    f.backoffBaseNs = realIn(rng, 10'000.0, 500'000.0);
    f.backoffMaxExp = static_cast<unsigned>(rng.range(0, 8));
    if (rng.chance(0.5)) {                      // §8 fail-stop domain
        f.crashMeanIntervalNs = realIn(rng, 30'000.0, 300'000.0);
        f.crashRejoinNs = rng.chance(0.6) ? realIn(rng, 20'000.0, 200'000.0)
                                          : 0.0;
        f.crashMaxEvents = static_cast<unsigned>(rng.range(1, 64));
        f.crashRecovery = rng.chance(0.5) ? CrashRecoveryPolicy::stale
                                          : CrashRecoveryPolicy::poison;
    } else {
        f.crashMeanIntervalNs = 0.0;
    }
    if (rng.chance(0.5)) {                      // §11 detection domain
        f.leaseNs = realIn(rng, 10'000.0, 60'000.0);
        f.heartbeatIntervalNs = f.leaseNs * realIn(rng, 0.1, 0.8);
        f.txnTimeoutNs = realIn(rng, 500.0, 5'000.0);
        f.txnRetryLimit = static_cast<unsigned>(rng.range(0, 8));
        f.txnBackoffBaseNs =
            f.txnRetryLimit && rng.chance(0.7) ? realIn(rng, 100.0, 2'000.0)
                                               : 0.0;
        f.txnBackoffMaxExp = static_cast<unsigned>(rng.range(0, 8));
        f.readmitDelayNs = realIn(rng, 0.0, 50'000.0);
        if (rng.chance(0.5)) {                  // gray-failure stalls
            f.stallMeanIntervalNs = realIn(rng, 60'000.0, 400'000.0);
            // Straddle the lease so both ridden-out stalls and false
            // suspicions occur (the §11 verifier's regime).
            f.stallWindowNs = f.leaseNs * realIn(rng, 0.5, 2.0);
            f.stallMaxEvents = static_cast<unsigned>(rng.range(1, 64));
        } else {
            f.stallMeanIntervalNs = 0.0;
        }
    } else {
        f.leaseNs = 0.0;
        f.stallMeanIntervalNs = 0.0;
    }
    if (rng.chance(0.5)) {                      // §12 metadata domain
        f.metaCorruptMeanIntervalNs = realIn(rng, 2'000.0, 50'000.0);
        f.metaCorruptMaxEvents = static_cast<unsigned>(rng.range(1, 256));
        f.metaShadowHitFrac = rng.real();
        f.metaJournalPages = static_cast<unsigned>(rng.range(0, 64));
        f.metaScrubIntervalNs = realIn(rng, 5'000.0, 100'000.0);
        f.metaScrubBudget = static_cast<unsigned>(rng.range(1, 64));
        f.metaBreakerThreshold = static_cast<unsigned>(rng.range(1, 8));
        f.metaBreakerWindowNs = realIn(rng, 10'000.0, 200'000.0);
        f.metaBreakerCooldownNs = realIn(rng, 20'000.0, 400'000.0);
        f.metaBreakerMaxExp = static_cast<unsigned>(rng.range(0, 8));
        f.metaBreakerGroupPages = static_cast<unsigned>(rng.range(1, 16));
    } else {
        f.metaCorruptMeanIntervalNs = 0.0;
    }

    // ---- Scheme, workload, run lengths ------------------------------
    c.scheme = allSchemesExtended[rng.below(allSchemesExtended.size())];
    const auto &patterns = table1Patterns();
    c.workload = patterns[rng.below(patterns.size())].name;
    // Multi-line access models: override the pattern's line-granularity
    // knobs often enough that line-level hotness and long spatial runs
    // are both well represented in the population.
    c.hotLinesPerPage = rng.chance(0.35)
        ? static_cast<unsigned>(rng.range(1, linesPerPage / 4))
        : 0;
    c.seqRunLines = rng.chance(0.35)
        ? static_cast<unsigned>(rng.range(1, 2 * linesPerPage))
        : 0;
    // Trace-backed workloads, when a trace corpus is available.
    const auto &traces = fuzzTraceFiles();
    if (!traces.empty() && rng.chance(0.25)) {
        c.workload = "trace:" + traces[rng.below(traces.size())];
        c.hotLinesPerPage = 0;
        c.seqRunLines = 0;
    }
    c.runSeed = rng.next() | 1;
    c.warmupRefs = rng.range(0, lim.maxWarmup);
    c.measureRefs = rng.range(lim.minRefs, lim.maxRefs);

    repairCase(c);
    return c;
}

void
repairCase(FuzzCase &c)
{
    SystemConfig &cfg = c.cfg;

    cfg.numHosts = std::clamp(cfg.numHosts, 1u, 32u);
    cfg.coresPerHost = static_cast<unsigned>(
        floorPow2(std::clamp(cfg.coresPerHost, 1u, 32u)));
    cfg.footprintScale = static_cast<unsigned>(
        floorPow2(std::max(cfg.footprintScale, 1u)));
    cfg.timeScale = std::max(cfg.timeScale, 1u);
    cfg.migrationBytesScale = std::max(cfg.migrationBytesScale, 1u);
    cfg.l1Scale = static_cast<unsigned>(floorPow2(cfg.l1Scale));
    cfg.llcScale = static_cast<unsigned>(floorPow2(cfg.llcScale));

    cfg.core.width = std::max(cfg.core.width, 1u);
    cfg.core.robEntries = std::max(cfg.core.robEntries, 1u);
    cfg.core.loadQueue = std::max(cfg.core.loadQueue, 1u);
    cfg.core.storeQueue = std::max(cfg.core.storeQueue, 1u);
    cfg.core.mshrs = std::max(cfg.core.mshrs, 1u);

    // Power-of-two cache geometry with at least one set after scaling.
    for (auto [cache, scale] :
         {std::pair{&cfg.l1, cfg.l1Scale},
          std::pair{&cfg.llcPerCore, cfg.llcScale}}) {
        cache->ways = static_cast<unsigned>(
            floorPow2(std::max(cache->ways, 1u)));
        const std::uint64_t floor =
            std::uint64_t{lineBytes} * cache->ways * scale;
        cache->sizeBytes = std::max(floorPow2(cache->sizeBytes), floor);
    }

    cfg.deviceDirectory.sets = static_cast<unsigned>(
        floorPow2(std::max(cfg.deviceDirectory.sets, 1u)));
    cfg.deviceDirectory.slices = static_cast<unsigned>(
        floorPow2(std::max(cfg.deviceDirectory.slices, 1u)));
    cfg.deviceDirectory.ways = std::max(cfg.deviceDirectory.ways, 1u);
    cfg.localDirectory.sets = std::max(cfg.localDirectory.sets, 1u);
    cfg.localDirectory.ways = std::max(cfg.localDirectory.ways, 1u);

    cfg.pipm.globalCacheWays = std::max(cfg.pipm.globalCacheWays, 1u);
    cfg.pipm.localCacheWays = std::max(cfg.pipm.localCacheWays, 1u);
    cfg.pipm.globalCounterBits = std::clamp(cfg.pipm.globalCounterBits,
                                            1u, 8u);
    cfg.pipm.localCounterBits = std::clamp(cfg.pipm.localCounterBits,
                                           1u, 8u);
    cfg.pipm.migrationThreshold =
        std::clamp(cfg.pipm.migrationThreshold, 1u,
                   (1u << cfg.pipm.globalCounterBits) - 1);
    cfg.pipm.tableLevels = std::max(cfg.pipm.tableLevels, 1u);

    cfg.tlb.entries = std::max(cfg.tlb.entries, cfg.tlb.ways);
    cfg.tlb.ways = std::max(cfg.tlb.ways, 1u);

    cfg.osMigration.intervalMs = std::max(cfg.osMigration.intervalMs, 0.1);
    cfg.osMigration.perPageInitiatorUs =
        std::max(cfg.osMigration.perPageInitiatorUs, 0.0);
    cfg.osMigration.perPageOtherUs =
        std::max(cfg.osMigration.perPageOtherUs, 0.0);
    cfg.osMigration.maxPagesPerEpoch =
        std::max(cfg.osMigration.maxPagesPerEpoch, 1u);
    cfg.osMigration.hotThreshold = std::max(cfg.osMigration.hotThreshold,
                                            1u);

    cfg.link.latencyNs = std::max(cfg.link.latencyNs, 0.0);
    cfg.link.bytesPerNs = std::max(cfg.link.bytesPerNs, 0.5);
    cfg.link.switchNs = std::max(cfg.link.switchNs, 0.0);
    cfg.link.switchBytesPerNs = std::max(cfg.link.switchBytesPerNs, 0.5);
    for (DramConfig *d : {&cfg.localDram, &cfg.cxlDram}) {
        d->bytesPerCycle = std::max(d->bytesPerCycle, 0.5);
        d->channels = std::max(d->channels, 1u);
        d->banksPerChannel = std::max(d->banksPerChannel, 1u);
        d->rowBytes = std::max(d->rowBytes, unsigned{lineBytes});
    }

    // ---- Workload fit (mirrors AddressSpace/SyntheticWorkload) ------
    c.hotLinesPerPage = std::min(c.hotLinesPerPage, linesPerPage);
    c.seqRunLines = std::min(c.seqRunLines, 4 * linesPerPage);
    const std::string trace_path = tracePathOf(c.workload);
    if (!trace_path.empty()) {
        // Trace replay: multi-line overrides do not apply, and geometry
        // and footprints come from the file, not from a Table 1
        // pattern. An unreadable trace falls back to the baseline
        // synthetic so repair always yields a runnable case.
        c.hotLinesPerPage = 0;
        c.seqRunLines = 0;
        ThrowGuard guard;
        try {
            const TraceReader reader(trace_path);
            const TraceMeta &m = reader.meta();
            cfg.numHosts = std::clamp(cfg.numHosts, 1u, m.numHosts);
            cfg.coresPerHost = static_cast<unsigned>(floorPow2(
                std::clamp(cfg.coresPerHost, 1u, m.coresPerHost)));
            // Trace footprints are absolute (recorded post-scale), so
            // fit the *scaled* capacities directly instead of reasoning
            // about full sizes.
            while (cfg.cxlPoolBytes() <
                   std::max<std::uint64_t>(m.sharedBytes, pageBytes))
                cfg.cxlPoolBytesFull *= 2;
            while (cfg.localBytesPerHost() < pageBytes ||
                   m.privateBytesPerHost / pageBytes >=
                       cfg.localBytesPerHost() / pageBytes)
                cfg.localBytesPerHostFull *= 2;
            c.measureRefs = std::max<std::uint64_t>(c.measureRefs, 1);
            repairFaults(cfg);
            return;
        } catch (const SimError &) {
            c.workload = "ycsb";
        }
    }
    const PatternParams *pat = patternFor(c.workload);
    if (!pat) {
        c.workload = "ycsb";
        pat = patternFor(c.workload);
    }
    // Scaled shared heap must be at least a page...
    while (cfg.footprintScale > 1 &&
           pat->footprintFullBytes / cfg.footprintScale < pageBytes)
        cfg.footprintScale /= 2;
    // ...and must fit the CXL pool (floor division by the same scale
    // preserves <=, so comparing the full sizes suffices).
    while (cfg.cxlPoolBytesFull < pat->footprintFullBytes)
        cfg.cxlPoolBytesFull *= 2;
    while (cfg.cxlPoolBytes() < pageBytes)
        cfg.cxlPoolBytesFull *= 2;
    // Keep the *scaled* pool fuzz-sized: the invariant sweep and the
    // crash reclaim walk every pool line, so a multi-GB scaled pool
    // turns one oracle run into minutes. Raising footprintScale shrinks
    // the pool and the workload together, so the fit constraints above
    // are preserved as long as the shared heap stays >= one page.
    // 64 MB (testConfig's pool): crash reclaim at fuzz event rates can
    // walk the pool tens of times per run.
    constexpr std::uint64_t maxScaledPoolBytes = 64ull << 20;
    while (cfg.cxlPoolBytes() > maxScaledPoolBytes &&
           pat->footprintFullBytes / (cfg.footprintScale * 2) >= pageBytes)
        cfg.footprintScale *= 2;
    // Private data (floored at 16 pages per SyntheticWorkload) must fit
    // strictly inside each host's local DRAM.
    const std::uint64_t priv_bytes =
        std::max<std::uint64_t>(pat->privateFullBytes / cfg.footprintScale,
                                16 * pageBytes);
    while (cfg.localBytesPerHost() < pageBytes ||
           priv_bytes / pageBytes >= cfg.localBytesPerHost() / pageBytes)
        cfg.localBytesPerHostFull *= 2;

    repairFaults(cfg);

    c.measureRefs = std::max<std::uint64_t>(c.measureRefs, 1);
}

namespace
{

/** The FaultConfig half of repairCase() (shared with the trace path). */
void
repairFaults(SystemConfig &cfg)
{
    FaultConfig &f = cfg.fault;
    auto unit = [](double &p) { p = std::clamp(p, 0.0, 1.0); };
    auto nonneg = [](double &v) { v = std::max(v, 0.0); };
    unit(f.linkErrorRate);
    unit(f.poisonRate);
    unit(f.persistentPoisonFrac);
    unit(f.migrationAbortRate);
    unit(f.backoffThreshold);
    unit(f.metaShadowHitFrac);
    nonneg(f.retrainIntervalNs);
    nonneg(f.retrainWindowNs);
    nonneg(f.crashMeanIntervalNs);
    nonneg(f.crashRejoinNs);
    nonneg(f.leaseNs);
    nonneg(f.heartbeatIntervalNs);
    nonneg(f.txnTimeoutNs);
    nonneg(f.txnBackoffBaseNs);
    nonneg(f.readmitDelayNs);
    nonneg(f.stallMeanIntervalNs);
    nonneg(f.stallWindowNs);
    nonneg(f.metaCorruptMeanIntervalNs);
    nonneg(f.metaScrubIntervalNs);
    nonneg(f.metaBreakerWindowNs);
    nonneg(f.metaBreakerCooldownNs);
    nonneg(f.backoffBaseNs);
    if (f.retrainIntervalNs > 0.0 && f.retrainWindowNs >= f.retrainIntervalNs)
        f.retrainWindowNs = f.retrainIntervalNs / 4.0;
    if (f.crashMeanIntervalNs > 0.0 && f.crashMaxEvents == 0)
        f.crashMaxEvents = 1;
    f.crashMaxEvents = std::min(f.crashMaxEvents, 4096u);
    if (f.leaseNs > 0.0) {
        if (f.heartbeatIntervalNs <= 0.0 ||
            f.heartbeatIntervalNs >= f.leaseNs)
            f.heartbeatIntervalNs = f.leaseNs / 5.0;
        if (f.txnTimeoutNs <= 0.0)
            f.txnTimeoutNs = 1'000.0;
    }
    if (f.txnRetryLimit == 0)
        f.txnBackoffBaseNs = 0.0;
    f.txnBackoffMaxExp = std::min(f.txnBackoffMaxExp, 20u);
    if (f.stallMeanIntervalNs > 0.0) {
        if (f.leaseNs <= 0.0) {
            // Stalls are only observable through a failure detector;
            // dropping the domain is the minimal legal repair.
            f.stallMeanIntervalNs = 0.0;
        } else {
            if (f.stallWindowNs <= 0.0)
                f.stallWindowNs = f.leaseNs;
            if (f.stallMaxEvents == 0)
                f.stallMaxEvents = 1;
        }
    }
    f.stallMaxEvents = std::min(f.stallMaxEvents, 4096u);
    if (f.metaCorruptMeanIntervalNs > 0.0) {
        if (f.metaCorruptMaxEvents == 0)
            f.metaCorruptMaxEvents = 1;
        if (f.metaScrubIntervalNs <= 0.0)
            f.metaScrubIntervalNs = 25'000.0;
        if (f.metaScrubBudget == 0)
            f.metaScrubBudget = 1;
        if (f.metaBreakerThreshold == 0)
            f.metaBreakerThreshold = 1;
        if (f.metaBreakerWindowNs <= 0.0)
            f.metaBreakerWindowNs = 50'000.0;
        if (f.metaBreakerCooldownNs <= 0.0)
            f.metaBreakerCooldownNs = 100'000.0;
        if (f.metaBreakerGroupPages == 0)
            f.metaBreakerGroupPages = 1;
    }
    f.metaCorruptMaxEvents = std::min(f.metaCorruptMaxEvents, 4096u);
    f.metaJournalPages = std::min(f.metaJournalPages, 4096u);
    f.metaBreakerMaxExp = std::min(f.metaBreakerMaxExp, 20u);
    if (f.backoffWindow == 0)
        f.backoffWindow = 1;
    f.backoffMaxExp = std::min(f.backoffMaxExp, 20u);
}

} // namespace

bool
caseValid(const FuzzCase &c, std::string *why)
{
    ThrowGuard guard;
    try {
        c.cfg.validate();
        // Mirror the AddressSpace fit checks the run would hit.
        const auto wl = caseWorkload(c);
        if (const auto *tf = dynamic_cast<const TraceFileWorkload *>(wl.get()))
            fatal_if(c.cfg.numHosts > tf->recordedHosts() ||
                         c.cfg.coresPerHost > tf->recordedCoresPerHost(),
                     "trace was recorded for ", tf->recordedHosts(), "x",
                     tf->recordedCoresPerHost(), " cores; case asks for ",
                     c.cfg.numHosts, "x", c.cfg.coresPerHost);
        const std::uint64_t shared_pages = wl->sharedBytes() / pageBytes;
        const std::uint64_t private_pages =
            wl->privateBytesPerHost() / pageBytes;
        const std::uint64_t local_pages =
            c.cfg.localBytesPerHost() / pageBytes;
        fatal_if(private_pages >= local_pages,
                 "private data (", private_pages, " pages) does not fit in ",
                 local_pages, " local pages");
        fatal_if(shared_pages > c.cfg.cxlPoolBytes() / pageBytes,
                 "shared heap (", shared_pages,
                 " pages) does not fit in the CXL pool");
        fatal_if(c.measureRefs == 0, "measureRefs must be positive");
    } catch (const SimError &e) {
        if (why)
            *why = e.message;
        return false;
    }
    return true;
}

std::string
describeCase(const FuzzCase &c)
{
    std::ostringstream os;
    os << c.cfg.numHosts << "x" << c.cfg.coresPerHost << " " << c.workload
       << "/" << toString(c.scheme) << " refs=" << c.warmupRefs << "+"
       << c.measureRefs << " fs=" << c.cfg.footprintScale << " seed="
       << c.runSeed;
    const FaultConfig &f = c.cfg.fault;
    os << " faults=";
    if (!f.enabled) {
        os << "off";
    } else {
        os << f.activeDomains() << "[";
        const char *sep = "";
        if (f.linkErrorRate > 0.0 || f.retrainIntervalNs > 0.0 ||
            f.poisonRate > 0.0 || f.migrationAbortRate > 0.0) {
            os << "link";
            sep = ",";
        }
        if (f.crashMeanIntervalNs > 0.0) {
            os << sep << "crash";
            sep = ",";
        }
        if (f.leaseNs > 0.0 || f.stallMeanIntervalNs > 0.0) {
            os << sep << "lease";
            sep = ",";
        }
        if (f.metaCorruptMeanIntervalNs > 0.0)
            os << sep << "meta";
        os << "]";
    }
    return os.str();
}

std::string
caseKey(const FuzzCase &c)
{
    std::ostringstream os;
    os << c.cfg.measurementKey() << "|scheme=" << toString(c.scheme)
       << "|wl=" << c.workload << "|seed=" << c.runSeed << "|warmup="
       << c.warmupRefs << "|measure=" << c.measureRefs;
    // Appended only when set so pre-existing keys stay stable.
    if (c.hotLinesPerPage || c.seqRunLines)
        os << "|lines=" << c.hotLinesPerPage << "/" << c.seqRunLines;
    return os.str();
}

} // namespace fuzz
} // namespace pipm
