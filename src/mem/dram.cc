#include "mem/dram.hh"

#include <algorithm>
#include <bit>

namespace pipm
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

DramDevice::DramDevice(const DramConfig &cfg, std::string name)
    : cfg_(cfg),
      tRCD_(nsToCycles(cfg.tRCDns)),
      tCL_(nsToCycles(cfg.tCLns)),
      tRP_(nsToCycles(cfg.tRPns)),
      tRC_(nsToCycles(cfg.tRCns)),
      controller_(nsToCycles(cfg.controllerNs)),
      burstCycles_(std::max<Cycles>(
          1, static_cast<Cycles>(lineBytes / cfg.bytesPerCycle))),
      banks_(static_cast<std::size_t>(cfg.channels) * cfg.banksPerChannel),
      busFreeAt_(cfg.channels, 0),
      stats_(std::move(name))
{
    pow2Decode_ = isPow2(cfg.rowBytes) && isPow2(cfg.channels) &&
                  isPow2(cfg.banksPerChannel);
    if (pow2Decode_) {
        rowShift_ = static_cast<unsigned>(
            std::countr_zero(std::uint64_t{cfg.rowBytes}));
        channelShift_ = static_cast<unsigned>(
            std::countr_zero(std::uint64_t{cfg.channels}));
        channelMask_ = cfg.channels - 1;
        bankMask_ = cfg.banksPerChannel - 1;
    }
    stats_.addCounter(&reads, "reads", "read accesses");
    stats_.addCounter(&writes, "writes", "write accesses");
    stats_.addCounter(&rowHits, "row_hits", "row-buffer hits");
    stats_.addCounter(&rowMisses, "row_misses", "row-buffer misses");
    stats_.addAverage(&queueDelay, "queue_delay",
                      "cycles spent waiting for bank/bus");
}

Cycles
DramDevice::access(PhysAddr pa, Cycles now, bool is_write)
{
    // Address decode. The shift/mask path computes exactly the same
    // row/channel/bank as the divisions whenever every divisor is a
    // power of two (true for all shipped configs); the divide path
    // keeps arbitrary organisations working.
    std::uint64_t row_global, row;
    unsigned channel, bank_in_channel;
    if (pow2Decode_) {
        row_global = pa >> rowShift_;
        channel = static_cast<unsigned>(row_global & channelMask_);
        row = row_global >> channelShift_;
        bank_in_channel = static_cast<unsigned>(row & bankMask_);
    } else {
        row_global = pa / cfg_.rowBytes;
        channel = static_cast<unsigned>(row_global % cfg_.channels);
        row = row_global / cfg_.channels;
        bank_in_channel =
            static_cast<unsigned>(row % cfg_.banksPerChannel);
    }
    const unsigned bank_idx =
        channel * cfg_.banksPerChannel + bank_in_channel;
    Bank &bank = banks_[bank_idx];

    const Cycles arrival = now + controller_;

    if (is_write) {
        // Writes are absorbed by the controller's write buffer and
        // drained opportunistically with row coalescing, so they charge
        // only their data burst against the bank and bus.
        writes.inc();
        Cycles data_start = std::max(arrival, bank.readyAt);
        data_start = std::max(data_start, busFreeAt_[channel]);
        const Cycles wdone = data_start + burstCycles_;
        bank.readyAt = wdone;
        busFreeAt_[channel] = wdone;
        if (bank.rowOpen && bank.openRow == row)
            rowHits.inc();
        else
            rowMisses.inc();
        bank.rowOpen = true;
        bank.openRow = row;
        return controller_ + 1;
    }

    // bank.readyAt is the earliest time the bank can deliver its next
    // data burst: row-buffer hits pipeline their CAS commands, so
    // back-to-back hits stream at burst rate; misses pay the
    // precharge/activate sequence and the tRC window.
    Cycles data_start;
    Cycles min_latency;
    if (bank.rowOpen && bank.openRow == row) {
        rowHits.inc();
        data_start = std::max(arrival + tCL_, bank.readyAt);
        min_latency = tCL_;
    } else {
        rowMisses.inc();
        Cycles act = std::max(arrival + (bank.rowOpen ? tRP_ : 0),
                              bank.readyAt);
        act = std::max(act, bank.lastActivate + tRC_);
        bank.lastActivate = act;
        data_start = act + tRCD_ + tCL_;
        min_latency = (bank.rowOpen ? tRP_ : 0) + tRCD_ + tCL_;
        bank.rowOpen = true;
        bank.openRow = row;
    }

    // Banks operate in parallel; only the data burst occupies the
    // channel bus, so accesses to different banks pipeline.
    data_start = std::max(data_start, busFreeAt_[channel]);
    const Cycles done = data_start + burstCycles_;
    bank.readyAt = done;
    busFreeAt_[channel] = done;
    queueDelay.sample(static_cast<double>(done - arrival) -
                      static_cast<double>(min_latency + burstCycles_));

    reads.inc();
    return done - now;
}

} // namespace pipm
