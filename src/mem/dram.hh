/**
 * @file
 * DDR5 channel/bank timing model.
 *
 * Models the timing parameters of Table 2 (tRC-tRCD-tCL-tRP = 48-15-20-15)
 * with open-page row buffers, per-bank occupancy and per-channel data-bus
 * serialisation. The model is queue-based: each access computes its start
 * time from the bank/bus busy-until clocks and pushes them forward, which
 * captures bandwidth saturation and bank conflicts without event-driven
 * machinery.
 */

#ifndef PIPM_MEM_DRAM_HH
#define PIPM_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** One DRAM device: N channels of M banks under a single controller. */
class DramDevice
{
  public:
    /**
     * @param cfg timing and organisation parameters
     * @param name stat-group name ("local_dram", "cxl_dram")
     */
    DramDevice(const DramConfig &cfg, std::string name);

    /**
     * Perform one 64 B access.
     * @param pa device-relative physical address
     * @param now current time
     * @param is_write writes release the requester as soon as the command
     *        is accepted; the bank still stays busy
     * @return latency from `now` until the data is available (reads) or
     *         the write is accepted
     */
    Cycles access(PhysAddr pa, Cycles now, bool is_write);

    StatGroup &stats() { return stats_; }

    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowMisses;
    Average queueDelay;

  private:
    struct Bank
    {
        Cycles readyAt = 0;       ///< bank usable again at this time
        Cycles lastActivate = 0;  ///< for the tRC constraint
        std::uint64_t openRow = 0;
        bool rowOpen = false;
    };

    DramConfig cfg_;
    Cycles tRCD_, tCL_, tRP_, tRC_, controller_;
    Cycles burstCycles_;
    // Shift/mask address decode, valid when every divisor is a power of
    // two (pow2Decode_); computes the same decomposition as the integer
    // divisions in access().
    bool pow2Decode_ = false;
    unsigned rowShift_ = 0;
    unsigned channelShift_ = 0;
    std::uint64_t channelMask_ = 0;
    std::uint64_t bankMask_ = 0;
    std::vector<Bank> banks_;         ///< channels * banksPerChannel
    std::vector<Cycles> busFreeAt_;   ///< per-channel data bus
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_MEM_DRAM_HH
