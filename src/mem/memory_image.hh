/**
 * @file
 * Functional memory image: the authoritative data value of every memory
 * line (local DRAM frames and the CXL pool).
 *
 * Each line holds a 64-bit token. Untouched lines read as a deterministic
 * hash of their address, so data-value checks in integration tests are
 * meaningful even for lines never written. The image is sparse: only
 * written lines are stored.
 */

#ifndef PIPM_MEM_MEMORY_IMAGE_HH
#define PIPM_MEM_MEMORY_IMAGE_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace pipm
{

/** Sparse map from line address to data token. */
class MemoryImage
{
  public:
    /** The value a never-written line reads as. */
    static std::uint64_t
    pristine(LineAddr line)
    {
        std::uint64_t z = line + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t
    read(LineAddr line) const
    {
        auto it = data_.find(line);
        return it == data_.end() ? pristine(line) : it->second;
    }

    void write(LineAddr line, std::uint64_t value) { data_[line] = value; }

    /** Copy one line's value to another location (page migration). */
    void
    copyLine(LineAddr from, LineAddr to)
    {
        write(to, read(from));
    }

    /** Pre-size for an expected written-line count (avoids rehash churn). */
    void reserve(std::uint64_t lines) { data_.reserve(lines); }

  private:
    FlatMap<LineAddr, std::uint64_t> data_;
};

} // namespace pipm

#endif // PIPM_MEM_MEMORY_IMAGE_HH
