#include "migration/harmful.hh"

#include "common/logging.hh"

namespace pipm
{

HarmfulTracker::HarmfulTracker(Cycles est_local, Cycles est_cxl,
                               Cycles est_gim, Cycles migration_cost)
    : benefitPerHit_(est_cxl > est_local ? est_cxl - est_local : 0),
      harmPerRemote_(est_gim > est_cxl ? est_gim - est_cxl : 0),
      migrationCost_(migration_cost),
      stats_("harmful")
{
    stats_.addCounter(&total, "total", "page migrations classified");
    stats_.addCounter(&harmful, "harmful",
                      "migrations that increased execution time");
}

void
HarmfulTracker::onMigration(std::uint64_t shared_idx, HostId host)
{
    auto it = live_.find(shared_idx);
    if (it != live_.end()) {
        finalize(it->second);
        live_.erase(it);   // backward shift: `it` is dead after this
    }
    Record r;
    r.host = host;
    r.net = -static_cast<std::int64_t>(migrationCost_);
    live_.emplace(shared_idx, r);
}

void
HarmfulTracker::onDemotion(std::uint64_t shared_idx)
{
    auto it = live_.find(shared_idx);
    if (it == live_.end())
        return;
    finalize(it->second);
    live_.erase(it);
}

void
HarmfulTracker::onLocalHit(std::uint64_t shared_idx)
{
    auto it = live_.find(shared_idx);
    if (it != live_.end())
        it->second.net += static_cast<std::int64_t>(benefitPerHit_);
}

void
HarmfulTracker::onRemoteAccess(std::uint64_t shared_idx)
{
    auto it = live_.find(shared_idx);
    if (it != live_.end())
        it->second.net -= static_cast<std::int64_t>(harmPerRemote_);
}

void
HarmfulTracker::finish()
{
    for (auto &[idx, record] : live_)
        finalize(record);
    live_.clear();
}

void
HarmfulTracker::finalize(Record &r)
{
    total.inc();
    if (r.net < 0)
        harmful.inc();
}

} // namespace pipm
