/**
 * @file
 * Harmful-migration accounting (§3.2.1, Fig. 5).
 *
 * The paper defines a page migration as *harmful* when it increases total
 * execution time: the initiating host gains local accesses, but every
 * other host's references turn into 4-hop non-cacheable inter-host
 * accesses. This tracker attributes, for each whole-page migration, the
 * measured benefit (local-DRAM hits that would have been CXL accesses)
 * against the measured harm (inter-host accesses that would have been
 * cacheable CXL accesses, plus the kernel cost of the migration itself),
 * and classifies the migration when it ends (demotion, re-migration or
 * end of run).
 */

#ifndef PIPM_MIGRATION_HARMFUL_HH
#define PIPM_MIGRATION_HARMFUL_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** Classifies OS page migrations as beneficial or harmful. */
class HarmfulTracker
{
  public:
    /**
     * @param est_local analytic latency of a local-DRAM LLC miss
     * @param est_cxl analytic latency of a cacheable 2-hop CXL access
     * @param est_gim analytic latency of a 4-hop non-cacheable access
     * @param migration_cost kernel cycles charged per migration
     */
    HarmfulTracker(Cycles est_local, Cycles est_cxl, Cycles est_gim,
                   Cycles migration_cost);

    /** Pre-size the live-record table (one record per migrated page). */
    void reserve(std::uint64_t pages) { live_.reserve(pages); }

    /** A page was migrated to `host`; finalises any live record. */
    void onMigration(std::uint64_t shared_idx, HostId host);

    /** The page was demoted back to CXL. */
    void onDemotion(std::uint64_t shared_idx);

    /** A local LLC-miss access by the owning host (benefit). */
    void onLocalHit(std::uint64_t shared_idx);

    /** A non-cacheable inter-host access by another host (harm). */
    void onRemoteAccess(std::uint64_t shared_idx);

    /** Finalise all live records (end of measurement). */
    void finish();

    std::uint64_t totalMigrations() const { return total.value(); }
    std::uint64_t harmfulMigrations() const { return harmful.value(); }

    /** Fraction of migrations that increased execution time. */
    double
    harmfulFraction() const
    {
        return total.value()
                   ? static_cast<double>(harmful.value()) / total.value()
                   : 0.0;
    }

    Counter total;
    Counter harmful;

    /**
     * Stat group "harmful" over the two counters. NOT reset at the
     * warmup boundary: RunResult reads lifetime totals, so the system's
     * resetStats() deliberately leaves this group alone (the telemetry
     * registry snapshots a baseline instead).
     */
    StatGroup &stats() { return stats_; }

  private:
    struct Record
    {
        HostId host = invalidHost;
        std::int64_t net = 0;   ///< benefit - harm, in cycles
    };

    void finalize(Record &r);

    Cycles benefitPerHit_;   ///< est_cxl - est_local
    Cycles harmPerRemote_;   ///< est_gim - est_cxl
    Cycles migrationCost_;
    FlatMap<std::uint64_t, Record> live_;
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_MIGRATION_HARMFUL_HH
