#include "migration/hemem.hh"

namespace pipm
{

HememPolicy::HememPolicy(std::uint64_t pages, unsigned hosts)
    : counts_(pages, hosts), lastAccessEpoch_(pages, 0)
{
}

void
HememPolicy::recordAccess(std::uint64_t shared_idx, HostId h)
{
    // HeMem observes accesses through PEBS sampling, not exact counts;
    // model the sampling by recording one in eight accesses.
    if ((sampleTick_++ & 7u) == 0)
        counts_.record(shared_idx, h);
}

EpochPlan
HememPolicy::epoch(const EpochContext &ctx,
                   const std::vector<HostId> &migrated_to)
{
    EpochPlan plan;
    std::vector<std::uint64_t> used = ctx.usedFramesPerHost;

    for (std::uint64_t page : counts_.touched()) {
        if (migrated_to[page] == invalidHost &&
            counts_.total(page) >= ctx.hotThreshold &&
            plan.promotions.size() < ctx.maxPagesPerEpoch) {
            const HostId target = counts_.dominant(page);
            if (used[target] < ctx.localBudgetPages) {
                plan.promotions.push_back({page, target});
                ++used[target];
            }
        }
        lastAccessEpoch_[page] = epochNo_;
    }

    // Demote pages unreferenced for eight epochs (pressure-driven in the
    // original; time-driven here to keep local DRAM from silting up).
    for (std::uint64_t page = 0; page < migrated_to.size(); ++page) {
        if (migrated_to[page] == invalidHost)
            continue;
        if (lastAccessEpoch_[page] + 8 <= epochNo_ &&
            plan.demotions.size() < ctx.maxPagesPerEpoch) {
            plan.demotions.push_back(page);
        }
    }

    ++epochNo_;
    counts_.rollEpoch();
    return plan;
}

} // namespace pipm
