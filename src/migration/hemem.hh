/**
 * @file
 * HeMem-style frequency-threshold migration policy (§5.1.3 scheme 4).
 *
 * HeMem [Raybuck et al., SOSP'21] samples accesses with PEBS and promotes
 * pages whose access count crosses a fixed hotness threshold; demotion
 * happens under memory pressure, preferring cold pages. This model
 * promotes a CXL page to its dominant accessor when its per-epoch access
 * count reaches the configured threshold, and demotes migrated pages that
 * have been unreferenced for several epochs.
 */

#ifndef PIPM_MIGRATION_HEMEM_HH
#define PIPM_MIGRATION_HEMEM_HH

#include "migration/os_policy.hh"

namespace pipm
{

/** Fixed-threshold frequency policy. */
class HememPolicy : public OsPolicy
{
  public:
    HememPolicy(std::uint64_t pages, unsigned hosts);

    std::string name() const override { return "hemem"; }
    void recordAccess(std::uint64_t shared_idx, HostId h) override;
    EpochPlan epoch(const EpochContext &ctx,
                    const std::vector<HostId> &migrated_to) override;

  private:
    EpochCounts counts_;
    std::vector<std::uint32_t> lastAccessEpoch_;
    std::uint32_t epochNo_ = 1;
    std::uint64_t sampleTick_ = 0;
};

} // namespace pipm

#endif // PIPM_MIGRATION_HEMEM_HH
