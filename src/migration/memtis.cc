#include "migration/memtis.hh"

#include <algorithm>

namespace pipm
{

MemtisPolicy::MemtisPolicy(std::uint64_t pages, unsigned hosts,
                           unsigned cooling_epochs)
    : counts_(pages, hosts), decayed_(pages, 0),
      coolingEpochs_(cooling_epochs)
{
}

void
MemtisPolicy::recordAccess(std::uint64_t shared_idx, HostId h)
{
    counts_.record(shared_idx, h);
}

EpochPlan
MemtisPolicy::epoch(const EpochContext &ctx,
                    const std::vector<HostId> &migrated_to)
{
    EpochPlan plan;

    // Fold this epoch's counts into the decayed hotness.
    for (std::uint64_t page : counts_.touched()) {
        const std::uint32_t sum = counts_.total(page);
        const std::uint32_t updated = decayed_[page] + sum;
        decayed_[page] =
            static_cast<std::uint16_t>(std::min<std::uint32_t>(updated,
                                                               0xffff));
    }

    // Rank this epoch's CXL-resident candidates by decayed hotness and
    // promote the top until budgets or the batch cap bind.
    std::vector<std::uint64_t> candidates;
    for (std::uint64_t page : counts_.touched()) {
        if (migrated_to[page] == invalidHost && decayed_[page] >= 2)
            candidates.push_back(page);
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  return decayed_[a] > decayed_[b];
              });
    std::vector<std::uint64_t> used = ctx.usedFramesPerHost;
    for (std::uint64_t page : candidates) {
        if (plan.promotions.size() >= ctx.maxPagesPerEpoch)
            break;
        const HostId target = counts_.dominant(page);
        if (used[target] >= ctx.localBudgetPages)
            continue;
        plan.promotions.push_back({page, target});
        ++used[target];
    }

    // Under pressure (>90% budget), demote the coldest migrated pages.
    for (unsigned h = 0; h < ctx.numHosts; ++h) {
        if (used[h] * 10 < ctx.localBudgetPages * 9)
            continue;
        std::vector<std::uint64_t> resident;
        for (std::uint64_t page = 0; page < migrated_to.size(); ++page) {
            if (migrated_to[page] == h)
                resident.push_back(page);
        }
        std::sort(resident.begin(), resident.end(),
                  [this](std::uint64_t a, std::uint64_t b) {
                      return decayed_[a] < decayed_[b];
                  });
        const std::size_t demote_count =
            std::min<std::size_t>(resident.size(),
                                  ctx.maxPagesPerEpoch / ctx.numHosts);
        for (std::size_t i = 0; i < demote_count; ++i)
            plan.demotions.push_back(resident[i]);
    }

    // Cooling: periodically halve every counter.
    if (epochNo_ % coolingEpochs_ == 0) {
        for (auto &c : decayed_)
            c = static_cast<std::uint16_t>(c >> 1);
    }

    ++epochNo_;
    counts_.rollEpoch();
    return plan;
}

} // namespace pipm
