/**
 * @file
 * Memtis-style frequency-based migration policy (§5.1.3 scheme 3).
 *
 * Memtis [Lee et al., SOSP'23] classifies pages by decaying access
 * counters arranged in a histogram and sizes the hot set dynamically to
 * fit the fast tier. This model keeps a decaying per-page counter (halved
 * every cooling period) and, each epoch, promotes the highest-count CXL
 * pages into their dominant accessor's local DRAM until the per-host
 * budget or the per-epoch batch cap is reached — the budget-aware ranked
 * selection is exactly the dynamic hot-set threshold. Cold migrated pages
 * are demoted when a host's budget fills up.
 */

#ifndef PIPM_MIGRATION_MEMTIS_HH
#define PIPM_MIGRATION_MEMTIS_HH

#include "migration/os_policy.hh"

namespace pipm
{

/** Frequency-based promotion with decaying counters. */
class MemtisPolicy : public OsPolicy
{
  public:
    /** @param cooling_epochs halve all counters every this many epochs */
    MemtisPolicy(std::uint64_t pages, unsigned hosts,
                 unsigned cooling_epochs = 4);

    std::string name() const override { return "memtis"; }
    void recordAccess(std::uint64_t shared_idx, HostId h) override;
    EpochPlan epoch(const EpochContext &ctx,
                    const std::vector<HostId> &migrated_to) override;

  private:
    EpochCounts counts_;
    std::vector<std::uint16_t> decayed_;   ///< long-term hotness per page
    unsigned coolingEpochs_;
    std::uint32_t epochNo_ = 1;
};

} // namespace pipm

#endif // PIPM_MIGRATION_MEMTIS_HH
