#include "migration/nomad.hh"

namespace pipm
{

NomadPolicy::NomadPolicy(std::uint64_t pages, unsigned hosts)
    : counts_(pages, hosts), lastAccessEpoch_(pages, 0)
{
}

void
NomadPolicy::recordAccess(std::uint64_t shared_idx, HostId h)
{
    counts_.record(shared_idx, h);
}

EpochPlan
NomadPolicy::epoch(const EpochContext &ctx,
                   const std::vector<HostId> &migrated_to)
{
    EpochPlan plan;
    std::vector<std::uint64_t> used = ctx.usedFramesPerHost;

    for (std::uint64_t page : counts_.touched()) {
        // Second-touch recency: hot if accessed in the previous epoch
        // too, and touched more than incidentally this epoch (NUMA
        // hint faults are rate-limited).
        const bool recent = lastAccessEpoch_[page] != 0 &&
                            lastAccessEpoch_[page] == epochNo_ - 1 &&
                            counts_.total(page) >= 4;
        if (recent && migrated_to[page] == invalidHost &&
            plan.promotions.size() < ctx.maxPagesPerEpoch) {
            const HostId target = counts_.dominant(page);
            if (used[target] < ctx.localBudgetPages) {
                plan.promotions.push_back({page, target});
                ++used[target];
            }
        }
        lastAccessEpoch_[page] = epochNo_;
    }

    // Demote migrated pages unreferenced for four full epochs
    // (non-exclusive tiering keeps shadow copies, making demotion cheap
    // but not instant).
    for (std::uint64_t page = 0; page < migrated_to.size(); ++page) {
        if (migrated_to[page] == invalidHost)
            continue;
        if (lastAccessEpoch_[page] + 4 <= epochNo_ &&
            plan.demotions.size() < ctx.maxPagesPerEpoch) {
            plan.demotions.push_back(page);
        }
    }

    ++epochNo_;
    counts_.rollEpoch();
    return plan;
}

} // namespace pipm
