/**
 * @file
 * Nomad-style recency-based migration policy (§5.1.3 scheme 2).
 *
 * Nomad [Xiang et al., OSDI'24] promotes pages using the recency signal of
 * TPP-style active lists — a page touched in consecutive scan windows is
 * considered hot — and optimises the mechanism with transactional,
 * asynchronous migration. This model reproduces the *policy*: promote a
 * CXL page to its dominant accessor when it was accessed in both the
 * current and the previous epoch; demote migrated pages that have gone
 * unreferenced for two epochs. The mechanism costs (asynchronous batched
 * copies, shootdowns) are charged by the migration executor in sim/.
 */

#ifndef PIPM_MIGRATION_NOMAD_HH
#define PIPM_MIGRATION_NOMAD_HH

#include "migration/os_policy.hh"

namespace pipm
{

/** Recency-based (active-list) promotion policy. */
class NomadPolicy : public OsPolicy
{
  public:
    NomadPolicy(std::uint64_t pages, unsigned hosts);

    std::string name() const override { return "nomad"; }
    void recordAccess(std::uint64_t shared_idx, HostId h) override;
    EpochPlan epoch(const EpochContext &ctx,
                    const std::vector<HostId> &migrated_to) override;

  private:
    EpochCounts counts_;
    /** Epoch number of each page's last access (0 = never). */
    std::vector<std::uint32_t> lastAccessEpoch_;
    std::uint32_t epochNo_ = 1;
};

} // namespace pipm

#endif // PIPM_MIGRATION_NOMAD_HH
