/**
 * @file
 * Interface for OS-level (whole-page, epoch-driven) migration policies:
 * Nomad, Memtis, HeMem and the OS-skew ablation (§5.1.3).
 *
 * The kernel invokes the policy once per migration epoch (Table 2 default:
 * 10 ms, time-scaled). Between epochs the policy observes LLC-miss
 * accesses to shared pages — the accesses page migration could actually
 * improve, and a superset of what PEBS/page-table-scan sampling would
 * deliver (we are generous to the baselines by giving them exact counts).
 */

#ifndef PIPM_MIGRATION_OS_POLICY_HH
#define PIPM_MIGRATION_OS_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pipm
{

/** Static facts the policy may consult when planning an epoch. */
struct EpochContext
{
    std::uint64_t sharedPages = 0;      ///< shared heap size in pages
    unsigned numHosts = 0;
    /** Local frames available for migrated pages, per host. */
    std::uint64_t localBudgetPages = 0;
    unsigned maxPagesPerEpoch = 0;      ///< batch cap per epoch
    unsigned hotThreshold = 0;          ///< accesses/epoch deemed hot
    /** Local frames currently holding migrated pages, per host. */
    std::vector<std::uint64_t> usedFramesPerHost;
};

/** One planned promotion: shared page -> target host's local DRAM. */
struct Promotion
{
    std::uint64_t sharedIdx;
    HostId target;
};

/** The policy's plan for one epoch. */
struct EpochPlan
{
    std::vector<Promotion> promotions;
    std::vector<std::uint64_t> demotions;   ///< shared pages -> back to CXL
};

/** Base class for OS migration policies. */
class OsPolicy
{
  public:
    virtual ~OsPolicy() = default;

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Observe one LLC-miss access to a shared page.
     * @param shared_idx shared page index
     * @param h accessing host
     */
    virtual void recordAccess(std::uint64_t shared_idx, HostId h) = 0;

    /**
     * Plan the epoch that just ended.
     * @param migrated_to current placement per shared page
     *        (invalidHost = resident in CXL), indexed by shared page
     */
    virtual EpochPlan epoch(const EpochContext &ctx,
                            const std::vector<HostId> &migrated_to) = 0;
};

/**
 * Shared bookkeeping for epoch-count-based policies: per-page per-host
 * access counts for the current epoch, with a touched-page list so that
 * epoch processing is proportional to activity, not footprint.
 */
class EpochCounts
{
  public:
    EpochCounts(std::uint64_t pages, unsigned hosts)
        : hosts_(hosts),
          counts_(pages * hosts, 0),
          touchedStamp_(pages, 0)
    {
    }

    void
    record(std::uint64_t page, HostId h)
    {
        if (touchedStamp_[page] != stamp_) {
            touchedStamp_[page] = stamp_;
            touched_.push_back(page);
            for (unsigned i = 0; i < hosts_; ++i)
                counts_[page * hosts_ + i] = 0;
        }
        ++counts_[page * hosts_ + h];
    }

    /** Pages accessed at least once this epoch. */
    const std::vector<std::uint64_t> &touched() const { return touched_; }

    std::uint32_t
    count(std::uint64_t page, HostId h) const
    {
        return touchedStamp_[page] == stamp_ ? counts_[page * hosts_ + h]
                                             : 0;
    }

    std::uint32_t
    total(std::uint64_t page) const
    {
        if (touchedStamp_[page] != stamp_)
            return 0;
        std::uint32_t sum = 0;
        for (unsigned i = 0; i < hosts_; ++i)
            sum += counts_[page * hosts_ + i];
        return sum;
    }

    /** Host with the most accesses to `page` this epoch. */
    HostId
    dominant(std::uint64_t page) const
    {
        HostId best = 0;
        std::uint32_t best_count = 0;
        for (unsigned i = 0; i < hosts_; ++i) {
            const std::uint32_t c = count(page, static_cast<HostId>(i));
            if (c > best_count) {
                best_count = c;
                best = static_cast<HostId>(i);
            }
        }
        return best;
    }

    /** Start a new epoch (O(1): stamps invalidate lazily). */
    void
    rollEpoch()
    {
        ++stamp_;
        touched_.clear();
    }

  private:
    unsigned hosts_;
    std::vector<std::uint32_t> counts_;
    std::vector<std::uint32_t> touchedStamp_;
    std::uint32_t stamp_ = 1;
    std::vector<std::uint64_t> touched_;
};

} // namespace pipm

#endif // PIPM_MIGRATION_OS_POLICY_HH
