#include "migration/os_skew.hh"

#include <algorithm>

namespace pipm
{

OsSkewPolicy::OsSkewPolicy(std::uint64_t pages, unsigned hosts,
                           unsigned threshold)
    : threshold_(threshold), votes_(pages), queued_(pages, 0)
{
    (void)hosts;
}

void
OsSkewPolicy::recordAccess(std::uint64_t shared_idx, HostId h)
{
    Vote &v = votes_[shared_idx];
    if (v.counter == 0) {
        v.cand = h;
        v.counter = 1;
    } else if (v.cand == h) {
        if (v.counter < 63)
            ++v.counter;
    } else {
        --v.counter;
        if (v.counter == 0 && queued_[shared_idx] == 0) {
            queued_[shared_idx] = 2;
            drainedList_.push_back(shared_idx);
        }
        return;
    }
    if (v.cand == h && v.counter >= threshold_ &&
        queued_[shared_idx] == 0) {
        queued_[shared_idx] = 1;
        firedList_.push_back(shared_idx);
    }
}

EpochPlan
OsSkewPolicy::epoch(const EpochContext &ctx,
                    const std::vector<HostId> &migrated_to)
{
    EpochPlan plan;
    std::vector<std::uint64_t> used = ctx.usedFramesPerHost;

    for (std::uint64_t page : firedList_) {
        queued_[page] = 0;
        const Vote &v = votes_[page];
        // Still a valid promotion? The vote may have drained meanwhile.
        if (migrated_to[page] != invalidHost || v.counter < threshold_ ||
            v.cand == invalidHost) {
            continue;
        }
        if (plan.promotions.size() >= ctx.maxPagesPerEpoch)
            continue;
        if (used[v.cand] >= ctx.localBudgetPages)
            continue;
        plan.promotions.push_back({page, v.cand});
        ++used[v.cand];
    }
    firedList_.clear();

    for (std::uint64_t page : drainedList_) {
        queued_[page] = 0;
        if (migrated_to[page] == invalidHost)
            continue;
        // The vote drained since migration; demote unless the resident
        // host has re-established itself as the candidate.
        const Vote &v = votes_[page];
        const bool reclaimed =
            v.cand == migrated_to[page] && v.counter > 0;
        if (!reclaimed && plan.demotions.size() < ctx.maxPagesPerEpoch)
            plan.demotions.push_back(page);
    }
    drainedList_.clear();

    return plan;
}

} // namespace pipm
