/**
 * @file
 * OS-skew ablation (§5.1.3 scheme 5): the PIPM majority-vote migration
 * policy driving a conventional kernel whole-page migration mechanism.
 *
 * Each shared page carries a Boyer-Moore candidate/counter pair updated on
 * every observed access, exactly like PIPM's global remapping entry
 * (§4.2). A page is promoted when one host out-accesses all others
 * combined by the migration threshold, and demoted when the counter drains
 * back to zero after migration — but promotion and demotion are executed
 * as OS page migrations (page-table updates, TLB shootdowns, 4 KB copies)
 * at epoch boundaries, isolating the value of the policy from the value of
 * the hardware mechanism.
 */

#ifndef PIPM_MIGRATION_OS_SKEW_HH
#define PIPM_MIGRATION_OS_SKEW_HH

#include "migration/os_policy.hh"

namespace pipm
{

/** PIPM's vote policy on the OS mechanism. */
class OsSkewPolicy : public OsPolicy
{
  public:
    /** @param threshold the majority-vote firing threshold */
    OsSkewPolicy(std::uint64_t pages, unsigned hosts, unsigned threshold);

    std::string name() const override { return "os-skew"; }
    void recordAccess(std::uint64_t shared_idx, HostId h) override;
    EpochPlan epoch(const EpochContext &ctx,
                    const std::vector<HostId> &migrated_to) override;

  private:
    struct Vote
    {
        HostId cand = invalidHost;
        std::uint8_t counter = 0;
    };

    unsigned threshold_;
    std::vector<Vote> votes_;
    /** Pages whose vote fired since the last epoch (dedup by flag). */
    std::vector<std::uint64_t> firedList_;
    std::vector<std::uint64_t> drainedList_;
    std::vector<std::uint8_t> queued_;   ///< 1=fired queued, 2=drain queued
};

} // namespace pipm

#endif // PIPM_MIGRATION_OS_SKEW_HH
