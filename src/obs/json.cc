#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pipm
{

std::string
jsonNumber(double v)
{
    // std::to_chars produces the shortest string that round-trips and is
    // locale-independent; exactly what a byte-deterministic export needs.
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::number)
        return 0;
    std::uint64_t v = 0;
    const auto res =
        std::from_chars(raw.data(), raw.data() + raw.size(), v);
    if (res.ec != std::errc())
        return static_cast<std::uint64_t>(num);
    return v;
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s_(text), error_(error)
    {
    }

    std::unique_ptr<JsonValue>
    parse()
    {
        auto v = std::make_unique<JsonValue>();
        if (!value(*v))
            return nullptr;
        skipWs();
        if (pos_ != s_.size()) {
            fail("trailing characters after document");
            return nullptr;
        }
        return v;
    }

  private:
    void
    fail(const char *msg)
    {
        if (error_ && error_->empty()) {
            char buf[128];
            std::snprintf(buf, sizeof buf, "json: %s at offset %zu", msg,
                          pos_);
            *error_ = buf;
        }
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0) {
            fail("bad literal");
            return false;
        }
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"') {
            fail("expected string");
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                fail("truncated escape");
                return false;
            }
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return false;
                    }
                }
                // The exporter only emits \u00xx control escapes; decode
                // the Latin-1 range and refuse the rest rather than
                // mis-decoding surrogate pairs.
                if (code > 0xff) {
                    fail("unsupported \\u escape above 0xff");
                    return false;
                }
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("bad escape character");
                return false;
            }
        }
        if (pos_ >= s_.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos_;   // closing quote
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::string;
            return string(out.raw);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::boolean;
            out.boolVal = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::boolean;
            out.boolVal = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::null;
            return literal("null");
        }
        return number(out);
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '-' || s_[pos_] == '+')) {
            digits = digits ||
                     std::isdigit(static_cast<unsigned char>(s_[pos_]));
            ++pos_;
        }
        if (!digits) {
            fail("expected number");
            return false;
        }
        out.kind = JsonValue::Kind::number;
        out.raw = s_.substr(start, pos_ - start);
        out.num = std::strtod(out.raw.c_str(), nullptr);
        return true;
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::array;
        ++pos_;   // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (pos_ >= s_.size()) {
                fail("unterminated array");
                return false;
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::object;
        ++pos_;   // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                fail("expected ':'");
                return false;
            }
            ++pos_;
            JsonValue member;
            if (!value(member))
                return false;
            out.obj.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= s_.size()) {
                fail("unterminated object");
                return false;
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    const std::string &s_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::unique_ptr<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parse();
}

} // namespace pipm
