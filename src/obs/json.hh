/**
 * @file
 * Minimal JSON support for the observability layer: a deterministic
 * writer (locale-free number formatting via std::to_chars, fixed field
 * order decided by the caller) and a small recursive-descent parser used
 * by the schema validator, the obs_report harness and the tests.
 *
 * This is not a general-purpose JSON library: objects preserve insertion
 * order (the exporter's determinism contract), numbers keep their raw
 * source text so integer counters survive a round trip exactly, and the
 * parser rejects anything it does not understand instead of guessing.
 */

#ifndef PIPM_OBS_JSON_HH
#define PIPM_OBS_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pipm
{

/** Render a double deterministically (shortest round-trip, no locale). */
std::string jsonNumber(double v);

/** Escape and quote a string for JSON output. */
std::string jsonQuote(const std::string &s);

/** A parsed JSON value. Objects keep their key order. */
struct JsonValue
{
    enum class Kind { null, boolean, number, string, array, object };

    Kind kind = Kind::null;
    bool boolVal = false;
    double num = 0.0;
    std::string raw;    ///< number: original source text; string: value
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::null; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }
    bool isArray() const { return kind == Kind::array; }
    bool isObject() const { return kind == Kind::object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Number as u64, parsed from the raw text (exact for counters). */
    std::uint64_t asU64() const;
};

/**
 * Parse a complete JSON document.
 * @param error set to a one-line diagnostic on failure
 * @return parsed value, or nullptr on failure
 */
std::unique_ptr<JsonValue> parseJson(const std::string &text,
                                     std::string *error = nullptr);

} // namespace pipm

#endif // PIPM_OBS_JSON_HH
