#include "obs/metrics_registry.hh"

#include "common/logging.hh"

namespace pipm
{

void
MetricsRegistry::addGroup(const StatGroup &group, const std::string &prefix)
{
    panic_if(begun_, "MetricsRegistry: addGroup after begin()");
    const std::string base = prefix + group.name() + ".";
    group.forEachCounter([&](const std::string &name, const Counter &c) {
        schema_.counters.push_back(base + name);
        counters_.push_back({&c});
    });
    group.forEachAverage([&](const std::string &name, const Average &a) {
        schema_.averages.push_back(base + name);
        averages_.push_back({&a});
    });
    // Histograms are exported once at end of run (via StatGroup::dump and
    // the totals section), not per interval: their per-interval delta is
    // rarely meaningful and would multiply the schema size.
}

void
MetricsRegistry::begin()
{
    lastCounters_.resize(counters_.size());
    lastAvgSums_.resize(averages_.size());
    lastAvgCounts_.resize(averages_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i)
        lastCounters_[i] = counters_[i].stat->value();
    for (std::size_t i = 0; i < averages_.size(); ++i) {
        lastAvgSums_[i] = averages_[i].stat->sum();
        lastAvgCounts_[i] = averages_[i].stat->count();
    }
    lastAccess_ = 0;
    begun_ = true;
    intervals_.clear();
}

void
MetricsRegistry::closeInterval(std::uint64_t end_access, Cycles end_cycle)
{
    panic_if(!begun_, "MetricsRegistry: closeInterval before begin()");
    if (end_access == lastAccess_ && !intervals_.empty())
        return;

    IntervalSample s;
    s.startAccess = lastAccess_;
    s.endAccess = end_access;
    s.endCycle = end_cycle;
    s.counterDeltas.resize(counters_.size());
    s.averageMeans.resize(averages_.size());

    for (std::size_t i = 0; i < counters_.size(); ++i) {
        const std::uint64_t now = counters_[i].stat->value();
        s.counterDeltas[i] = now - lastCounters_[i];
        lastCounters_[i] = now;
    }
    for (std::size_t i = 0; i < averages_.size(); ++i) {
        const double sum = averages_[i].stat->sum();
        const std::uint64_t count = averages_[i].stat->count();
        const std::uint64_t dn = count - lastAvgCounts_[i];
        s.averageMeans[i] = dn ? (sum - lastAvgSums_[i]) / double(dn) : 0.0;
        lastAvgSums_[i] = sum;
        lastAvgCounts_[i] = count;
    }

    lastAccess_ = end_access;
    intervals_.push_back(std::move(s));
}

std::uint64_t
MetricsRegistry::counterTotal(const std::string &name) const
{
    for (std::size_t i = 0; i < schema_.counters.size(); ++i) {
        if (schema_.counters[i] != name)
            continue;
        std::uint64_t total = 0;
        for (const IntervalSample &s : intervals_)
            total += s.counterDeltas[i];
        return total;
    }
    return 0;
}

} // namespace pipm
