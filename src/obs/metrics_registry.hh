/**
 * @file
 * MetricsRegistry: per-interval snapshots of every registered StatGroup
 * (DESIGN.md §10).
 *
 * The runner registers each component's StatGroup once (addGroup), calls
 * begin() at the measurement boundary — immediately after resetStats(),
 * so the baseline snapshot is all zeros — and closeInterval() every N
 * measured accesses plus once at the end of the run. Each interval
 * records the *delta* of every counter and the per-interval mean of
 * every average since the previous snapshot, so summing a counter column
 * across intervals reproduces the end-of-run total exactly; this is the
 * invariant the stats.json validator enforces against RunResult.
 *
 * Snapshot cost is a linear walk of all registered stats (a few hundred
 * loads), paid once per interval, never per access. When no stats export
 * is requested the runner simply never constructs a registry.
 */

#ifndef PIPM_OBS_METRICS_REGISTRY_HH
#define PIPM_OBS_METRICS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** Flattened "group.stat" name lists, shared by every interval. */
struct MetricsSchema
{
    std::vector<std::string> counters;
    std::vector<std::string> averages;
};

/** One closed interval: [startAccess, endAccess) measured accesses. */
struct IntervalSample
{
    std::uint64_t startAccess = 0;
    std::uint64_t endAccess = 0;
    Cycles endCycle = 0;
    /** Counter deltas, parallel to MetricsSchema::counters. */
    std::vector<std::uint64_t> counterDeltas;
    /** In-interval means (delta sum / delta count; 0 when no samples),
     *  parallel to MetricsSchema::averages. */
    std::vector<double> averageMeans;
};

class MetricsRegistry
{
  public:
    /**
     * Register a group. All groups must be added before begin().
     * @param prefix disambiguates per-host groups whose StatGroup names
     *        repeat ("cache", "link", ...): flattened stat names become
     *        "<prefix><group>.<stat>", e.g. "host0.link.crc_errors".
     */
    void addGroup(const StatGroup &group, const std::string &prefix = "");

    /** Snapshot the zero baseline; call right after resetStats(). */
    void begin();

    /**
     * Close the interval ending at `end_access` measured accesses.
     * Zero-length intervals (same end_access as the previous close) are
     * ignored so the final flush never emits an empty duplicate.
     */
    void closeInterval(std::uint64_t end_access, Cycles end_cycle);

    const MetricsSchema &schema() const { return schema_; }
    const std::vector<IntervalSample> &intervals() const
    {
        return intervals_;
    }

    /**
     * Sum of one counter column across all intervals (== its end-of-run
     * value by construction). Returns 0 for unknown names.
     */
    std::uint64_t counterTotal(const std::string &name) const;

  private:
    struct CounterRef { const Counter *stat; };
    struct AverageRef { const Average *stat; };

    MetricsSchema schema_;
    std::vector<CounterRef> counters_;
    std::vector<AverageRef> averages_;

    // Previous snapshot, parallel to the refs above.
    std::vector<std::uint64_t> lastCounters_;
    std::vector<double> lastAvgSums_;
    std::vector<std::uint64_t> lastAvgCounts_;

    std::uint64_t lastAccess_ = 0;
    bool begun_ = false;
    std::vector<IntervalSample> intervals_;
};

} // namespace pipm

#endif // PIPM_OBS_METRICS_REGISTRY_HH
