#include "obs/stats_json.hh"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "obs/json.hh"

#ifndef PIPM_GIT_DESCRIBE
#define PIPM_GIT_DESCRIBE "unknown"
#endif

namespace pipm
{

namespace
{

/** The fixed "totals" field order; also the validator's required set. */
struct TotalField
{
    const char *name;
    bool isInteger;
};

constexpr TotalField kTotalFields[] = {
    {"exec_cycles", true},
    {"instructions", true},
    {"ipc", false},
    {"shared_accesses", true},
    {"shared_llc_misses", true},
    {"local_served_misses", true},
    {"cxl_served_misses", true},
    {"inter_host_accesses", true},
    {"inter_host_stall_cycles", true},
    {"mgmt_stall_cycles", true},
    {"migration_transfer_bytes", true},
    {"os_migrations", true},
    {"os_demotions", true},
    {"pipm_promotions", true},
    {"pipm_revocations", true},
    {"pipm_lines_in", true},
    {"pipm_lines_back", true},
    {"harmful_migrations", true},
    {"total_tracked_migrations", true},
    {"link_crc_errors", true},
    {"link_retrain_events", true},
    {"poison_events", true},
    {"degraded_accesses", true},
    {"migration_aborts", true},
    {"migrations_deferred", true},
    {"host_crashes", true},
    {"host_rejoins", true},
    {"crash_lines_reclaimed", true},
    {"crash_dirty_lines_lost", true},
    {"crash_recovery_cycles", true},
    {"page_footprint_frac", false},
    {"line_footprint_frac", false},
    {"local_hit_rate", false},
    {"harmful_fraction", false},
};

/** Totals field values in kTotalFields order. */
std::vector<std::string>
totalValues(const RunResult &r)
{
    std::vector<std::string> v;
    v.reserve(std::size(kTotalFields));
    auto u = [&](std::uint64_t x) { v.push_back(std::to_string(x)); };
    auto d = [&](double x) { v.push_back(jsonNumber(x)); };
    u(r.execCycles);
    u(r.instructions);
    d(r.ipc);
    u(r.sharedAccesses);
    u(r.sharedLlcMisses);
    u(r.localServedMisses);
    u(r.cxlServedMisses);
    u(r.interHostAccesses);
    u(r.interHostStallCycles);
    u(r.mgmtStallCycles);
    u(r.migrationTransferBytes);
    u(r.osMigrations);
    u(r.osDemotions);
    u(r.pipmPromotions);
    u(r.pipmRevocations);
    u(r.pipmLinesIn);
    u(r.pipmLinesBack);
    u(r.harmfulMigrations);
    u(r.totalTrackedMigrations);
    u(r.linkCrcErrors);
    u(r.linkRetrainEvents);
    u(r.poisonEvents);
    u(r.degradedAccesses);
    u(r.migrationAborts);
    u(r.migrationsDeferred);
    u(r.hostCrashes);
    u(r.hostRejoins);
    u(r.crashLinesReclaimed);
    u(r.crashDirtyLinesLost);
    u(r.crashRecoveryCycles);
    d(r.pageFootprintFrac);
    d(r.lineFootprintFrac);
    d(r.localHitRate());
    d(r.harmfulFraction());
    return v;
}

/**
 * Accounting invariant: totals field == sum of the listed interval
 * counter columns. Columns whose subsystem was not in the run are
 * absent from the schema; the rule then degrades to "total must be 0".
 * A non-null `suffix` additionally sums every column ending in it
 * (per-host groups like hostN.link.crc_errors).
 */
struct TotalsMapping
{
    const char *total;
    std::vector<const char *> sources;
    const char *suffix;
};

const std::vector<TotalsMapping> &
totalsMappings()
{
    static const std::vector<TotalsMapping> m = {
        {"shared_accesses", {"system.shared_accesses"}, nullptr},
        {"shared_llc_misses", {"system.shared_llc_misses"}, nullptr},
        {"local_served_misses", {"system.local_served_misses"}, nullptr},
        {"cxl_served_misses", {"system.cxl_served_misses"}, nullptr},
        {"inter_host_accesses", {"system.inter_host_accesses"}, nullptr},
        {"inter_host_stall_cycles", {"system.inter_host_stall_cycles"},
         nullptr},
        {"mgmt_stall_cycles", {"system.mgmt_stall_cycles"}, nullptr},
        {"migration_transfer_bytes", {"system.migration_transfer_bytes"},
         nullptr},
        {"os_migrations", {"system.os_migrations"}, nullptr},
        {"os_demotions", {"system.os_demotions"}, nullptr},
        {"pipm_promotions", {"pipm.promotions"}, nullptr},
        {"pipm_revocations", {"pipm.revocations"}, nullptr},
        {"pipm_lines_in", {"pipm.lines_in"}, nullptr},
        {"pipm_lines_back", {"pipm.lines_back"}, nullptr},
        {"link_crc_errors", {}, ".link.crc_errors"},
        {"link_retrain_events", {"fault.retrain_events"}, nullptr},
        {"poison_events",
         {"fault.poison_transient", "fault.poison_persistent"}, nullptr},
        {"degraded_accesses", {"fault.degraded_accesses"}, nullptr},
        {"migration_aborts", {"fault.promotion_aborts", "fault.line_aborts"},
         nullptr},
        {"migrations_deferred", {"fault.migrations_deferred"}, nullptr},
        {"host_crashes", {"fault.host_crashes"}, nullptr},
        {"host_rejoins", {"fault.host_rejoins"}, nullptr},
        {"crash_lines_reclaimed",
         {"fault.crash_dir_swept", "fault.crash_lines_reclaimed"}, nullptr},
        {"crash_dirty_lines_lost", {"fault.crash_dirty_lines_lost"},
         nullptr},
        {"crash_recovery_cycles", {"fault.crash_recovery_cycles"}, nullptr},
    };
    return m;
}

} // namespace

std::string
gitDescribe()
{
    return PIPM_GIT_DESCRIBE;
}

std::string
renderStatsJson(const StatsJsonMeta &meta, const RunResult &r,
                const MetricsRegistry &registry, const ObsTrace *trace)
{
    std::string out;
    out.reserve(4096);
    out += "{\n";

    out += "\"schema_version\": 1,\n";

    out += "\"meta\": {";
    out += "\"workload\": " + jsonQuote(meta.workload);
    out += ", \"scheme\": " + jsonQuote(meta.scheme);
    out += ", \"seed\": " + std::to_string(meta.seed);
    out += ", \"warmup_refs_per_core\": " +
           std::to_string(meta.warmupRefsPerCore);
    out += ", \"measure_refs_per_core\": " +
           std::to_string(meta.measureRefsPerCore);
    out += ", \"interval_accesses\": " +
           std::to_string(meta.intervalAccesses);
    out += ", \"config_hash\": " + jsonQuote(meta.configHash);
    out += ", \"git_describe\": " + jsonQuote(gitDescribe());
    out += "},\n";

    out += "\"totals\": {";
    const std::vector<std::string> values = totalValues(r);
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(kTotalFields[i].name) + ": " + values[i];
    }
    out += "},\n";

    const MetricsSchema &schema = registry.schema();
    out += "\"intervals\": {\n\"counters\": [";
    for (std::size_t i = 0; i < schema.counters.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(schema.counters[i]);
    }
    out += "],\n\"averages\": [";
    for (std::size_t i = 0; i < schema.averages.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(schema.averages[i]);
    }
    out += "],\n\"samples\": [";
    const auto &intervals = registry.intervals();
    for (std::size_t s = 0; s < intervals.size(); ++s) {
        const IntervalSample &iv = intervals[s];
        out += s ? ",\n" : "\n";
        out += "{\"start_access\": " + std::to_string(iv.startAccess);
        out += ", \"end_access\": " + std::to_string(iv.endAccess);
        out += ", \"end_cycle\": " + std::to_string(iv.endCycle);
        out += ", \"counters\": [";
        for (std::size_t i = 0; i < iv.counterDeltas.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(iv.counterDeltas[i]);
        }
        out += "], \"averages\": [";
        for (std::size_t i = 0; i < iv.averageMeans.size(); ++i) {
            if (i)
                out += ", ";
            out += jsonNumber(iv.averageMeans[i]);
        }
        out += "]}";
    }
    out += "\n]\n}";

    if (trace) {
        out += ",\n\"trace\": {";
        out += "\"capacity\": " + std::to_string(trace->capacity());
        out += ", \"recorded\": " + std::to_string(trace->recorded());
        out += ", \"dropped\": " + std::to_string(trace->dropped());
        out += ", \"events\": [";
        const std::vector<ObsEvent> events = trace->snapshot();
        for (std::size_t i = 0; i < events.size(); ++i) {
            const ObsEvent &e = events[i];
            out += i ? ",\n" : "\n";
            out += "{\"cycle\": " + std::to_string(e.cycle);
            out += ", \"type\": " +
                   jsonQuote(std::string(toString(e.type)));
            out += ", \"host\": " + std::to_string(int(e.host));
            out += ", \"addr\": " + std::to_string(e.addr);
            out += ", \"aux\": " + std::to_string(e.aux);
            out += "}";
        }
        out += events.empty() ? "]" : "\n]";
        out += "}";
    }

    out += "\n}\n";
    return out;
}

bool
writeStatsJson(const std::string &path, const std::string &doc)
{
    // Atomic replace, mirroring the bench cache: readers (CI validation,
    // obs_report --file) never observe a partial document.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[obs] warning: cannot write %s\n",
                     tmp.c_str());
        return false;
    }
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "[obs] warning: cannot replace %s\n",
                     path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::vector<std::string>
validateStatsJson(const std::string &text)
{
    std::vector<std::string> errors;
    auto err = [&](const std::string &msg) { errors.push_back(msg); };

    std::string parse_error;
    const auto doc = parseJson(text, &parse_error);
    if (!doc) {
        err("not valid JSON: " + parse_error);
        return errors;
    }
    if (!doc->isObject()) {
        err("document root is not an object");
        return errors;
    }

    const JsonValue *version = doc->find("schema_version");
    if (!version || !version->isNumber() || version->asU64() != 1)
        err("schema_version missing or not 1");

    // --- meta ---------------------------------------------------------
    const JsonValue *meta = doc->find("meta");
    if (!meta || !meta->isObject()) {
        err("meta missing or not an object");
    } else {
        for (const char *key : {"workload", "scheme", "config_hash",
                                "git_describe"}) {
            const JsonValue *v = meta->find(key);
            if (!v || !v->isString())
                err(std::string("meta.") + key + " missing or not a string");
        }
        for (const char *key : {"seed", "warmup_refs_per_core",
                                "measure_refs_per_core",
                                "interval_accesses"}) {
            const JsonValue *v = meta->find(key);
            if (!v || !v->isNumber())
                err(std::string("meta.") + key + " missing or not a number");
        }
        const JsonValue *hash = meta->find("config_hash");
        if (hash && hash->isString()) {
            bool hex = hash->raw.size() == 16;
            for (char c : hash->raw)
                hex = hex && std::isxdigit(static_cast<unsigned char>(c));
            if (!hex)
                err("meta.config_hash is not 16 hex characters");
        }
        const JsonValue *interval = meta->find("interval_accesses");
        if (interval && interval->isNumber() && interval->asU64() == 0)
            err("meta.interval_accesses must be positive");
    }

    // --- totals -------------------------------------------------------
    const JsonValue *totals = doc->find("totals");
    if (!totals || !totals->isObject()) {
        err("totals missing or not an object");
        return errors;
    }
    for (const TotalField &f : kTotalFields) {
        const JsonValue *v = totals->find(f.name);
        if (!v || !v->isNumber())
            err(std::string("totals.") + f.name +
                " missing or not a number");
    }

    // --- intervals ----------------------------------------------------
    const JsonValue *intervals = doc->find("intervals");
    if (!intervals || !intervals->isObject()) {
        err("intervals missing or not an object");
        return errors;
    }
    const JsonValue *counters = intervals->find("counters");
    const JsonValue *averages = intervals->find("averages");
    const JsonValue *samples = intervals->find("samples");
    if (!counters || !counters->isArray()) {
        err("intervals.counters missing or not an array");
        return errors;
    }
    if (!averages || !averages->isArray()) {
        err("intervals.averages missing or not an array");
        return errors;
    }
    if (!samples || !samples->isArray()) {
        err("intervals.samples missing or not an array");
        return errors;
    }
    for (const JsonValue &name : counters->arr)
        if (!name.isString())
            err("intervals.counters contains a non-string name");
    for (const JsonValue &name : averages->arr)
        if (!name.isString())
            err("intervals.averages contains a non-string name");

    std::uint64_t prev_end = 0;
    Cycles prev_cycle = 0;
    for (std::size_t s = 0; s < samples->arr.size(); ++s) {
        const JsonValue &sample = samples->arr[s];
        const std::string where =
            "intervals.samples[" + std::to_string(s) + "]";
        if (!sample.isObject()) {
            err(where + " is not an object");
            continue;
        }
        const JsonValue *start = sample.find("start_access");
        const JsonValue *end = sample.find("end_access");
        const JsonValue *cycle = sample.find("end_cycle");
        const JsonValue *cdeltas = sample.find("counters");
        const JsonValue *ameans = sample.find("averages");
        if (!start || !start->isNumber() || !end || !end->isNumber() ||
            !cycle || !cycle->isNumber()) {
            err(where + " missing start_access/end_access/end_cycle");
            continue;
        }
        if (start->asU64() != prev_end)
            err(where + " does not start where the previous one ended");
        if (end->asU64() <= start->asU64())
            err(where + " is empty or goes backwards");
        if (cycle->asU64() < prev_cycle)
            err(where + " end_cycle goes backwards");
        prev_end = end->asU64();
        prev_cycle = cycle->asU64();
        if (!cdeltas || !cdeltas->isArray() ||
            cdeltas->arr.size() != counters->arr.size())
            err(where + ".counters length mismatches the schema");
        if (!ameans || !ameans->isArray() ||
            ameans->arr.size() != averages->arr.size())
            err(where + ".averages length mismatches the schema");
    }

    // --- accounting: interval sums == totals --------------------------
    auto columnSum = [&](const std::string &name,
                         bool *found) -> std::uint64_t {
        *found = false;
        for (std::size_t i = 0; i < counters->arr.size(); ++i) {
            if (counters->arr[i].raw != name)
                continue;
            *found = true;
            std::uint64_t sum = 0;
            for (const JsonValue &sample : samples->arr) {
                const JsonValue *cdeltas = sample.find("counters");
                if (cdeltas && cdeltas->isArray() &&
                    i < cdeltas->arr.size())
                    sum += cdeltas->arr[i].asU64();
            }
            return sum;
        }
        return 0;
    };

    for (const TotalsMapping &m : totalsMappings()) {
        const JsonValue *total = totals->find(m.total);
        if (!total || !total->isNumber())
            continue;   // already reported above
        std::uint64_t sum = 0;
        bool any = false;
        for (const char *src : m.sources) {
            bool found = false;
            sum += columnSum(src, &found);
            any = any || found;
        }
        if (m.suffix) {
            const std::size_t n = std::strlen(m.suffix);
            for (const JsonValue &name : counters->arr) {
                if (name.raw.size() < n ||
                    name.raw.compare(name.raw.size() - n, n, m.suffix) != 0)
                    continue;
                bool found = false;
                sum += columnSum(name.raw, &found);
                any = any || found;
            }
        }
        if (!any) {
            if (total->asU64() != 0)
                err(std::string("totals.") + m.total +
                    " is nonzero but no interval column produces it");
            continue;
        }
        if (sum != total->asU64())
            err(std::string("totals.") + m.total + " (" +
                std::to_string(total->asU64()) +
                ") != sum of interval deltas (" + std::to_string(sum) +
                ")");
    }

    // --- trace (optional) ---------------------------------------------
    if (const JsonValue *trace = doc->find("trace")) {
        if (!trace->isObject()) {
            err("trace is not an object");
            return errors;
        }
        const JsonValue *capacity = trace->find("capacity");
        const JsonValue *recorded = trace->find("recorded");
        const JsonValue *dropped = trace->find("dropped");
        const JsonValue *events = trace->find("events");
        if (!capacity || !capacity->isNumber() || !recorded ||
            !recorded->isNumber() || !dropped || !dropped->isNumber() ||
            !events || !events->isArray()) {
            err("trace missing capacity/recorded/dropped/events");
            return errors;
        }
        if (recorded->asU64() != events->arr.size() + dropped->asU64())
            err("trace.recorded != events + dropped");
        if (events->arr.size() > capacity->asU64())
            err("trace holds more events than its capacity");
        for (std::size_t i = 0; i < events->arr.size(); ++i) {
            const JsonValue &e = events->arr[i];
            const std::string where =
                "trace.events[" + std::to_string(i) + "]";
            if (!e.isObject()) {
                err(where + " is not an object");
                continue;
            }
            for (const char *key : {"cycle", "host", "addr", "aux"}) {
                const JsonValue *v = e.find(key);
                if (!v || !v->isNumber())
                    err(where + "." + key + " missing or not a number");
            }
            const JsonValue *type = e.find("type");
            if (!type || !type->isString())
                err(where + ".type missing or not a string");
        }
    }

    return errors;
}

} // namespace pipm
