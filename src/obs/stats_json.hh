/**
 * @file
 * stats.json: the deterministic machine-readable export of one run
 * (DESIGN.md §10).
 *
 * Schema (version 1):
 *
 *   {
 *     "schema_version": 1,
 *     "meta": { workload, scheme, seed, warmup_refs_per_core,
 *               measure_refs_per_core, interval_accesses,
 *               config_hash, git_describe },
 *     "totals": { every RunResult measurement field, snake_case },
 *     "intervals": {
 *       "counters": ["system.shared_accesses", ...],
 *       "averages": ["system.avg_shared_miss_latency", ...],
 *       "samples": [ { "start_access", "end_access", "end_cycle",
 *                      "counters": [deltas...],
 *                      "averages": [in-interval means...] }, ... ]
 *     },
 *     "trace": { "capacity", "recorded", "dropped",
 *                "events": [ { "cycle", "type", "host", "addr",
 *                              "aux" }, ... ] }      // when tracing
 *   }
 *
 * Output is byte-deterministic: fixed field order, std::to_chars number
 * formatting, no timestamps. git_describe is the only field that varies
 * across commits of this repository; everything else is a function of
 * (config, scheme, workload, run lengths, seed).
 *
 * The validator checks structure AND accounting: summing an interval
 * counter column must reproduce the corresponding RunResult total
 * exactly (the MetricsRegistry delta invariant), and when a column's
 * producing subsystem was absent the total must be zero.
 */

#ifndef PIPM_OBS_STATS_JSON_HH
#define PIPM_OBS_STATS_JSON_HH

#include <string>
#include <vector>

#include "obs/metrics_registry.hh"
#include "obs/trace.hh"
#include "sim/runner.hh"

namespace pipm
{

/** Run metadata recorded in the "meta" section. */
struct StatsJsonMeta
{
    std::string workload;
    std::string scheme;
    std::uint64_t seed = 0;
    std::uint64_t warmupRefsPerCore = 0;
    std::uint64_t measureRefsPerCore = 0;
    std::uint64_t intervalAccesses = 0;
    std::string configHash;     ///< fnv1aHex(cfg.measurementKey())
};

/** The compiled-in `git describe` string ("unknown" outside a repo). */
std::string gitDescribe();

/** Render the full stats.json document (ends with a newline). */
std::string renderStatsJson(const StatsJsonMeta &meta, const RunResult &r,
                            const MetricsRegistry &registry,
                            const ObsTrace *trace);

/**
 * Write `doc` to `path` atomically (temp file + rename).
 * @return whether the write succeeded (failure warns on stderr)
 */
bool writeStatsJson(const std::string &path, const std::string &doc);

/**
 * Validate a stats.json document against the schema and the accounting
 * invariants. @return one message per violation; empty when valid.
 */
std::vector<std::string> validateStatsJson(const std::string &text);

} // namespace pipm

#endif // PIPM_OBS_STATS_JSON_HH
