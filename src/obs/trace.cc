#include "obs/trace.hh"

namespace pipm
{

std::string_view
toString(ObsEventType t)
{
    switch (t) {
      case ObsEventType::promotion: return "promotion";
      case ObsEventType::promotionSuppressed: return "promotion_suppressed";
      case ObsEventType::promotionAbort: return "promotion_abort";
      case ObsEventType::revocation: return "revocation";
      case ObsEventType::lineAbort: return "line_abort";
      case ObsEventType::osMigration: return "os_migration";
      case ObsEventType::osDemotion: return "os_demotion";
      case ObsEventType::dirAllocate: return "dir_allocate";
      case ObsEventType::dirDeallocate: return "dir_deallocate";
      case ObsEventType::dirTransition: return "dir_transition";
      case ObsEventType::retrainWindow: return "retrain_window";
      case ObsEventType::poisonTransient: return "poison_transient";
      case ObsEventType::poisonPersistent: return "poison_persistent";
      case ObsEventType::backoffArmed: return "backoff_armed";
      case ObsEventType::hostCrash: return "host_crash";
      case ObsEventType::hostRejoin: return "host_rejoin";
      case ObsEventType::hostSuspected: return "host_suspected";
      case ObsEventType::hostFenced: return "host_fenced";
      case ObsEventType::fencedRequest: return "fenced_request";
      case ObsEventType::txnRetry: return "txn_retry";
      case ObsEventType::stallWindow: return "stall_window";
      case ObsEventType::metaCorruption: return "meta_corruption";
      case ObsEventType::scrubRepair: return "scrub_repair";
      case ObsEventType::scrubUnrepairable: return "scrub_unrepairable";
      case ObsEventType::journalReplay: return "journal_replay";
      case ObsEventType::breakerTrip: return "breaker_trip";
      case ObsEventType::breakerHalfOpen: return "breaker_half_open";
    }
    return "unknown";
}

} // namespace pipm
