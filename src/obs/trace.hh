/**
 * @file
 * ObsTrace: a fixed-capacity ring-buffer event trace for the
 * observability layer (DESIGN.md §10).
 *
 * Producers (system, device directory, fault injector) hold a raw
 * `ObsTrace *` that is nullptr when tracing is off, so the hot-path cost
 * of a disabled trace is one pointer test that the branch predictor
 * learns immediately. Compiling with -DPIPM_OBS_NO_TRACE removes even
 * that: record() becomes an empty inline and the producers' null checks
 * fold away.
 *
 * When the ring wraps, the oldest events are overwritten and a dropped
 * counter keeps the total honest; snapshot() returns the surviving
 * events oldest-first. Directory state transitions are traced only for
 * explicitly watched lines (watchLine) — tracing every line of every
 * access would be its own bandwidth problem.
 */

#ifndef PIPM_OBS_TRACE_HH
#define PIPM_OBS_TRACE_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace pipm
{

/** What happened. Values are stable: they appear in stats.json. */
enum class ObsEventType : std::uint8_t
{
    promotion,            ///< vote promoted a page to `host` (addr = page)
    promotionSuppressed,  ///< vote won but backoff deferred it (host = voter)
    promotionAbort,       ///< fault aborted a promotion (host = would-be owner)
    revocation,           ///< page revoked from `host` (aux = lines back)
    lineAbort,            ///< case-1 line migration aborted (aux = line index)
    osMigration,          ///< OS promoted page to `host` (aux = new frame)
    osDemotion,           ///< OS demoted page from `host` (aux = new frame)
    dirAllocate,          ///< watched line: entry allocated (aux = state)
    dirDeallocate,        ///< watched line: entry dropped (aux = old state)
    dirTransition,        ///< watched line: state change (aux = old<<8 | new)
    retrainWindow,        ///< host's link retrain opened (aux = stall cycles)
    poisonTransient,      ///< transient poison hit by `host` (addr = line)
    poisonPersistent,     ///< persistent poison found by `host` (addr = line)
    backoffArmed,         ///< link-error backoff armed (aux = new exponent)
    hostCrash,            ///< fail-stop crash of `host` (aux = old epoch)
    hostRejoin,           ///< cold rejoin of `host` (aux = old epoch)
    hostSuspected,        ///< lease of `host` expired (aux = epoch)
    hostFenced,           ///< false suspicion: alive `host` fenced (aux = epoch)
    fencedRequest,        ///< zombie `host`'s stale request NACKed
    txnRetry,             ///< transaction retry by `host` (aux = attempt)
    stallWindow,          ///< gray-failure stall of `host` (aux = cycles left)
    metaCorruption,       ///< metadata corrupted (aux = 1 if shadow hit)
    scrubRepair,          ///< scrubber rebuilt a quarantined entry
    scrubUnrepairable,    ///< shadow hit: degraded fallback / force-reclaim
    journalReplay,        ///< remap entry replayed from the redo journal
    breakerTrip,          ///< migration breaker opened (addr = group base)
    breakerHalfOpen,      ///< migration breaker half-opened after cool-down
};

/** Stable lowercase name used in stats.json and reports. */
std::string_view toString(ObsEventType t);

/** One trace record. 24 bytes; the ring is a flat vector of these. */
struct ObsEvent
{
    Cycles cycle = 0;        ///< device clock when recorded
    PhysAddr addr = 0;       ///< page or line address (0 if n/a)
    std::uint32_t aux = 0;   ///< event-specific payload (see ObsEventType)
    ObsEventType type = ObsEventType::promotion;
    HostId host = 0;         ///< initiating host (0xff when none)
};

class ObsTrace
{
  public:
    explicit ObsTrace(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
        ring_.reserve(capacity_);
    }

#ifdef PIPM_OBS_NO_TRACE
    void
    record(ObsEventType, Cycles, PhysAddr, HostId, std::uint32_t = 0)
    {
    }
#else
    void
    record(ObsEventType type, Cycles cycle, PhysAddr addr, HostId host,
           std::uint32_t aux = 0)
    {
        if (ring_.size() < capacity_) {
            ring_.push_back(ObsEvent{cycle, addr, aux, type, host});
        } else {
            if (head_ == capacity_)
                head_ = 0;
            ring_[head_++] = ObsEvent{cycle, addr, aux, type, host};
            ++dropped_;
        }
        ++recorded_;
    }
#endif

    /** Watch a line (and implicitly its page) for directory tracing. */
    void watchLine(PhysAddr line) { watched_.insert(line); }

    bool
    lineWatched(PhysAddr line) const
    {
        return !watched_.empty() && watched_.contains(line);
    }

    /** Events still in the ring, oldest first. */
    std::vector<ObsEvent>
    snapshot() const
    {
        std::vector<ObsEvent> out;
        out.reserve(ring_.size());
        // Once full, head_ points at the oldest surviving event.
        const std::size_t start = ring_.size() < capacity_
                                      ? 0
                                      : (head_ == capacity_ ? 0 : head_);
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(start + i) % ring_.size()]);
        return out;
    }

    std::size_t capacity() const { return capacity_; }
    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const { return dropped_; }

    void
    reset()
    {
        ring_.clear();
        head_ = 0;
        recorded_ = 0;
        dropped_ = 0;
    }

  private:
    std::size_t capacity_;
    std::vector<ObsEvent> ring_;
    std::size_t head_ = 0;           ///< next overwrite slot once full
    std::uint64_t recorded_ = 0;     ///< total record() calls
    std::uint64_t dropped_ = 0;      ///< records that overwrote an event
    FlatSet<PhysAddr> watched_;
};

} // namespace pipm

#endif // PIPM_OBS_TRACE_HH
