#include "os/address_space.hh"

namespace pipm
{

AddressSpace::AddressSpace(const SystemConfig &cfg,
                           std::uint64_t shared_bytes,
                           std::uint64_t private_bytes_per_host)
    : cfg_(cfg),
      privateBytes_(private_bytes_per_host),
      cxlAlloc_(pageOf(cfg.cxlBase()), cfg.cxlPoolBytes() / pageBytes)
{
    const std::uint64_t shared_pages =
        (shared_bytes + pageBytes - 1) / pageBytes;
    const std::uint64_t private_pages =
        (private_bytes_per_host + pageBytes - 1) / pageBytes;
    const std::uint64_t local_pages = cfg.localBytesPerHost() / pageBytes;

    fatal_if(private_pages >= local_pages,
             "private data (", private_pages, " pages) does not fit in ",
             local_pages, " local pages");
    fatal_if(shared_pages > cfg.cxlPoolBytes() / pageBytes,
             "shared heap (", shared_pages,
             " pages) does not fit in the CXL pool");

    // Private regions occupy the first private_pages frames of each host's
    // local range; the remainder feeds the per-host migration allocator.
    localAlloc_.reserve(cfg.numHosts);
    for (unsigned h = 0; h < cfg.numHosts; ++h) {
        const PageFrame base = pageOf(cfg.localBase(static_cast<HostId>(h)));
        localAlloc_.emplace_back(base + private_pages,
                                 local_pages - private_pages);
    }
    gimIndex_.assign(static_cast<std::size_t>(cfg.numHosts) * local_pages,
                     -1);

    // Shared heap: dense home frames at the bottom of the CXL pool
    // (§5.1.4: all shared data initially placed in CXL-DSM).
    shared_.resize(shared_pages);
    cxlHomeBase_ = 0;
    for (std::uint64_t i = 0; i < shared_pages; ++i) {
        auto frame = cxlAlloc_.alloc();
        panic_if(!frame, "CXL allocator exhausted during setup");
        if (i == 0)
            cxlHomeBase_ = *frame;
        shared_[i] = SharedMapping{*frame, *frame, invalidHost};
    }
}

std::optional<std::uint64_t>
AddressSpace::sharedIndexOf(PageFrame frame) const
{
    if (frame >= cxlHomeBase_ && frame < cxlHomeBase_ + shared_.size()) {
        const std::uint64_t idx = frame - cxlHomeBase_;
        // Only valid while the page actually lives in its home frame.
        if (shared_[idx].frame == frame)
            return idx;
        return std::nullopt;
    }
    if (frame < gimIndex_.size() && gimIndex_[frame] >= 0)
        return static_cast<std::uint64_t>(gimIndex_[frame]);
    return std::nullopt;
}

PhysAddr
AddressSpace::privateAddr(HostId h, std::uint64_t offset) const
{
    panic_if(offset >= privateBytes_, "private offset ", offset,
             " out of range");
    return cfg_.localBase(h) + offset;
}

bool
AddressSpace::migrateSharedToHost(std::uint64_t idx, HostId to)
{
    SharedMapping &m = shared_[idx];
    panic_if(m.gimHost == to, "page ", idx, " already on host ", int(to));
    auto frame = localAlloc_[to].alloc();
    if (!frame)
        return false;
    if (m.gimHost != invalidHost) {
        // Host-to-host move: release the old GIM frame first.
        gimIndex_[m.frame] = -1;
        localAlloc_[m.gimHost].free(m.frame);
    }
    m.frame = *frame;
    m.gimHost = to;
    gimIndex_[*frame] = static_cast<std::int64_t>(idx);
    return true;
}

void
AddressSpace::demoteSharedToCxl(std::uint64_t idx)
{
    SharedMapping &m = shared_[idx];
    panic_if(m.gimHost == invalidHost, "page ", idx, " is not migrated");
    gimIndex_[m.frame] = -1;
    localAlloc_[m.gimHost].free(m.frame);
    m.frame = m.cxlFrame;
    m.gimHost = invalidHost;
}

std::optional<PageFrame>
AddressSpace::allocPipmFrame(HostId h)
{
    return localAlloc_[h].alloc();
}

void
AddressSpace::freePipmFrame(HostId h, PageFrame f)
{
    localAlloc_[h].free(f);
}

std::uint64_t
AddressSpace::migratedFramesOn(HostId h) const
{
    return localAlloc_[h].inUse();
}

} // namespace pipm
