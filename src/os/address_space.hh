/**
 * @file
 * The unified physical address space and its OS-level management.
 *
 * Following the paper's setup (§5.1.4), each workload has two kinds of
 * data: *private* data (code, stacks, kernel structures) pinned in the
 * owning host's local DRAM, and *shared* heap data placed initially in
 * CXL-DSM. Shared pages are addressed by a dense shared-page index; the
 * AddressSpace maps indices to unified physical frames and supports the
 * whole-page migration that OS-level schemes perform (GIM remapping with
 * page-table updates), keeping the original CXL frame reserved so a
 * demotion restores the original mapping.
 *
 * Frame allocators model capacity only; they hand out frame numbers and
 * enforce the (scaled) capacities of Table 2.
 */

#ifndef PIPM_OS_ADDRESS_SPACE_HH
#define PIPM_OS_ADDRESS_SPACE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace pipm
{

/** Bump-plus-free-list allocator over a contiguous frame range. */
class FrameAllocator
{
  public:
    /** @param base first frame, @param frames number of frames */
    FrameAllocator(PageFrame base, std::uint64_t frames)
        : base_(base), frames_(frames)
    {
    }

    /** Allocate one frame; nullopt when exhausted. */
    std::optional<PageFrame>
    alloc()
    {
        if (!freeList_.empty()) {
            PageFrame f = freeList_.back();
            freeList_.pop_back();
            return f;
        }
        if (next_ < frames_)
            return base_ + next_++;
        return std::nullopt;
    }

    /** Return a frame to the pool. */
    void
    free(PageFrame f)
    {
        panic_if(f < base_ || f >= base_ + frames_,
                 "freeing frame ", f, " outside allocator range");
        freeList_.push_back(f);
    }

    std::uint64_t
    inUse() const
    {
        return next_ - freeList_.size();
    }

    std::uint64_t capacity() const { return frames_; }

  private:
    PageFrame base_;
    std::uint64_t frames_;
    std::uint64_t next_ = 0;
    std::vector<PageFrame> freeList_;
};

/** Where a shared page currently lives. */
struct SharedMapping
{
    PageFrame frame = 0;          ///< current unified frame
    PageFrame cxlFrame = 0;       ///< its reserved home frame in CXL-DSM
    HostId gimHost = invalidHost; ///< host holding it if OS-migrated
};

/**
 * System-wide address-space manager: private regions per host plus the
 * shared heap with OS-level (whole-page, GIM) migration support.
 */
class AddressSpace
{
  public:
    /**
     * @param cfg machine configuration (address map, capacities)
     * @param shared_bytes size of the shared heap (scaled footprint)
     * @param private_bytes_per_host private data pinned per host
     */
    AddressSpace(const SystemConfig &cfg, std::uint64_t shared_bytes,
                 std::uint64_t private_bytes_per_host);

    /** Number of shared heap pages. */
    std::uint64_t sharedPages() const { return shared_.size(); }

    /** Physical frame currently backing shared page `idx`. */
    PageFrame
    sharedFrame(std::uint64_t idx) const
    {
        return shared_[idx].frame;
    }

    /** Full mapping record for shared page `idx`. */
    const SharedMapping &
    sharedMapping(std::uint64_t idx) const
    {
        return shared_[idx];
    }

    /** Reverse map: shared page index of a unified frame, if any. */
    std::optional<std::uint64_t> sharedIndexOf(PageFrame frame) const;

    /** Physical address of byte `offset` within host h's private region. */
    PhysAddr privateAddr(HostId h, std::uint64_t offset) const;

    /**
     * OS whole-page migration of shared page `idx` into host `to`'s local
     * DRAM (GIM exposure). Fails (returns false) when the host's local
     * memory is exhausted. The caller charges kernel costs.
     */
    bool migrateSharedToHost(std::uint64_t idx, HostId to);

    /** OS demotion: restore shared page `idx` to its CXL home frame. */
    void demoteSharedToCxl(std::uint64_t idx);

    /**
     * Allocate a local frame on host `h` for PIPM partial migration
     * (the OS/hypervisor allocation of §4.2). nullopt when full.
     */
    std::optional<PageFrame> allocPipmFrame(HostId h);

    /** Release a PIPM frame (partial-migration revocation). */
    void freePipmFrame(HostId h, PageFrame f);

    /** Frames of host h's local DRAM currently used for migrated data. */
    std::uint64_t migratedFramesOn(HostId h) const;

    /** Bytes of private data pinned on each host. */
    std::uint64_t privateBytesPerHost() const { return privateBytes_; }

    const SystemConfig &config() const { return cfg_; }

  private:
    SystemConfig cfg_;
    std::uint64_t privateBytes_;
    std::vector<SharedMapping> shared_;
    std::vector<FrameAllocator> localAlloc_;   ///< per host, after private
    FrameAllocator cxlAlloc_;
    /** frame -> shared index for frames outside the CXL home range. */
    std::vector<std::int64_t> gimIndex_;       ///< per local frame, -1 none
    std::uint64_t cxlHomeBase_;                ///< first shared home frame
};

} // namespace pipm

#endif // PIPM_OS_ADDRESS_SPACE_HH
