/**
 * @file
 * Per-core TLB model with shootdown support.
 *
 * The paper's multi-host migration overheads are dominated by page-table
 * updates and TLB shootdowns (§3.1). The simulator charges those as the
 * calibrated lump costs of §5.1.4 (20 us / 5 us per page); this module
 * additionally makes the *refill* cost emergent: when enabled
 * (SystemConfig::modelTlb), every demand access translates through a
 * per-core TLB, misses pay a page-walk charge, and OS page migrations
 * shoot the remapped page out of every core's TLB so the next access at
 * each core re-walks.
 *
 * The TLB is keyed by a flat virtual-page id: shared pages use their
 * shared index, private pages use a per-host disjoint range — exactly
 * the namespace the trace generators emit.
 */

#ifndef PIPM_OS_TLB_HH
#define PIPM_OS_TLB_HH

#include <cstdint>

#include "cache/set_assoc.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** TLB geometry and timing. */
struct TlbConfig
{
    unsigned entries = 1536;   ///< unified second-level TLB reach
    unsigned ways = 8;
    Cycles hitCycles = 1;      ///< pipelined translation on a hit
    /** Page-walk charge on a miss (pointer chases through the page
     *  table; partially cached, so well under 4 full DRAM accesses). */
    Cycles walkCycles = 120;
};

/** One core's TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg, std::uint64_t seed = 1)
        : cfg_(cfg),
          tags_(SetAssoc<Empty>::withCapacity(cfg.entries, cfg.ways,
                                              ReplPolicy::lru, seed)),
          stats_("tlb")
    {
        stats_.addCounter(&hits, "hits", "TLB hits");
        stats_.addCounter(&missCount, "misses", "TLB misses (walks)");
        stats_.addCounter(&shootdowns, "shootdowns",
                          "entries invalidated by shootdowns");
    }

    /**
     * Translate a virtual page.
     * @return latency charged to the access (hit or hit+walk)
     */
    Cycles
    translate(std::uint64_t vpage)
    {
        if (tags_.lookup(vpage)) {
            hits.inc();
            return cfg_.hitCycles;
        }
        missCount.inc();
        if (!tags_.probe(vpage))
            tags_.insert(vpage, Empty{});
        return cfg_.hitCycles + cfg_.walkCycles;
    }

    /** Shoot one page out (migration remap). */
    void
    shootdown(std::uint64_t vpage)
    {
        if (tags_.invalidate(vpage))
            shootdowns.inc();
    }

    /** Drop every translation (host crash/rejoin: cold TLB). */
    void flushAll() { tags_.clear(); }

    StatGroup &stats() { return stats_; }

    Counter hits;
    Counter missCount;
    Counter shootdowns;

  private:
    struct Empty
    {
    };

    TlbConfig cfg_;
    SetAssoc<Empty> tags_;
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_OS_TLB_HH
