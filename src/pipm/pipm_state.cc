#include "pipm/pipm_state.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "os/address_space.hh"

namespace pipm
{

PipmState::PipmState(const PipmConfig &cfg, unsigned num_hosts,
                     PipmMode mode, AddressSpace &space)
    : cfg_(cfg),
      numHosts_(num_hosts),
      mode_(mode),
      space_(space),
      counterMax_(static_cast<std::uint8_t>((1u << cfg.globalCounterBits) -
                                            1)),
      localCounterMax_(
          static_cast<std::uint8_t>((1u << cfg.localCounterBits) - 1)),
      local_(num_hosts),
      linesOn_(num_hosts, 0),
      corrupt_(num_hosts),
      stats_("pipm")
{
    stats_.addCounter(&promotions, "promotions",
                      "partial migrations initiated");
    stats_.addCounter(&revocations, "revocations",
                      "partial migrations revoked");
    stats_.addCounter(&linesIn, "lines_in",
                      "lines incrementally migrated into local DRAM");
    stats_.addCounter(&linesBack, "lines_back",
                      "lines migrated back to CXL memory");
    stats_.addCounter(&allocFailures, "alloc_failures",
                      "promotions skipped for lack of local frames");
    stats_.addHistogram(&revocationLines, "revocation_lines",
                        "migrated-line count of each revoked page");
}

HostId
PipmState::migratedHostOf(PageFrame cxl_page) const
{
    auto it = global_.find(cxl_page);
    return it == global_.end() ? invalidHost : it->second.curHost;
}

bool
PipmState::hasLocalEntry(HostId h, PageFrame cxl_page) const
{
    return local_[h].contains(cxl_page);
}

bool
PipmState::lineMigrated(HostId h, PageFrame cxl_page,
                        unsigned line_idx) const
{
    auto it = local_[h].find(cxl_page);
    if (it == local_[h].end())
        return false;
    return (it->second.lineBitmap >> line_idx) & 1;
}

PhysAddr
PipmState::localLineAddr(HostId h, PageFrame cxl_page,
                         unsigned line_idx) const
{
    auto it = local_[h].find(cxl_page);
    panic_if(it == local_[h].end(), "localLineAddr: page ", cxl_page,
             " has no local entry on host ", int(h));
    return pageBase(it->second.localPfn) +
           static_cast<PhysAddr>(line_idx) * lineBytes;
}

GlobalRemapEntry &
PipmState::globalEntry(PageFrame cxl_page)
{
    return global_[cxl_page];
}

std::uint64_t
PipmState::migratedPagesOn(HostId h) const
{
    return local_[h].size();
}

void
PipmState::reservePages(std::uint64_t shared_pages,
                        std::uint64_t local_pages_per_host)
{
    // The tables hold one entry per *migrated* page, which is a small
    // slice of shared memory; cap the pre-size so a large address space
    // doesn't buy cache-hostile tables (growth is amortised past it).
    constexpr std::uint64_t cap = 1u << 14;
    global_.reserve(std::min(shared_pages, cap));
    for (auto &l : local_)
        l.reserve(std::min({shared_pages, local_pages_per_host, cap}));
}

bool
PipmState::voteUpdate(GlobalRemapEntry &g, HostId requester)
{
    // Boyer-Moore majority vote (§4.2): the counter rises only while one
    // host out-accesses all others combined.
    if (g.counter == 0) {
        g.candHost = requester;
        g.counter = 1;
    } else if (g.candHost == requester) {
        if (g.counter < counterMax_)
            ++g.counter;
    } else {
        --g.counter;
    }
    return g.candHost == requester && g.counter >= cfg_.migrationThreshold;
}

bool
PipmState::installLocalEntry(HostId h, PageFrame cxl_page)
{
    auto frame = space_.allocPipmFrame(h);
    if (!frame) {
        allocFailures.inc();
        return false;
    }
    LocalRemapEntry entry;
    entry.localPfn = *frame;
    // §4.2: the local counter is initialised to the migration threshold.
    entry.counter = static_cast<std::uint8_t>(
        std::min<unsigned>(cfg_.migrationThreshold, localCounterMax_));
    entry.lineBitmap = 0;
    local_[h].emplace(cxl_page, entry);
    journalTouch(h, cxl_page);
    promotions.inc();
    return true;
}

void
PipmState::setMigrationAllowed(PageFrame cxl_page, bool allowed)
{
    if (allowed)
        migrationDisabled_.erase(cxl_page);
    else
        migrationDisabled_.insert(cxl_page);
}

bool
PipmState::migrationAllowed(PageFrame cxl_page) const
{
    return !migrationDisabled_.contains(cxl_page);
}

VoteOutcome
PipmState::deviceAccess(PageFrame cxl_page, HostId requester,
                        bool allow_promote)
{
    VoteOutcome out;
    if (!migrationAllowed(cxl_page))
        return out;
    GlobalRemapEntry &g = global_[cxl_page];

    if (mode_ == PipmMode::staticMap) {
        // HW-static: every page is permanently assigned to one host; the
        // entry materialises on that host's first device-visible access.
        const HostId target =
            static_cast<HostId>(cxl_page % numHosts_);
        if (g.curHost == invalidHost && requester == target) {
            if (!allow_promote) {
                out.suppressed = true;
                return out;
            }
            if (installLocalEntry(target, cxl_page)) {
                g.curHost = target;
                out.promoted = true;
                out.promotedTo = target;
            }
        }
        return out;
    }

    const bool fired = voteUpdate(g, requester);
    if (fired && g.curHost == invalidHost) {
        if (!allow_promote) {
            out.suppressed = true;
            return out;
        }
        if (installLocalEntry(requester, cxl_page)) {
            g.curHost = requester;
            out.promoted = true;
            out.promotedTo = requester;
        }
    }
    return out;
}

void
PipmState::localOwnerAccess(HostId h, PageFrame cxl_page)
{
    auto it = local_[h].find(cxl_page);
    if (it == local_[h].end())
        return;
    if (it->second.counter < localCounterMax_)
        ++it->second.counter;
}

InterHostOutcome
PipmState::interHostAccess(HostId h, PageFrame cxl_page)
{
    InterHostOutcome out;
    if (mode_ == PipmMode::staticMap)
        return out;   // HW-static never revokes its static mapping
    auto it = local_[h].find(cxl_page);
    if (it == local_[h].end())
        return out;
    if (it->second.counter > 0)
        --it->second.counter;
    out.revoked = it->second.counter == 0;
    return out;
}

void
PipmState::setLineMigrated(HostId h, PageFrame cxl_page, unsigned line_idx)
{
    auto it = local_[h].find(cxl_page);
    panic_if(it == local_[h].end(), "setLineMigrated without local entry");
    const std::uint64_t bit = 1ull << line_idx;
    panic_if(it->second.lineBitmap & bit, "line ", line_idx, " of page ",
             cxl_page, " already migrated");
    it->second.lineBitmap |= bit;
    ++linesOn_[h];
    journalTouch(h, cxl_page);
    linesIn.inc();
}

void
PipmState::clearLineMigrated(HostId h, PageFrame cxl_page, unsigned line_idx)
{
    auto it = local_[h].find(cxl_page);
    panic_if(it == local_[h].end(), "clearLineMigrated without local entry");
    const std::uint64_t bit = 1ull << line_idx;
    panic_if(!(it->second.lineBitmap & bit), "line ", line_idx, " of page ",
             cxl_page, " is not migrated");
    it->second.lineBitmap &= ~bit;
    --linesOn_[h];
    journalTouch(h, cxl_page);
    linesBack.inc();
}

std::uint64_t
PipmState::revoke(HostId h, PageFrame cxl_page)
{
    auto it = local_[h].find(cxl_page);
    panic_if(it == local_[h].end(), "revoking page without local entry");
    const std::uint64_t bitmap = it->second.lineBitmap;
    linesOn_[h] -= static_cast<std::uint64_t>(std::popcount(bitmap));
    linesBack.inc(static_cast<std::uint64_t>(std::popcount(bitmap)));
    revocationLines.sample(static_cast<std::uint64_t>(std::popcount(bitmap)));
    space_.freePipmFrame(h, it->second.localPfn);
    local_[h].erase(it);
    journalDrop(h, cxl_page);
    clearCorruption(h, cxl_page);

    auto git = global_.find(cxl_page);
    panic_if(git == global_.end(), "revoked page has no global entry");
    git->second.curHost = invalidHost;
    git->second.candHost = invalidHost;
    git->second.counter = 0;
    revocations.inc();
    return bitmap;
}

void
PipmState::abortPromotion(HostId h, PageFrame cxl_page)
{
    auto it = local_[h].find(cxl_page);
    panic_if(it == local_[h].end(),
             "aborting promotion of page ", cxl_page,
             " without local entry on host ", int(h));
    panic_if(it->second.lineBitmap != 0,
             "aborting promotion of page ", cxl_page,
             " after lines already migrated");
    space_.freePipmFrame(h, it->second.localPfn);
    local_[h].erase(it);
    journalDrop(h, cxl_page);
    clearCorruption(h, cxl_page);

    auto git = global_.find(cxl_page);
    panic_if(git == global_.end(),
             "aborted promotion has no global entry");
    git->second.curHost = invalidHost;
    git->second.candHost = invalidHost;
    git->second.counter = 0;
}

std::uint64_t
PipmState::crashReclaimPage(HostId h, PageFrame cxl_page)
{
    auto it = local_[h].find(cxl_page);
    panic_if(it == local_[h].end(), "crash-reclaiming page ", cxl_page,
             " without local entry on host ", int(h));
    const std::uint64_t bitmap = it->second.lineBitmap;
    linesOn_[h] -= static_cast<std::uint64_t>(std::popcount(bitmap));
    space_.freePipmFrame(h, it->second.localPfn);
    local_[h].erase(it);
    journalDrop(h, cxl_page);
    clearCorruption(h, cxl_page);

    auto git = global_.find(cxl_page);
    panic_if(git == global_.end(),
             "crash-reclaimed page has no global entry");
    git->second.curHost = invalidHost;
    git->second.candHost = invalidHost;
    git->second.counter = 0;
    return bitmap;
}

void
PipmState::clearVotesFor(HostId h)
{
    for (auto &[page, g] : global_) {
        if (g.candHost == h && g.curHost != h) {
            g.candHost = invalidHost;
            g.counter = 0;
        }
    }
}

void
PipmState::checkNoHostReferences(HostId h) const
{
    panic_if(!local_[h].empty(), "dead host ", int(h), " still has ",
             local_[h].size(), " local remap entries");
    for (const auto &[page, g] : global_) {
        panic_if(g.curHost == h, "global entry for page ", page,
                 " still names dead host ", int(h), " as curHost");
        panic_if(g.candHost == h, "global entry for page ", page,
                 " still names dead host ", int(h), " as candHost");
    }
}

bool
PipmState::corruptLocalEntry(HostId h, PageFrame cxl_page,
                             std::uint64_t bits, bool shadow_hit)
{
    if (!local_[h].contains(cxl_page) || localEntryCorrupted(h, cxl_page))
        return false;
    corrupt_[h][cxl_page] = MetaCorruption{bits, shadow_hit};
    return true;
}

const PipmState::MetaCorruption *
PipmState::corruptionOf(HostId h, PageFrame cxl_page) const
{
    const auto it = corrupt_[h].find(cxl_page);
    return it == corrupt_[h].end() ? nullptr : &it->second;
}

std::vector<std::pair<HostId, PageFrame>>
PipmState::corruptedLocalEntries() const
{
    std::vector<std::pair<HostId, PageFrame>> out;
    for (unsigned h = 0; h < numHosts_; ++h) {
        for (PageFrame page : corrupt_[h].sortedKeys())
            out.emplace_back(static_cast<HostId>(h), page);
    }
    return out;
}

std::size_t
PipmState::corruptedCount() const
{
    std::size_t n = 0;
    for (const auto &c : corrupt_)
        n += c.size();
    return n;
}

bool
PipmState::journalCovers(HostId h, PageFrame cxl_page) const
{
    return journalCap_ != 0 && journalSet_.contains(journalKey(h, cxl_page));
}

void
PipmState::journalTouch(HostId h, PageFrame cxl_page)
{
    if (journalCap_ == 0)
        return;
    const std::uint64_t key = journalKey(h, cxl_page);
    if (journalSet_.contains(key)) {
        // Refresh: move the page's records to the ring's tail.
        const auto pos =
            std::find(journalFifo_.begin(), journalFifo_.end(), key);
        journalFifo_.erase(pos);
        journalFifo_.push_back(key);
        return;
    }
    journalFifo_.push_back(key);
    journalSet_.insert(key);
    if (journalFifo_.size() > journalCap_) {
        // Ring full: the oldest page's records are overwritten.
        journalSet_.erase(journalFifo_.front());
        journalFifo_.erase(journalFifo_.begin());
    }
}

void
PipmState::journalDrop(HostId h, PageFrame cxl_page)
{
    if (journalCap_ == 0)
        return;
    const std::uint64_t key = journalKey(h, cxl_page);
    if (!journalSet_.erase(key))
        return;
    journalFifo_.erase(
        std::find(journalFifo_.begin(), journalFifo_.end(), key));
}

void
PipmState::checkRemapInvariants() const
{
    for (unsigned h = 0; h < numHosts_; ++h) {
        FlatSet<PageFrame> frames;
        std::uint64_t lines = 0;
        for (const auto &[page, entry] : local_[h]) {
            auto git = global_.find(page);
            panic_if(git == global_.end() ||
                         git->second.curHost != static_cast<HostId>(h),
                     "local entry for page ", page, " on host ", h,
                     " without a matching global curHost");
            panic_if(!frames.insert(entry.localPfn),
                     "local frame ", entry.localPfn,
                     " doubly mapped on host ", h);
            lines += static_cast<std::uint64_t>(
                std::popcount(entry.lineBitmap));
        }
        panic_if(lines != linesOn_[h], "host ", h, " line accounting: ",
                 linesOn_[h], " counted vs ", lines, " in bitmaps");
    }
    for (const auto &[page, g] : global_) {
        if (g.curHost == invalidHost)
            continue;
        panic_if(g.curHost >= numHosts_,
                 "global entry for page ", page,
                 " names out-of-range host ", int(g.curHost));
        panic_if(!local_[g.curHost].contains(page),
                 "global curHost ", int(g.curHost), " for page ", page,
                 " has no local entry (unreachable migrated page)");
    }
}

} // namespace pipm
