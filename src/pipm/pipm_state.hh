/**
 * @file
 * Authoritative PIPM remapping state: the in-memory global remapping table
 * on the CXL node, the per-host local remapping tables, and the
 * majority-vote migration policy that drives them (§4.2).
 *
 * The global table records, per CXL-DSM page: the current host ID (where
 * the page is partially migrated, if anywhere), the candidate host ID and
 * the Boyer-Moore-style global counter. The local table of each host
 * records, per page partially migrated to that host: the local page frame
 * (allocated by the OS/hypervisor), the 4-bit local counter, and — in this
 * simulator — the per-line migrated bitmap, which is the aggregate of the
 * per-line in-memory bits of §4.3.2 (one 64-bit word per 4 KB page).
 *
 * The same class also implements the HW-static ablation (§5.1.3): the
 * incremental-migration mechanism with a fixed page->host mapping instead
 * of the adaptive vote.
 */

#ifndef PIPM_PIPM_STATE_HH
#define PIPM_PIPM_STATE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

class AddressSpace;

/** Entry of the global remapping table (2 bytes in hardware). */
struct GlobalRemapEntry
{
    HostId curHost = invalidHost;    ///< 5-bit current host ID
    HostId candHost = invalidHost;   ///< 5-bit candidate host ID
    std::uint8_t counter = 0;        ///< 6-bit majority-vote counter
};

/** Entry of a host's local remapping table (4 bytes in hardware). */
struct LocalRemapEntry
{
    PageFrame localPfn = 0;          ///< 28-bit local frame
    std::uint8_t counter = 0;        ///< 4-bit local counter
    std::uint64_t lineBitmap = 0;    ///< per-line in-memory bits (64 lines)
};

/** How partial-migration destinations are chosen. */
enum class PipmMode : std::uint8_t
{
    vote,        ///< full PIPM: majority-vote promotion and revocation
    staticMap    ///< HW-static ablation: fixed page % numHosts mapping
};

/** Outcome of feeding one device-visible access into the vote. */
struct VoteOutcome
{
    bool promoted = false;           ///< a partial migration was initiated
    HostId promotedTo = invalidHost;
    /** The vote fired but promotion was suppressed (migration backoff).
     *  The counter stays at threshold, so promotion resumes naturally
     *  once the link is healthy again. */
    bool suppressed = false;
};

/** Outcome of an inter-host access touching a migrated page. */
struct InterHostOutcome
{
    bool revoked = false;            ///< local counter hit 0: revocation
};

/** The PIPM remapping state machine. */
class PipmState
{
  public:
    /**
     * @param cfg PIPM parameters (thresholds, counter widths)
     * @param num_hosts host count
     * @param mode vote (PIPM) or staticMap (HW-static)
     * @param space frame allocator for local migration frames
     */
    PipmState(const PipmConfig &cfg, unsigned num_hosts, PipmMode mode,
              AddressSpace &space);

    // ---- Queries ------------------------------------------------------

    /** Host a page is partially migrated to, or invalidHost. */
    HostId migratedHostOf(PageFrame cxl_page) const;

    /** Whether a page has a local remapping entry on host h. */
    bool hasLocalEntry(HostId h, PageFrame cxl_page) const;

    /** Whether line `line_idx` of a page is migrated into host h (I'/ME). */
    bool lineMigrated(HostId h, PageFrame cxl_page, unsigned line_idx) const;

    /** Local-DRAM address of a migrated line on host h. */
    PhysAddr localLineAddr(HostId h, PageFrame cxl_page,
                           unsigned line_idx) const;

    /** The global entry for a page (creating a default if absent). */
    GlobalRemapEntry &globalEntry(PageFrame cxl_page);

    /** Count of lines currently migrated into host h. */
    std::uint64_t migratedLinesOn(HostId h) const { return linesOn_[h]; }

    /** Count of pages with a local entry on host h. */
    std::uint64_t migratedPagesOn(HostId h) const;

    /**
     * All local remap entries of host h (crash sweep, tests). Iteration
     * order is probe order — consumers whose results depend on visit
     * order must go through sortedKeys() first.
     */
    const FlatMap<PageFrame, LocalRemapEntry> &
    localEntries(HostId h) const
    {
        return local_[h];
    }

    /**
     * Pre-size the remap tables (called once at system construction;
     * avoids rehash churn in the per-access path during warmup).
     * @param shared_pages shared-heap pages the global table may track
     * @param local_pages_per_host bound on concurrently migrated pages
     *        per host (local frames available to PIPM)
     */
    void reservePages(std::uint64_t shared_pages,
                      std::uint64_t local_pages_per_host);

    // ---- Software interface (§6) ---------------------------------------

    /**
     * Enable or disable partial migration for one page. The paper's
     * discussion (§6) proposes exposing exactly this to applications:
     * pages whose semantics make migration useless (streaming-once
     * buffers, deliberately replicated read-only data) can opt out. A
     * disabled page is never promoted; if it is currently migrated the
     * caller should revoke it first (the system layer does).
     */
    void setMigrationAllowed(PageFrame cxl_page, bool allowed);

    /** Whether the vote may promote this page. */
    bool migrationAllowed(PageFrame cxl_page) const;

    // ---- Policy events ------------------------------------------------

    /**
     * A device-visible access (LLC miss reaching the CXL node) by
     * `requester` to a page: update the majority vote and possibly
     * initiate a partial migration (vote mode), or lazily instantiate the
     * static mapping (staticMap mode).
     * @param allow_promote when false (migration backoff under link
     *        faults) the vote still updates but a firing is suppressed
     */
    VoteOutcome deviceAccess(PageFrame cxl_page, HostId requester,
                             bool allow_promote = true);

    /**
     * A local LLC-miss access by the owning host to a page migrated to it
     * (served from local memory): bump the local counter (§4.2 step 4).
     */
    void localOwnerAccess(HostId h, PageFrame cxl_page);

    /**
     * An inter-host access was forwarded to owning host h for a migrated
     * line of this page: decrement the local counter; at zero, revoke
     * (§4.2 steps 5-6). The caller must then call takeRevocation() to
     * collect the lines to move back.
     */
    InterHostOutcome interHostAccess(HostId h, PageFrame cxl_page);

    /** Mark a line migrated into h (incremental migration, case 1). */
    void setLineMigrated(HostId h, PageFrame cxl_page, unsigned line_idx);

    /** Clear a line's migrated bit (migrated back, cases 2/5/6). */
    void clearLineMigrated(HostId h, PageFrame cxl_page, unsigned line_idx);

    /**
     * Remove the local entry of a revoked page and release its frame.
     * @return bitmap of lines that must be written back to CXL memory
     */
    std::uint64_t revoke(HostId h, PageFrame cxl_page);

    /**
     * Roll back a just-initiated promotion whose setup was interrupted
     * by a fault: release the local frame, drop the local entry and
     * reset the global entry. Only legal before any line has migrated
     * (the bitmap must still be empty); afterwards the page is exactly
     * as if the vote had never fired.
     */
    void abortPromotion(HostId h, PageFrame cxl_page);

    /**
     * Reclaim one page of a crashed host (DESIGN.md §8): drop the local
     * entry, release its frame and reset the global entry. Unlike
     * revoke(), no data migrates back — the host's local DRAM contents
     * are gone, so the caller accounts the loss separately and neither
     * `revocations` nor `linesBack` is counted.
     * @return the line bitmap that was set (lines reverting to their
     *         stale CXL home copies)
     */
    std::uint64_t crashReclaimPage(HostId h, PageFrame cxl_page);

    /**
     * Drop every pending vote naming host h as the candidate (crash):
     * a dead host must not win a majority it can no longer use.
     */
    void clearVotesFor(HostId h);

    /**
     * Panic if any remap state still references host h (post-crash
     * invariant: no local entry on h, no global curHost/candHost == h).
     */
    void checkNoHostReferences(HostId h) const;

    /**
     * Check the remap-table invariants: every local entry matches a
     * global curHost (and vice versa), no local frame is doubly mapped,
     * and the per-host line accounting equals the bitmap population.
     * Panics on violation. For tests and the fault-schedule checker.
     */
    void checkRemapInvariants() const;

    // ---- Metadata fault domain (DESIGN.md §12) --------------------------
    //
    // Corruption of a local remap entry is modelled like the directory's
    // (see device_directory.hh): the entry's stored image is validated
    // against a per-entry shadow checksum on every touch, so corrupted
    // metadata is quarantined — never consumed — until the scrubber or a
    // demand access repairs it. When the checksum survives, the entry is
    // rebuilt in place; when the fault spans the checksum too, the redo
    // journal (a small ring of recently written migration metadata)
    // replays the entry, and only a page whose journal records were
    // already overwritten must be force-reclaimed.

    /** Outstanding corruption of one local remap entry. */
    struct MetaCorruption
    {
        std::uint64_t bits = 0;   ///< bit-flip mask the fault applied
        bool shadowHit = false;   ///< checksum also hit: journal or reclaim
    };

    /**
     * Quarantine host h's local entry for a page as corrupted.
     * @return false when there is no such entry or it is already
     *         quarantined
     */
    bool corruptLocalEntry(HostId h, PageFrame cxl_page,
                           std::uint64_t bits, bool shadow_hit);

    /** Whether host h's entry for a page is quarantined. */
    bool localEntryCorrupted(HostId h, PageFrame cxl_page) const
    {
        return !corrupt_[h].empty() && corrupt_[h].contains(cxl_page);
    }

    /** The corruption record, or nullptr when not quarantined. */
    const MetaCorruption *corruptionOf(HostId h, PageFrame cxl_page) const;

    /** The entry was rebuilt (or dropped): lift the quarantine. */
    void clearCorruption(HostId h, PageFrame cxl_page)
    {
        corrupt_[h].erase(cxl_page);
    }

    /** Quarantined (host, page) pairs in order (deterministic scrub). */
    std::vector<std::pair<HostId, PageFrame>> corruptedLocalEntries() const;

    std::size_t corruptedCount() const;

    /**
     * Turn on the migration-metadata redo journal with a capacity of
     * `capacity_pages` pages (0 keeps it off). Every local-entry write
     * (promotion, line in/out) refreshes the page's journal records;
     * the oldest page's records are overwritten when the ring is full.
     */
    void enableJournal(unsigned capacity_pages)
    {
        journalCap_ = capacity_pages;
    }

    /** Whether the journal still holds (h, page)'s metadata records. */
    bool journalCovers(HostId h, PageFrame cxl_page) const;

    /** Pages currently covered by the journal (tests). */
    std::size_t journalLive() const { return journalFifo_.size(); }

    // ---- Stats ---------------------------------------------------------

    StatGroup &stats() { return stats_; }

    Counter promotions;
    Counter revocations;
    Counter linesIn;        ///< lines incrementally migrated to local DRAM
    Counter linesBack;      ///< lines migrated back to CXL memory
    Counter allocFailures;  ///< promotions skipped: no local frame free
    /** Lines migrated at revocation time: how partial the partial
     *  migrations were when revoked (0..64 per 4 KB page). */
    Histogram revocationLines{8, 9};

  private:
    /** Majority-vote update; returns true when the threshold fires. */
    bool voteUpdate(GlobalRemapEntry &g, HostId requester);

    /** Create the local entry for a promotion; false if no frame free. */
    bool installLocalEntry(HostId h, PageFrame cxl_page);

    PipmConfig cfg_;
    unsigned numHosts_;
    PipmMode mode_;
    AddressSpace &space_;
    std::uint8_t counterMax_;       ///< 2^globalCounterBits - 1
    std::uint8_t localCounterMax_;  ///< 2^localCounterBits - 1

    /** The journal ring key of one (host, page) pair. */
    static std::uint64_t
    journalKey(HostId h, PageFrame cxl_page)
    {
        return (static_cast<std::uint64_t>(h) << 52) | cxl_page;
    }

    /** Refresh (h, page)'s journal records (move to the ring's tail). */
    void journalTouch(HostId h, PageFrame cxl_page);

    /** Drop (h, page) from the journal (its entry was removed). */
    void journalDrop(HostId h, PageFrame cxl_page);

    FlatMap<PageFrame, GlobalRemapEntry> global_;
    FlatSet<PageFrame> migrationDisabled_;
    std::vector<FlatMap<PageFrame, LocalRemapEntry>> local_;
    std::vector<std::uint64_t> linesOn_;

    /** Per-host quarantined local entries (DESIGN.md §12). */
    std::vector<FlatMap<PageFrame, MetaCorruption>> corrupt_;
    unsigned journalCap_ = 0;                 ///< ring capacity (0: off)
    std::vector<std::uint64_t> journalFifo_;  ///< keys, oldest first
    FlatSet<std::uint64_t> journalSet_;       ///< membership of the ring

    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_PIPM_STATE_HH
