#include "pipm/remap_cache.hh"

namespace pipm
{

RemapCache::RemapCache(std::uint64_t size_bytes, unsigned entry_bytes,
                       unsigned ways, Cycles round_trip, std::string name,
                       bool infinite)
    : infinite_(infinite),
      roundTrip_(round_trip),
      tags_(SetAssoc<Tag>::withCapacity(
          size_bytes / entry_bytes > 0 ? size_bytes / entry_bytes : ways,
          ways, ReplPolicy::lru)),
      stats_(std::move(name))
{
    stats_.addCounter(&hits, "hits", "remap cache hits");
    stats_.addCounter(&missCount, "misses",
                      "remap cache misses (table walks)");
}

bool
RemapCache::lookup(PageFrame page)
{
    if (infinite_) {
        hits.inc();
        return true;
    }
    if (tags_.lookup(page)) {
        hits.inc();
        return true;
    }
    missCount.inc();
    return false;
}

void
RemapCache::fill(PageFrame page)
{
    if (infinite_ || tags_.probe(page))
        return;
    tags_.insert(page, Tag{});
}

void
RemapCache::invalidate(PageFrame page)
{
    if (!infinite_)
        tags_.invalidate(page);
}

} // namespace pipm
