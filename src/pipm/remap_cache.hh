/**
 * @file
 * On-die remapping caches (§4.4, Table 2).
 *
 * The *local remapping cache* sits on each host's root complex and caches
 * local remapping table entries; it is consulted on every LLC miss to a
 * CXL-DSM address to resolve the full local coherence state (I vs I').
 * The *global remapping cache* sits on the CXL device and caches global
 * remapping table entries for the majority-vote policy and for routing
 * inter-host accesses to migrated lines.
 *
 * Both are tag-latency models: the authoritative entry contents live in
 * PipmState (the in-memory tables); the cache decides whether a lookup
 * pays the on-die round trip or a table walk in DRAM. Negative results
 * (page has no entry) are cached too, as a radix-table walk would produce
 * and cache an empty leaf entry.
 */

#ifndef PIPM_PIPM_REMAP_CACHE_HH
#define PIPM_PIPM_REMAP_CACHE_HH

#include <cstdint>

#include "cache/set_assoc.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pipm
{

/** One remapping cache (local on a host RC, or global on the device). */
class RemapCache
{
  public:
    /**
     * @param size_bytes on-die capacity
     * @param entry_bytes bytes per remapping entry (2 global, 4 local)
     * @param ways associativity
     * @param round_trip hit latency
     * @param name stat-group name
     * @param infinite when set, every lookup hits (ideal-size baseline
     *        for the Fig. 16/17 sweeps)
     */
    RemapCache(std::uint64_t size_bytes, unsigned entry_bytes, unsigned ways,
               Cycles round_trip, std::string name, bool infinite = false);

    /**
     * Look up the entry for a page.
     * @return true on hit. On miss the caller performs the table walk in
     *         DRAM and then calls fill().
     */
    bool lookup(PageFrame page);

    /** Install the entry for a page after a table walk. */
    void fill(PageFrame page);

    /** Drop a page's entry (table update must invalidate stale copies). */
    void invalidate(PageFrame page);

    /** Drop every entry (host crash: the on-die cache loses power; on
     *  rejoin the host starts cold). */
    void clear() { tags_.clear(); }

    Cycles roundTrip() const { return roundTrip_; }

    StatGroup &stats() { return stats_; }

    Counter hits;
    Counter missCount;

  private:
    struct Tag {};

    bool infinite_;
    Cycles roundTrip_;
    SetAssoc<Tag> tags_;
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_PIPM_REMAP_CACHE_HH
