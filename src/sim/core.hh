/**
 * @file
 * Trace-replay out-of-order core model.
 *
 * Models the parameters that matter for a memory-system study (Table 2:
 * 6-wide, 224-entry ROB, 72-entry LQ, 56-entry SQ) without an execute
 * pipeline: instructions dispatch at `width` per cycle; loads occupy
 * load-queue slots until their data returns; the ROB bounds how far
 * dispatch may run ahead of the oldest incomplete load; stores are posted
 * through the store queue and only stall when it fills. The result is the
 * standard limited-MLP trace-replay model: miss latency is overlapped up
 * to the window limits and serialises beyond them.
 */

#ifndef PIPM_SIM_CORE_HH
#define PIPM_SIM_CORE_HH

#include <cstdint>

#include "common/config.hh"
#include "common/ring.hh"
#include "common/types.hh"

namespace pipm
{

/** One simulated core advancing through its trace. */
class OooCore
{
  public:
    explicit OooCore(const CoreConfig &cfg)
        : cfg_(cfg), loads_(cfg.loadQueue), misses_(cfg.mshrs),
          stores_(cfg.storeQueue)
    {
    }

    /** Current dispatch time of the core. */
    Cycles now() const { return cycle_; }

    /** Instructions dispatched so far. */
    std::uint64_t instructions() const { return instrCount_; }

    /** Dispatch `n` non-memory instructions (width-limited). */
    void
    advanceGap(std::uint32_t n)
    {
        instrCount_ += n;
        dispatchSlots_ += n;
        cycle_ += dispatchSlots_ / cfg_.width;
        dispatchSlots_ %= cfg_.width;
    }

    /**
     * Dispatch a load whose memory latency is `latency` cycles from the
     * core's current time. May advance time when the LQ or ROB is full.
     */
    void
    issueLoad(Cycles latency)
    {
        drainCompleted();
        // LQ full: wait for the oldest load to complete.
        while (loads_.size() >= cfg_.loadQueue)
            waitOldestLoad();
        // ROB full: dispatch cannot run further ahead of the oldest
        // incomplete load than the window allows.
        while (!loads_.empty() &&
               instrCount_ - loads_.front().instr >= cfg_.robEntries) {
            waitOldestLoad();
        }
        // MSHRs bound the number of concurrent long-latency misses.
        while (!misses_.empty() && misses_.front() <= cycle_)
            misses_.pop_front();
        while (misses_.size() >= cfg_.mshrs) {
            if (misses_.front() > cycle_)
                cycle_ = misses_.front();
            misses_.pop_front();
        }
        loads_.push_back({cycle_ + latency, instrCount_});
        if (latency > cfg_.mshrLatencyThreshold)
            misses_.push_back(cycle_ + latency);
        bumpInstr();
    }

    /**
     * Dispatch a store; `accept_latency` is the time until the memory
     * system has accepted it (ownership acquired). Stalls only when the
     * store queue is full.
     */
    void
    issueStore(Cycles accept_latency)
    {
        while (!stores_.empty() && stores_.front() <= cycle_)
            stores_.pop_front();
        while (stores_.size() >= cfg_.storeQueue) {
            if (stores_.front() > cycle_)
                cycle_ = stores_.front();
            stores_.pop_front();
        }
        stores_.push_back(cycle_ + accept_latency);
        bumpInstr();
    }

    /** Stall the core for `n` cycles (e.g. TLB-shootdown IPIs). */
    void stall(Cycles n) { cycle_ += n; }

    /** Wait for every outstanding access (end of measurement). */
    void
    drainAll()
    {
        while (!loads_.empty())
            waitOldestLoad();
        if (!stores_.empty() && stores_.back() > cycle_)
            cycle_ = stores_.back();
        stores_.clear();
    }

  private:
    struct Load
    {
        Cycles completion;
        std::uint64_t instr;
    };

    void
    bumpInstr()
    {
        ++instrCount_;
        if (++dispatchSlots_ >= cfg_.width) {
            dispatchSlots_ = 0;
            ++cycle_;
        }
    }

    void
    drainCompleted()
    {
        while (!loads_.empty() && loads_.front().completion <= cycle_)
            loads_.pop_front();
    }

    void
    waitOldestLoad()
    {
        if (loads_.front().completion > cycle_)
            cycle_ = loads_.front().completion;
        loads_.pop_front();
        drainCompleted();
    }

    CoreConfig cfg_;
    Cycles cycle_ = 0;
    std::uint64_t instrCount_ = 0;
    std::uint32_t dispatchSlots_ = 0;
    // In-flight queues, hard-bounded by the config (the issue loops
    // below drain to strictly under the bound before every push).
    RingBuf<Load> loads_;
    RingBuf<Cycles> misses_;
    RingBuf<Cycles> stores_;
};

} // namespace pipm

#endif // PIPM_SIM_CORE_HH
