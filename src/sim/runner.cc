#include "sim/runner.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/env.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "obs/metrics_registry.hh"
#include "obs/stats_json.hh"
#include "obs/trace.hh"
#include "sim/core.hh"
#include "sim/sched.hh"
#include "sim/system.hh"

namespace pipm
{

namespace
{

/** What the inner loop must actually do, resolved once per run so the
 *  measured loop tests one bit instead of chasing pointers (§9). */
enum RunMode : unsigned
{
    modeFaults = 1u << 0,     ///< crash schedule: dead-host branch live
    modeDetection = 1u << 1,  ///< lease detector: stall-window branch live
    modeObs = 1u << 2,        ///< telemetry interval accounting
    modeCheck = 1u << 3,      ///< PIPM_CHECK_INVARIANTS cadence
};

} // namespace

RunResult
runExperiment(const SystemConfig &cfg, Scheme scheme,
              const Workload &workload, const RunConfig &run)
{
    // Reject nonsensical configurations before building the machine; the
    // system constructor validates too, but failing here keeps the error
    // at the experiment boundary every harness goes through.
    cfg.validate();
    MultiHostSystem system(cfg, scheme, workload, run.seed);

    // ---- Observability knobs (DESIGN.md §10) ---------------------------
    std::string stats_path = run.statsJsonPath;
    std::uint64_t obs_interval = run.obsIntervalAccesses;
    std::uint64_t trace_capacity = run.obsTraceCapacity;
    std::string watch_lines = run.obsWatchLines;
    if (run.obsFromEnv) {
        stats_path = envStr("PIPM_STATS_JSON", stats_path);
        obs_interval = envU64("PIPM_OBS_INTERVAL", obs_interval);
        trace_capacity = envU64("PIPM_OBS_TRACE", trace_capacity);
        watch_lines = envStr("PIPM_OBS_WATCH", watch_lines);
    }
    const bool obs_on = !stats_path.empty();

    struct CoreSlot
    {
        HostId host;
        CoreId core;
        OooCore model;
        std::unique_ptr<CoreTrace> trace;
        std::uint64_t refs = 0;
        bool done = false;
        Cycles measureStart = 0;
        std::uint64_t measureStartInstr = 0;
    };

    std::vector<CoreSlot> cores;
    cores.reserve(static_cast<std::size_t>(cfg.numHosts) *
                  cfg.coresPerHost);
    for (unsigned h = 0; h < cfg.numHosts; ++h) {
        for (unsigned c = 0; c < cfg.coresPerHost; ++c) {
            cores.push_back(CoreSlot{
                static_cast<HostId>(h), static_cast<CoreId>(c),
                OooCore(cfg.core),
                workload.makeTrace(static_cast<HostId>(h),
                                   static_cast<CoreId>(c),
                                   cfg.coresPerHost, cfg.numHosts,
                                   run.seed + 7919 * (h * 64 + c)),
                0, false, 0, 0});
        }
    }

    const std::uint64_t total_refs =
        run.warmupRefsPerCore + run.measureRefsPerCore;

    // Footprint sampling accumulators (Fig. 13).
    double page_frac_sum = 0.0;
    double line_frac_sum = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t accesses_since_sample = 0;
    const double total_pages =
        static_cast<double>(system.space().sharedPages());

    bool measuring = false;
    std::uint64_t done_count = 0;

    const std::uint64_t check_every =
        envU64("PIPM_CHECK_INVARIANTS", run.checkInvariantsEvery);
    std::uint64_t accesses_since_check = 0;

    // ---- Scheduler selection (DESIGN.md §9) -----------------------------
    // The indexed min-heap and the historical linear scan produce the
    // same schedule by construction (see sim/sched.hh); the scan is kept
    // as the reference implementation behind PIPM_SCHED=scan so the
    // bit-identity claim stays testable.
    std::string sched_mode = run.scheduler;
    if (sched_mode.empty())
        sched_mode = envStr("PIPM_SCHED", "heap");
    const bool heap_sched = sched_mode == "heap";
    panic_if(!heap_sched && sched_mode != "scan",
             "PIPM_SCHED must be 'heap' or 'scan', got '", sched_mode,
             "'");
    CoreScheduler sched(heap_sched ? cores.size() : 0);

    unsigned mode = 0;
    if (system.faultInjector())
        mode |= modeFaults;
    if (system.detectionEnabled())
        mode |= modeDetection;
    if (obs_on)
        mode |= modeObs;
    if (check_every)
        mode |= modeCheck;

    // Warmup bookkeeping: number of live cores still short of their
    // warmup refs. Replaces the historical all-cores rescan; a slot
    // leaves the count when its refs reach the threshold or when it
    // retires early (never-rejoining host crash) while still cold.
    std::uint64_t warm_pending =
        run.warmupRefsPerCore ? cores.size() : 0;

    // Telemetry: snapshot every registered stat group at interval
    // boundaries. When export is off no registry exists and the measured
    // loop pays nothing beyond one boolean test.
    MetricsRegistry registry;
    std::unique_ptr<ObsTrace> trace;
    if (obs_on) {
        system.registerStats(registry);
        if (trace_capacity > 0) {
            trace = std::make_unique<ObsTrace>(trace_capacity);
            // PIPM_OBS_WATCH: comma-separated line addresses whose
            // directory transitions get traced.
            const char *p = watch_lines.c_str();
            while (*p) {
                char *end = nullptr;
                const PhysAddr line = std::strtoull(p, &end, 0);
                if (end == p)
                    break;
                trace->watchLine(line);
                p = *end == ',' ? end + 1 : end;
            }
            system.attachTrace(trace.get());
        }
        if (obs_interval == 0) {
            // Default: eight intervals over the nominal measurement.
            obs_interval = std::max<std::uint64_t>(
                1, run.measureRefsPerCore * cores.size() / 8);
        }
    }
    std::uint64_t obs_accesses = 0;     ///< measured accesses so far
    std::uint64_t obs_since_close = 0;

    auto sample_footprint = [&]() {
        double page_sum = 0.0;
        double line_sum = 0.0;
        for (unsigned h = 0; h < cfg.numHosts; ++h) {
            page_sum += static_cast<double>(
                system.space().migratedFramesOn(static_cast<HostId>(h)));
            if (system.pipmState()) {
                line_sum +=
                    static_cast<double>(system.pipmState()->migratedLinesOn(
                        static_cast<HostId>(h))) /
                    linesPerPage;
            }
        }
        const double hosts = static_cast<double>(cfg.numHosts);
        page_frac_sum += page_sum / hosts / total_pages;
        line_frac_sum += line_sum / hosts / total_pages;
        ++samples;
    };

    while (done_count < cores.size()) {
        // Advance the core with the smallest local clock (first-min-wins
        // among ties: lowest slot index). The heap pops it in O(log n);
        // the reference scan walks every live slot.
        std::uint32_t idx;
        if (heap_sched) {
            idx = sched.top();
        } else {
            const CoreSlot *pick = nullptr;
            for (const auto &slot : cores) {
                if (slot.done)
                    continue;
                if (!pick || slot.model.now() < pick->model.now())
                    pick = &slot;
            }
            panic_if(!pick, "no runnable core");
            idx = static_cast<std::uint32_t>(pick - cores.data());
        }
        CoreSlot *next = &cores[idx];

        if ((mode & modeFaults) && !system.hostAlive(next->host)) {
            // The issuing host is down. A host that never rejoins retires
            // this core; otherwise park its clock at the rejoin time so
            // the min-clock scheduler resumes it right after the rejoin
            // event is processed. (With no crash schedule every host is
            // always alive and this branch never runs.)
            const Cycles up = system.hostDownUntil(next->host);
            if (up == maxCycles) {
                next->model.drainAll();
                next->done = true;
                ++done_count;
                if (warm_pending && next->refs < run.warmupRefsPerCore)
                    --warm_pending;
                if (heap_sched)
                    sched.remove(idx);
                continue;
            }
            if (next->model.now() < up)
                next->model.stall(up - next->model.now());
            // The inlined event horizon makes this a single compare when
            // the rejoin is still in the future (the historical code ran
            // the full subsystem chain on every park pass).
            system.tick(next->model.now());
            if (heap_sched)
                sched.update(idx, next->model.now());
            continue;
        }

        // A gray-failed (stalled) host executes nothing: park its cores
        // at the end of the stall window. The lease detector may fence
        // the host first, in which case the dead-host branch above takes
        // over on the next pass.
        if (mode & modeDetection) {
            const Cycles stalled_until =
                system.hostStalledUntil(next->host, next->model.now());
            if (stalled_until > next->model.now()) {
                next->model.stall(stalled_until - next->model.now());
                system.tick(next->model.now());
                if (heap_sched)
                    sched.update(idx, next->model.now());
                continue;
            }
        }

        if (!measuring && warm_pending == 0) {
            // Warmup ends when every core has issued its warmup refs.
            // Cores retired by a never-rejoining host crash are exempt.
            measuring = true;
            system.resetStats();
            if (obs_on) {
                // Baseline right after the reset: interval deltas sum
                // to the end-of-run totals by construction.
                registry.begin();
            }
            for (auto &slot : cores) {
                slot.measureStart = slot.model.now();
                slot.measureStartInstr = slot.model.instructions();
            }
        }

        const MemRef ref = next->trace->next();
        next->model.advanceGap(ref.gap);
        system.tick(next->model.now());
        // The tick may have processed a crash event that just killed this
        // very host; the in-flight access dies with it.
        if ((mode & modeFaults) && !system.hostAlive(next->host)) {
            if (heap_sched)
                sched.update(idx, next->model.now());
            continue;
        }
        const AccessResult res =
            system.access(next->host, next->core, ref, next->model.now());
        if (res.stall)
            next->model.stall(res.stall);
        if (ref.op == MemOp::read)
            next->model.issueLoad(res.latency);
        else
            next->model.issueStore(res.latency);

        ++next->refs;
        if (warm_pending && next->refs == run.warmupRefsPerCore)
            --warm_pending;
        if (next->refs >= total_refs) {
            next->model.drainAll();
            next->done = true;
            ++done_count;
            if (heap_sched)
                sched.remove(idx);
        } else if (heap_sched) {
            sched.update(idx, next->model.now());
        }

        if (measuring && (mode & modeObs)) {
            ++obs_accesses;
            if (++obs_since_close >= obs_interval) {
                obs_since_close = 0;
                registry.closeInterval(obs_accesses, next->model.now());
            }
        }

        if (measuring && ++accesses_since_sample >=
                             run.footprintSampleEvery) {
            accesses_since_sample = 0;
            sample_footprint();
        }
        if ((mode & modeCheck) &&
            ++accesses_since_check >= check_every) {
            accesses_since_check = 0;
            system.checkInvariants();
        }
    }
    if (samples == 0)
        sample_footprint();
    if (system.harmfulTracker())
        system.harmfulTracker()->finish();

    if (obs_on) {
        // Final flush after the harmful tracker's classification so the
        // last interval carries those counters too. Zero-length flushes
        // (boundary exactly hit) are ignored by the registry.
        Cycles end_cycle = 0;
        for (const auto &slot : cores)
            end_cycle = std::max(end_cycle, slot.model.now());
        registry.closeInterval(obs_accesses, end_cycle);
    }

    RunResult out;
    out.workload = workload.name();
    out.scheme = scheme;

    Cycles exec = 0;
    std::uint64_t instr = 0;
    for (const auto &slot : cores) {
        exec = std::max(exec, slot.model.now() - slot.measureStart);
        instr += slot.model.instructions() - slot.measureStartInstr;
    }
    out.execCycles = exec;
    out.instructions = instr;
    out.ipc = exec ? static_cast<double>(instr) /
                         static_cast<double>(exec) / cores.size()
                   : 0.0;

    out.sharedAccesses = system.sharedAccesses.value();
    out.sharedLlcMisses = system.sharedLlcMisses.value();
    out.localServedMisses = system.localServedMisses.value();
    out.cxlServedMisses = system.cxlServedMisses.value();
    out.interHostAccesses = system.interHostAccesses.value();
    out.interHostStallCycles = system.interHostStallCycles.value();
    out.mgmtStallCycles = system.mgmtStallCycles.value();
    out.migrationTransferBytes = system.migrationTransferBytes.value();
    out.osMigrations = system.osMigrations.value();
    out.osDemotions = system.osDemotions.value();

    if (PipmState *p = system.pipmState()) {
        out.pipmPromotions = p->promotions.value();
        out.pipmRevocations = p->revocations.value();
        out.pipmLinesIn = p->linesIn.value();
        out.pipmLinesBack = p->linesBack.value();
    }
    if (HarmfulTracker *t = system.harmfulTracker()) {
        out.harmfulMigrations = t->harmfulMigrations();
        out.totalTrackedMigrations = t->totalMigrations();
    }
    if (FaultInjector *f = system.faultInjector()) {
        for (unsigned h = 0; h < cfg.numHosts; ++h)
            out.linkCrcErrors +=
                system.link(static_cast<HostId>(h)).crcErrors.value();
        out.linkRetrainEvents = f->retrainEvents.value();
        out.poisonEvents =
            f->poisonTransient.value() + f->poisonPersistent.value();
        out.degradedAccesses = f->degradedAccesses.value();
        out.migrationAborts =
            f->promotionAborts.value() + f->lineAborts.value();
        out.migrationsDeferred = f->migrationsDeferred.value();
        out.hostCrashes = f->hostCrashes.value();
        out.hostRejoins = f->hostRejoins.value();
        out.crashLinesReclaimed =
            f->crashDirSwept.value() + f->crashLinesReclaimed.value();
        out.crashDirtyLinesLost = f->crashDirtyLinesLost.value();
        out.crashRecoveryCycles = f->crashRecoveryCycles.value();
        out.suspicions = f->suspicions.value();
        out.falseSuspicions = f->falseSuspicions.value();
        out.fencedRequests = f->fencedRequests.value();
        out.txnTimeouts = f->txnTimeouts.value();
        out.txnRetries = f->txnRetries.value();
        out.stallWindows = f->stallWindowsEntered.value();
    }
    out.pageFootprintFrac = samples ? page_frac_sum / samples : 0.0;
    out.lineFootprintFrac = samples ? line_frac_sum / samples : 0.0;

    if (obs_on) {
        StatsJsonMeta meta;
        meta.workload = workload.name();
        meta.scheme = std::string(toString(scheme));
        meta.seed = run.seed;
        meta.warmupRefsPerCore = run.warmupRefsPerCore;
        meta.measureRefsPerCore = run.measureRefsPerCore;
        meta.intervalAccesses = obs_interval;
        meta.configHash = fnv1aHex(cfg.measurementKey());
        writeStatsJson(stats_path,
                       renderStatsJson(meta, out, registry, trace.get()));
    }
    return out;
}

} // namespace pipm
