#include "sim/runner.hh"

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "sim/core.hh"
#include "sim/system.hh"

namespace pipm
{

RunResult
runExperiment(const SystemConfig &cfg, Scheme scheme,
              const Workload &workload, const RunConfig &run)
{
    // Reject nonsensical configurations before building the machine; the
    // system constructor validates too, but failing here keeps the error
    // at the experiment boundary every harness goes through.
    cfg.validate();
    MultiHostSystem system(cfg, scheme, workload, run.seed);

    struct CoreSlot
    {
        HostId host;
        CoreId core;
        OooCore model;
        std::unique_ptr<CoreTrace> trace;
        std::uint64_t refs = 0;
        bool done = false;
        Cycles measureStart = 0;
        std::uint64_t measureStartInstr = 0;
    };

    std::vector<CoreSlot> cores;
    cores.reserve(static_cast<std::size_t>(cfg.numHosts) *
                  cfg.coresPerHost);
    for (unsigned h = 0; h < cfg.numHosts; ++h) {
        for (unsigned c = 0; c < cfg.coresPerHost; ++c) {
            cores.push_back(CoreSlot{
                static_cast<HostId>(h), static_cast<CoreId>(c),
                OooCore(cfg.core),
                workload.makeTrace(static_cast<HostId>(h),
                                   static_cast<CoreId>(c),
                                   cfg.coresPerHost, cfg.numHosts,
                                   run.seed + 7919 * (h * 64 + c)),
                0, false, 0, 0});
        }
    }

    const std::uint64_t total_refs =
        run.warmupRefsPerCore + run.measureRefsPerCore;

    // Footprint sampling accumulators (Fig. 13).
    double page_frac_sum = 0.0;
    double line_frac_sum = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t accesses_since_sample = 0;
    const double total_pages =
        static_cast<double>(system.space().sharedPages());

    bool measuring = false;
    std::uint64_t done_count = 0;

    std::uint64_t check_every = run.checkInvariantsEvery;
    if (const char *env = std::getenv("PIPM_CHECK_INVARIANTS")) {
        if (*env != '\0')
            check_every = std::strtoull(env, nullptr, 10);
    }
    std::uint64_t accesses_since_check = 0;

    auto sample_footprint = [&]() {
        double page_sum = 0.0;
        double line_sum = 0.0;
        for (unsigned h = 0; h < cfg.numHosts; ++h) {
            page_sum += static_cast<double>(
                system.space().migratedFramesOn(static_cast<HostId>(h)));
            if (system.pipmState()) {
                line_sum +=
                    static_cast<double>(system.pipmState()->migratedLinesOn(
                        static_cast<HostId>(h))) /
                    linesPerPage;
            }
        }
        const double hosts = static_cast<double>(cfg.numHosts);
        page_frac_sum += page_sum / hosts / total_pages;
        line_frac_sum += line_sum / hosts / total_pages;
        ++samples;
    };

    while (done_count < cores.size()) {
        // Advance the core with the smallest local clock.
        CoreSlot *next = nullptr;
        for (auto &slot : cores) {
            if (slot.done)
                continue;
            if (!next || slot.model.now() < next->model.now())
                next = &slot;
        }
        panic_if(!next, "no runnable core");

        if (!system.hostAlive(next->host)) {
            // The issuing host is down. A host that never rejoins retires
            // this core; otherwise park its clock at the rejoin time so
            // the min-clock scheduler resumes it right after the rejoin
            // event is processed. (With no crash schedule every host is
            // always alive and this branch never runs.)
            const Cycles up = system.hostDownUntil(next->host);
            if (up == maxCycles) {
                next->model.drainAll();
                next->done = true;
                ++done_count;
                continue;
            }
            if (next->model.now() < up)
                next->model.stall(up - next->model.now());
            system.tick(next->model.now());
            continue;
        }

        if (!measuring) {
            // Warmup ends when every core has issued its warmup refs.
            // Cores retired by a never-rejoining host crash are exempt.
            bool all_warm = true;
            for (const auto &slot : cores) {
                if (slot.done)
                    continue;
                if (slot.refs < run.warmupRefsPerCore) {
                    all_warm = false;
                    break;
                }
            }
            if (all_warm) {
                measuring = true;
                system.resetStats();
                for (auto &slot : cores) {
                    slot.measureStart = slot.model.now();
                    slot.measureStartInstr = slot.model.instructions();
                }
            }
        }

        const MemRef ref = next->trace->next();
        next->model.advanceGap(ref.gap);
        system.tick(next->model.now());
        // The tick may have processed a crash event that just killed this
        // very host; the in-flight access dies with it.
        if (!system.hostAlive(next->host))
            continue;
        const AccessResult res =
            system.access(next->host, next->core, ref, next->model.now());
        if (res.stall)
            next->model.stall(res.stall);
        if (ref.op == MemOp::read)
            next->model.issueLoad(res.latency);
        else
            next->model.issueStore(res.latency);

        ++next->refs;
        if (next->refs >= total_refs) {
            next->model.drainAll();
            next->done = true;
            ++done_count;
        }

        if (measuring && ++accesses_since_sample >=
                             run.footprintSampleEvery) {
            accesses_since_sample = 0;
            sample_footprint();
        }
        if (check_every && ++accesses_since_check >= check_every) {
            accesses_since_check = 0;
            system.checkInvariants();
        }
    }
    if (samples == 0)
        sample_footprint();
    if (system.harmfulTracker())
        system.harmfulTracker()->finish();

    RunResult out;
    out.workload = workload.name();
    out.scheme = scheme;

    Cycles exec = 0;
    std::uint64_t instr = 0;
    for (const auto &slot : cores) {
        exec = std::max(exec, slot.model.now() - slot.measureStart);
        instr += slot.model.instructions() - slot.measureStartInstr;
    }
    out.execCycles = exec;
    out.instructions = instr;
    out.ipc = exec ? static_cast<double>(instr) /
                         static_cast<double>(exec) / cores.size()
                   : 0.0;

    out.sharedAccesses = system.sharedAccesses.value();
    out.sharedLlcMisses = system.sharedLlcMisses.value();
    out.localServedMisses = system.localServedMisses.value();
    out.cxlServedMisses = system.cxlServedMisses.value();
    out.interHostAccesses = system.interHostAccesses.value();
    out.interHostStallCycles = system.interHostStallCycles.value();
    out.mgmtStallCycles = system.mgmtStallCycles.value();
    out.migrationTransferBytes = system.migrationTransferBytes.value();
    out.osMigrations = system.osMigrations.value();
    out.osDemotions = system.osDemotions.value();

    if (PipmState *p = system.pipmState()) {
        out.pipmPromotions = p->promotions.value();
        out.pipmRevocations = p->revocations.value();
        out.pipmLinesIn = p->linesIn.value();
        out.pipmLinesBack = p->linesBack.value();
    }
    if (HarmfulTracker *t = system.harmfulTracker()) {
        out.harmfulMigrations = t->harmfulMigrations();
        out.totalTrackedMigrations = t->totalMigrations();
    }
    if (FaultInjector *f = system.faultInjector()) {
        for (unsigned h = 0; h < cfg.numHosts; ++h)
            out.linkCrcErrors +=
                system.link(static_cast<HostId>(h)).crcErrors.value();
        out.linkRetrainEvents = f->retrainEvents.value();
        out.poisonEvents =
            f->poisonTransient.value() + f->poisonPersistent.value();
        out.degradedAccesses = f->degradedAccesses.value();
        out.migrationAborts =
            f->promotionAborts.value() + f->lineAborts.value();
        out.migrationsDeferred = f->migrationsDeferred.value();
        out.hostCrashes = f->hostCrashes.value();
        out.hostRejoins = f->hostRejoins.value();
        out.crashLinesReclaimed =
            f->crashDirSwept.value() + f->crashLinesReclaimed.value();
        out.crashDirtyLinesLost = f->crashDirtyLinesLost.value();
        out.crashRecoveryCycles = f->crashRecoveryCycles.value();
    }
    out.pageFootprintFrac = samples ? page_frac_sum / samples : 0.0;
    out.lineFootprintFrac = samples ? line_frac_sum / samples : 0.0;
    return out;
}

} // namespace pipm
