/**
 * @file
 * Experiment runner: executes one (workload, scheme, configuration)
 * combination and reports the measurements every paper figure consumes.
 *
 * Simulation follows the paper's methodology (§5.1.2): traces are replayed
 * through the core models after a warmup phase; measurement covers a fixed
 * reference count per core. Cores advance in global time order (the core
 * with the smallest local clock issues next), which keeps contention on
 * the shared links, directory slices and DRAM banks causally ordered.
 */

#ifndef PIPM_SIM_RUNNER_HH
#define PIPM_SIM_RUNNER_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "sim/scheme.hh"
#include "workloads/workload.hh"

namespace pipm
{

/** How much to simulate. */
struct RunConfig
{
    std::uint64_t warmupRefsPerCore = 50'000;
    std::uint64_t measureRefsPerCore = 200'000;
    std::uint64_t seed = 42;
    /** Sample footprint ratios every this many measured accesses. */
    std::uint64_t footprintSampleEvery = 50'000;
    /**
     * Run MultiHostSystem::checkInvariants() every this many accesses
     * (0: disabled). The PIPM_CHECK_INVARIANTS environment variable, when
     * set and non-empty, overrides this value. Crash/rejoin events always
     * check regardless of this knob.
     */
    std::uint64_t checkInvariantsEvery = 0;
    /**
     * Core scheduler: "heap" (indexed min-heap, the default) or "scan"
     * (the historical linear min-clock scan, kept as the reference
     * implementation). Both produce bit-identical runs; the knob exists
     * so that claim stays testable. Empty: resolve from PIPM_SCHED,
     * defaulting to "heap". Anything else panics.
     */
    std::string scheduler;

    // ---- Observability (DESIGN.md §10) ----------------------------------

    /** Write the per-interval telemetry export here ("" disables it). */
    std::string statsJsonPath;
    /** Measured accesses per telemetry interval (0: total/8, min 1). */
    std::uint64_t obsIntervalAccesses = 0;
    /** Event-trace ring capacity in events (0: tracing off). */
    std::uint64_t obsTraceCapacity = 0;
    /** Comma-separated line addresses to watch for directory tracing. */
    std::string obsWatchLines;
    /**
     * When true, the PIPM_STATS_JSON / PIPM_OBS_INTERVAL /
     * PIPM_OBS_TRACE / PIPM_OBS_WATCH environment variables override the
     * fields above (same pattern as PIPM_CHECK_INVARIANTS). Harnesses
     * that run many experiments concurrently resolve the environment
     * once themselves and set this false, so parallel workers never race
     * on one output path.
     */
    bool obsFromEnv = true;
};

/** Everything a figure harness needs from one run. */
struct RunResult
{
    std::string workload;
    Scheme scheme = Scheme::native;

    Cycles execCycles = 0;          ///< measured wall time (max over cores)
    std::uint64_t instructions = 0; ///< retired in measurement
    double ipc = 0.0;               ///< per-core IPC

    std::uint64_t sharedAccesses = 0;
    std::uint64_t sharedLlcMisses = 0;
    std::uint64_t localServedMisses = 0;
    std::uint64_t cxlServedMisses = 0;
    std::uint64_t interHostAccesses = 0;
    std::uint64_t interHostStallCycles = 0;
    std::uint64_t mgmtStallCycles = 0;
    std::uint64_t migrationTransferBytes = 0;
    std::uint64_t osMigrations = 0;
    std::uint64_t osDemotions = 0;

    std::uint64_t pipmPromotions = 0;
    std::uint64_t pipmRevocations = 0;
    std::uint64_t pipmLinesIn = 0;
    std::uint64_t pipmLinesBack = 0;

    std::uint64_t harmfulMigrations = 0;
    std::uint64_t totalTrackedMigrations = 0;

    // Fault injection (all zero when cfg.fault.enabled is false).
    std::uint64_t linkCrcErrors = 0;     ///< corrupted+replayed messages
    std::uint64_t linkRetrainEvents = 0; ///< retraining windows hit
    std::uint64_t poisonEvents = 0;      ///< poisoned lines encountered
    std::uint64_t degradedAccesses = 0;  ///< uncacheable poisoned-line trips
    std::uint64_t migrationAborts = 0;   ///< promotions + line moves aborted
    std::uint64_t migrationsDeferred = 0;///< vote firings backed off

    // Host fail-stop crashes (DESIGN.md §8; all zero without a crash
    // schedule).
    std::uint64_t hostCrashes = 0;       ///< fail-stop events processed
    std::uint64_t hostRejoins = 0;       ///< cold rejoins processed
    std::uint64_t crashLinesReclaimed = 0; ///< dir sweeps + remap/GIM lines
    std::uint64_t crashDirtyLinesLost = 0; ///< latest value died with a host
    std::uint64_t crashRecoveryCycles = 0; ///< device-side reclamation work

    // Lease-based failure detection (DESIGN.md §11; all zero with
    // fault.leaseNs == 0 — the oracle mode).
    std::uint64_t suspicions = 0;        ///< leases expired
    std::uint64_t falseSuspicions = 0;   ///< alive hosts fenced
    std::uint64_t fencedRequests = 0;    ///< zombie requests NACKed
    std::uint64_t txnTimeouts = 0;       ///< transaction attempts timed out
    std::uint64_t txnRetries = 0;        ///< retries after a timeout
    std::uint64_t stallWindows = 0;      ///< gray-failure windows entered

    /** Fig. 13: mean per-host local footprint / total footprint. */
    double pageFootprintFrac = 0.0;
    /** Fig. 13 (PIPM-line): actually migrated lines / total footprint. */
    double lineFootprintFrac = 0.0;

    /** Fig. 11: shared LLC misses served from own local DRAM. */
    double
    localHitRate() const
    {
        return sharedLlcMisses
                   ? static_cast<double>(localServedMisses) /
                         static_cast<double>(sharedLlcMisses)
                   : 0.0;
    }

    /** Fig. 5: fraction of migrations that hurt execution time. */
    double
    harmfulFraction() const
    {
        return totalTrackedMigrations
                   ? static_cast<double>(harmfulMigrations) /
                         static_cast<double>(totalTrackedMigrations)
                   : 0.0;
    }
};

/** Run one experiment. */
RunResult runExperiment(const SystemConfig &cfg, Scheme scheme,
                        const Workload &workload, const RunConfig &run);

} // namespace pipm

#endif // PIPM_SIM_RUNNER_HH
