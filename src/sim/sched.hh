/**
 * @file
 * Indexed binary min-heap scheduling the runner's core slots.
 *
 * The experiment runner advances the core with the smallest local clock
 * next (global time order keeps contention on shared links, directory
 * slices and DRAM banks causally ordered). The historical implementation
 * rescanned every slot per reference — O(numHosts x coresPerHost) — with
 * a strict-less comparison, so among equal clocks the *lowest slot
 * index* won. This heap reproduces that order exactly by keying on the
 * pair (clock, slot index): popping the minimum yields the first slot a
 * linear first-min-wins scan would have picked, making heap and scan
 * schedules — and therefore whole runs — bit-identical.
 *
 * The heap stores the (clock, slot) key inline in each node, so the
 * comparisons of a sift touch only the heap array itself, and sifts are
 * hole-based: the moving node is written once at its final position
 * instead of swapped level by level. Clocks only move forward in the
 * runner, so a re-key after advancing the popped slot is one sift-down;
 * retiring a finished slot is a replace-with-last plus one sift. Both
 * directions are implemented anyway so the structure stays a general
 * indexed priority queue (and the model test can drive it with
 * arbitrary keys).
 */

#ifndef PIPM_SIM_SCHED_HH
#define PIPM_SIM_SCHED_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pipm
{

/** Min-heap over core slots keyed on (local clock, slot index). */
class CoreScheduler
{
  public:
    /**
     * Build the scheduler over `n` slots, all with clock 0. The initial
     * heap array is [0, 1, ..., n-1], which is a valid heap for equal
     * keys and makes slot 0 the first pick — matching the scan.
     */
    explicit CoreScheduler(std::size_t n)
        : clock_(n, 0), heap_(n), pos_(n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            heap_[i] = Node{0, static_cast<std::uint32_t>(i)};
            pos_[i] = static_cast<std::uint32_t>(i);
        }
    }

    /** Number of live (not yet removed) slots. */
    std::size_t size() const { return heap_.size(); }

    bool empty() const { return heap_.empty(); }

    /** Whether `slot` is still scheduled. */
    bool contains(std::uint32_t slot) const
    {
        return slot < pos_.size() && pos_[slot] != npos;
    }

    /** Current clock of a live slot. */
    Cycles clockOf(std::uint32_t slot) const { return clock_[slot]; }

    /**
     * The slot a first-min-wins linear scan would pick: minimum clock,
     * lowest index among ties.
     */
    std::uint32_t
    top() const
    {
        panic_if(heap_.empty(), "CoreScheduler::top on empty heap");
        return heap_[0].slot;
    }

    /** Re-key `slot` to `clock` and restore the heap order. */
    void
    update(std::uint32_t slot, Cycles clock)
    {
        panic_if(!contains(slot), "CoreScheduler::update of removed slot");
        // A grown (or unchanged) key can only violate the heap order
        // towards the children, a shrunken one only towards the parent —
        // one directed sift each. The runner always advances clocks, so
        // it always takes the first arm.
        const bool grew = clock >= clock_[slot];
        clock_[slot] = clock;
        const Node v{clock, slot};
        const std::uint32_t i = pos_[slot];
        if (grew)
            siftDown(i, v);
        else
            siftUp(i, v);
    }

    /** Retire `slot` (core finished or parked forever). */
    void
    remove(std::uint32_t slot)
    {
        panic_if(!contains(slot), "CoreScheduler::remove of removed slot");
        const std::uint32_t i = pos_[slot];
        const Node last = heap_.back();
        heap_.pop_back();
        pos_[slot] = npos;
        if (last.slot == slot)
            return;
        // Re-seat the displaced last node at the vacated position; it
        // may need to move either way relative to its new neighbours.
        if (i > 0 && before(last, heap_[(i - 1) / 2]))
            siftUp(i, last);
        else
            siftDown(i, last);
    }

  private:
    static constexpr std::uint32_t npos = ~std::uint32_t{0};

    /** One heap node: the key, stored inline so sifts stay local. */
    struct Node
    {
        Cycles clock;
        std::uint32_t slot;
    };

    /** Strict weak order matching the scan's first-min-wins pick. */
    static bool
    before(const Node &a, const Node &b)
    {
        if (a.clock != b.clock)
            return a.clock < b.clock;
        return a.slot < b.slot;
    }

    /** Sink `v` from position `i` (hole-based: one final store). */
    void
    siftDown(std::uint32_t i, Node v)
    {
        const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
        for (;;) {
            const std::uint32_t l = 2 * i + 1;
            if (l >= n)
                break;
            const std::uint32_t r = l + 1;
            const std::uint32_t m =
                (r < n && before(heap_[r], heap_[l])) ? r : l;
            if (!before(heap_[m], v))
                break;
            heap_[i] = heap_[m];
            pos_[heap_[i].slot] = i;
            i = m;
        }
        heap_[i] = v;
        pos_[v.slot] = i;
    }

    /** Raise `v` from position `i` (hole-based). */
    void
    siftUp(std::uint32_t i, Node v)
    {
        while (i > 0) {
            const std::uint32_t p = (i - 1) / 2;
            if (!before(v, heap_[p]))
                break;
            heap_[i] = heap_[p];
            pos_[heap_[i].slot] = i;
            i = p;
        }
        heap_[i] = v;
        pos_[v.slot] = i;
    }

    std::vector<Cycles> clock_;        ///< key per slot (clockOf)
    std::vector<Node> heap_;           ///< nodes with inline keys
    std::vector<std::uint32_t> pos_;   ///< slot -> heap position (npos: out)
};

} // namespace pipm

#endif // PIPM_SIM_SCHED_HH
