/**
 * @file
 * The memory-management schemes compared in the evaluation (§5.1.3).
 */

#ifndef PIPM_SIM_SCHEME_HH
#define PIPM_SIM_SCHEME_HH

#include <array>
#include <string_view>

namespace pipm
{

/** Every compared scheme of §5.1.3, plus the §4.3.1 naive-coherence
 *  ablation. */
enum class Scheme
{
    native,     ///< CXL-DSM with no migration (normalisation baseline)
    nomad,      ///< recency-based OS migration (Nomad/TPP-style)
    memtis,     ///< frequency-based OS migration with dynamic hot set
    hemem,      ///< frequency-threshold OS migration
    osSkew,     ///< ablation: PIPM vote policy + OS page mechanism
    hwStatic,   ///< ablation: PIPM mechanism + static mapping (Flat-Mode)
    pipmFull,   ///< the full PIPM design
    localOnly,  ///< upper bound: every access served locally ("Ideal")
    /**
     * §4.3.1's strawman: partial/incremental migration with a plain
     * 1-bit in-memory state and *no* ME/I' states — every local access
     * to a migrated line still traverses the CXL link, the device
     * coherence directory and a CXL memory read (to check the bit)
     * before being served from local DRAM (Fig. 8).
     */
    pipmNaive
};

/** The schemes Fig. 10 compares, in paper order. */
constexpr std::array<Scheme, 8> allSchemes = {
    Scheme::native, Scheme::nomad,  Scheme::memtis,   Scheme::hemem,
    Scheme::osSkew, Scheme::hwStatic, Scheme::pipmFull, Scheme::localOnly,
};

/** All schemes including the extra ablations. */
constexpr std::array<Scheme, 9> allSchemesExtended = {
    Scheme::native,   Scheme::nomad,    Scheme::memtis,
    Scheme::hemem,    Scheme::osSkew,   Scheme::hwStatic,
    Scheme::pipmFull, Scheme::localOnly, Scheme::pipmNaive,
};

constexpr std::string_view
toString(Scheme s)
{
    switch (s) {
      case Scheme::native: return "native";
      case Scheme::nomad: return "nomad";
      case Scheme::memtis: return "memtis";
      case Scheme::hemem: return "hemem";
      case Scheme::osSkew: return "os-skew";
      case Scheme::hwStatic: return "hw-static";
      case Scheme::pipmFull: return "pipm";
      case Scheme::localOnly: return "local-only";
      case Scheme::pipmNaive: return "pipm-naive";
    }
    return "?";
}

/** Does the scheme migrate whole pages through the OS (GIM remapping)? */
constexpr bool
usesOsMigration(Scheme s)
{
    return s == Scheme::nomad || s == Scheme::memtis || s == Scheme::hemem ||
           s == Scheme::osSkew;
}

/** Does the scheme use PIPM's partial/incremental migration machinery? */
constexpr bool
usesPipmMechanism(Scheme s)
{
    return s == Scheme::pipmFull || s == Scheme::hwStatic ||
           s == Scheme::pipmNaive;
}

} // namespace pipm

#endif // PIPM_SIM_SCHEME_HH
