#include "sim/system.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/logging.hh"
#include "migration/hemem.hh"
#include "migration/memtis.hh"
#include "migration/nomad.hh"
#include "migration/os_skew.hh"

namespace pipm
{

namespace
{

/** Approximate serialisation cycles of a flit on a link. */
Cycles
flitCycles(const CxlLinkConfig &link, unsigned bytes)
{
    const double bytes_per_cycle = link.bytesPerNs / cyclesPerNs;
    return std::max<Cycles>(
        1, static_cast<Cycles>(static_cast<double>(bytes) / bytes_per_cycle));
}

/** Analytic DRAM access latency (row-miss, unloaded). */
Cycles
dramEstimate(const DramConfig &d)
{
    return nsToCycles(d.controllerNs + d.tRCDns + d.tCLns) +
           static_cast<Cycles>(lineBytes / d.bytesPerCycle);
}

} // namespace

LatencyEstimates
LatencyEstimates::from(const SystemConfig &cfg)
{
    LatencyEstimates e;
    const Cycles cache_path =
        cfg.l1.roundTrip + cfg.llcPerCore.roundTrip +
        cfg.localDirectory.roundTrip;
    const Cycles hop = nsToCycles(cfg.link.latencyNs) +
                       (cfg.link.hasSwitch ? nsToCycles(cfg.link.switchNs)
                                           : 0);
    e.local = cache_path + dramEstimate(cfg.localDram);
    e.cxl = cache_path + hop + flitCycles(cfg.link, CxlFlits::header) +
            cfg.deviceDirectory.roundTrip + dramEstimate(cfg.cxlDram) +
            hop + flitCycles(cfg.link, CxlFlits::data);
    e.gim = cache_path + 4 * hop + 2 * flitCycles(cfg.link, CxlFlits::header) +
            2 * flitCycles(cfg.link, CxlFlits::data) +
            cfg.llcPerCore.roundTrip + dramEstimate(cfg.localDram);
    return e;
}

MultiHostSystem::MultiHostSystem(const SystemConfig &cfg, Scheme scheme,
                                 const Workload &workload,
                                 std::uint64_t seed)
    : cfg_(cfg),
      scheme_(scheme),
      seed_(seed),
      space_(std::make_unique<AddressSpace>(cfg, workload.sharedBytes(),
                                            workload.privateBytesPerHost())),
      deviceDir_(cfg.deviceDirectory),
      cxlDram_(cfg.cxlDram, "cxl_dram"),
      est_(LatencyEstimates::from(cfg)),
      stats_("system")
{
    cfg_.validate();

    hostAlive_.assign(cfg.numHosts, 1);
    hostEpoch_.assign(cfg.numHosts, 0);
    hostDownUntil_.assign(cfg.numHosts, 0);

    // Pre-size the sparse memory image for the written working set so
    // rehash churn doesn't dominate early-fill cost (the image holds
    // touched lines, not all of shared memory, and is only ever probed
    // point-wise — capacity history is unobservable). Benchmark-scale
    // runs write a few hundred thousand distinct lines, so the cap is
    // sized to absorb them without growth rehashes; the table is past
    // LLC size either way at that point.
    const std::uint64_t shared_lines =
        space_->sharedPages() * linesPerPage;
    mem_.reserve(std::min<std::uint64_t>(shared_lines, 1u << 17));

    if (cfg.fault.enabled) {
        faults_ = std::make_unique<FaultInjector>(
            cfg.fault, cfg.numHosts,
            seed ^ (cfg.fault.seed * 0x9e3779b97f4a7c15ull));
        if (cfg.fault.poisonRate > 0.0) {
            // poisonCheck memoises every first-touched CXL line.
            faults_->reservePoison(
                std::min<std::uint64_t>(shared_lines, 1u << 15));
        }
        pendingDirty_.resize(cfg.numHosts);
    }
    detection_ = faults_ && cfg.fault.leaseNs > 0.0;
    if (detection_) {
        leaseCycles_ = nsToCycles(cfg.fault.leaseNs);
        heartbeatCycles_ = nsToCycles(cfg.fault.heartbeatIntervalNs);
        if (heartbeatCycles_ == 0)
            heartbeatCycles_ = 1;
        readmitCycles_ = nsToCycles(cfg.fault.readmitDelayNs);
        needsReclaim_.assign(cfg.numHosts, 0);
        trusted_.assign(cfg.numHosts, 1);
        lastHeartbeat_.assign(cfg.numHosts, 0);
        nextHeartbeat_.resize(cfg.numHosts);
        zombieReadmitAt_.assign(cfg.numHosts, 0);
        for (unsigned h = 0; h < cfg.numHosts; ++h) {
            // Stagger renewals across hosts so a shared grid point does
            // not make every lease expire in the same tick.
            const Cycles phase =
                (static_cast<Cycles>(h) * heartbeatCycles_) / cfg.numHosts;
            nextHeartbeat_[h] = phase ? phase : heartbeatCycles_;
        }
    }
    metaFaults_ = faults_ && cfg.fault.metaCorruptMeanIntervalNs > 0.0;
    if (metaFaults_) {
        metaScrubInterval_ = nsToCycles(cfg.fault.metaScrubIntervalNs);
        if (metaScrubInterval_ == 0)
            metaScrubInterval_ = 1;
        nextMetaScrub_ = metaScrubInterval_;
    }
    if (cfg.link.hasSwitch) {
        switch_ = std::make_unique<CxlSwitch>(cfg.link.switchBytesPerNs,
                                              cfg.link.switchNs);
    }
    hosts_.resize(cfg.numHosts);
    for (unsigned h = 0; h < cfg.numHosts; ++h) {
        Host &host = hosts_[h];
        host.caches =
            std::make_unique<CacheHierarchy>(cfg, seed + 101 * (h + 1));
        host.dram = std::make_unique<DramDevice>(cfg.localDram,
                                                 "local_dram");
        host.link = std::make_unique<CxlLink>(cfg.link, "link",
                                              switch_.get());
        if (faults_)
            host.link->attachFaults(faults_.get(),
                                    static_cast<HostId>(h));
        host.pendingStall.assign(cfg.coresPerHost, 0);
        if (cfg.tlb.enabled) {
            TlbConfig tlb_cfg;
            tlb_cfg.entries = cfg.tlb.entries;
            tlb_cfg.ways = cfg.tlb.ways;
            tlb_cfg.hitCycles = cfg.tlb.hitCycles;
            tlb_cfg.walkCycles = cfg.tlb.walkCycles;
            host.tlbs.reserve(cfg.coresPerHost);
            for (unsigned c = 0; c < cfg.coresPerHost; ++c)
                host.tlbs.emplace_back(tlb_cfg, seed + 31 * (h + c + 1));
        }
        if (usesPipmMechanism(scheme)) {
            host.localRemap = std::make_unique<RemapCache>(
                cfg.pipm.localCacheBytes, 4, cfg.pipm.localCacheWays,
                cfg.pipm.localCacheRoundTrip, "local_remap",
                cfg.pipm.infiniteLocalCache);
        }
    }

    fastPrivate_ = !cfg.tlb.enabled;

    if (usesPipmMechanism(scheme)) {
        globalRemap_ = std::make_unique<RemapCache>(
            cfg.pipm.globalCacheBytes, 2, cfg.pipm.globalCacheWays,
            cfg.pipm.globalCacheRoundTrip, "global_remap",
            cfg.pipm.infiniteGlobalCache);
        pipm_ = std::make_unique<PipmState>(
            cfg.pipm, cfg.numHosts,
            scheme == Scheme::hwStatic ? PipmMode::staticMap
                                       : PipmMode::vote,
            *space_);
        pipm_->reservePages(space_->sharedPages(),
                            cfg.localBytesPerHost() / pageBytes);
        if (metaFaults_)
            pipm_->enableJournal(cfg.fault.metaJournalPages);
        naiveCoherence_ = scheme == Scheme::pipmNaive;
    }

    if (usesOsMigration(scheme)) {
        const std::uint64_t pages = space_->sharedPages();
        switch (scheme) {
          case Scheme::nomad:
            osPolicy_ = std::make_unique<NomadPolicy>(pages, cfg.numHosts);
            break;
          case Scheme::memtis:
            osPolicy_ = std::make_unique<MemtisPolicy>(pages, cfg.numHosts);
            break;
          case Scheme::hemem:
            osPolicy_ = std::make_unique<HememPolicy>(pages, cfg.numHosts);
            break;
          case Scheme::osSkew:
            osPolicy_ = std::make_unique<OsSkewPolicy>(
                pages, cfg.numHosts, cfg.osMigration.hotThreshold);
            break;
          default:
            panic("unreachable OS scheme");
        }
        migratedTo_.assign(pages, invalidHost);
        const Cycles mig_cost =
            cfg.osPageInitiatorCycles() +
            cfg.osPageOtherCycles() *
                (cfg.numHosts * cfg.coresPerHost - 1);
        harmful_ = std::make_unique<HarmfulTracker>(est_.local, est_.cxl,
                                                    est_.gim, mig_cost);
        harmful_->reserve(std::min<std::uint64_t>(space_->sharedPages(),
                                                  1u << 14));
        nextEpoch_ = cfg.osEpochCycles();
    }

    stats_.addCounter(&demandAccesses, "demand_accesses",
                      "all demand accesses");
    stats_.addCounter(&sharedAccesses, "shared_accesses",
                      "accesses to shared heap data");
    stats_.addCounter(&sharedLlcMisses, "shared_llc_misses",
                      "shared accesses missing the caches");
    stats_.addCounter(&localServedMisses, "local_served_misses",
                      "shared misses served by own local DRAM");
    stats_.addCounter(&cxlServedMisses, "cxl_served_misses",
                      "shared misses served by CXL memory");
    stats_.addCounter(&interHostAccesses, "inter_host_accesses",
                      "accesses served from another host");
    stats_.addCounter(&interHostStallCycles, "inter_host_stall_cycles",
                      "latency sum of inter-host accesses");
    stats_.addCounter(&mgmtStallCycles, "mgmt_stall_cycles",
                      "kernel migration stalls charged to cores");
    stats_.addCounter(&migrationTransferBytes, "migration_transfer_bytes",
                      "page-copy bytes moved by OS migration (unscaled)");
    stats_.addCounter(&osMigrations, "os_migrations",
                      "whole-page promotions executed");
    stats_.addCounter(&osDemotions, "os_demotions",
                      "whole-page demotions executed");
    stats_.addCounter(&upgradeMisses, "upgrades", "S->M upgrades");
    stats_.addAverage(&avgSharedMissLatency, "avg_shared_miss_latency",
                      "mean latency of shared LLC misses");
    stats_.addAverage(&avgLocalMissLatency, "avg_local_miss_latency",
                      "mean latency of locally served shared misses");
    stats_.addAverage(&avgCxlMissLatency, "avg_cxl_miss_latency",
                      "mean latency of CXL-served shared misses");
    stats_.addAverage(&avgInterHostLatency, "avg_inter_host_latency",
                      "mean latency of inter-host accesses");
}

MultiHostSystem::~MultiHostSystem() = default;

HostId
MultiHostSystem::gimHostOf(std::uint64_t shared_idx) const
{
    return space_->sharedMapping(shared_idx).gimHost;
}

void
MultiHostSystem::setPageMigrationAllowed(std::uint64_t shared_idx,
                                         bool allowed)
{
    panic_if(!pipm_, "migration pinning requires a PIPM-mechanism scheme");
    const PageFrame page =
        pageOf(pageBase(space_->sharedMapping(shared_idx).cxlFrame));
    pipm_->setMigrationAllowed(page, allowed);
    if (!allowed && pipm_->migratedHostOf(page) != invalidHost)
        performRevocation(pipm_->migratedHostOf(page), page, 0);
}

Cycles
MultiHostSystem::takePendingStall(HostId h, CoreId c)
{
    Cycles &slot = hosts_[h].pendingStall[c];
    const Cycles out = slot;
    slot = 0;
    return out;
}

AccessResult
MultiHostSystem::access(HostId h, CoreId c, const MemRef &ref,
                        Cycles now_in, std::uint64_t write_data)
{
    // Private-reference fast path (DESIGN.md §9): with no TLB modelled
    // a private access touches only this host's own hierarchy — skip
    // the virtual-namespace and shared-path plumbing below. Counters
    // and panics match the general path exactly.
    if (!ref.shared && fastPrivate_) {
        panic_if(h >= cfg_.numHosts, "host id out of range");
        panic_if(!hostAlive_[h], "access issued by crashed host ", int(h));
        demandAccesses.inc();
        const Cycles stall = takePendingStall(h, c);
        const PhysAddr pa = space_->privateAddr(
            h, ref.page * pageBytes +
                   static_cast<std::uint64_t>(ref.lineIdx) * lineBytes);
        std::uint64_t data = 0;
        const Cycles lat = localAccess(h, c, pa, ref.op, now_in + stall,
                                       write_data, &data);
        return {lat, stall, data};
    }

    Cycles now = now_in;
    panic_if(h >= cfg_.numHosts, "host id out of range");
    panic_if(!hostAlive_[h], "access issued by crashed host ", int(h));
    demandAccesses.inc();
    const Cycles stall = takePendingStall(h, c);
    now += stall;
    Cycles lat = 0;
    std::uint64_t data = 0;

    if (!hosts_[h].tlbs.empty()) {
        // Virtual page namespace: shared pages first, then per-host
        // private ranges (matches the trace generators' reference space).
        const std::uint64_t vpage =
            ref.shared ? ref.page
                       : space_->sharedPages() +
                             static_cast<std::uint64_t>(h) * (1ull << 20) +
                             ref.page;
        lat += hosts_[h].tlbs[c].translate(vpage);
    }

    if (!ref.shared) {
        const PhysAddr pa = space_->privateAddr(
            h, ref.page * pageBytes +
                   static_cast<std::uint64_t>(ref.lineIdx) * lineBytes);
        lat += localAccess(h, c, pa, ref.op, now, write_data, &data);
        return {lat, stall, data};
    }

    sharedAccesses.inc();
    const std::uint64_t idx = ref.page;
    const SharedMapping &mapping = space_->sharedMapping(idx);
    const PhysAddr pa =
        pageBase(mapping.frame) +
        static_cast<PhysAddr>(ref.lineIdx) * lineBytes;

    if (scheme_ == Scheme::localOnly) {
        lat += idealAccess(h, c, pa, ref.op, now, write_data, &data);
        return {lat, stall, data};
    }

    if (mapping.gimHost == invalidHost) {
        lat += cxlAccess(h, c, idx, pa, ref.op, now, write_data,
                         &data);
    } else if (mapping.gimHost == h) {
        // OS-migrated page owned by this host: plain local access.
        const auto before = hosts_[h].caches->misses.value();
        lat += localAccess(h, c, pa, ref.op, now, write_data, &data);
        if (hosts_[h].caches->misses.value() != before) {
            sharedLlcMisses.inc();
            localServedMisses.inc();
            avgSharedMissLatency.sample(static_cast<double>(lat));
            avgLocalMissLatency.sample(static_cast<double>(lat));
            if (osPolicy_)
                osPolicy_->recordAccess(idx, h);
            if (harmful_)
                harmful_->onLocalHit(idx);
        }
    } else {
        // Fig. 3: non-cacheable 4-hop inter-host access.
        const HostId gim_owner = mapping.gimHost;
        bool gim_ok = true;
        if (detection_) {
            const TxnAwait aw = awaitHost(gim_owner, now, true);
            lat += aw.latency;
            if (!aw.ok) {
                // Owner fenced: its GIM pages were demoted back to CXL
                // during reclamation; re-resolve and take the CXL path.
                gim_ok = false;
                const SharedMapping &remap = space_->sharedMapping(idx);
                const PhysAddr new_pa =
                    pageBase(remap.frame) +
                    static_cast<PhysAddr>(ref.lineIdx) * lineBytes;
                lat += cxlAccess(h, c, idx, new_pa, ref.op, now + lat,
                                 write_data, &data);
            }
        }
        if (gim_ok) {
            sharedLlcMisses.inc();
            const Cycles gl = gimRemoteAccess(h, gim_owner, pa, ref.op,
                                              now, write_data, &data);
            lat += gl;
            avgSharedMissLatency.sample(static_cast<double>(gl));
            if (osPolicy_)
                osPolicy_->recordAccess(idx, h);
            if (harmful_)
                harmful_->onRemoteAccess(idx);
        }
    }
    return {lat, stall, data};
}

Cycles
MultiHostSystem::localAccess(HostId h, CoreId c, PhysAddr pa, MemOp op,
                             Cycles now, std::uint64_t wdata,
                             std::uint64_t *rdata)
{
    CacheHierarchy &hier = *hosts_[h].caches;
    const LineAddr line = lineOf(pa);
    const bool is_write = op == MemOp::write;
    const auto a = hier.cachedAccess(c, line, is_write, wdata);

    if (a.level != HitLevel::miss) {
        if (is_write && !a.completed) {
            // Non-writable state: recordWrite carries the panic.
            hier.recordWrite(c, line, wdata);
        } else if (!is_write) {
            *rdata = a.data;
        }
        return a.level == HitLevel::l1
                   ? hier.l1RoundTrip()
                   : hier.l1RoundTrip() + hier.llcRoundTrip();
    }

    // Miss: local lines are host-exclusive (no cross-host coherence for
    // local memory); fill in M.
    Cycles lat = hier.l1RoundTrip() + hier.llcRoundTrip() +
                 cfg_.localDirectory.roundTrip;
    lat += hosts_[h].dram->access(pa - cfg_.localBase(h), now, false);
    const std::uint64_t data = mem_.read(line);
    auto evs = hier.fillAccess(c, line, HostState::M, false, data,
                               is_write, wdata);
    handleEvictions(h, evs, now);
    if (!is_write)
        *rdata = data;
    return lat;
}

Cycles
MultiHostSystem::idealAccess(HostId h, CoreId c, PhysAddr pa, MemOp op,
                             Cycles now, std::uint64_t wdata,
                             std::uint64_t *rdata)
{
    // Upper-bound "Local-only": the shared line is served from this host's
    // own DRAM with no coherence traffic. Cross-host data consistency is
    // deliberately not modelled (it is an idealisation, §5.1.3).
    CacheHierarchy &hier = *hosts_[h].caches;
    const LineAddr line = lineOf(pa);
    const bool is_write = op == MemOp::write;
    const auto a = hier.cachedAccess(c, line, is_write, wdata);

    if (a.level != HitLevel::miss) {
        if (is_write && !a.completed) {
            // Non-writable state: recordWrite carries the panic.
            hier.recordWrite(c, line, wdata);
        } else if (!is_write) {
            *rdata = a.data;
        }
        return a.level == HitLevel::l1
                   ? hier.l1RoundTrip()
                   : hier.l1RoundTrip() + hier.llcRoundTrip();
    }

    sharedLlcMisses.inc();
    localServedMisses.inc();
    Cycles lat = hier.l1RoundTrip() + hier.llcRoundTrip() +
                 cfg_.localDirectory.roundTrip;
    const PhysAddr device_addr =
        (pa - cfg_.cxlBase()) % cfg_.localBytesPerHost();
    lat += hosts_[h].dram->access(device_addr, now, false);
    const std::uint64_t data = mem_.read(line);
    auto evs = hier.fillAccess(c, line, HostState::M, false, data,
                               is_write, wdata);
    handleEvictions(h, evs, now);
    if (!is_write)
        *rdata = data;
    avgSharedMissLatency.sample(static_cast<double>(lat));
    avgLocalMissLatency.sample(static_cast<double>(lat));
    return lat;
}

Cycles
MultiHostSystem::gimRemoteAccess(HostId h, HostId owner, PhysAddr pa,
                                 MemOp op, Cycles now, std::uint64_t wdata,
                                 std::uint64_t *rdata)
{
    const LineAddr line = lineOf(pa);
    const bool is_write = op == MemOp::write;

    // Hop 1: requester -> CXL root complex at the memory node.
    Cycles lat = hosts_[h].link->transfer(
        LinkDir::toDevice, is_write ? CxlFlits::data : CxlFlits::header,
        now);
    // Hop 2: memory node -> owning host.
    lat += hosts_[owner].link->transfer(
        LinkDir::toHost, is_write ? CxlFlits::data : CxlFlits::header,
        now);

    // At the owner: local coherence directory resolves cache vs memory.
    CacheHierarchy &ohier = *hosts_[owner].caches;
    lat += cfg_.localDirectory.roundTrip;
    if (ohier.stateOf(line) != HostState::I) {
        lat += ohier.llcRoundTrip();
        if (is_write)
            ohier.recordWrite(0, line, wdata);
        else
            *rdata = ohier.dataOf(line);
    } else {
        lat += hosts_[owner].dram->access(pa - cfg_.localBase(owner),
                                          now, is_write);
        if (is_write)
            mem_.write(line, wdata);
        else
            *rdata = mem_.read(line);
    }

    // Hops 3 and 4: owner -> memory node -> requester.
    lat += hosts_[owner].link->transfer(
        LinkDir::toDevice, is_write ? CxlFlits::header : CxlFlits::data,
        now);
    lat += hosts_[h].link->transfer(
        LinkDir::toHost, is_write ? CxlFlits::header : CxlFlits::data,
        now);

    interHostAccesses.inc();
    interHostStallCycles.inc(lat);
    avgInterHostLatency.sample(static_cast<double>(lat));
    return lat;
}

Cycles
MultiHostSystem::localRemapLookup(HostId h, PageFrame page, Cycles now)
{
    RemapCache &rc = *hosts_[h].localRemap;
    Cycles lat = rc.roundTrip();
    if (!rc.lookup(page)) {
        // Two-level radix walk in local DRAM: one access when the root
        // entry is empty, two when a leaf must be read.
        const unsigned walks =
            pipm_->hasLocalEntry(h, page) ? cfg_.pipm.tableLevels : 1;
        for (unsigned i = 0; i < walks; ++i) {
            // Table pages live in local DRAM; hash the page to spread
            // walk traffic over banks.
            const PhysAddr walk_addr =
                (page * 0x9e3779b97f4a7c15ull) %
                cfg_.localBytesPerHost();
            lat += hosts_[h].dram->access(walk_addr, now, false);
        }
        rc.fill(page);
    }
    return lat;
}

Cycles
MultiHostSystem::globalRemapLookup(PageFrame page, Cycles now)
{
    RemapCache &rc = *globalRemap_;
    Cycles lat = rc.roundTrip();
    if (!rc.lookup(page)) {
        const PhysAddr walk_addr =
            (page * 0x9e3779b97f4a7c15ull) % cfg_.cxlPoolBytes();
        lat += cxlDram_.access(walk_addr, now, false);
        rc.fill(page);
    }
    return lat;
}

Cycles
MultiHostSystem::upgrade(HostId h, LineAddr line, Cycles now)
{
    upgradeMisses.inc();
    Cycles lat = hosts_[h].link->transfer(LinkDir::toDevice,
                                          CxlFlits::header, now);
    lat += deviceDir_.accessLatency(line, now);
    DirEntry *entry = deviceDir_.lookup(line);
    panic_if(!entry, "upgrade: no directory entry for cached S line ",
             line);
    panic_if(!entry->has(h), "upgrade: host not recorded as sharer");

    // Invalidate the other sharers in parallel; the latency is the
    // slowest round trip among them.
    Cycles inv_max = 0;
    for (unsigned s = 0; s < cfg_.numHosts; ++s) {
        const auto sh = static_cast<HostId>(s);
        if (sh == h || !entry->has(sh))
            continue;
        Cycles rt = 0;
        if (detection_) {
            // A stalled sharer delays its ack; the invalidation itself
            // still lands (suspect_on_fail = false keeps `entry` valid).
            rt += awaitHost(sh, now, false).latency;
        }
        rt += hosts_[sh].link->transfer(LinkDir::toHost,
                                        CxlFlits::header, now);
        rt += hosts_[sh].caches->llcRoundTrip();
        hosts_[sh].caches->invalidateLine(line);   // S copies are clean
        rt += hosts_[sh].link->transfer(LinkDir::toDevice,
                                        CxlFlits::header, now + rt);
        inv_max = std::max(inv_max, rt);
    }
    lat += inv_max;
    noteDirState(line, entry->state, DevState::M, h, now);
    entry->state = DevState::M;
    entry->sharers = 1u << h;
    entry->ownerEpoch = epochOf(h);
    lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::header,
                                    now);
    return lat;
}

void
MultiHostSystem::dirAllocate(LineAddr line, DirEntry entry, Cycles now)
{
    auto recall = deviceDir_.allocate(line, entry);
    if (recall)
        handleRecall(*recall, now);
}

void
MultiHostSystem::handleRecall(const DeviceDirectory::Recall &recall,
                              Cycles now)
{
    // Invalidate the victim line at every sharer; dirty data is written
    // back to CXL memory. All of this is off the demand critical path.
    // A victim owned in M by a dead-but-unreclaimed host cannot write
    // back: account the loss before the entry evaporates.
    noteDeadOwnedDrop(recall.line, recall.entry);
    for (unsigned s = 0; s < cfg_.numHosts; ++s) {
        const auto sh = static_cast<HostId>(s);
        if (!recall.entry.has(sh))
            continue;
        hosts_[sh].link->transfer(LinkDir::toHost, CxlFlits::header, now);
        auto ev = hosts_[sh].caches->invalidateLine(recall.line);
        if (ev && ev->dirty) {
            mem_.write(recall.line, ev->data);
            hosts_[sh].link->transfer(LinkDir::toDevice, CxlFlits::data,
                                      now);
            cxlDram_.access(lineBase(recall.line) - cfg_.cxlBase(), now,
                            true);
        } else {
            hosts_[sh].link->transfer(LinkDir::toDevice, CxlFlits::header,
                                      now);
        }
    }
}

Cycles
MultiHostSystem::cxlAccess(HostId h, CoreId c, std::uint64_t shared_idx,
                           PhysAddr pa, MemOp op, Cycles now,
                           std::uint64_t wdata, std::uint64_t *rdata)
{
    CacheHierarchy &hier = *hosts_[h].caches;
    const LineAddr line = lineOf(pa);
    const PageFrame page = pageOf(pa);
    const unsigned li = lineInPage(pa);
    const bool is_write = op == MemOp::write;

    // ---- Cache hits ----------------------------------------------------
    const auto a = hier.cachedAccess(c, line, is_write, wdata);
    if (a.level != HitLevel::miss) {
        Cycles lat = hier.l1RoundTrip();
        if (a.level == HitLevel::llc)
            lat += hier.llcRoundTrip();
        if (!is_write) {
            *rdata = a.data;
            return lat;
        }
        if (!a.completed) {
            // S copy: upgrade first. Any other non-writable state hits
            // recordWrite's panic, as it always has.
            if (a.state == HostState::S) {
                lat += upgrade(h, line, now);
                hier.setState(line, HostState::M);
            }
            hier.recordWrite(c, line, wdata);
        }
        return lat;
    }

    // ---- LLC miss --------------------------------------------------------
    sharedLlcMisses.inc();
    if (osPolicy_)
        osPolicy_->recordAccess(shared_idx, h);

    Cycles lat = hier.l1RoundTrip() + hier.llcRoundTrip() +
                 cfg_.localDirectory.roundTrip;

    if (metaFaults_) {
        // §12: the miss consults remap and directory metadata below, and
        // the device validates every metadata read against its shadow
        // checksum — so a demand access that trips over a quarantined
        // entry pays the repair (or the degraded fallback) here, on the
        // critical path.
        lat += metaGuardPage(page, now);
        lat += metaGuardLine(line, now);
    }

    if (pipm_) {
        // §4.3.3: every LLC miss to CXL-DSM resolves the full local
        // coherence state (I vs I') through the local remapping table.
        lat += localRemapLookup(h, page, now);

        if (!naiveCoherence_ && pipm_->lineMigrated(h, page, li)) {
            // Case 3: I' -> ME. Served entirely from local DRAM. (The
            // naive §4.3.1 design cannot short-circuit here: it must
            // consult the device directory first — Fig. 8 — so it falls
            // through to the device flow below.)
            const PhysAddr lpa = pipm_->localLineAddr(h, page, li);
            lat += hosts_[h].dram->access(lpa - cfg_.localBase(h),
                                          now, false);
            const std::uint64_t data = mem_.read(lineOf(lpa));
            pipm_->localOwnerAccess(h, page);
            auto evs = hier.fillAccess(c, line, HostState::ME, false, data,
                                       is_write, wdata);
            handleEvictions(h, evs, now);
            if (!is_write)
                *rdata = data;
            localServedMisses.inc();
            avgSharedMissLatency.sample(static_cast<double>(lat));
            avgLocalMissLatency.sample(static_cast<double>(lat));
            return lat;
        }
        if (pipm_->hasLocalEntry(h, page)) {
            // Local access to a not-yet-migrated line of an owned page
            // still counts toward the local counter (§4.2 step 4).
            pipm_->localOwnerAccess(h, page);
        }
    }

    // ---- To the device ----------------------------------------------------
    lat += hosts_[h].link->transfer(LinkDir::toDevice, CxlFlits::header,
                                    now);
    lat += deviceDir_.accessLatency(line, now);

    if (pipm_) {
        // Majority vote: device-visible accesses update the global
        // remapping entry. The update itself is off the critical path
        // (the global table is only *waited on* when forwarding). Under
        // migration backoff (link error rate too high) the vote still
        // counts but a firing is suppressed until the link is healthy.
        // A page group whose metadata circuit breaker is open (§12:
        // sustained corruption/repair activity) likewise sheds the
        // migration while demand traffic keeps flowing.
        const bool allow =
            !faults_ || (!faults_->migrationsSuspended(now) &&
                         !faults_->migrationShed(page, now));
        const VoteOutcome vote = pipm_->deviceAccess(page, h, allow);
        if (vote.suppressed && faults_)
            faults_->migrationsDeferred.inc();
        if (vote.suppressed && trace_) {
            trace_->record(ObsEventType::promotionSuppressed, now, page,
                           h);
        }
        if (vote.promoted) {
            if (detection_ && !hostAlive_[vote.promotedTo]) {
                // Votes cast before the winner was fenced can still fire
                // (oracle mode clears them synchronously at the crash;
                // the detector cannot). Roll the setup back like an
                // aborted promotion — no line has migrated yet.
                pipm_->abortPromotion(vote.promotedTo, page);
                faults_->promotionAborts.inc();
                if (trace_) {
                    trace_->record(ObsEventType::promotionAbort, now,
                                   page, vote.promotedTo);
                }
            } else if (faults_ && faults_->abortPromotion()) {
                // The promotion setup (frame allocation + table install)
                // was interrupted mid-flight: roll everything back. No
                // line has migrated yet, so the rollback restores the
                // exact pre-vote state; the aborted setup still costs
                // two header round-trips on the would-be owner's link.
                pipm_->abortPromotion(vote.promotedTo, page);
                hosts_[vote.promotedTo].link->transfer(
                    LinkDir::toHost, CxlFlits::header, now);
                hosts_[vote.promotedTo].link->transfer(
                    LinkDir::toDevice, CxlFlits::header, now);
                if (trace_) {
                    trace_->record(ObsEventType::promotionAbort, now,
                                   page, vote.promotedTo);
                }
            } else {
                if (hosts_[vote.promotedTo].localRemap)
                    hosts_[vote.promotedTo].localRemap->invalidate(page);
                if (trace_) {
                    trace_->record(ObsEventType::promotion, now, page,
                                   vote.promotedTo);
                }
            }
        }
    }

    DirEntry *entry = deviceDir_.lookup(line);

    if (detection_ && entry && entry->state == DevState::M) {
        // The forward below needs the owner to answer. A dead or fenced
        // owner never will: the timeout/retry engine burns its budget,
        // the owner is suspected and its state reclaimed (including this
        // entry), and the access restarts against the swept directory.
        const HostId fwd_owner = entry->owner(cfg_.numHosts);
        if (fwd_owner != invalidHost && fwd_owner != h) {
            const TxnAwait aw = awaitHost(fwd_owner, now, true);
            lat += aw.latency;
            if (!aw.ok)
                entry = deviceDir_.lookup(line);
        }
    }

    if (entry && entry->state == DevState::M) {
        // Epoch check (DESIGN.md §8): an entry stamped under an epoch its
        // owner no longer runs in is a stale in-flight reference — the
        // owner crashed (and possibly rejoined cold) since the entry went
        // M. The crash sweep removes such entries eagerly, so this is a
        // backstop for references raced in between; the device drops the
        // entry and serves its own copy below.
        const HostId mo = entry->owner(cfg_.numHosts);
        if (mo == invalidHost || entry->ownerEpoch != hostEpoch_[mo]) {
            deviceDir_.deallocate(line);
            entry = nullptr;
            if (faults_)
                faults_->staleEpochDrops.inc();
        }
    }

    if (entry && entry->state == DevState::M) {
        // Another host owns the latest copy: forward (Fig. 2 steps 3-5).
        const HostId owner = entry->owner(cfg_.numHosts);
        panic_if(owner == h, "directory owner is the requester itself");
        CacheHierarchy &ohier = *hosts_[owner].caches;
        panic_if(ohier.stateOf(line) != HostState::M,
                 "directory M but owner does not cache line in M");

        lat += hosts_[owner].link->transfer(LinkDir::toHost,
                                            CxlFlits::header, now);
        lat += cfg_.localDirectory.roundTrip + ohier.llcRoundTrip();
        const std::uint64_t data = ohier.dataOf(line);
        if (is_write) {
            ohier.invalidateLine(line);
            noteDirState(line, DevState::M, DevState::M, h, now);
            entry->state = DevState::M;
            entry->sharers = 1u << h;
            entry->ownerEpoch = epochOf(h);
        } else {
            ohier.setState(line, HostState::S);
            ohier.markClean(line);
            // The downgrade writes the latest data back to memory — the
            // line's local frame when the naive in-memory bit is set,
            // CXL memory otherwise.
            const HostId bit_host =
                naiveCoherence_ ? pipm_->migratedHostOf(page) : invalidHost;
            if (bit_host != invalidHost &&
                pipm_->lineMigrated(bit_host, page, li)) {
                const PhysAddr lpa =
                    pipm_->localLineAddr(bit_host, page, li);
                mem_.write(lineOf(lpa), data);
                hosts_[bit_host].dram->access(
                    lpa - cfg_.localBase(bit_host), now, true);
            } else {
                mem_.write(line, data);
                cxlDram_.access(pa - cfg_.cxlBase(), now, true);
            }
            noteDirState(line, DevState::M, DevState::S, h, now);
            entry->state = DevState::S;
            entry->sharers |= 1u << h;
        }
        lat += hosts_[owner].link->transfer(LinkDir::toDevice,
                                            CxlFlits::data, now);
        lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::data,
                                        now);

        auto evs = hier.fillAccess(c, line,
                                   is_write ? HostState::M : HostState::S,
                                   is_write, data, is_write, wdata);
        handleEvictions(h, evs, now);
        if (!is_write)
            *rdata = data;

        interHostAccesses.inc();
        interHostStallCycles.inc(lat);
        avgInterHostLatency.sample(static_cast<double>(lat));
        avgSharedMissLatency.sample(static_cast<double>(lat));
        return lat;
    }

    if (entry && entry->state == DevState::S) {
        if (!is_write) {
            lat += cxlDram_.access(pa - cfg_.cxlBase(), now, false);
            std::uint64_t data;
            const HostId bit_host =
                naiveCoherence_ ? pipm_->migratedHostOf(page) : invalidHost;
            if (bit_host != invalidHost &&
                pipm_->lineMigrated(bit_host, page, li)) {
                // Naive redirect: the bit says the memory copy lives in
                // bit_host's local DRAM (extra hops, Fig. 8).
                lat += hosts_[bit_host].link->transfer(
                    LinkDir::toHost, CxlFlits::header, now);
                lat += hosts_[bit_host].dram->access(
                    pipm_->localLineAddr(bit_host, page, li) -
                        cfg_.localBase(bit_host),
                    now, false);
                lat += hosts_[bit_host].link->transfer(
                    LinkDir::toDevice, CxlFlits::data, now);
                data = mem_.read(
                    lineOf(pipm_->localLineAddr(bit_host, page, li)));
            } else {
                data = mem_.read(line);
            }
            entry->add(h);
            lat += hosts_[h].link->transfer(LinkDir::toHost,
                                            CxlFlits::data, now);
            auto evs = hier.fillAccess(c, line, HostState::S, false, data,
                                       false, 0);
            handleEvictions(h, evs, now);
            *rdata = data;
            cxlServedMisses.inc();
            avgSharedMissLatency.sample(static_cast<double>(lat));
            avgCxlMissLatency.sample(static_cast<double>(lat));
            return lat;
        }
        // Write miss on a shared line: invalidate every sharer.
        Cycles inv_max = 0;
        for (unsigned s = 0; s < cfg_.numHosts; ++s) {
            const auto sh = static_cast<HostId>(s);
            if (sh == h || !entry->has(sh))
                continue;
            Cycles rt = 0;
            if (detection_) {
                // Stalled sharers delay their acks; suspicion is left to
                // the lease so `entry` survives the fan-out.
                rt += awaitHost(sh, now, false).latency;
            }
            rt += hosts_[sh].link->transfer(
                LinkDir::toHost, CxlFlits::header, now);
            rt += hosts_[sh].caches->llcRoundTrip();
            hosts_[sh].caches->invalidateLine(line);
            rt += hosts_[sh].link->transfer(LinkDir::toDevice,
                                            CxlFlits::header,
                                            now + rt);
            inv_max = std::max(inv_max, rt);
        }
        lat += inv_max;
        lat += cxlDram_.access(pa - cfg_.cxlBase(), now, false);
        std::uint64_t data;
        const HostId wbit_host =
            naiveCoherence_ ? pipm_->migratedHostOf(page) : invalidHost;
        if (wbit_host != invalidHost &&
            pipm_->lineMigrated(wbit_host, page, li)) {
            // Naive redirect: the memory copy lives in the owner's
            // local frame.
            lat += hosts_[wbit_host].link->transfer(
                LinkDir::toHost, CxlFlits::header, now);
            const PhysAddr lpa =
                pipm_->localLineAddr(wbit_host, page, li);
            lat += hosts_[wbit_host].dram->access(
                lpa - cfg_.localBase(wbit_host), now, false);
            lat += hosts_[wbit_host].link->transfer(
                LinkDir::toDevice, CxlFlits::data, now);
            data = mem_.read(lineOf(lpa));
        } else {
            data = mem_.read(line);
        }
        noteDirState(line, DevState::S, DevState::M, h, now);
        entry->state = DevState::M;
        entry->sharers = 1u << h;
        entry->ownerEpoch = epochOf(h);
        lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::data,
                                        now);
        auto evs = hier.fillAccess(c, line, HostState::M, true, data,
                                   true, wdata);
        handleEvictions(h, evs, now);
        cxlServedMisses.inc();
        avgSharedMissLatency.sample(static_cast<double>(lat));
        avgCxlMissLatency.sample(static_cast<double>(lat));
        return lat;
    }

    // ---- Device state I ---------------------------------------------------
    HostId mh = pipm_ ? pipm_->migratedHostOf(page) : invalidHost;
    if (detection_ && mh != invalidHost && mh != h &&
        pipm_->lineMigrated(mh, page, li)) {
        // The pull-back below needs the migrated-to host to answer. If
        // it never does, suspicion reintegrates the page to its CXL home
        // and the access falls through to the plain path.
        const TxnAwait aw = awaitHost(mh, now, true);
        lat += aw.latency;
        if (!aw.ok)
            mh = pipm_->migratedHostOf(page);
    }
    if (naiveCoherence_ && mh != invalidHost &&
        pipm_->lineMigrated(mh, page, li)) {
        // Naive coherence (Fig. 8): the directory yielded nothing, so
        // the device examines the in-memory bit (a CXL memory read) and
        // redirects the request to the bit owner's local DRAM. The bit
        // stays set — no incremental migration exists in this design —
        // and even the owner itself pays the full device round trip,
        // which is precisely the inefficiency §4.3.1 identifies.
        lat += cxlDram_.access(pa - cfg_.cxlBase(), now, false);
        const PhysAddr lpa = pipm_->localLineAddr(mh, page, li);
        std::uint64_t data;
        if (mh == h) {
            // Redirect back to the requester's own local memory.
            lat += hosts_[h].link->transfer(LinkDir::toHost,
                                            CxlFlits::header, now);
            lat += hosts_[h].dram->access(lpa - cfg_.localBase(h), now,
                                          false);
            data = mem_.read(lineOf(lpa));
            pipm_->localOwnerAccess(h, page);
            localServedMisses.inc();
        } else {
            lat += globalRemapLookup(page, now);
            lat += hosts_[mh].link->transfer(LinkDir::toHost,
                                             CxlFlits::header, now);
            lat += hosts_[mh].dram->access(lpa - cfg_.localBase(mh),
                                           now, !is_write);
            data = is_write ? wdata : mem_.read(lineOf(lpa));
            lat += hosts_[mh].link->transfer(LinkDir::toDevice,
                                             CxlFlits::data, now);
            lat += hosts_[h].link->transfer(LinkDir::toHost,
                                            CxlFlits::data, now);
            interHostAccesses.inc();
            interHostStallCycles.inc(lat);
            avgInterHostLatency.sample(static_cast<double>(lat));
        }
        const InterHostOutcome ih =
            mh == h ? InterHostOutcome{}
                    : pipm_->interHostAccess(mh, page);
        DirEntry ne;
        ne.state = DevState::M;
        ne.sharers = 1u << h;
        ne.ownerEpoch = epochOf(h);
        dirAllocate(line, ne, now);
        auto evs = hier.fillAccess(c, line, HostState::M, is_write, data,
                                   is_write, wdata);
        handleEvictions(h, evs, now);
        if (!is_write)
            *rdata = data;
        if (ih.revoked)
            performRevocation(mh, page, now);
        avgSharedMissLatency.sample(static_cast<double>(lat));
        if (mh == h)
            avgLocalMissLatency.sample(static_cast<double>(lat));
        return lat;
    }
    if (pipm_ && !naiveCoherence_ && mh != invalidHost && mh != h &&
        pipm_->lineMigrated(mh, page, li)) {
        // Cases 2/5/6: inter-host access to a line migrated into host mh.
        lat += globalRemapLookup(page, now);
        // The device reads CXL memory to verify the I' in-memory bit.
        lat += cxlDram_.access(pa - cfg_.cxlBase(), now, false);
        lat += hosts_[mh].link->transfer(LinkDir::toHost, CxlFlits::header,
                                         now);

        CacheHierarchy &ohier = *hosts_[mh].caches;
        lat += cfg_.localDirectory.roundTrip;
        std::uint64_t data;
        const HostState owner_state = ohier.stateOf(line);
        bool owner_keeps_s = false;
        if (owner_state == HostState::ME) {
            // Cases 5 (write) and 6 (read).
            lat += ohier.llcRoundTrip();
            data = ohier.dataOf(line);
            if (is_write) {
                ohier.invalidateLine(line);
            } else {
                ohier.setState(line, HostState::S);
                ohier.markClean(line);
                owner_keeps_s = true;
            }
        } else {
            // Case 2: I' uncached; read the owner's local DRAM copy.
            panic_if(owner_state != HostState::I,
                     "migrated line cached in unexpected state ",
                     toString(owner_state));
            const PhysAddr lpa = pipm_->localLineAddr(mh, page, li);
            lat += hosts_[mh].dram->access(lpa - cfg_.localBase(mh),
                                           now, false);
            data = mem_.read(lineOf(lpa));
        }

        // Migrate the line back: clear both in-memory bits and write the
        // data to its CXL home (asynchronous writeback).
        pipm_->clearLineMigrated(mh, page, li);
        mem_.write(line, data);
        cxlDram_.access(pa - cfg_.cxlBase(), now, true);

        lat += hosts_[mh].link->transfer(LinkDir::toDevice, CxlFlits::data,
                                         now);

        // Local-counter decrement; revoke the whole page at zero.
        const InterHostOutcome ih = pipm_->interHostAccess(mh, page);

        DirEntry ne;
        if (is_write) {
            ne.state = DevState::M;
            ne.sharers = 1u << h;
        } else {
            ne.state = owner_keeps_s ? DevState::S : DevState::M;
            ne.sharers = 1u << h;
            if (owner_keeps_s)
                ne.sharers |= 1u << mh;
        }
        ne.ownerEpoch = epochOf(h);
        dirAllocate(line, ne, now);

        lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::data,
                                        now);
        const HostState fill_state =
            is_write ? HostState::M
                     : (owner_keeps_s ? HostState::S : HostState::M);
        auto evs = hier.fillAccess(c, line, fill_state, is_write, data,
                                   is_write, wdata);
        handleEvictions(h, evs, now);
        if (!is_write)
            *rdata = data;

        if (ih.revoked)
            performRevocation(mh, page, now);

        interHostAccesses.inc();
        interHostStallCycles.inc(lat);
        avgInterHostLatency.sample(static_cast<double>(lat));
        avgSharedMissLatency.sample(static_cast<double>(lat));
        return lat;
    }

    // Plain CXL memory access (Fig. 2 step 7). The PIPM in-memory bit
    // travels with the data, costing nothing extra.
    lat += cxlDram_.access(pa - cfg_.cxlBase(), now, false);
    if (faults_) {
        // Every first access to an uncached CXL line comes through this
        // path, so it is the single place the device's ECC surfaces
        // poison. A transient error is cured by one on-device scrubbing
        // retry; persistent poison demotes the line to an uncacheable
        // degraded path forever (it never fills a cache and never gets a
        // directory entry, so this path is re-taken on every access).
        const bool known_poisoned =
            trace_ && faults_->linePersistentlyPoisoned(line);
        switch (faults_->poisonCheck(line)) {
          case PoisonState::transientPoison:
            if (trace_) {
                trace_->record(ObsEventType::poisonTransient, now, line,
                               h);
            }
            lat += cxlDram_.access(pa - cfg_.cxlBase(), now + lat, false);
            break;
          case PoisonState::persistentPoison:
            if (trace_ && !known_poisoned) {
                trace_->record(ObsEventType::poisonPersistent, now, line,
                               h);
            }
            lat += degradedLineAccess(h, line, pa, op, now, wdata, rdata);
            cxlServedMisses.inc();
            avgSharedMissLatency.sample(static_cast<double>(lat));
            avgCxlMissLatency.sample(static_cast<double>(lat));
            return lat;
          case PoisonState::clean:
            break;
        }
    }
    const std::uint64_t data = mem_.read(line);
    lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::data,
                                    now);
    // MESI-style exclusive grant: no other sharer, so the line fills
    // writable (M, possibly clean) — this is what makes read-mostly lines
    // eligible for incremental migration on eviction (case 1).
    DirEntry ne;
    ne.state = DevState::M;
    ne.sharers = 1u << h;
    ne.ownerEpoch = epochOf(h);
    dirAllocate(line, ne, now);
    auto evs = hier.fillAccess(c, line, HostState::M, is_write, data,
                               is_write, wdata);
    handleEvictions(h, evs, now);
    if (!is_write)
        *rdata = data;
    cxlServedMisses.inc();
    avgSharedMissLatency.sample(static_cast<double>(lat));
    avgCxlMissLatency.sample(static_cast<double>(lat));
    return lat;
}

Cycles
MultiHostSystem::degradedLineAccess(HostId h, LineAddr line, PhysAddr pa,
                                    MemOp op, Cycles now,
                                    std::uint64_t wdata,
                                    std::uint64_t *rdata)
{
    faults_->degradedAccesses.inc();
    Cycles lat = 0;
    // The device NAKs the cacheable request with a poison indication...
    lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::header,
                                    now);
    // ...and the host retries uncacheably: request (with write data) out,
    // scrubbed DRAM access on the device, data (or completion) back.
    lat += hosts_[h].link->transfer(LinkDir::toDevice,
                                    op == MemOp::write ? CxlFlits::data
                                                       : CxlFlits::header,
                                    now + lat);
    lat += cxlDram_.access(pa - cfg_.cxlBase(), now + lat,
                           op == MemOp::write);
    if (op == MemOp::write) {
        // Uncacheable writes go straight through to memory.
        mem_.write(line, wdata);
        lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::header,
                                        now + lat);
    } else {
        *rdata = mem_.read(line);
        lat += hosts_[h].link->transfer(LinkDir::toHost, CxlFlits::data,
                                        now + lat);
    }
    return lat;
}

void
MultiHostSystem::performRevocation(HostId owner, PageFrame page, Cycles now)
{
    if (metaFaults_) {
        // §12: revocation rewrites the page's migration metadata; the
        // device validates it first. Resolution may force-reclaim the
        // page (unrepairable, journal overwritten), in which case the
        // revocation has nothing left to do.
        metaGuardPage(page, now);
        if (!pipm_->hasLocalEntry(owner, page))
            return;
    }
    // Collect the local frame before the entry disappears.
    panic_if(!pipm_->hasLocalEntry(owner, page),
             "revocation of page without local entry");
    CacheHierarchy &ohier = *hosts_[owner].caches;

    // First pull any ME-cached lines of the page back through the cache.
    // Under naive coherence cached copies are ordinary M/S lines tracked
    // by the directory; the local frame is the memory copy, so only it
    // moves (a dirty cached copy will write back through the normal,
    // now-unredirected path later).
    const PhysAddr base = pageBase(page);
    for (unsigned li = 0; li < linesPerPage; ++li) {
        if (!pipm_->lineMigrated(owner, page, li))
            continue;
        const LineAddr line = lineOf(base + li * lineBytes);
        std::uint64_t data;
        if (!naiveCoherence_) {
            auto ev = ohier.invalidateLine(line);
            if (ev) {
                data = ev->data;
            } else {
                const PhysAddr lpa =
                    pipm_->localLineAddr(owner, page, li);
                hosts_[owner].dram->access(lpa - cfg_.localBase(owner),
                                           now, false);
                data = mem_.read(lineOf(lpa));
            }
        } else {
            const PhysAddr lpa = pipm_->localLineAddr(owner, page, li);
            hosts_[owner].dram->access(lpa - cfg_.localBase(owner), now,
                                       false);
            data = mem_.read(lineOf(lpa));
        }
        mem_.write(line, data);
        hosts_[owner].link->transfer(LinkDir::toDevice, CxlFlits::data,
                                     now);
        cxlDram_.access(lineBase(line) - cfg_.cxlBase(), now, true);
    }
    const std::uint64_t back = pipm_->revoke(owner, page);
    if (trace_) {
        trace_->record(ObsEventType::revocation, now, page, owner,
                       static_cast<std::uint32_t>(std::popcount(back)));
    }
    if (hosts_[owner].localRemap)
        hosts_[owner].localRemap->invalidate(page);
    if (globalRemap_)
        globalRemap_->invalidate(page);
}

void
MultiHostSystem::handleEviction(HostId h,
                                const CacheHierarchy::Eviction &ev,
                                Cycles now)
{
    {
        const PhysAddr pa = lineBase(ev.line);

        if (scheme_ == Scheme::localOnly) {
            if (ev.dirty) {
                mem_.write(ev.line, ev.data);
                const PhysAddr device_addr =
                    cfg_.regionOf(pa) == AddrRegion::cxlPool
                        ? (pa - cfg_.cxlBase()) % cfg_.localBytesPerHost()
                        : pa - cfg_.localBase(h);
                hosts_[h].dram->access(device_addr, now, true);
            }
            return;
        }

        if (cfg_.regionOf(pa) == AddrRegion::hostLocal) {
            // Private data or a GIM page owned by this host.
            if (ev.dirty) {
                mem_.write(ev.line, ev.data);
                hosts_[h].dram->access(pa - cfg_.localBase(h), now, true);
            }
            return;
        }

        // CXL-DSM line.
        const PageFrame page = pageOf(pa);
        const unsigned li = lineInPage(pa);

        if (metaFaults_) {
            // §12: the eviction notifies (and possibly updates) the
            // line's directory entry; the device validates it first.
            // Evictions are off the demand critical path, so the repair
            // latency is not charged to anyone.
            metaGuardLine(ev.line, now);
        }

        if (ev.state == HostState::ME) {
            // Case 4: ME -> I'. Only a local writeback if dirty; no
            // device traffic at all.
            if (ev.dirty) {
                const PhysAddr lpa = pipm_->localLineAddr(h, page, li);
                mem_.write(lineOf(lpa), ev.data);
                hosts_[h].dram->access(lpa - cfg_.localBase(h), now, true);
            }
            return;
        }

        const HostId naive_owner =
            naiveCoherence_ ? pipm_->migratedHostOf(page) : invalidHost;
        if (naiveCoherence_ && ev.state == HostState::M &&
            naive_owner != invalidHost &&
            pipm_->lineMigrated(naive_owner, page, li)) {
            // Naive coherence: the in-memory bit stays set, so the
            // writeback is redirected to the line's local frame at the
            // page's owner (possibly across the fabric).
            if (ev.dirty) {
                const PhysAddr lpa =
                    pipm_->localLineAddr(naive_owner, page, li);
                mem_.write(lineOf(lpa), ev.data);
                hosts_[h].link->transfer(LinkDir::toDevice,
                                         CxlFlits::data, now);
                if (naive_owner != h) {
                    hosts_[naive_owner].link->transfer(
                        LinkDir::toHost, CxlFlits::data, now);
                }
                hosts_[naive_owner].dram->access(
                    lpa - cfg_.localBase(naive_owner), now, true);
            } else {
                hosts_[h].link->transfer(LinkDir::toDevice,
                                         CxlFlits::header, now);
            }
            if (DirEntry *entry = deviceDir_.lookup(ev.line)) {
                entry->remove(h);
                if (entry->sharers == 0)
                    deviceDir_.deallocate(ev.line);
            }
            return;
        }

        if (pipm_ && ev.state == HostState::M &&
            pipm_->migratedHostOf(page) == h &&
            !pipm_->lineMigrated(h, page, li) &&
            !(metaFaults_ &&
              faults_->linePersistentlyPoisoned(ev.line))) {
            // (The poison check above only exists in the §12 metadata
            // fault domain: the guard may have just degraded this very
            // line, and a poisoned line must never migrate — it is
            // served uncacheably forever. Gating on metaFaults_ keeps
            // the abort-draw position, and thus the fault RNG stream,
            // identical in every other configuration.)
            // The abort draw happens exactly when the old short-circuit
            // drew it (after the three eligibility checks), so adding the
            // trace hook does not shift the fault RNG stream.
            if (faults_ && faults_->abortLineMigration()) {
                if (trace_) {
                    trace_->record(ObsEventType::lineAbort, now, ev.line,
                                   h, li);
                }
                // Fall through to the normal eviction path: the safe
                // completion of an aborted case-1 migration is the
                // ordinary writeback to CXL memory.
            } else {
                // Case 1: incremental migration on local writeback. The
                // data is written to the page's local frame instead of
                // CXL memory; both in-memory bits flip and the device
                // directory entry is released.
                pipm_->setLineMigrated(h, page, li);
                const PhysAddr lpa = pipm_->localLineAddr(h, page, li);
                mem_.write(lineOf(lpa), ev.data);
                hosts_[h].dram->access(lpa - cfg_.localBase(h), now,
                                       true);
                // The directory-release message doubles as the bit-flip
                // notification; the CXL-side in-memory bit lives in ECC
                // spare bits and is folded into the device's metadata
                // handling (§4.3.1 footnote) — no data transfer, per
                // §4.1.
                hosts_[h].link->transfer(LinkDir::toDevice,
                                         CxlFlits::header, now);
                deviceDir_.deallocate(ev.line);
                return;
            }
        }

        // Normal eviction: dirty data (M) goes back to CXL memory; clean
        // lines just notify the directory. An aborted case-1 line
        // migration also lands here: the bit-flip never happened, so the
        // safe completion is the ordinary writeback to CXL memory —
        // neither copy is lost and no bit is left half-set.
        if (ev.state == HostState::M && ev.dirty) {
            mem_.write(ev.line, ev.data);
            hosts_[h].link->transfer(LinkDir::toDevice, CxlFlits::data,
                                     now);
            cxlDram_.access(pa - cfg_.cxlBase(), now, true);
        } else {
            hosts_[h].link->transfer(LinkDir::toDevice, CxlFlits::header,
                                     now);
        }
        if (DirEntry *entry = deviceDir_.lookup(ev.line)) {
            entry->remove(h);
            if (entry->sharers == 0)
                deviceDir_.deallocate(ev.line);
        }
    }
}

void
MultiHostSystem::tickSlow(Cycles now)
{
    if (faults_)
        processCrashEvents(now);
    if (metaFaults_) {
        processMetaEvents(now);
        if (now >= nextMetaScrub_) {
            runMetaScrub(now);
            nextMetaScrub_ += metaScrubInterval_;
            if (nextMetaScrub_ <= now)
                nextMetaScrub_ = now + metaScrubInterval_;
        }
        faults_->advanceBreakers(now);
    }
    if (detection_)
        advanceLeases(now);
    if (osPolicy_ && now >= nextEpoch_) {
        runEpoch(now);
        nextEpoch_ += cfg_.osEpochCycles();
        if (nextEpoch_ <= now)
            nextEpoch_ = now + cfg_.osEpochCycles();
    }
    recomputeEventHorizon();
}

void
MultiHostSystem::recomputeEventHorizon()
{
    Cycles next = maxCycles;
    if (faults_)
        next = std::min(next, faults_->nextCrashEventAt());
    if (metaFaults_) {
        next = std::min(next, faults_->nextMetaCorruptEventAt());
        next = std::min(next, nextMetaScrub_);
        next = std::min(next, faults_->nextBreakerEventAt());
    }
    if (detection_) {
        for (unsigned i = 0; i < cfg_.numHosts; ++i) {
            const auto h = static_cast<HostId>(i);
            // Every heartbeat grid point must be a horizon point even
            // though most renewals are silent: delivering one late —
            // past a crash that kills the sender — would renew a lease
            // the un-elided simulation lets expire.
            next = std::min(next, nextHeartbeat_[h]);
            if (trusted_[h])
                next = std::min(next,
                                lastHeartbeat_[h] + leaseCycles_ + 1);
            if (zombieReadmitAt_[h])
                next = std::min(next, zombieReadmitAt_[h]);
        }
    }
    if (osPolicy_)
        next = std::min(next, nextEpoch_);
    nextEventCycle_ = next;
}

void
MultiHostSystem::processCrashEvents(Cycles now)
{
    while (const CrashEvent *ev = faults_->nextCrashEvent(now)) {
        if (detection_) {
            // The detector can change liveness out from under the
            // schedule: a false suspicion fences (kills) a host before
            // its scheduled crash, and a fenced zombie readmits before
            // its scheduled rejoin. Scheduled events that no longer
            // apply are dropped instead of panicking.
            if (ev->rejoin) {
                if (!hostAlive_[ev->host])
                    rejoinHost(ev->host, now);
            } else {
                if (hostAlive_[ev->host])
                    crashHost(ev->host, now, ev->downUntil);
            }
        } else if (ev->rejoin) {
            rejoinHost(ev->host, now);
        } else {
            crashHost(ev->host, now, ev->downUntil);
        }
    }
}

void
MultiHostSystem::suspectHost(HostId h, Cycles now)
{
    panic_if(!detection_, "suspectHost requires the lease detector "
             "(fault.leaseNs > 0)");
    panic_if(h >= cfg_.numHosts, "suspectHost: host id out of range");
    if (!trusted_[h])
        return;   // already suspected; reclaim ran (or is this call's)
    trusted_[h] = 0;
    faults_->suspicions.inc();
    if (trace_)
        trace_->record(ObsEventType::hostSuspected, now, 0, h,
                       hostEpoch_[h]);

    if (hostAlive_[h]) {
        // False suspicion (gray failure): the host is alive — merely
        // stalled or unlucky — but the device cannot tell. Fence it:
        // bump its epoch so in-flight requests NACK at the directory,
        // and treat its volatile state exactly like a crash. The zombie
        // discovers the fence when its next request is rejected and
        // readmits through cold rejoin after the readmit delay.
        faults_->falseSuspicions.inc();
        if (trace_) {
            trace_->record(ObsEventType::hostFenced, now, 0, h,
                           hostEpoch_[h]);
        }
        faults_->hostCrashes.inc();
        hostAlive_[h] = 0;
        ++hostEpoch_[h];
        const Cycles stalled = faults_->stallUntil(h, now);
        const Cycles back =
            std::max(now, stalled) + readmitCycles_;
        hostDownUntil_[h] = back;
        zombieReadmitAt_[h] = back;
        flushHostVolatile(h);
        reclaimHost(h, now);
    } else if (needsReclaim_[h]) {
        // Real crash finally detected: run the deferred reclamation.
        reclaimHost(h, now);
    }
    // Reachable from access() via the retry engine, not just from
    // tickSlow(): the lease/readmit state just re-armed.
    invalidateEventHorizon();
    checkInvariants();
}

void
MultiHostSystem::advanceLeases(Cycles now)
{
    for (unsigned i = 0; i < cfg_.numHosts; ++i) {
        const auto h = static_cast<HostId>(i);
        // Deliver every heartbeat grid point that has fallen due. A dead
        // host renews nothing; a stalled host's renewal is swallowed by
        // the stall window (that is what makes gray failures visible).
        while (nextHeartbeat_[h] <= now) {
            const Cycles t = nextHeartbeat_[h];
            nextHeartbeat_[h] += heartbeatCycles_;
            if (hostAlive_[h] && faults_->stallUntil(h, t) == 0)
                lastHeartbeat_[h] = t;
        }
        if (trusted_[h] && now > lastHeartbeat_[h] + leaseCycles_)
            suspectHost(h, now);
        if (zombieReadmitAt_[h] && now >= zombieReadmitAt_[h]) {
            // The zombie's first post-stall request hits the epoch fence
            // and is NACKed; it then rejoins cold.
            faults_->fencedRequests.inc();
            if (trace_) {
                trace_->record(ObsEventType::fencedRequest, now, 0, h,
                               hostEpoch_[h]);
            }
            rejoinHost(h, now);
        }
    }
}

Cycles
MultiHostSystem::respondsAt(HostId t, Cycles now) const
{
    if (!hostAlive_[t])
        return maxCycles;
    const Cycles su = faults_->stallUntil(t, now);
    return su > now ? su : now;
}

TxnAwait
MultiHostSystem::awaitHost(HostId t, Cycles now, bool suspect_on_fail)
{
    if (!detection_)
        return {};
    const Cycles r = respondsAt(t, now);
    if (r <= now)
        return {};
    TxnAwait aw = hosts_[t].link->awaitResponse(
        now, r, (static_cast<std::uint64_t>(t) << 48) ^ now);
    if (!aw.ok) {
        faults_->txnAbandoned.inc();
        if (suspect_on_fail)
            suspectHost(t, now + aw.latency);
    }
    return aw;
}

Cycles
MultiHostSystem::hostStalledUntil(HostId h, Cycles now) const
{
    if (!detection_ || !hostAlive_[h])
        return 0;
    return faults_->stallUntilAt(h, now);
}

bool
MultiHostSystem::hostResponsive(HostId h, Cycles now) const
{
    return hostAlive_[h] && hostStalledUntil(h, now) == 0;
}

void
MultiHostSystem::crashHost(HostId h, Cycles now, Cycles down_until)
{
    panic_if(!faults_, "host crashes require fault injection enabled");
    panic_if(h >= cfg_.numHosts, "crashHost: host id out of range");
    panic_if(!hostAlive_[h], "crashHost: host ", int(h), " already dead");

    faults_->hostCrashes.inc();
    if (trace_)
        trace_->record(ObsEventType::hostCrash, now, 0, h, hostEpoch_[h]);
    hostAlive_[h] = 0;
    ++hostEpoch_[h];
    hostDownUntil_[h] = down_until;

    // ---- 1. The dead host's volatile state vanishes --------------------
    flushHostVolatile(h);

    if (!detection_) {
        // Oracle mode (DESIGN.md §8): the device learns of the crash
        // instantly and reclaims synchronously.
        reclaimHost(h, now);
    } else {
        // Lease mode (DESIGN.md §11): the device only learns when the
        // lease expires (or a transaction retry budget runs out). Until
        // then the dead host's directory/remap/GIM state lingers and
        // in-flight traffic runs against it.
        needsReclaim_[h] = 1;
    }
    invalidateEventHorizon();   // tests crash hosts outside tickSlow()
    checkInvariants();
}

void
MultiHostSystem::flushHostVolatile(HostId h)
{
    // Dirty cached lines are remembered (keyed by home line address) only
    // to decide lost-ness in the reclaim sweep; the data itself is gone.
    // Overwrite semantics: if a line is somehow captured twice (dirty at
    // two cache levels, or re-captured before the deferred §11 sweep
    // runs), the later capture is the newer value — emplace would
    // silently keep the stale one and mis-account the loss.
    auto &dirty = pendingDirty_[h];
    for (const auto &ev : hosts_[h].caches->flushAll()) {
        if (ev.dirty)
            dirty.insert_or_assign(ev.line, ev.data);
    }
    for (Tlb &t : hosts_[h].tlbs)
        t.flushAll();
    if (hosts_[h].localRemap)
        hosts_[h].localRemap->clear();
    std::fill(hosts_[h].pendingStall.begin(), hosts_[h].pendingStall.end(),
              static_cast<Cycles>(0));
}

void
MultiHostSystem::reclaimHost(HostId h, Cycles now)
{
    Cycles recovery = 0;

    // §12: the sweep below trusts directory and remap metadata, so every
    // outstanding corruption must be resolved (repaired or degraded)
    // before the reclaim reads a single entry.
    if (metaFaults_)
        resolveAllMetaCorruption(now);

    // Loss accounting is against the last device-visible value: a line is
    // *lost* when the most recent value (dead cache dirty copy or dead
    // local-DRAM frame copy) differs from what the device can still serve.
    // Each line is recorded at most once per reclaim; under the poison
    // recovery policy lost lines additionally become persistently poisoned
    // (uncacheable degraded path) instead of silently serving stale data.
    FlatSet<LineAddr> lost_this_crash;
    auto record_lost = [&](LineAddr line) {
        if (!lost_this_crash.insert(line))
            return;
        noteLostLine(line);
    };

    FlatMap<LineAddr, std::uint64_t> &latest = pendingDirty_[h];

    // ---- 2. Directory sweep --------------------------------------------
    // Reclaim every entry whose sharer mask includes the dead host: S
    // sharers are downgraded (clean, nothing lost); dead-owned M entries
    // are dropped — the device copy becomes authoritative, and a dirty
    // cached value that never made it back is counted lost.
    std::vector<std::pair<LineAddr, DirEntry>> touched;
    deviceDir_.forEach([&](LineAddr line, const DirEntry &e) {
        if (e.has(h))
            touched.emplace_back(line, e);
    });
    for (const auto &[line, snap] : touched) {
        recovery += deviceDir_.accessLatency(line, now);
        faults_->crashDirSwept.inc();
        if (snap.state == DevState::M) {
            assert(snap.owner(cfg_.numHosts) == h);
            deviceDir_.deallocate(line);
            const auto lit = latest.find(line);
            if (lit != latest.end() && lit->second != mem_.read(line))
                record_lost(line);
        } else {
            DirEntry *e = deviceDir_.lookup(line);
            e->remove(h);
            if (e->sharers == 0)
                deviceDir_.deallocate(line);
        }
    }

    // ---- 3. Remap-state recovery (partially migrated pages) ------------
    if (pipm_) {
        // FlatMap iteration is probe order; sort for deterministic sweeps.
        const std::vector<PageFrame> pages =
            pipm_->localEntries(h).sortedKeys();
        for (const PageFrame page : pages) {
            const LocalRemapEntry entry = pipm_->localEntries(h).at(page);
            if (entry.lineBitmap == 0) {
                // In-flight promotion with no line migrated yet: the
                // existing abort/rollback path restores the exact
                // pre-vote state.
                pipm_->abortPromotion(h, page);
            } else {
                const PhysAddr base = pageBase(page);
                for (unsigned li = 0; li < linesPerPage; ++li) {
                    if (!((entry.lineBitmap >> li) & 1))
                        continue;
                    const LineAddr home = lineOf(base + li * lineBytes);
                    faults_->crashLinesReclaimed.inc();
                    // Clearing the in-memory bit is a device-side
                    // metadata write at the line's home.
                    recovery += cxlDram_.access(
                        lineBase(home) - cfg_.cxlBase(), now, true);
                    const PhysAddr lpa =
                        pipm_->localLineAddr(h, page, li);
                    const DirEntry *de = deviceDir_.probe(home);
                    if (de && de->state == DevState::S) {
                        // Naive coherence: live hosts still hold clean S
                        // copies carrying the last device-visible value
                        // (the home is stale while the bit is set). Pull
                        // the value from one of them into the home so
                        // nothing is lost when those copies age out.
                        HostId src = invalidHost;
                        for (unsigned s = 0; s < cfg_.numHosts; ++s) {
                            const auto sh = static_cast<HostId>(s);
                            if (de->has(sh) && hostAlive_[sh] &&
                                hosts_[sh].caches->stateOf(home) !=
                                    HostState::I) {
                                src = sh;
                                break;
                            }
                        }
                        if (src != invalidHost) {
                            const std::uint64_t v =
                                hosts_[src].caches->dataOf(home);
                            if (v != mem_.read(home)) {
                                mem_.write(home, v);
                                recovery += hosts_[src].link->transfer(
                                    LinkDir::toDevice, CxlFlits::data,
                                    now);
                                recovery += cxlDram_.access(
                                    lineBase(home) - cfg_.cxlBase(), now,
                                    true);
                            }
                            continue;
                        }
                    } else if (de && de->state == DevState::M) {
                        // Naive coherence: a live owner caches the latest
                        // value in M. Sync it to the home now — a *clean*
                        // eviction later would otherwise drop it silently
                        // (dirty writebacks land at the home anyway once
                        // the bit is cleared).
                        const HostId lo = de->owner(cfg_.numHosts);
                        const std::uint64_t v =
                            hosts_[lo].caches->dataOf(home);
                        if (v != mem_.read(home)) {
                            mem_.write(home, v);
                            recovery += cxlDram_.access(
                                lineBase(home) - cfg_.cxlBase(), now,
                                true);
                        }
                        continue;
                    }
                    // The latest value lived only with the dead host: its
                    // dirty cached copy if there was one, else its local
                    // DRAM frame copy. The home keeps serving its stale
                    // copy; count the loss if the values differ.
                    const auto cit = latest.find(home);
                    const std::uint64_t v = cit != latest.end()
                                                ? cit->second
                                                : mem_.read(lineOf(lpa));
                    if (v != mem_.read(home))
                        record_lost(home);
                }
                pipm_->crashReclaimPage(h, page);
            }
            faults_->crashPagesReclaimed.inc();
            // Stale remap-cache entries anywhere must go: the page is no
            // longer remapped.
            for (unsigned s = 0; s < cfg_.numHosts; ++s) {
                if (hosts_[s].localRemap)
                    hosts_[s].localRemap->invalidate(page);
            }
            if (globalRemap_)
                globalRemap_->invalidate(page);
            recovery += cfg_.pipm.globalCacheRoundTrip;
        }
        // A dead host must not win a pending majority vote.
        pipm_->clearVotesFor(h);
    }

    // ---- 4. OS-migrated (GIM) pages homed at the dead host -------------
    // Demote without a data copy: the local frame is gone, so the page
    // reverts to its (possibly stale) CXL home copy; per-line differences
    // count as losses.
    for (std::uint64_t idx = 0; idx < migratedTo_.size(); ++idx) {
        if (migratedTo_[idx] != h)
            continue;
        const SharedMapping &m = space_->sharedMapping(idx);
        const PageFrame cur = m.frame;
        const PageFrame home_f = m.cxlFrame;
        for (unsigned li = 0; li < linesPerPage; ++li) {
            const LineAddr cline = lineOf(pageBase(cur) + li * lineBytes);
            const LineAddr home =
                lineOf(pageBase(home_f) + li * lineBytes);
            faults_->crashLinesReclaimed.inc();
            const auto cit = latest.find(cline);
            const std::uint64_t v =
                cit != latest.end() ? cit->second : mem_.read(cline);
            if (v != mem_.read(home))
                record_lost(home);
        }
        space_->demoteSharedToCxl(idx);
        migratedTo_[idx] = invalidHost;
        faults_->crashPagesReclaimed.inc();
        recovery += cxlDram_.access(pageBase(home_f) - cfg_.cxlBase(), now,
                                    true);
        for (unsigned s = 0; s < cfg_.numHosts; ++s) {
            if (s == h)
                continue;
            for (Tlb &t : hosts_[s].tlbs)
                t.shootdown(idx);
        }
        if (harmful_)
            harmful_->onDemotion(idx);
    }

    latest.clear();
    if (detection_)
        needsReclaim_[h] = 0;
    faults_->crashRecoveryCycles.inc(recovery);
}

void
MultiHostSystem::noteLostLine(LineAddr line)
{
    faults_->crashDirtyLinesLost.inc();
    lostLines_.push_back(line);
    if (cfg_.fault.crashRecovery == CrashRecoveryPolicy::poison)
        faults_->poisonLineForever(line);
}

void
MultiHostSystem::noteDeadOwnedDrop(LineAddr line, const DirEntry &entry)
{
    if (!detection_ || entry.state != DevState::M)
        return;
    const HostId mo = entry.owner(cfg_.numHosts);
    if (mo == invalidHost || hostAlive_[mo] || !needsReclaim_[mo])
        return;
    // The entry is about to evaporate outside the reclaim sweep (recall
    // or OS page flush): decide lost-ness now, and forget the pending
    // value so the eventual sweep does not double-count it.
    auto &dirty = pendingDirty_[mo];
    const auto it = dirty.find(line);
    if (it != dirty.end()) {
        if (it->second != mem_.read(line))
            noteLostLine(line);
        dirty.erase(it);
    }
}

// ---- Device-metadata fault domain (DESIGN.md §12) -------------------------

void
MultiHostSystem::processMetaEvents(Cycles now)
{
    while (const MetaCorruptEvent *ev = faults_->nextMetaCorruptEvent(now))
        applyMetaCorruption(*ev, now);
}

void
MultiHostSystem::applyMetaCorruption(const MetaCorruptEvent &ev, Cycles now)
{
    // Pick a victim among the live metadata words. The event's pick and
    // flip mask were drawn when the schedule was generated, so victim
    // selection never consumes RNG state shared with the other fault
    // streams; an event preferring a target class that has no eligible
    // entry falls through to the other class.
    auto try_dir = [&]() -> bool {
        std::vector<LineAddr> lines;
        deviceDir_.forEach([&](LineAddr line, const DirEntry &) {
            lines.push_back(line);
        });
        for (std::size_t k = 0; k < lines.size(); ++k) {
            const LineAddr line = lines[(ev.pick + k) % lines.size()];
            if (!deviceDir_.corruptEntry(line, ev.bits, ev.shadowHit))
                continue;   // already quarantined
            faults_->metaCorruptions.inc();
            if (trace_) {
                trace_->record(ObsEventType::metaCorruption, now, line,
                               invalidHost, ev.shadowHit ? 1 : 0);
            }
            return true;
        }
        return false;
    };
    auto try_remap = [&]() -> bool {
        if (!pipm_)
            return false;
        std::vector<std::pair<HostId, PageFrame>> entries;
        for (unsigned s = 0; s < cfg_.numHosts; ++s) {
            const auto sh = static_cast<HostId>(s);
            for (const PageFrame p : pipm_->localEntries(sh).sortedKeys())
                entries.emplace_back(sh, p);
        }
        for (std::size_t k = 0; k < entries.size(); ++k) {
            const auto &[eh, ep] = entries[(ev.pick + k) % entries.size()];
            if (!pipm_->corruptLocalEntry(eh, ep, ev.bits, ev.shadowHit))
                continue;
            faults_->metaCorruptions.inc();
            if (trace_) {
                trace_->record(ObsEventType::metaCorruption, now, ep, eh,
                               ev.shadowHit ? 1 : 0);
            }
            return true;
        }
        return false;
    };
    const bool hit = ev.remapTarget ? (try_remap() || try_dir())
                                    : (try_dir() || try_remap());
    if (!hit)
        faults_->metaCorruptSkipped.inc();
}

void
MultiHostSystem::runMetaScrub(Cycles now)
{
    // One scrub pass: walk the quarantined entries in address order with
    // a per-pass budget. Repairs charge device resources (directory
    // slices, links, DRAM) but are off any demand critical path, so the
    // returned latencies are dropped.
    unsigned budget = cfg_.fault.metaScrubBudget;
    for (const LineAddr line : deviceDir_.corruptedLines()) {
        if (budget == 0)
            return;
        --budget;
        resolveDirCorruption(line, now);
    }
    if (!pipm_)
        return;
    for (const auto &[eh, ep] : pipm_->corruptedLocalEntries()) {
        if (budget == 0)
            return;
        --budget;
        resolveRemapCorruption(eh, ep, now);
    }
}

void
MultiHostSystem::resolveAllMetaCorruption(Cycles now)
{
    for (const LineAddr line : deviceDir_.corruptedLines())
        resolveDirCorruption(line, now);
    if (pipm_) {
        for (const auto &[eh, ep] : pipm_->corruptedLocalEntries())
            resolveRemapCorruption(eh, ep, now);
    }
}

Cycles
MultiHostSystem::resolveDirCorruption(LineAddr line, Cycles now)
{
    const auto *c = deviceDir_.corruptionOf(line);
    if (!c)
        return 0;
    faults_->metaScrubChecks.inc();
    faults_->noteMetaRepair(pageOf(lineBase(line)), now);
    // Demand-path repairs (metaGuardLine) can trip or re-arm a breaker
    // between ticks.
    invalidateEventHorizon();
    Cycles lat = deviceDir_.accessLatency(line, now);
    DirEntry *entry = deviceDir_.lookup(line);
    panic_if(!entry, "quarantined directory line has no entry");

    if (!c->shadowHit) {
        // The shadow checksum survived the fault: probe the live sharers
        // and rebuild the entry image in place. One header round trip
        // per sharer, in parallel; the slowest bounds the repair.
        Cycles probe_max = 0;
        for (unsigned s = 0; s < cfg_.numHosts; ++s) {
            const auto sh = static_cast<HostId>(s);
            if (!entry->has(sh) || !hostAlive_[sh])
                continue;
            Cycles rt = hosts_[sh].link->transfer(LinkDir::toHost,
                                                  CxlFlits::header, now);
            rt += hosts_[sh].caches->llcRoundTrip();
            rt += hosts_[sh].link->transfer(LinkDir::toDevice,
                                            CxlFlits::header, now + rt);
            probe_max = std::max(probe_max, rt);
        }
        lat += probe_max;
        deviceDir_.clearCorruption(line);
        faults_->metaScrubRepairs.inc();
        if (trace_)
            trace_->record(ObsEventType::scrubRepair, now, line,
                           invalidHost);
        return lat;
    }

    // The fault spans the shadow checksum too: the entry can be neither
    // trusted nor rebuilt. Invalidate the line at every live sharer
    // (collecting dirty data), account a dead owner's pending dirty
    // value like any other entry evaporating outside the reclaim sweep,
    // drop the entry and poison the line onto the persistent degraded
    // uncacheable path.
    const DirEntry snap = *entry;
    if (snap.state == DevState::M) {
        const HostId mo = snap.owner(cfg_.numHosts);
        if (mo != invalidHost && !hostAlive_[mo]) {
            auto &dirty = pendingDirty_[mo];
            const auto it = dirty.find(line);
            if (it != dirty.end()) {
                if (it->second != mem_.read(line))
                    noteLostLine(line);
                dirty.erase(it);
            }
        }
    }
    for (unsigned s = 0; s < cfg_.numHosts; ++s) {
        const auto sh = static_cast<HostId>(s);
        if (!snap.has(sh) || !hostAlive_[sh])
            continue;
        lat += hosts_[sh].link->transfer(LinkDir::toHost, CxlFlits::header,
                                         now);
        auto ev = hosts_[sh].caches->invalidateLine(line);
        if (ev && ev->dirty) {
            mem_.write(line, ev->data);
            hosts_[sh].link->transfer(LinkDir::toDevice, CxlFlits::data,
                                      now);
            cxlDram_.access(lineBase(line) - cfg_.cxlBase(), now, true);
        } else {
            hosts_[sh].link->transfer(LinkDir::toDevice, CxlFlits::header,
                                      now);
        }
    }
    deviceDir_.deallocate(line);   // also lifts the quarantine
    faults_->poisonLineForever(line);
    faults_->metaUnrepairable.inc();
    if (trace_)
        trace_->record(ObsEventType::scrubUnrepairable, now, line,
                       invalidHost);
    return lat;
}

Cycles
MultiHostSystem::resolveRemapCorruption(HostId h, PageFrame page,
                                        Cycles now)
{
    const auto *c = pipm_->corruptionOf(h, page);
    if (!c)
        return 0;
    faults_->metaScrubChecks.inc();
    faults_->noteMetaRepair(page, now);
    invalidateEventHorizon();   // same breaker re-arm as the dir guard
    Cycles lat = cfg_.pipm.globalCacheRoundTrip;

    if (!c->shadowHit) {
        // Checksum intact: one metadata read at the device rebuilds the
        // entry image in place.
        lat += cxlDram_.access(pageBase(page) - cfg_.cxlBase(), now,
                               false);
        pipm_->clearCorruption(h, page);
        faults_->metaScrubRepairs.inc();
        if (trace_)
            trace_->record(ObsEventType::scrubRepair, now, page, h);
        return lat;
    }

    if (pipm_->journalCovers(h, page)) {
        // The redo journal still holds the page's migration metadata
        // (the in-flight promotion/demotion wrote it): replay it into a
        // consistent remap entry.
        lat += cxlDram_.access(pageBase(page) - cfg_.cxlBase(), now, true);
        pipm_->clearCorruption(h, page);
        faults_->metaJournalReplays.inc();
        if (trace_)
            trace_->record(ObsEventType::journalReplay, now, page, h);
        return lat;
    }

    // The journal records were already overwritten: the device no longer
    // knows which lines migrated, so the partial-migration state is
    // unrecoverable. Force-reclaim the page exactly like the crash
    // sweep — the home copies become authoritative and per-line
    // differences count as dirty losses.
    const LocalRemapEntry entry = pipm_->localEntries(h).at(page);
    if (entry.lineBitmap == 0) {
        // In-flight promotion with no line migrated yet: the abort path
        // restores the exact pre-vote state (and drops the quarantine).
        pipm_->abortPromotion(h, page);
    } else {
        const PhysAddr base = pageBase(page);
        for (unsigned li = 0; li < linesPerPage; ++li) {
            if (!((entry.lineBitmap >> li) & 1))
                continue;
            const LineAddr home = lineOf(base + li * lineBytes);
            // Clearing the in-memory bit is a device-side metadata write
            // at the line's home.
            lat += cxlDram_.access(lineBase(home) - cfg_.cxlBase(), now,
                                   true);
            const PhysAddr lpa = pipm_->localLineAddr(h, page, li);
            if (naiveCoherence_) {
                // Naive coherence caches migrated lines as ordinary
                // directory-tracked M/S copies; only the memory copy
                // moves back. Sync the home from a live cached copy
                // (mirroring the crash sweep) so nothing is lost when
                // those copies age out.
                const DirEntry *de = deviceDir_.probe(home);
                HostId src = invalidHost;
                if (de) {
                    for (unsigned s = 0; s < cfg_.numHosts; ++s) {
                        const auto sh = static_cast<HostId>(s);
                        if (de->has(sh) && hostAlive_[sh] &&
                            hosts_[sh].caches->stateOf(home) !=
                                HostState::I) {
                            src = sh;
                            break;
                        }
                    }
                }
                if (src != invalidHost) {
                    const std::uint64_t v =
                        hosts_[src].caches->dataOf(home);
                    if (v != mem_.read(home)) {
                        mem_.write(home, v);
                        lat += hosts_[src].link->transfer(
                            LinkDir::toDevice, CxlFlits::data, now);
                        lat += cxlDram_.access(
                            lineBase(home) - cfg_.cxlBase(), now, true);
                    }
                } else if (mem_.read(lineOf(lpa)) != mem_.read(home)) {
                    // The latest value lived only in the local frame.
                    noteLostLine(home);
                }
                continue;
            }
            // PIPM coherence: the line is (at most) ME-cached by the
            // page's owner, invisible to the directory. Pull it back.
            auto ev = hosts_[h].caches->invalidateLine(home);
            const std::uint64_t v = ev ? ev->data
                                       : mem_.read(lineOf(lpa));
            if (v != mem_.read(home))
                noteLostLine(home);
        }
        pipm_->crashReclaimPage(h, page);   // drops quarantine + journal
    }
    for (unsigned s = 0; s < cfg_.numHosts; ++s) {
        if (hosts_[s].localRemap)
            hosts_[s].localRemap->invalidate(page);
    }
    if (globalRemap_)
        globalRemap_->invalidate(page);
    faults_->metaUnrepairable.inc();
    if (trace_)
        trace_->record(ObsEventType::scrubUnrepairable, now, page, h);
    return lat;
}

Cycles
MultiHostSystem::metaGuardLine(LineAddr line, Cycles now)
{
    if (!deviceDir_.entryCorrupted(line))
        return 0;
    return resolveDirCorruption(line, now);
}

Cycles
MultiHostSystem::metaGuardPage(PageFrame page, Cycles now)
{
    if (!pipm_ || pipm_->corruptedCount() == 0)
        return 0;
    Cycles lat = 0;
    for (unsigned s = 0; s < cfg_.numHosts; ++s) {
        const auto sh = static_cast<HostId>(s);
        if (pipm_->localEntryCorrupted(sh, page))
            lat += resolveRemapCorruption(sh, page, now);
    }
    return lat;
}

void
MultiHostSystem::rejoinHost(HostId h, Cycles now)
{
    panic_if(!faults_, "host rejoin requires fault injection enabled");
    panic_if(h >= cfg_.numHosts, "rejoinHost: host id out of range");
    panic_if(hostAlive_[h], "rejoinHost: host ", int(h), " is alive");

    // A host rejoining before its lease ever expired (short outage) still
    // forces the reclaim: the device must not readmit a host whose old
    // state is live in the directory.
    if (detection_ && needsReclaim_[h]) {
        if (trusted_[h]) {
            trusted_[h] = 0;
            faults_->suspicions.inc();
            if (trace_) {
                trace_->record(ObsEventType::hostSuspected, now, 0, h,
                               hostEpoch_[h]);
            }
        }
        reclaimHost(h, now);
    }

    faults_->hostRejoins.inc();
    if (trace_)
        trace_->record(ObsEventType::hostRejoin, now, 0, h, hostEpoch_[h]);
    hostAlive_[h] = 1;
    ++hostEpoch_[h];
    hostDownUntil_[h] = 0;
    if (detection_) {
        // Fresh lease: the readmitted host renews from `now` on its grid.
        trusted_[h] = 1;
        lastHeartbeat_[h] = now;
        while (nextHeartbeat_[h] <= now)
            nextHeartbeat_[h] += heartbeatCycles_;
        zombieReadmitAt_[h] = 0;
    }
    // Caches, TLBs and the local remap cache were already emptied at crash
    // time; the host comes back cold under its fresh (even) epoch, so any
    // stale in-flight reference stamped under the old epoch is rejected.
    invalidateEventHorizon();   // fresh lease and heartbeat grid
    checkInvariants();
}

void
MultiHostSystem::flushSharedPage(std::uint64_t idx, Cycles now)
{
    const SharedMapping &m = space_->sharedMapping(idx);
    const PhysAddr base = pageBase(m.frame);
    for (unsigned li = 0; li < linesPerPage; ++li) {
        const LineAddr line = lineOf(base + li * lineBytes);
        for (unsigned s = 0; s < cfg_.numHosts; ++s) {
            auto ev = hosts_[s].caches->invalidateLine(line);
            if (ev && ev->dirty)
                mem_.write(line, ev->data);
        }
        // Deallocating an untracked line is a no-op, so gating it on the
        // probe saves the second directory scan for the common case of a
        // page line nobody had cached.
        if (const DirEntry *e = deviceDir_.probe(line)) {
            noteDeadOwnedDrop(line, *e);
            deviceDir_.deallocate(line);
        }
    }
    (void)now;
}

bool
MultiHostSystem::executePromotion(std::uint64_t idx, HostId target,
                                  Cycles now)
{
    if (migratedTo_[idx] != invalidHost)
        return false;
    if (!hostAlive_[target])
        return false;   // policies may still nominate a crashed host
    const PageFrame old_frame = space_->sharedMapping(idx).frame;
    flushSharedPage(idx, now);
    if (!space_->migrateSharedToHost(idx, target))
        return false;
    const PageFrame new_frame = space_->sharedMapping(idx).frame;
    for (unsigned li = 0; li < linesPerPage; ++li) {
        mem_.copyLine(lineOf(pageBase(old_frame) + li * lineBytes),
                      lineOf(pageBase(new_frame) + li * lineBytes));
    }
    migratedTo_[idx] = target;
    // Remapping invalidates the page's translation at every core.
    for (auto &host : hosts_) {
        for (Tlb &t : host.tlbs)
            t.shootdown(idx);
    }
    // Page copy traffic: CXL read, link to the target host, local write.
    const auto scaled =
        static_cast<unsigned>(cfg_.osPageTransferBytes());
    hosts_[target].link->transfer(LinkDir::toHost, scaled, now);
    cxlDram_.access(pageBase(old_frame) - cfg_.cxlBase(), now, false);
    hosts_[target].dram->access(
        pageBase(new_frame) - cfg_.localBase(target), now, true);
    migrationTransferBytes.inc(pageBytes);
    osMigrations.inc();
    if (trace_) {
        trace_->record(ObsEventType::osMigration, now, idx, target,
                       static_cast<std::uint32_t>(new_frame));
    }
    if (harmful_)
        harmful_->onMigration(idx, target);
    return true;
}

void
MultiHostSystem::executeDemotion(std::uint64_t idx, Cycles now)
{
    if (migratedTo_[idx] == invalidHost)
        return;
    const HostId from = migratedTo_[idx];
    const PageFrame old_frame = space_->sharedMapping(idx).frame;
    flushSharedPage(idx, now);
    space_->demoteSharedToCxl(idx);
    const PageFrame new_frame = space_->sharedMapping(idx).frame;
    for (unsigned li = 0; li < linesPerPage; ++li) {
        mem_.copyLine(lineOf(pageBase(old_frame) + li * lineBytes),
                      lineOf(pageBase(new_frame) + li * lineBytes));
    }
    migratedTo_[idx] = invalidHost;
    for (auto &host : hosts_) {
        for (Tlb &t : host.tlbs)
            t.shootdown(idx);
    }
    const auto scaled =
        static_cast<unsigned>(cfg_.osPageTransferBytes());
    hosts_[from].link->transfer(LinkDir::toDevice, scaled, now);
    hosts_[from].dram->access(pageBase(old_frame) - cfg_.localBase(from),
                              now, false);
    cxlDram_.access(pageBase(new_frame) - cfg_.cxlBase(), now, true);
    migrationTransferBytes.inc(pageBytes);
    osDemotions.inc();
    if (trace_) {
        trace_->record(ObsEventType::osDemotion, now, idx, from,
                       static_cast<std::uint32_t>(new_frame));
    }
    if (harmful_)
        harmful_->onDemotion(idx);
}

void
MultiHostSystem::runEpoch(Cycles now)
{
    EpochContext ctx;
    ctx.sharedPages = space_->sharedPages();
    ctx.numHosts = cfg_.numHosts;
    const std::uint64_t private_pages =
        (space_->privateBytesPerHost() + pageBytes - 1) / pageBytes;
    ctx.localBudgetPages =
        cfg_.localBytesPerHost() / pageBytes - private_pages;
    ctx.maxPagesPerEpoch = cfg_.osMigration.maxPagesPerEpoch;
    ctx.hotThreshold = cfg_.osMigration.hotThreshold;
    ctx.usedFramesPerHost.resize(cfg_.numHosts);
    for (unsigned h = 0; h < cfg_.numHosts; ++h)
        ctx.usedFramesPerHost[h] = space_->migratedFramesOn(
            static_cast<HostId>(h));

    const EpochPlan plan = osPolicy_->epoch(ctx, migratedTo_);

    std::uint64_t moved = 0;
    std::vector<std::uint64_t> initiated(cfg_.numHosts, 0);
    for (const Promotion &p : plan.promotions) {
        if (executePromotion(p.sharedIdx, p.target, now)) {
            ++moved;
            ++initiated[p.target];
        }
    }
    for (std::uint64_t idx : plan.demotions) {
        if (migratedTo_[idx] != invalidHost) {
            const HostId from = migratedTo_[idx];
            executeDemotion(idx, now);
            ++moved;
            ++initiated[from];
        }
    }
    if (moved == 0)
        return;

    // Kernel costs: the initiating core (core 0 of the initiating host,
    // modelling the kernel migration thread) pays the per-page cost; every
    // other core in the system pays the TLB-shootdown/IPI cost, since the
    // unified PA change must be propagated to all hosts (§3.1).
    const Cycles init_cost = cfg_.osPageInitiatorCycles();
    const Cycles other_cost = cfg_.osPageOtherCycles();
    for (unsigned h = 0; h < cfg_.numHosts; ++h) {
        for (unsigned c = 0; c < cfg_.coresPerHost; ++c) {
            Cycles charge = moved * other_cost;
            if (c == 0 && initiated[h] > 0)
                charge += initiated[h] * init_cost;
            hosts_[h].pendingStall[c] += charge;
            mgmtStallCycles.inc(charge);
        }
    }
}

void
MultiHostSystem::resetStats()
{
    stats_.resetAll();
    for (auto &host : hosts_) {
        host.caches->stats().resetAll();
        host.dram->stats().resetAll();
        host.link->stats().resetAll();
        if (host.localRemap)
            host.localRemap->stats().resetAll();
    }
    deviceDir_.stats().resetAll();
    cxlDram_.stats().resetAll();
    if (globalRemap_)
        globalRemap_->stats().resetAll();
    if (pipm_)
        pipm_->stats().resetAll();
    if (faults_)
        faults_->stats().resetAll();
    if (switch_)
        switch_->stats().resetAll();
}

void
MultiHostSystem::attachTrace(ObsTrace *trace)
{
    trace_ = trace;
    deviceDir_.attachTrace(trace);
    if (faults_)
        faults_->attachTrace(trace);
}

void
MultiHostSystem::registerStats(MetricsRegistry &registry)
{
    // Mirror resetStats(): every group reset at the warmup boundary is
    // registered, plus the harmful tracker (whose counters are lifetime
    // totals — the registry's begin() baseline handles the offset).
    registry.addGroup(stats_);
    for (unsigned h = 0; h < cfg_.numHosts; ++h) {
        const std::string prefix = "host" + std::to_string(h) + ".";
        registry.addGroup(hosts_[h].caches->stats(), prefix);
        registry.addGroup(hosts_[h].dram->stats(), prefix);
        registry.addGroup(hosts_[h].link->stats(), prefix);
        if (hosts_[h].localRemap)
            registry.addGroup(hosts_[h].localRemap->stats(), prefix);
    }
    registry.addGroup(deviceDir_.stats());
    registry.addGroup(cxlDram_.stats());
    if (globalRemap_)
        registry.addGroup(globalRemap_->stats());
    if (pipm_)
        registry.addGroup(pipm_->stats());
    if (faults_)
        registry.addGroup(faults_->stats());
    if (switch_)
        registry.addGroup(switch_->stats());
    if (harmful_)
        registry.addGroup(harmful_->stats());
}

void
MultiHostSystem::checkInvariants() const
{
    // SWMR: a line cached M/ME anywhere is cached nowhere else; S lines
    // may be cached at several hosts but never alongside M.
    // Directory precision: device-M lines are cached in M at exactly the
    // owner; PIPM bitmap lines have no directory entry.
    if (pipm_)
        pipm_->checkRemapInvariants();
    for (unsigned h = 0; h < cfg_.numHosts; ++h) {
        panic_if(hostAlive_[h] != (hostEpoch_[h] % 2 == 0 ? 1 : 0),
                 "host ", h, " epoch parity (", hostEpoch_[h],
                 ") disagrees with liveness");
        const bool unswept =
            detection_ && !hostAlive_[h] && needsReclaim_[h];
        if (detection_) {
            panic_if(needsReclaim_[h] && hostAlive_[h],
                     "alive host ", h, " marked needs-reclaim");
            panic_if(zombieReadmitAt_[h] && hostAlive_[h],
                     "alive host ", h, " has a pending zombie readmit");
        }
        if (faults_ && !unswept) {
            panic_if(!pendingDirty_[h].empty(), "host ", h,
                     " has pending dirty captures outside a deferred "
                     "reclaim");
        }
        if (hostAlive_[h])
            continue;
        if (unswept) {
            // Lease mode, lease not yet expired: the dead host's device
            // state legitimately lingers until suspicion reclaims it.
            continue;
        }
        // A crashed host must leave no trace until it rejoins.
        if (pipm_)
            pipm_->checkNoHostReferences(static_cast<HostId>(h));
        for (std::uint64_t idx = 0; idx < migratedTo_.size(); ++idx) {
            panic_if(migratedTo_[idx] == static_cast<HostId>(h),
                     "shared page ", idx, " still OS-migrated to dead host ",
                     h);
        }
    }
    const PhysAddr cxl_base = cfg_.cxlBase();
    const PhysAddr cxl_end = cfg_.addressSpaceEnd();
    for (LineAddr line = lineOf(cxl_base); line < lineOf(cxl_end); ++line) {
        unsigned m_holders = 0;
        unsigned s_holders = 0;
        for (unsigned h = 0; h < cfg_.numHosts; ++h) {
            const HostState st = hosts_[h].caches->stateOf(line);
            panic_if(!hostAlive_[h] && st != HostState::I,
                     "dead host ", h, " still caches line ", line);
            switch (st) {
              case HostState::M:
              case HostState::ME:
                ++m_holders;
                break;
              case HostState::S:
                ++s_holders;
                break;
              case HostState::I:
                break;
            }
        }
        if (scheme_ == Scheme::localOnly) {
            // The Local-only ideal deliberately models no cross-host
            // coherence (§5.1.3): every host fills shared lines in M, so
            // SWMR and the poison/directory checks below do not apply.
            // Only the dead-host check above is meaningful.
            continue;
        }
        panic_if(m_holders > 1, "SWMR violated: line ", line,
                 " exclusively cached at ", m_holders, " hosts");
        panic_if(m_holders == 1 && s_holders > 0,
                 "SWMR violated: line ", line,
                 " cached M alongside S copies");
        if (faults_ && faults_->linePersistentlyPoisoned(line)) {
            // A persistently poisoned line is only ever served via the
            // uncacheable degraded path: nothing may cache it and the
            // directory must not track it.
            panic_if(m_holders + s_holders > 0, "poisoned line ", line,
                     " is cached somewhere");
            panic_if(deviceDir_.probe(line) != nullptr, "poisoned line ",
                     line, " has a device directory entry");
        }
        const DirEntry *entry = deviceDir_.probe(line);
        if (pipm_) {
            const PageFrame page = pageOfLine(line);
            const HostId mh = pipm_->migratedHostOf(page);
            if (mh != invalidHost &&
                pipm_->lineMigrated(
                    mh, page,
                    static_cast<unsigned>(line & (linesPerPage - 1)))) {
                panic_if(entry != nullptr && !naiveCoherence_,
                         "migrated line ", line,
                         " still has a device directory entry");
                if (!naiveCoherence_)
                    continue;
            }
        }
        if (entry) {
            for (unsigned h = 0; h < cfg_.numHosts; ++h) {
                panic_if(!hostAlive_[h] &&
                             entry->has(static_cast<HostId>(h)) &&
                             !(detection_ && needsReclaim_[h]),
                         "directory entry for line ", line,
                         " still lists dead host ", h);
            }
        }
        if (entry && entry->state == DevState::M) {
            const HostId owner = entry->owner(cfg_.numHosts);
            if (detection_ && needsReclaim_[owner]) {
                // Dead-unswept owner: its cache is gone and its epoch
                // already bumped; the entry survives (stale) until the
                // suspicion sweep or the epoch backstop drops it.
            } else {
                panic_if(hosts_[owner].caches->stateOf(line) !=
                             HostState::M,
                         "device-M line ", line, " not cached M at owner");
                panic_if(entry->ownerEpoch != hostEpoch_[owner],
                         "device-M line ", line,
                         " stamped with stale epoch ", entry->ownerEpoch,
                         " for host ", int(owner));
            }
        }
    }
}

} // namespace pipm
