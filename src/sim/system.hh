/**
 * @file
 * The multi-host CXL-DSM system model: hosts (cores' caches, local DRAM,
 * CXL link, local remapping cache), the CXL memory node (device coherence
 * directory, CXL DRAM, global remapping cache), the coherence protocol of
 * Fig. 2 with the GIM inter-host path of Fig. 3, and — depending on the
 * selected scheme — either OS whole-page migration (Nomad/Memtis/HeMem/
 * OS-skew) or the PIPM/HW-static partial-and-incremental mechanism with
 * the coherence extensions of Fig. 9.
 *
 * Coherence is modelled as atomic transactions (the paper's ZSim-style
 * lock-based scheme, §5.1.4): each LLC miss resolves its full protocol
 * flow at once, accumulating per-hop latency from the contended resources
 * it traverses (links, directory slices, DRAM banks) and updating every
 * coherence structure before the next transaction starts. Off-critical-
 * path traffic (writebacks, invalidation fan-out, migration copies) is
 * charged to the resources as bandwidth without extending the demand
 * access's latency.
 */

#ifndef PIPM_SIM_SYSTEM_HH
#define PIPM_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "coherence/device_directory.hh"
#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "cxl/link.hh"
#include "fault/fault_injector.hh"
#include "mem/dram.hh"
#include "mem/memory_image.hh"
#include "migration/harmful.hh"
#include "migration/os_policy.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace.hh"
#include "os/address_space.hh"
#include "os/tlb.hh"
#include "pipm/pipm_state.hh"
#include "pipm/remap_cache.hh"
#include "sim/scheme.hh"
#include "workloads/workload.hh"

namespace pipm
{

/** Outcome of one demand access. */
struct AccessResult
{
    Cycles latency = 0;       ///< cycles until the data returns
    /**
     * Serial kernel stall charged to the issuing core before the access
     * (migration work, TLB-shootdown IPIs). Unlike `latency`, this cannot
     * be hidden by the out-of-order window: the runner advances the
     * core's clock by it.
     */
    Cycles stall = 0;
    std::uint64_t data = 0;   ///< data token read (reads only)
};

/** Analytic per-class latency estimates derived from a configuration. */
struct LatencyEstimates
{
    Cycles local = 0;   ///< LLC miss to local DRAM
    Cycles cxl = 0;     ///< cacheable 2-hop CXL access
    Cycles gim = 0;     ///< non-cacheable 4-hop inter-host access

    static LatencyEstimates from(const SystemConfig &cfg);
};

/** The simulated machine. */
class MultiHostSystem
{
  public:
    /**
     * @param cfg machine configuration
     * @param scheme memory-management scheme under test
     * @param workload the benchmark (provides footprints)
     * @param seed determinism seed
     */
    MultiHostSystem(const SystemConfig &cfg, Scheme scheme,
                    const Workload &workload, std::uint64_t seed);
    ~MultiHostSystem();

    MultiHostSystem(const MultiHostSystem &) = delete;
    MultiHostSystem &operator=(const MultiHostSystem &) = delete;

    /**
     * Execute one demand access issued by core `c` of host `h` at time
     * `now`. Includes any pending kernel stall charged to that core.
     * @param write_data token stored by writes (ignored for reads)
     */
    AccessResult access(HostId h, CoreId c, const MemRef &ref, Cycles now,
                        std::uint64_t write_data = 0);

    /**
     * Advance epoch machinery (OS migration schemes) and process any
     * crash/rejoin, corruption, scrub, breaker and lease events that
     * have fallen due.
     *
     * Event horizon (DESIGN.md §9): `nextEventCycle_` caches the
     * earliest cycle at which the slow path could take any action —
     * min over the injector's next crash/rejoin and corruption events,
     * the next scrub pass, the next breaker transition, every
     * heartbeat grid point, lease deadline and zombie readmission, and
     * the next OS epoch. Ticks before that are provably no-ops and
     * cost one compare. Mutators that re-arm any of those schedules
     * outside the slow path call invalidateEventHorizon().
     */
    void
    tick(Cycles now)
    {
        if (now < nextEventCycle_)
            return;
        tickSlow(now);
    }

    /** The cached event horizon (maxCycles: nothing pending). */
    Cycles nextEventCycle() const { return nextEventCycle_; }

    // ---- Host fail-stop crashes (DESIGN.md §8) -------------------------

    /**
     * Fail-stop host h at `now`: every cached line and local-DRAM-resident
     * migrated line of the host is gone. The device reclaims all state
     * referencing the host — directory entries are swept (S sharers
     * downgraded, dead-owned M entries dropped), partially migrated pages
     * are reintegrated to their CXL homes from the stale device copies
     * (per-line data loss counted and, under CrashRecoveryPolicy::poison,
     * poisoned), in-flight promotions roll back via the existing abort
     * path, and OS-migrated (GIM) pages are demoted without a data copy.
     * Normally driven by the injector's crash schedule via tick(); public
     * so tests can crash hosts at exact protocol states.
     * @param down_until when the host rejoins (maxCycles: never)
     */
    void crashHost(HostId h, Cycles now, Cycles down_until = maxCycles);

    /** Rejoin host h cold (empty caches/TLB/remap) under a new epoch. */
    void rejoinHost(HostId h, Cycles now);

    // ---- Lease-based failure detection (DESIGN.md §11) ------------------

    /**
     * Suspect host h: the device stops trusting it and runs the crash
     * reclamation path against its state. A host suspected while
     * actually alive (gray failure) is *fenced*: its epoch is bumped so
     * its stale requests are NACKed at the directory, its dirty cached
     * lines are lost exactly as in a real crash, and it readmits through
     * the cold-rejoin path after observing the fence. Normally driven by
     * lease expiry or transaction-retry exhaustion inside tick()/access();
     * public so tests can suspect hosts at exact protocol states. Only
     * valid when the lease detector is configured (fault.leaseNs > 0).
     */
    void suspectHost(HostId h, Cycles now);

    /** Whether the lease-based failure detector is active. */
    bool detectionEnabled() const { return detection_; }

    /**
     * End of the gray-failure stall window covering `now` for host h, or
     * 0 when the host is responsive. The runner parks a stalled host's
     * cores until the window ends (or the lease fences the host first).
     */
    Cycles hostStalledUntil(HostId h, Cycles now) const;

    /** Whether host h would answer a coherence request at `now`. */
    bool hostResponsive(HostId h, Cycles now) const;

    /** Whether host h is currently alive. */
    bool hostAlive(HostId h) const { return hostAlive_[h]; }

    /** Host h's epoch: even while alive, odd while crashed; bumped at
     *  every crash and rejoin (monotone). */
    std::uint32_t hostEpoch(HostId h) const { return hostEpoch_[h]; }

    /** When a crashed host h rejoins (maxCycles: never; 0: alive). */
    Cycles hostDownUntil(HostId h) const { return hostDownUntil_[h]; }

    /**
     * Every line whose latest value died with a host, in the order the
     * losses were discovered (append-only; lines can repeat across
     * crashes). The fault-schedule checker syncs its last-writer oracle
     * against this explicit lost-line set.
     */
    const std::vector<LineAddr> &lostLines() const { return lostLines_; }

    /** Reset all measurement stats (end of warmup). */
    void resetStats();

    // ---- Observability (DESIGN.md §10) ----------------------------------

    /**
     * Attach an event trace (nullptr: detach). Forwarded to the device
     * directory and the fault injector; the system layer itself records
     * migration decisions (promotions, revocations, aborts, OS epoch
     * migrations), poison discoveries, crash/rejoin events, and — for
     * watched lines — device-directory state transitions.
     */
    void attachTrace(ObsTrace *trace);

    /**
     * Register every stat group of this system with a telemetry
     * registry. Per-host groups (cache, local_dram, link, local_remap)
     * get a "hostN." prefix since their group names repeat across hosts.
     */
    void registerStats(MetricsRegistry &registry);

    // ---- Introspection ------------------------------------------------

    const SystemConfig &config() const { return cfg_; }
    Scheme scheme() const { return scheme_; }
    AddressSpace &space() { return *space_; }
    PipmState *pipmState() { return pipm_.get(); }
    OsPolicy *osPolicy() { return osPolicy_.get(); }
    HarmfulTracker *harmfulTracker() { return harmful_.get(); }
    MemoryImage &memory() { return mem_; }
    CacheHierarchy &hierarchy(HostId h) { return *hosts_[h].caches; }
    DeviceDirectory &deviceDirectory() { return deviceDir_; }
    CxlLink &link(HostId h) { return *hosts_[h].link; }
    Tlb *tlb(HostId h, CoreId c)
    {
        return hosts_[h].tlbs.empty() ? nullptr : &hosts_[h].tlbs[c];
    }
    DramDevice &localDram(HostId h) { return *hosts_[h].dram; }
    DramDevice &cxlDram() { return cxlDram_; }
    RemapCache *localRemapCache(HostId h)
    {
        return hosts_[h].localRemap.get();
    }
    RemapCache *globalRemapCache() { return globalRemap_.get(); }
    /** The fault injector, or nullptr when injection is disabled. */
    FaultInjector *faultInjector() { return faults_.get(); }

    /** Host a shared page is currently OS-migrated to (or invalidHost). */
    HostId gimHostOf(std::uint64_t shared_idx) const;

    /**
     * §6 software interface: allow or forbid partial migration of a
     * shared page (PIPM mechanism schemes only). Forbidding a currently
     * migrated page revokes it immediately.
     */
    void setPageMigrationAllowed(std::uint64_t shared_idx, bool allowed);

    /**
     * Check cross-structure coherence invariants (SWMR, directory
     * precision, bitmap consistency); panics on violation. For tests.
     */
    void checkInvariants() const;

    // ---- Measurement stats ---------------------------------------------

    Counter demandAccesses;      ///< all demand accesses
    Counter sharedAccesses;      ///< accesses to shared heap data
    Counter sharedLlcMisses;     ///< shared accesses missing the caches
    Counter localServedMisses;   ///< shared misses served by own local DRAM
    Counter cxlServedMisses;     ///< shared misses served by CXL memory
    Counter interHostAccesses;   ///< served from another host (cache/DRAM)
    Counter interHostStallCycles;///< latency of inter-host accesses
    Counter mgmtStallCycles;     ///< kernel migration stalls charged
    Counter migrationTransferBytes; ///< page-copy bytes (unscaled)
    Counter osMigrations;        ///< whole-page promotions executed
    Counter osDemotions;         ///< whole-page demotions executed
    Counter upgradeMisses;       ///< S->M upgrades
    Average avgSharedMissLatency;
    Average avgLocalMissLatency;
    Average avgCxlMissLatency;
    Average avgInterHostLatency;

    StatGroup &stats() { return stats_; }

  private:
    /** Everything belonging to one host. */
    struct Host
    {
        std::unique_ptr<CacheHierarchy> caches;
        std::unique_ptr<DramDevice> dram;
        std::unique_ptr<CxlLink> link;
        std::unique_ptr<RemapCache> localRemap;   ///< mechanism modes only
        std::vector<Cycles> pendingStall;         ///< per core
        std::vector<Tlb> tlbs;                    ///< per core (optional)
    };

    // ---- Access paths ---------------------------------------------------

    /** Cacheable access to data homed in host h's own local DRAM. */
    Cycles localAccess(HostId h, CoreId c, PhysAddr pa, MemOp op,
                       Cycles now, std::uint64_t wdata,
                       std::uint64_t *rdata);

    /** Non-cacheable 4-hop access to another host's GIM memory (Fig. 3). */
    Cycles gimRemoteAccess(HostId h, HostId owner, PhysAddr pa, MemOp op,
                           Cycles now, std::uint64_t wdata,
                           std::uint64_t *rdata);

    /** Coherent access to the CXL-DSM pool (Fig. 2 + PIPM paths). */
    Cycles cxlAccess(HostId h, CoreId c, std::uint64_t shared_idx,
                     PhysAddr pa, MemOp op, Cycles now, std::uint64_t wdata,
                     std::uint64_t *rdata);

    /** Ideal scheme: shared data served from the accessing host's DRAM. */
    Cycles idealAccess(HostId h, CoreId c, PhysAddr pa, MemOp op,
                       Cycles now, std::uint64_t wdata,
                       std::uint64_t *rdata);

    /**
     * Degraded access to a persistently poisoned CXL line: the device
     * NAKs with poison, the host retries uncacheably. The line is never
     * filled into a cache and never gets a directory entry, so coherence
     * holds trivially; reads and writes go straight to (scrubbed) CXL
     * DRAM. Returns the extra latency beyond the initial device trip.
     */
    Cycles degradedLineAccess(HostId h, LineAddr line, PhysAddr pa,
                              MemOp op, Cycles now, std::uint64_t wdata,
                              std::uint64_t *rdata);

    // ---- Protocol helpers ----------------------------------------------

    /** S->M upgrade at the device directory (write hit on shared line). */
    Cycles upgrade(HostId h, LineAddr line, Cycles now);

    /** Handle one LLC eviction (cases 1 and 4 live here). */
    void handleEviction(HostId h, const CacheHierarchy::Eviction &ev,
                        Cycles now);

    /** Convenience wrapper for the optional eviction a fill returns. */
    void
    handleEvictions(HostId h,
                    const std::optional<CacheHierarchy::Eviction> &ev,
                    Cycles now)
    {
        if (ev)
            handleEviction(h, *ev, now);
    }

    /** Invalidate a recalled directory victim at its sharers. */
    void handleRecall(const DeviceDirectory::Recall &recall, Cycles now);

    /** Allocate a device directory entry, processing any recall. */
    void dirAllocate(LineAddr line, DirEntry entry, Cycles now);

    /** Local remapping lookup on the LLC-miss path (cache or walk). */
    Cycles localRemapLookup(HostId h, PageFrame page, Cycles now);

    /** Global remapping lookup when forwarding inter-host requests. */
    Cycles globalRemapLookup(PageFrame page, Cycles now);

    /** Move every migrated line of a revoked page back to CXL memory. */
    void performRevocation(HostId owner, PageFrame page, Cycles now);

    /** Take and clear the pending kernel stall of a core. */
    Cycles takePendingStall(HostId h, CoreId c);

    /**
     * Record a directory state transition of a watched line (trace on).
     * aux packs old state in bits 15..8, new state in bits 7..0.
     */
    void
    noteDirState(LineAddr line, DevState old_state, DevState new_state,
                 HostId h, Cycles now)
    {
        if (trace_ && trace_->lineWatched(line)) {
            trace_->record(ObsEventType::dirTransition, now, line, h,
                           (static_cast<std::uint32_t>(old_state) << 8) |
                               static_cast<std::uint32_t>(new_state));
        }
    }

    // ---- Event horizon (DESIGN.md §9) ------------------------------------

    /** tick()'s slow path: run every subsystem whose events fell due,
     *  then recompute the horizon. */
    void tickSlow(Cycles now);

    /** Recompute nextEventCycle_ from every armed schedule. */
    void recomputeEventHorizon();

    /**
     * Force the next tick() onto the slow path. Called wherever timed
     * state is re-armed outside tickSlow(): crashHost/rejoinHost/
     * suspectHost (reachable from access() via the retry engine) and
     * the demand-path corruption repairs that feed the breakers.
     */
    void invalidateEventHorizon() { nextEventCycle_ = 0; }

    // ---- Crash recovery --------------------------------------------------

    /** Drain crash/rejoin events from the injector's schedule. */
    void processCrashEvents(Cycles now);

    /** Epoch to stamp into a directory entry that becomes M-owned by h. */
    std::uint32_t epochOf(HostId h) const { return hostEpoch_[h]; }

    /** Capture host h's dirty cached lines (pendingDirty_) and clear its
     *  volatile state (caches, TLBs, remap cache, pending stalls). */
    void flushHostVolatile(HostId h);

    /**
     * Reclaim every device-side structure referencing dead host h:
     * directory sweep, PIPM remap reintegration, GIM demotion, with
     * dirty-loss accounting against pendingDirty_[h]. In oracle mode
     * this runs synchronously inside crashHost(); under the lease
     * detector it is deferred until the host is suspected (or until its
     * rejoin, whichever comes first).
     */
    void reclaimHost(HostId h, Cycles now);

    // ---- Lease detection (DESIGN.md §11) ---------------------------------

    /** Advance heartbeats, fire lease expiries, readmit fenced zombies. */
    void advanceLeases(Cycles now);

    /** When host t would answer a request sent at `now` (maxCycles:
     *  never — the host is dead). */
    Cycles respondsAt(HostId t, Cycles now) const;

    /**
     * Run the link-layer timeout/retry engine against target t. On
     * abandonment (budget exhausted) counts the transaction and — when
     * `suspect_on_fail` — suspects the target, which reclaims its device
     * state; callers must then re-look-up any directory/remap state they
     * hold. Fan-out acks pass suspect_on_fail = false: they charge the
     * timeout latency but leave suspicion to the lease, so directory
     * entry pointers held across the fan-out loop stay valid.
     */
    TxnAwait awaitHost(HostId t, Cycles now, bool suspect_on_fail);

    /** Account a dirty line of a dead-unswept owner dropped outside the
     *  reclaim sweep (directory recall or OS page flush). */
    void noteDeadOwnedDrop(LineAddr line, const DirEntry &entry);

    /** Record one lost dirty line (counter, lostLines_, poison policy). */
    void noteLostLine(LineAddr line);

    // ---- Device-metadata fault domain (DESIGN.md §12) --------------------

    /** Apply scheduled corruption events that have fallen due. */
    void processMetaEvents(Cycles now);

    /** Pick and quarantine the victim of one corruption event. */
    void applyMetaCorruption(const MetaCorruptEvent &ev, Cycles now);

    /** One scrub pass: repair up to metaScrubBudget quarantined entries. */
    void runMetaScrub(Cycles now);

    /** Repair every outstanding quarantine (crash sweeps revalidate all
     *  device metadata before trusting it). */
    void resolveAllMetaCorruption(Cycles now);

    /**
     * Resolve an outstanding corruption of `line`'s directory entry:
     * probe-and-rebuild when the shadow checksum survived, else
     * invalidate the line everywhere and poison it onto the degraded
     * uncacheable path. Returns the validation/repair latency (demand
     * accesses pay it; the scrubber charges resources but hides it).
     */
    Cycles resolveDirCorruption(LineAddr line, Cycles now);

    /**
     * Resolve an outstanding corruption of host h's remap entry for
     * `page`: rebuild in place (checksum intact), replay from the redo
     * journal (shadow hit, journal still covers the page), or
     * force-reclaim the page onto its stale CXL home copies with
     * dirty-loss accounting (shadow hit, journal records overwritten).
     */
    Cycles resolveRemapCorruption(HostId h, PageFrame page, Cycles now);

    /** Validate-and-repair guard for a directory line on a demand path. */
    Cycles metaGuardLine(LineAddr line, Cycles now);

    /** Validate-and-repair guard for any host's remap entry of a page. */
    Cycles metaGuardPage(PageFrame page, Cycles now);

    // ---- OS migration ----------------------------------------------------

    void runEpoch(Cycles now);
    bool executePromotion(std::uint64_t idx, HostId target, Cycles now);
    void executeDemotion(std::uint64_t idx, Cycles now);
    /** Flush a shared page's lines from all caches and the directory. */
    void flushSharedPage(std::uint64_t idx, Cycles now);

    SystemConfig cfg_;
    Scheme scheme_;
    std::uint64_t seed_;
    std::unique_ptr<AddressSpace> space_;
    MemoryImage mem_;

    std::unique_ptr<FaultInjector> faults_;   ///< nullptr: no injection
    std::unique_ptr<CxlSwitch> switch_;   ///< shared fabric stage
    std::vector<Host> hosts_;
    DeviceDirectory deviceDir_;
    DramDevice cxlDram_;
    std::unique_ptr<RemapCache> globalRemap_;   ///< mechanism modes only

    std::unique_ptr<PipmState> pipm_;
    std::unique_ptr<OsPolicy> osPolicy_;
    std::unique_ptr<HarmfulTracker> harmful_;
    std::vector<HostId> migratedTo_;   ///< OS placement per shared page
    Cycles nextEpoch_ = 0;

    // ---- Host liveness (DESIGN.md §8) -----------------------------------
    std::vector<std::uint8_t> hostAlive_;     ///< per host: currently up?
    std::vector<std::uint32_t> hostEpoch_;    ///< even alive / odd crashed
    std::vector<Cycles> hostDownUntil_;       ///< rejoin time (0: alive)
    std::vector<LineAddr> lostLines_;         ///< dirty losses, in order

    // ---- Lease detection (DESIGN.md §11) ---------------------------------
    bool detection_ = false;        ///< fault.leaseNs > 0
    Cycles leaseCycles_ = 0;
    Cycles heartbeatCycles_ = 0;
    Cycles readmitCycles_ = 0;
    /** Host is dead but its device state has not been reclaimed yet. */
    std::vector<std::uint8_t> needsReclaim_;
    /** Device still trusts the host's lease (not suspected/fenced). */
    std::vector<std::uint8_t> trusted_;
    std::vector<Cycles> lastHeartbeat_;   ///< last renewal delivered
    std::vector<Cycles> nextHeartbeat_;   ///< next renewal grid point
    /** Fenced zombie readmission time (0: not a fenced zombie). */
    std::vector<Cycles> zombieReadmitAt_;
    /** Dirty values captured at death, awaiting the reclaim sweep. The
     *  reclaim path only ever looks entries up by key or sorts the keys
     *  before sweeping, so the FlatMap's unspecified iteration order is
     *  never observable (DESIGN.md §9 determinism caveat). */
    std::vector<FlatMap<LineAddr, std::uint64_t>> pendingDirty_;

    // ---- Device-metadata fault domain (DESIGN.md §12) --------------------
    bool metaFaults_ = false;       ///< fault.metaCorruptMeanIntervalNs > 0
    Cycles metaScrubInterval_ = 0;
    Cycles nextMetaScrub_ = 0;

    // ---- Event horizon (DESIGN.md §9) ------------------------------------
    /** Earliest cycle at which tickSlow() could act (0 forces a slow
     *  tick; maxCycles: no subsystem has anything pending). */
    Cycles nextEventCycle_ = 0;
    /** Private references bypass the shared/TLB plumbing entirely
     *  (true when no TLB is modelled). */
    bool fastPrivate_ = false;

    bool naiveCoherence_ = false;   ///< §4.3.1 strawman coherence
    LatencyEstimates est_;
    ObsTrace *trace_ = nullptr;     ///< event trace (nullptr: off)
    StatGroup stats_;
};

} // namespace pipm

#endif // PIPM_SIM_SYSTEM_HH
