#include "trace/recorder.hh"

#include "common/logging.hh"

namespace pipm
{

namespace
{

/** Forwards an inner trace, appending each consumed ref to a stream. */
class TapTrace : public CoreTrace
{
  public:
    TapTrace(std::unique_ptr<CoreTrace> inner, TraceWriter &writer,
             unsigned stream)
        : inner_(std::move(inner)), writer_(writer), stream_(stream)
    {
    }

    MemRef next() override
    {
        const MemRef ref = inner_->next();
        writer_.append(stream_, ref);
        return ref;
    }

  private:
    std::unique_ptr<CoreTrace> inner_;
    TraceWriter &writer_;
    unsigned stream_;
};

TraceMeta
metaFor(const Workload &inner, unsigned num_hosts,
        unsigned cores_per_host)
{
    TraceMeta meta;
    meta.name = inner.name();
    meta.sourceFingerprint = inner.fingerprint();
    meta.numHosts = num_hosts;
    meta.coresPerHost = cores_per_host;
    meta.sharedBytes = inner.sharedBytes();
    meta.privateBytesPerHost = inner.privateBytesPerHost();
    meta.footprintBytes = inner.footprintBytes();
    return meta;
}

} // namespace

TraceRecorder::TraceRecorder(const Workload &inner, unsigned num_hosts,
                             unsigned cores_per_host)
    : inner_(inner),
      writer_(metaFor(inner, num_hosts, cores_per_host)),
      tapped_(writer_.meta().streamCount(), false)
{
}

std::unique_ptr<CoreTrace>
TraceRecorder::makeTrace(HostId host, CoreId core,
                         unsigned cores_per_host, unsigned num_hosts,
                         std::uint64_t seed) const
{
    const TraceMeta &meta = writer_.meta();
    fatal_if(num_hosts != meta.numHosts ||
                 cores_per_host != meta.coresPerHost,
             "TraceRecorder was built for ", meta.numHosts, "x",
             meta.coresPerHost, " cores but the run asked for ",
             num_hosts, "x", cores_per_host);
    const unsigned stream = meta.streamIndex(host, core);
    panic_if(tapped_[stream], "core (", unsigned{host}, ",", core,
             ") tapped twice: a TraceRecorder captures exactly one run");
    tapped_[stream] = true;
    return std::make_unique<TapTrace>(
        inner_.makeTrace(host, core, cores_per_host, num_hosts, seed),
        writer_, stream);
}

} // namespace pipm
