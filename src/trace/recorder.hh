/**
 * @file
 * TraceRecorder: capture any workload's per-core reference streams
 * while a real experiment runs (DESIGN.md §14).
 *
 * The recorder is a transparent Workload wrapper. It forwards every
 * query to the wrapped workload and wraps each CoreTrace the runner
 * builds, encoding every reference *as the runner consumes it* into a
 * TraceWriter stream. Because the runner's consumption order is the
 * single source of nondeterminism-free truth (each core draws exactly
 * the refs its run consumed, including refs a crashing host discarded
 * mid-access), replaying the captured streams through the same
 * SystemConfig/RunConfig/seed reproduces the original RunResult
 * bit-for-bit — see the determinism argument in DESIGN.md §14.
 *
 * A recorder instance captures exactly one run: tapping the same
 * (host, core) stream twice panics.
 */

#ifndef PIPM_TRACE_RECORDER_HH
#define PIPM_TRACE_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace pipm
{

/** Records a workload's consumed reference streams to a PIPMT trace. */
class TraceRecorder : public Workload
{
  public:
    /**
     * @param inner the workload to record (must outlive the recorder)
     * @param num_hosts / cores_per_host the geometry of the run that
     *        will be recorded (must match the RunConfig's machine)
     */
    TraceRecorder(const Workload &inner, unsigned num_hosts,
                  unsigned cores_per_host);

    std::string name() const override { return inner_.name(); }
    std::string suite() const override { return inner_.suite(); }
    std::uint64_t footprintBytes() const override
    {
        return inner_.footprintBytes();
    }
    std::uint64_t sharedBytes() const override
    {
        return inner_.sharedBytes();
    }
    std::uint64_t privateBytesPerHost() const override
    {
        return inner_.privateBytesPerHost();
    }
    std::string fingerprint() const override
    {
        return inner_.fingerprint();
    }

    std::unique_ptr<CoreTrace> makeTrace(HostId host, CoreId core,
                                         unsigned cores_per_host,
                                         unsigned num_hosts,
                                         std::uint64_t seed) const override;

    /** References captured so far, across all streams. */
    std::uint64_t recordedRefs() const { return writer_.totalRecords(); }

    /** Write the captured trace (call after runExperiment returns). */
    void writeTo(const std::string &path) const { writer_.writeTo(path); }

  private:
    const Workload &inner_;
    // makeTrace() is const on the Workload interface but recording is
    // inherently stateful; the writer mutates behind it.
    mutable TraceWriter writer_;
    mutable std::vector<bool> tapped_;
};

} // namespace pipm

#endif // PIPM_TRACE_RECORDER_HH
