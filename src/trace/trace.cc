#include "trace/trace.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/varint.hh"

namespace pipm
{

namespace
{

constexpr char traceMagic[5] = {'P', 'I', 'P', 'M', 'T'};
constexpr std::uint8_t traceVersion = 1;

// Sanity caps on header-declared sizes, so a garbage header cannot ask
// for absurd allocations before the checksum gets a chance to reject it.
constexpr std::uint64_t maxStreams = 32 * 4096;
constexpr std::uint64_t maxStringLen = 4096;

void
put8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
put16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Bounds-checked little-endian reads over the loaded file image. */
struct ByteCursor
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    const std::string &path;

    void need(std::size_t n) const
    {
        fatal_if(static_cast<std::size_t>(end - p) < n, "trace file ",
                 path, " is truncated");
    }

    std::uint8_t get8()
    {
        need(1);
        return *p++;
    }

    std::uint16_t get16()
    {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(p[0]) |
                          static_cast<std::uint16_t>(p[1]) << 8;
        p += 2;
        return v;
    }

    std::uint32_t get32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        p += 4;
        return v;
    }

    std::uint64_t get64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        return v;
    }

    std::string getString(std::uint64_t len)
    {
        need(len);
        std::string s(reinterpret_cast<const char *>(p),
                      static_cast<std::size_t>(len));
        p += len;
        return s;
    }
};

void
validateMeta(const TraceMeta &meta, const std::string &what)
{
    fatal_if(meta.numHosts == 0 || meta.coresPerHost == 0, what,
             ": trace geometry must name at least one host and core");
    fatal_if(meta.numHosts * meta.coresPerHost > maxStreams, what,
             ": implausible stream count ",
             meta.numHosts * meta.coresPerHost);
    fatal_if(meta.pageBytes == 0 || meta.lineBytes == 0 ||
                 meta.pageBytes % meta.lineBytes != 0,
             what, ": page size must be a multiple of line size");
    // The flags byte spends 6 bits on the line index.
    fatal_if(meta.pageBytes / meta.lineBytes > 64, what,
             ": PIPMT v1 encodes at most 64 lines per page, got ",
             meta.pageBytes / meta.lineBytes);
    fatal_if(meta.name.size() > maxStringLen ||
                 meta.sourceFingerprint.size() > maxStringLen,
             what, ": oversized metadata strings");
}

} // namespace

TraceWriter::TraceWriter(TraceMeta meta) : meta_(std::move(meta))
{
    validateMeta(meta_, "TraceWriter");
    streams_.resize(meta_.streamCount());
}

void
TraceWriter::append(unsigned stream, const MemRef &ref)
{
    panic_if(stream >= streams_.size(), "trace stream ", stream,
             " out of range (", streams_.size(), " streams)");
    panic_if(ref.lineIdx >= meta_.pageBytes / meta_.lineBytes,
             "line index ", unsigned{ref.lineIdx},
             " exceeds trace geometry");
    Stream &s = streams_[stream];
    const std::uint8_t flags =
        static_cast<std::uint8_t>((ref.op == MemOp::write ? 1 : 0) |
                                  (ref.shared ? 2 : 0) |
                                  (ref.lineIdx << 2));
    put8(s.bytes, flags);
    std::int64_t &prev = s.prevPage[ref.shared ? 1 : 0];
    const std::int64_t page = static_cast<std::int64_t>(ref.page);
    putVarint(s.bytes, zigzagEncode(page - prev));
    prev = page;
    putVarint(s.bytes, ref.gap);
    ++s.records;
}

std::uint64_t
TraceWriter::records(unsigned stream) const
{
    panic_if(stream >= streams_.size(), "trace stream ", stream,
             " out of range");
    return streams_[stream].records;
}

std::uint64_t
TraceWriter::totalRecords() const
{
    std::uint64_t total = 0;
    for (const Stream &s : streams_)
        total += s.records;
    return total;
}

void
TraceWriter::writeTo(const std::string &path) const
{
    Fnv1a sum;
    std::uint64_t payloadBytes = 0;
    for (const Stream &s : streams_) {
        sum.put(s.bytes.data(), s.bytes.size());
        payloadBytes += s.bytes.size();
    }

    std::vector<std::uint8_t> header;
    header.reserve(128 + 16 * streams_.size());
    header.insert(header.end(), traceMagic, traceMagic + sizeof traceMagic);
    put8(header, traceVersion);
    put8(header, 0);  // reserved
    put32(header, meta_.numHosts);
    put32(header, meta_.coresPerHost);
    put32(header, meta_.pageBytes);
    put32(header, meta_.lineBytes);
    put64(header, meta_.sharedBytes);
    put64(header, meta_.privateBytesPerHost);
    put64(header, meta_.footprintBytes);
    put64(header, payloadBytes);
    put64(header, sum.digest());
    put16(header, static_cast<std::uint16_t>(meta_.name.size()));
    header.insert(header.end(), meta_.name.begin(), meta_.name.end());
    put16(header,
          static_cast<std::uint16_t>(meta_.sourceFingerprint.size()));
    header.insert(header.end(), meta_.sourceFingerprint.begin(),
                  meta_.sourceFingerprint.end());
    for (const Stream &s : streams_) {
        put64(header, s.records);
        put64(header, s.bytes.size());
    }

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        fatal_if(!out, "cannot open ", tmp, " for writing");
        out.write(reinterpret_cast<const char *>(header.data()),
                  static_cast<std::streamsize>(header.size()));
        for (const Stream &s : streams_)
            out.write(reinterpret_cast<const char *>(s.bytes.data()),
                      static_cast<std::streamsize>(s.bytes.size()));
        out.flush();
        fatal_if(!out, "short write to ", tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    fatal_if(ec, "cannot move ", tmp, " to ", path, ": ", ec.message());
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    fatal_if(!in, "cannot open trace file ", path);
    const std::streamsize bytes = in.tellg();
    std::vector<std::uint8_t> image(static_cast<std::size_t>(bytes));
    in.seekg(0);
    in.read(reinterpret_cast<char *>(image.data()), bytes);
    fatal_if(!in, "short read from ", path);

    ByteCursor cur{image.data(), image.data() + image.size(), path_};
    cur.need(sizeof traceMagic + 2);
    fatal_if(std::memcmp(cur.p, traceMagic, sizeof traceMagic) != 0,
             path, " is not a PIPMT trace (bad magic)");
    cur.p += sizeof traceMagic;
    const std::uint8_t version = cur.get8();
    fatal_if(version != traceVersion, path,
             ": unsupported PIPMT version ", unsigned{version},
             " (this build reads version ", unsigned{traceVersion}, ")");
    cur.get8();  // reserved

    meta_.numHosts = cur.get32();
    meta_.coresPerHost = cur.get32();
    meta_.pageBytes = cur.get32();
    meta_.lineBytes = cur.get32();
    meta_.sharedBytes = cur.get64();
    meta_.privateBytesPerHost = cur.get64();
    meta_.footprintBytes = cur.get64();
    const std::uint64_t payloadBytes = cur.get64();
    checksum_ = cur.get64();
    const std::uint16_t nameLen = cur.get16();
    fatal_if(nameLen > maxStringLen, path, ": oversized workload name");
    meta_.name = cur.getString(nameLen);
    const std::uint16_t srcLen = cur.get16();
    fatal_if(srcLen > maxStringLen, path,
             ": oversized source fingerprint");
    meta_.sourceFingerprint = cur.getString(srcLen);
    validateMeta(meta_, path);

    descs_.resize(meta_.streamCount());
    std::uint64_t offset = 0;
    for (StreamDesc &d : descs_) {
        d.records = cur.get64();
        d.bytes = cur.get64();
        d.offset = offset;
        offset += d.bytes;
    }
    fatal_if(offset != payloadBytes, path,
             ": stream table sums to ", offset,
             " bytes but header declares ", payloadBytes);
    cur.need(payloadBytes);
    fatal_if(static_cast<std::uint64_t>(cur.end - cur.p) != payloadBytes,
             path, ": ", cur.end - cur.p - payloadBytes,
             " trailing bytes after payload");
    payload_.assign(cur.p, cur.p + payloadBytes);

    Fnv1a sum;
    sum.put(payload_.data(), payload_.size());
    fatal_if(sum.digest() != checksum_, path,
             ": payload checksum mismatch (expected ",
             hashHex(checksum_), ", got ", hashHex(sum.digest()), ")");
}

std::uint64_t
TraceReader::records(unsigned stream) const
{
    panic_if(stream >= descs_.size(), "trace stream ", stream,
             " out of range");
    return descs_[stream].records;
}

std::uint64_t
TraceReader::totalRecords() const
{
    std::uint64_t total = 0;
    for (const StreamDesc &d : descs_)
        total += d.records;
    return total;
}

std::uint64_t
TraceReader::streamBytes(unsigned stream) const
{
    panic_if(stream >= descs_.size(), "trace stream ", stream,
             " out of range");
    return descs_[stream].bytes;
}

std::vector<MemRef>
TraceReader::decodeStream(unsigned stream) const
{
    panic_if(stream >= descs_.size(), "trace stream ", stream,
             " out of range");
    const StreamDesc &d = descs_[stream];
    const std::uint8_t *p = payload_.data() + d.offset;
    const std::uint8_t *end = p + d.bytes;
    const unsigned linesPerPage = meta_.pageBytes / meta_.lineBytes;

    std::vector<MemRef> refs;
    refs.reserve(static_cast<std::size_t>(d.records));
    std::int64_t prevPage[2] = {0, 0};
    for (std::uint64_t i = 0; i < d.records; ++i) {
        fatal_if(p >= end, path_, ": stream ", stream,
                 " ends after ", i, " of ", d.records, " records");
        const std::uint8_t flags = *p++;
        MemRef ref;
        ref.op = (flags & 1) ? MemOp::write : MemOp::read;
        ref.shared = (flags & 2) != 0;
        ref.lineIdx = static_cast<std::uint8_t>(flags >> 2);
        fatal_if(ref.lineIdx >= linesPerPage, path_, ": stream ",
                 stream, " record ", i, " line index ",
                 unsigned{ref.lineIdx}, " exceeds geometry");

        std::uint64_t v = 0;
        std::size_t n = getVarint(p, end, v);
        fatal_if(n == 0, path_, ": stream ", stream,
                 " has a malformed page delta at record ", i);
        p += n;
        const std::int64_t page =
            prevPage[ref.shared ? 1 : 0] + zigzagDecode(v);
        fatal_if(page < 0, path_, ": stream ", stream,
                 " decodes a negative page index at record ", i);
        ref.page = static_cast<std::uint64_t>(page);
        prevPage[ref.shared ? 1 : 0] = page;

        n = getVarint(p, end, v);
        fatal_if(n == 0, path_, ": stream ", stream,
                 " has a malformed gap at record ", i);
        p += n;
        fatal_if(v > std::numeric_limits<std::uint16_t>::max(), path_,
                 ": stream ", stream, " gap ", v, " exceeds 16 bits");
        ref.gap = static_cast<std::uint16_t>(v);
        refs.push_back(ref);
    }
    fatal_if(p != end, path_, ": stream ", stream, " has ", end - p,
             " bytes of trailing garbage");
    return refs;
}

TraceWriter
mergeTraces(const std::vector<std::string> &inputs)
{
    fatal_if(inputs.empty(), "merge needs at least one input trace");

    std::vector<TraceReader> readers;
    readers.reserve(inputs.size());
    for (const std::string &path : inputs)
        readers.emplace_back(path);

    const TraceMeta &first = readers.front().meta();
    TraceMeta meta;
    meta.numHosts = first.numHosts;
    meta.coresPerHost = first.coresPerHost;
    meta.pageBytes = first.pageBytes;
    meta.lineBytes = first.lineBytes;
    std::string names;
    std::string sources;
    for (std::size_t i = 0; i < readers.size(); ++i) {
        const TraceMeta &m = readers[i].meta();
        fatal_if(m.numHosts != meta.numHosts ||
                     m.coresPerHost != meta.coresPerHost ||
                     m.pageBytes != meta.pageBytes ||
                     m.lineBytes != meta.lineBytes,
                 "merge input ", inputs[i],
                 " disagrees on geometry with ", inputs.front());
        meta.sharedBytes = std::max(meta.sharedBytes, m.sharedBytes);
        meta.privateBytesPerHost =
            std::max(meta.privateBytesPerHost, m.privateBytesPerHost);
        meta.footprintBytes =
            std::max(meta.footprintBytes, m.footprintBytes);
        if (i) {
            names += '+';
            sources += '+';
        }
        names += m.name;
        sources += hashHex(readers[i].checksum());
    }
    meta.name = "merge(" + names + ")";
    meta.sourceFingerprint = "merge;" + sources;
    validateMeta(meta, "mergeTraces");

    TraceWriter out(meta);
    for (unsigned s = 0; s < meta.streamCount(); ++s) {
        std::vector<std::vector<MemRef>> decoded;
        decoded.reserve(readers.size());
        for (const TraceReader &r : readers)
            decoded.push_back(r.decodeStream(s));
        // Round-robin in input order; exhausted inputs drop out, so the
        // interleave is a pure function of the inputs and their order.
        std::vector<std::size_t> cursor(decoded.size(), 0);
        bool any = true;
        while (any) {
            any = false;
            for (std::size_t i = 0; i < decoded.size(); ++i) {
                if (cursor[i] >= decoded[i].size())
                    continue;
                out.append(s, decoded[i][cursor[i]++]);
                any = true;
            }
        }
    }
    return out;
}

} // namespace pipm
