/**
 * @file
 * PIPMT v1: the compact binary trace format of the trace subsystem
 * (DESIGN.md §14).
 *
 * A trace file is a single self-describing artifact holding one memory
 * reference stream per (host, core) pair, plus the metadata the runner
 * needs to rebuild the recorded machine shape: geometry, footprints,
 * the source workload's name and fingerprint. Layout (little-endian):
 *
 *   magic "PIPMT" + version byte (1) + reserved byte (0)
 *   u32 numHosts        u32 coresPerHost
 *   u32 pageBytes       u32 lineBytes
 *   u64 sharedBytes     u64 privateBytesPerHost   u64 footprintBytes
 *   u64 payloadBytes    u64 payloadChecksum (FNV-1a over the payload)
 *   u16 nameLen + name bytes
 *   u16 sourceLen + source-fingerprint bytes
 *   numHosts*coresPerHost stream descriptors: { u64 records, u64 bytes }
 *   payload: the streams' encoded bytes, concatenated in (host, core)
 *   row-major order
 *
 * Each record encodes as:
 *
 *   flags byte:  bit 0 = write, bit 1 = shared, bits 2..7 = line index
 *   varint:      zigzag(page - previous page in the same namespace);
 *                shared and private pages keep separate predictors,
 *                both starting at 0
 *   varint:      non-memory gap
 *
 * Hot streams revisit nearby pages, so deltas are small and the common
 * record costs 3 bytes against 8 for the packed-word format this
 * replaces. The whole payload is covered by the header checksum;
 * readers reject garbage magic, unknown versions, truncated files and
 * checksum mismatches via fatal() (catchable as SimError in tests).
 */

#ifndef PIPM_TRACE_TRACE_HH
#define PIPM_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace pipm
{

/** Trace-wide metadata carried by the PIPMT header. */
struct TraceMeta
{
    std::string name;               ///< source workload name
    std::string sourceFingerprint;  ///< source workload fingerprint
    unsigned numHosts = 0;
    unsigned coresPerHost = 0;
    std::uint32_t pageBytes = pipm::pageBytes;
    std::uint32_t lineBytes = pipm::lineBytes;
    std::uint64_t sharedBytes = 0;
    std::uint64_t privateBytesPerHost = 0;
    std::uint64_t footprintBytes = 0;

    /** Streams in the file: one per (host, core). */
    unsigned streamCount() const { return numHosts * coresPerHost; }

    /** Row-major stream index of (host, core). */
    unsigned streamIndex(unsigned host, unsigned core) const
    {
        return host * coresPerHost + core;
    }
};

/**
 * Encodes reference streams incrementally and writes the finished
 * PIPMT file. append() compresses each record immediately, so
 * recording holds bytes (~3/record), not MemRefs.
 */
class TraceWriter
{
  public:
    /** @param meta geometry and provenance; validated here */
    explicit TraceWriter(TraceMeta meta);

    /** Append one reference to a stream (in consumption order). */
    void append(unsigned stream, const MemRef &ref);

    /** Records appended to a stream so far. */
    std::uint64_t records(unsigned stream) const;

    /** Total records across all streams. */
    std::uint64_t totalRecords() const;

    const TraceMeta &meta() const { return meta_; }

    /**
     * Write the complete trace file. Builds the file in a temporary
     * sibling and renames it into place so readers never observe a
     * half-written trace.
     */
    void writeTo(const std::string &path) const;

  private:
    struct Stream
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t records = 0;
        std::int64_t prevPage[2] = {0, 0};  ///< [private, shared]
    };

    TraceMeta meta_;
    std::vector<Stream> streams_;
};

/** Loads, validates and decodes a PIPMT file. */
class TraceReader
{
  public:
    /** @param path trace file; fatal() on any malformation */
    explicit TraceReader(const std::string &path);

    const TraceMeta &meta() const { return meta_; }

    /** Payload FNV-1a digest — the trace's content address. */
    std::uint64_t checksum() const { return checksum_; }

    /** Records recorded in one stream. */
    std::uint64_t records(unsigned stream) const;

    /** Total records across all streams. */
    std::uint64_t totalRecords() const;

    /** Encoded payload size of one stream, in bytes. */
    std::uint64_t streamBytes(unsigned stream) const;

    /**
     * Decode one stream into references. fatal() on any encoding
     * error (the checksum already vouches for the bytes, so errors
     * here mean a corrupt writer, not bit rot).
     */
    std::vector<MemRef> decodeStream(unsigned stream) const;

  private:
    struct StreamDesc
    {
        std::uint64_t records = 0;
        std::uint64_t offset = 0;  ///< into payload_
        std::uint64_t bytes = 0;
    };

    std::string path_;
    TraceMeta meta_;
    std::uint64_t checksum_ = 0;
    std::vector<StreamDesc> descs_;
    std::vector<std::uint8_t> payload_;
};

/**
 * Merge traces into one, interleaving each output stream's records
 * round-robin across the inputs (input order = argument order, so the
 * result is deterministic). Inputs must agree on geometry; footprints
 * take the element-wise maximum. An input whose stream runs dry drops
 * out of the rotation.
 *
 * @return the merged trace, ready to writeTo()
 */
TraceWriter mergeTraces(const std::vector<std::string> &inputs);

} // namespace pipm

#endif // PIPM_TRACE_TRACE_HH
