#include "trace/trace_gen.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace pipm
{

namespace
{

/** Shared per-ref machinery: write mix, private refs, gaps, lines. */
struct StreamCtx
{
    const GenSpec &spec;
    unsigned host;
    Rng rng;
    std::uint64_t emitted = 0;

    StreamCtx(const GenSpec &s, unsigned h, unsigned c)
        : spec(s), host(h),
          // Same per-core decorrelation the runner uses for synthetic
          // streams: nearby (host, core) pairs get unrelated draws.
          rng(s.seed + 7919 * (h * 64 + c))
    {
    }

    MemOp op() { return rng.chance(spec.writeFrac) ? MemOp::write
                                                   : MemOp::read; }

    std::uint16_t gap()
    {
        // Uniform in [0, 2*mean] keeps the mean configurable while
        // staying cheap and bounded.
        return static_cast<std::uint16_t>(
            rng.below(2ull * spec.gapMean + 1));
    }

    /** With privateFrac probability, replace a ref by a private one. */
    bool maybePrivate(MemRef &ref)
    {
        if (!rng.chance(spec.privateFrac))
            return false;
        ref.shared = false;
        ref.page = rng.below(std::max<std::uint64_t>(spec.privatePages, 1));
        ref.lineIdx = static_cast<std::uint8_t>(rng.below(linesPerPage));
        ref.op = op();
        ref.gap = gap();
        return true;
    }
};

/**
 * Hot window sliding at `hotPages / (2 * halfLifeRefs)` pages per ref:
 * after halfLifeRefs refs the window has advanced hotPages/2 pages,
 * i.e. half of the initially hot pages have fallen out.
 */
struct HotDrift
{
    StreamCtx ctx;
    double slidePerRef;
    double slideAccum = 0.0;
    std::uint64_t windowStart;

    HotDrift(const GenSpec &s, unsigned h, unsigned c)
        : ctx(s, h, c),
          slidePerRef(static_cast<double>(s.hotPages) /
                      (2.0 * static_cast<double>(
                                 std::max<std::uint64_t>(s.halfLifeRefs,
                                                         1)))),
          // Per-host windows start in disjoint regions of the heap.
          windowStart(h * (s.sharedPages / s.numHosts))
    {
    }

    MemRef next()
    {
        MemRef ref;
        if (ctx.maybePrivate(ref))
            return ref;
        slideAccum += slidePerRef;
        while (slideAccum >= 1.0) {
            windowStart = (windowStart + 1) % ctx.spec.sharedPages;
            slideAccum -= 1.0;
        }
        const std::uint64_t hot =
            std::min(ctx.spec.hotPages, ctx.spec.sharedPages);
        // 90/10: most refs hit the drifting window, the rest roam.
        if (ctx.rng.chance(0.9))
            ref.page = (windowStart + ctx.rng.below(hot)) %
                       ctx.spec.sharedPages;
        else
            ref.page = ctx.rng.below(ctx.spec.sharedPages);
        ref.lineIdx =
            static_cast<std::uint8_t>(ctx.rng.below(linesPerPage));
        ref.op = ctx.op();
        ref.gap = ctx.gap();
        return ref;
    }
};

/**
 * Producer/consumer ring. Phase k: host k mod N sequentially writes
 * block B_k and reads back B_{k-1} (its predecessor's output); idle
 * hosts poll a few uniform pages. Blocks tile the heap.
 */
struct Handoff
{
    StreamCtx ctx;
    std::uint64_t cursor = 0;

    Handoff(const GenSpec &s, unsigned h, unsigned c) : ctx(s, h, c) {}

    std::uint64_t blockBase(std::uint64_t phase) const
    {
        const std::uint64_t blocks =
            std::max<std::uint64_t>(ctx.spec.sharedPages /
                                        ctx.spec.handoffPages,
                                    1);
        return (phase % blocks) * ctx.spec.handoffPages;
    }

    MemRef next()
    {
        MemRef ref;
        if (ctx.maybePrivate(ref)) {
            ++ctx.emitted;
            return ref;
        }
        const std::uint64_t phase = ctx.emitted / ctx.spec.phaseRefs;
        const unsigned active =
            static_cast<unsigned>(phase % ctx.spec.numHosts);
        const std::uint64_t block = ctx.spec.handoffPages;
        if (ctx.host == active) {
            // Walk the current block writing, the previous one reading.
            const std::uint64_t step = cursor++ % (2 * block);
            if (step < block) {
                ref.page = blockBase(phase) + step;
                ref.op = MemOp::write;
            } else {
                ref.page = blockBase(phase == 0 ? 0 : phase - 1) +
                           (step - block);
                ref.op = MemOp::read;
            }
            ref.lineIdx = static_cast<std::uint8_t>(
                (cursor * 7) % linesPerPage);
        } else {
            // Idle hosts lightly poll the handoff region.
            ref.page = blockBase(phase) + ctx.rng.below(block);
            ref.op = MemOp::read;
            ref.lineIdx =
                static_cast<std::uint8_t>(ctx.rng.below(linesPerPage));
        }
        ref.page %= ctx.spec.sharedPages;
        ref.gap = ctx.gap();
        ++ctx.emitted;
        return ref;
    }
};

/**
 * Zipf ranks mapped to pages through a per-host rotation that advances
 * every phaseRefs refs, so each host's hot pages sweep the heap.
 */
struct ZipfRot
{
    StreamCtx ctx;
    ZipfSampler zipf;

    ZipfRot(const GenSpec &s, unsigned h, unsigned c)
        : ctx(s, h, c), zipf(s.sharedPages, s.zipfTheta)
    {
    }

    MemRef next()
    {
        MemRef ref;
        if (ctx.maybePrivate(ref)) {
            ++ctx.emitted;
            return ref;
        }
        const std::uint64_t rot =
            (ctx.host + ctx.emitted / ctx.spec.phaseRefs) %
            ctx.spec.numHosts;
        const std::uint64_t stride =
            ctx.spec.sharedPages / ctx.spec.numHosts;
        const std::uint64_t rank = zipf.sample(ctx.rng);
        // Scatter ranks with a fixed odd multiplier so consecutive hot
        // ranks do not land on adjacent pages, then rotate per host.
        ref.page = (rank * 2654435761ull + rot * stride) %
                   ctx.spec.sharedPages;
        ref.lineIdx =
            static_cast<std::uint8_t>(ctx.rng.below(linesPerPage));
        ref.op = ctx.op();
        ref.gap = ctx.gap();
        ++ctx.emitted;
        return ref;
    }
};

/** Alternating sequential-scan and pointer-chase phases. */
struct ScanChase
{
    StreamCtx ctx;
    std::uint64_t scanLine = 0;  ///< line cursor within the partition
    std::uint64_t chasePage;

    ScanChase(const GenSpec &s, unsigned h, unsigned c)
        : ctx(s, h, c), chasePage(ctx.rng.below(s.sharedPages))
    {
    }

    MemRef next()
    {
        MemRef ref;
        if (ctx.maybePrivate(ref)) {
            ++ctx.emitted;
            return ref;
        }
        const bool scanning =
            (ctx.emitted / ctx.spec.phaseRefs) % 2 == 0;
        const std::uint64_t partPages =
            std::max<std::uint64_t>(ctx.spec.sharedPages /
                                        ctx.spec.numHosts,
                                    1);
        const std::uint64_t partBase =
            ctx.host * (ctx.spec.sharedPages / ctx.spec.numHosts);
        if (scanning) {
            const std::uint64_t line = scanLine++;
            ref.page = (partBase + line / linesPerPage % partPages) %
                       ctx.spec.sharedPages;
            ref.lineIdx =
                static_cast<std::uint8_t>(line % linesPerPage);
            ref.op = ctx.op();
            ref.gap = 0;  // streaming: back-to-back accesses
        } else {
            // LCG-style walk: the next page depends on the current one,
            // like chasing pointers through a shuffled node pool.
            chasePage = (chasePage * 6364136223846793005ull +
                         1442695040888963407ull) %
                        ctx.spec.sharedPages;
            ref.page = chasePage;
            ref.lineIdx = static_cast<std::uint8_t>(
                chasePage % linesPerPage);
            ref.op = MemOp::read;
            ref.gap = static_cast<std::uint16_t>(2 * ctx.gap());
        }
        ++ctx.emitted;
        return ref;
    }
};

std::string
genFingerprint(const GenSpec &s)
{
    std::ostringstream os;
    os << "tracegen;" << s.model << ';' << s.numHosts << 'x'
       << s.coresPerHost << ';' << s.refsPerStream << ';'
       << s.sharedPages << ';' << s.privatePages << ';' << s.seed << ';'
       << s.writeFrac << ';' << s.privateFrac << ';' << s.gapMean << ';'
       << s.hotPages << ';' << s.halfLifeRefs << ';' << s.handoffPages
       << ';' << s.phaseRefs << ';' << s.zipfTheta;
    return os.str();
}

template <typename Model>
void
fillStreams(const GenSpec &spec, TraceWriter &out)
{
    for (unsigned h = 0; h < spec.numHosts; ++h) {
        for (unsigned c = 0; c < spec.coresPerHost; ++c) {
            Model model(spec, h, c);
            const unsigned stream =
                out.meta().streamIndex(h, c);
            for (std::uint64_t i = 0; i < spec.refsPerStream; ++i)
                out.append(stream, model.next());
        }
    }
}

} // namespace

const std::vector<std::string> &
genModels()
{
    static const std::vector<std::string> models = {
        "hotdrift", "handoff", "zipfrot", "scanchase"};
    return models;
}

bool
knownGenModel(const std::string &model)
{
    const auto &models = genModels();
    return std::find(models.begin(), models.end(), model) != models.end();
}

TraceWriter
generateTrace(const GenSpec &spec)
{
    fatal_if(!knownGenModel(spec.model), "unknown trace model '",
             spec.model, "' (known: hotdrift, handoff, zipfrot, "
             "scanchase)");
    fatal_if(spec.numHosts == 0 || spec.coresPerHost == 0,
             "trace generation needs at least one host and core");
    fatal_if(spec.sharedPages == 0, "sharedPages must be positive");
    fatal_if(spec.refsPerStream == 0, "refsPerStream must be positive");
    fatal_if(spec.phaseRefs == 0, "phaseRefs must be positive");
    fatal_if(spec.handoffPages == 0 ||
                 spec.handoffPages > spec.sharedPages,
             "handoffPages must be in [1, sharedPages]");

    TraceMeta meta;
    meta.name = "gen:" + spec.model;
    meta.sourceFingerprint = genFingerprint(spec);
    meta.numHosts = spec.numHosts;
    meta.coresPerHost = spec.coresPerHost;
    meta.sharedBytes = spec.sharedPages * pageBytes;
    meta.privateBytesPerHost =
        std::max<std::uint64_t>(spec.privatePages, 1) * pageBytes;
    meta.footprintBytes =
        meta.sharedBytes + meta.privateBytesPerHost * spec.numHosts;

    TraceWriter out(meta);
    if (spec.model == "hotdrift")
        fillStreams<HotDrift>(spec, out);
    else if (spec.model == "handoff")
        fillStreams<Handoff>(spec, out);
    else if (spec.model == "zipfrot")
        fillStreams<ZipfRot>(spec, out);
    else
        fillStreams<ScanChase>(spec, out);
    return out;
}

} // namespace pipm
