/**
 * @file
 * trace_gen: synthesize multi-host trace files whose access patterns
 * the parametric workload models cannot express (DESIGN.md §14).
 *
 * Four generators, each emitting one PIPMT stream per (host, core):
 *
 * - `hotdrift`  — a hot window of pages per host whose position slides
 *   continuously; the slide rate is derived from a configurable
 *   half-life: after `halfLifeRefs` references, half of the initially
 *   hot pages have left the window. Stresses vote churn and revocation.
 * - `handoff`   — a producer/consumer pipeline: in phase k, host
 *   k mod N writes block B_k and reads block B_{k-1} written by its
 *   predecessor, so page ownership migrates around the ring. The
 *   worst case for per-host promotion ("local gain, global pain").
 * - `zipfrot`   — zipf-over-pages where each host sees the rank->page
 *   mapping rotated by a per-host offset that itself rotates every
 *   `phaseRefs` references, so the globally hot set moves between
 *   host partitions on a schedule.
 * - `scanchase` — alternating phases of sequential scan over the
 *   host's partition and uniform pointer-chase over the whole heap;
 *   the scan phases defeat recency, the chase phases defeat locality.
 *
 * All generators are pure functions of (spec, host, core): bytes are
 * reproducible across runs and machines.
 */

#ifndef PIPM_TRACE_TRACE_GEN_HH
#define PIPM_TRACE_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace pipm
{

/** Parameters for generated traces; defaults give a laptop-sized run. */
struct GenSpec
{
    std::string model = "hotdrift";  ///< hotdrift|handoff|zipfrot|scanchase
    unsigned numHosts = 4;
    unsigned coresPerHost = 2;
    std::uint64_t refsPerStream = 20000;
    std::uint64_t sharedPages = 4096;    ///< shared-heap size in pages
    std::uint64_t privatePages = 64;     ///< per-host private pages
    std::uint64_t seed = 1;
    double writeFrac = 0.3;              ///< write probability
    double privateFrac = 0.15;           ///< private-ref probability
    unsigned gapMean = 8;                ///< mean non-memory gap
    std::uint64_t hotPages = 64;         ///< hotdrift window size
    std::uint64_t halfLifeRefs = 5000;   ///< hotdrift half-life
    std::uint64_t handoffPages = 32;     ///< handoff block size
    std::uint64_t phaseRefs = 2000;      ///< handoff/zipfrot/scanchase phase
    double zipfTheta = 0.9;              ///< zipfrot skew
};

/** Generator model names, in canonical order. */
const std::vector<std::string> &genModels();

/** True when `model` names a known generator. */
bool knownGenModel(const std::string &model);

/**
 * Generate a trace per the spec. fatal() on an unknown model or
 * degenerate geometry.
 * @return the generated trace, ready to writeTo()
 */
TraceWriter generateTrace(const GenSpec &spec);

} // namespace pipm

#endif // PIPM_TRACE_TRACE_GEN_HH
