#include "verify/checker.hh"

#include <deque>
#include <sstream>
#include <unordered_map>

namespace pipm
{

std::string
CheckResult::traceString(unsigned num_hosts) const
{
    std::ostringstream os;
    for (const TraceStep &step : counterexample) {
        os << toString(step.event) << "(h" << int(step.host) << ") -> "
           << step.state.describe(num_hosts) << '\n';
    }
    return os.str();
}

CheckResult
checkProtocol(unsigned num_hosts, std::uint64_t max_states)
{
    ProtocolModel model(num_hosts);
    CheckResult result;

    struct Parent
    {
        std::uint64_t from;
        ProtoEvent event;
        HostId host;
    };

    const ProtoState init = model.initial();
    std::unordered_map<std::uint64_t, Parent> visited;
    std::deque<ProtoState> frontier;

    auto report = [&](const ProtoState &bad, const std::string &why) {
        result.ok = false;
        result.violation = why;
        // Reconstruct the shortest trace by walking parent pointers.
        std::vector<TraceStep> steps;
        std::uint64_t cursor = bad.encode(num_hosts);
        // Replaying states requires re-simulating from the root; store
        // only events here and recompute states forward.
        std::vector<std::pair<ProtoEvent, HostId>> events;
        while (cursor != init.encode(num_hosts)) {
            const Parent &p = visited.at(cursor);
            events.push_back({p.event, p.host});
            cursor = p.from;
        }
        ProtoState s = init;
        for (auto it = events.rbegin(); it != events.rend(); ++it) {
            s = model.apply(s, it->first, it->second);
            steps.push_back(TraceStep{it->first, it->second, s});
        }
        result.counterexample = std::move(steps);
    };

    {
        const std::string why = model.checkInvariants(init);
        if (!why.empty()) {
            result.violation = why;
            return result;
        }
    }
    visited.emplace(init.encode(num_hosts),
                    Parent{init.encode(num_hosts), ProtoEvent::read, 0});
    frontier.push_back(init);
    result.statesExplored = 1;

    while (!frontier.empty()) {
        const ProtoState s = frontier.front();
        frontier.pop_front();
        const std::uint64_t s_key = s.encode(num_hosts);

        bool any_enabled = false;
        for (ProtoEvent event : allProtoEvents) {
            for (unsigned h = 0; h < num_hosts; ++h) {
                const auto host = static_cast<HostId>(h);
                if (!model.enabled(s, event, host))
                    continue;
                any_enabled = true;
                ++result.transitions;
                const ProtoState n = model.apply(s, event, host);
                const std::uint64_t key = n.encode(num_hosts);
                if (visited.contains(key))
                    continue;
                visited.emplace(key, Parent{s_key, event, host});
                const std::string why = model.checkInvariants(n);
                if (!why.empty()) {
                    report(n, why);
                    result.statesExplored = visited.size();
                    return result;
                }
                if (visited.size() >= max_states) {
                    result.violation = "state-space bound exceeded";
                    result.statesExplored = visited.size();
                    return result;
                }
                frontier.push_back(n);
            }
        }
        if (!any_enabled) {
            report(s, "deadlock: no event enabled");
            result.statesExplored = visited.size();
            return result;
        }
    }

    result.ok = true;
    result.statesExplored = visited.size();
    return result;
}

} // namespace pipm
