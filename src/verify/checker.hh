/**
 * @file
 * Explicit-state BFS model checker over the reduced PIPM protocol model —
 * the reproduction's stand-in for the paper's Murphi run (§5.1.4).
 *
 * Starting from the initial state, the checker explores every reachable
 * state under all interleavings of reads, writes, evictions, promotions
 * and revocations by all hosts, verifying the safety invariants (SWMR,
 * data-value, I'/ME encoding consistency, directory precision) in each
 * state and reporting a shortest counterexample trace on violation.
 * Deadlock freedom is checked as "every reachable state has at least one
 * enabled event".
 */

#ifndef PIPM_VERIFY_CHECKER_HH
#define PIPM_VERIFY_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "verify/protocol_model.hh"

namespace pipm
{

/** One step of a counterexample trace. */
struct TraceStep
{
    ProtoEvent event;
    HostId host;
    ProtoState state;   ///< state after the event
};

/** Result of a model-checking run. */
struct CheckResult
{
    bool ok = false;
    std::uint64_t statesExplored = 0;
    std::uint64_t transitions = 0;
    std::string violation;              ///< empty when ok
    std::vector<TraceStep> counterexample;

    /** Render the counterexample for humans. */
    std::string traceString(unsigned num_hosts) const;
};

/**
 * Exhaustively check the protocol for a host count.
 * @param num_hosts hosts in the reduced configuration (2..4)
 * @param max_states exploration bound (safety net; the space is small)
 */
CheckResult checkProtocol(unsigned num_hosts,
                          std::uint64_t max_states = 10'000'000);

} // namespace pipm

#endif // PIPM_VERIFY_CHECKER_HH
