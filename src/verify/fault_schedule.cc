#include "verify/fault_schedule.hh"

#include <map>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace pipm
{

namespace
{

/** Footprint-only workload; the checker drives accesses directly. */
class DirectWorkload : public Workload
{
  public:
    DirectWorkload(std::uint64_t shared_bytes, std::uint64_t private_bytes)
        : shared_(shared_bytes), private_(private_bytes)
    {
    }

    std::string name() const override { return "fault-check"; }
    std::string suite() const override { return "verify"; }
    std::uint64_t footprintBytes() const override { return shared_; }
    std::uint64_t sharedBytes() const override { return shared_; }
    std::uint64_t privateBytesPerHost() const override { return private_; }
    std::string fingerprint() const override { return "fault-check"; }

    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        panic("DirectWorkload has no traces; the checker drives directly");
    }

  private:
    std::uint64_t shared_;
    std::uint64_t private_;
};

} // namespace

FaultCheckResult
checkFaultSchedules(const SystemConfig &cfg, Scheme scheme,
                    unsigned schedules,
                    std::uint64_t accesses_per_schedule, std::uint64_t seed,
                    FaultCheckOptions opt)
{
    FaultCheckResult res;
    res.schedules = schedules;

    constexpr std::uint64_t shared_pages = 48;
    const bool prev_throw = detail::throwOnError;
    detail::throwOnError = true;

    for (unsigned sched = 0; sched < schedules && res.violation.empty();
         ++sched) {
        SystemConfig fcfg = cfg;
        const std::uint64_t fseed = seed + 977 * (sched + 1);
        fcfg.fault = opt.withSuspicion ? paperSuspicionFaultConfig(fseed)
                     : opt.withCrashes ? paperCrashFaultConfig(fseed)
                                       : paperFaultConfig(fseed);
        if (opt.withMetaCorruption)
            addPaperMetaFaults(fcfg.fault);
        DirectWorkload workload(shared_pages * pageBytes, 4 * pageBytes);
        Rng rng(seed * 0x51ed2701 + sched);

        try {
            MultiHostSystem system(fcfg, scheme, workload,
                                   seed + 13 * sched);
            // Per-(page,line) last written token; absent means the line
            // still holds its pristine value, which we do not predict.
            std::map<std::pair<std::uint64_t, unsigned>, std::uint64_t>
                oracle;
            std::uint64_t token = 1;
            Cycles now = 0;
            // Crash-mode bookkeeping: lines the system declared lost are
            // dropped from the oracle (their stale device value becomes
            // the accepted answer until the next write).
            std::size_t lost_cursor = 0;
            auto sync_lost = [&]() {
                const auto &lost = system.lostLines();
                for (; lost_cursor < lost.size(); ++lost_cursor) {
                    const LineAddr line = lost[lost_cursor];
                    const auto idx =
                        system.space().sharedIndexOf(pageOfLine(line));
                    if (!idx)
                        continue;
                    oracle.erase(
                        {*idx, static_cast<unsigned>(
                                   line & (linesPerPage - 1))});
                }
            };

            for (std::uint64_t i = 0; i < accesses_per_schedule; ++i) {
                const std::uint64_t page = rng.range(0, shared_pages - 1);
                // Skew accesses toward one host per page so the vote can
                // fire and partial migrations (and their aborts) happen.
                const HostId favoured =
                    static_cast<HostId>(page % fcfg.numHosts);
                HostId h =
                    rng.chance(0.8)
                        ? favoured
                        : static_cast<HostId>(
                              rng.range(0, fcfg.numHosts - 1));
                // Crashed hosts issue nothing, and a gray-failed host is
                // stuck until its stall window ends; rotate to the next
                // responsive host, jumping time forward when none is
                // (bounded — stall windows and fences always end).
                unsigned spins = 0;
                unsigned jumps = 0;
                while (!system.hostResponsive(h, now)) {
                    h = static_cast<HostId>((h + 1) % fcfg.numHosts);
                    if (++spins >= fcfg.numHosts) {
                        spins = 0;
                        now += 256;
                        system.tick(now);
                        sync_lost();
                        if (++jumps > 4'000'000) {
                            panic("no host became responsive after ",
                                  jumps, " time jumps");
                        }
                    }
                }
                const CoreId c = static_cast<CoreId>(
                    rng.range(0, fcfg.coresPerHost - 1));
                const unsigned line =
                    static_cast<unsigned>(rng.range(0, linesPerPage - 1));
                const bool is_write = rng.chance(0.5);

                MemRef ref;
                ref.shared = true;
                ref.page = page;
                ref.lineIdx = static_cast<std::uint8_t>(line);
                ref.op = is_write ? MemOp::write : MemOp::read;

                if (is_write) {
                    const std::uint64_t value = token++;
                    system.access(h, c, ref, now, value);
                    // Retry exhaustion inside the access may have fenced
                    // a host and lost lines; resync before recording.
                    sync_lost();
                    oracle[{page, line}] = value;
                } else {
                    const AccessResult r = system.access(h, c, ref, now);
                    sync_lost();
                    auto it = oracle.find({page, line});
                    if (it != oracle.end() && r.data != it->second) {
                        res.violation = detail::concat(
                            "schedule ", sched, " access ", i, ": read of ",
                            "page ", page, " line ", line, " returned ",
                            r.data, ", expected ", it->second);
                        break;
                    }
                }
                now += rng.range(1, 500);
                system.tick(now);
                sync_lost();
                if ((i & 0x7ff) == 0x7ff)
                    system.checkInvariants();
            }
            if (res.violation.empty())
                system.checkInvariants();

            res.accesses += accesses_per_schedule;
            if (FaultInjector *f = system.faultInjector()) {
                res.faultsInjected +=
                    f->linkErrors.value() + f->retrainEvents.value() +
                    f->poisonTransient.value() +
                    f->poisonPersistent.value() +
                    f->promotionAborts.value() + f->lineAborts.value() +
                    f->hostCrashes.value() + f->hostRejoins.value();
                res.crashes += f->hostCrashes.value();
                res.rejoins += f->hostRejoins.value();
                res.linesLost += f->crashDirtyLinesLost.value();
                res.suspicions += f->suspicions.value();
                res.falseSuspicions += f->falseSuspicions.value();
                res.fencedRequests += f->fencedRequests.value();
                res.txnTimeouts += f->txnTimeouts.value();
                res.txnRetries += f->txnRetries.value();
                res.metaCorruptions += f->metaCorruptions.value();
                res.scrubRepairs += f->metaScrubRepairs.value();
                res.scrubUnrepairable += f->metaUnrepairable.value();
                res.journalReplays += f->metaJournalReplays.value();
                res.breakerTrips += f->metaBreakerTrips.value();
                res.breakerHalfOpens += f->metaBreakerHalfOpens.value();
            }
        } catch (const SimError &e) {
            res.violation = detail::concat("schedule ", sched,
                                           " panicked: ", e.message);
        }
    }

    detail::throwOnError = prev_throw;
    res.ok = res.violation.empty();
    return res;
}

} // namespace pipm
