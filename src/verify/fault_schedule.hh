/**
 * @file
 * Randomised fault-schedule checking: the fault-enabled companion to the
 * BFS protocol checker. The BFS model cannot see injected faults — a CRC
 * replay is latency-only and an aborted promotion is an atomic no-op at
 * the protocol level — so instead this checker drives the full
 * MultiHostSystem under many independently-seeded fault schedules with a
 * host-skewed random access pattern, maintains a per-line last-writer
 * oracle, and checks after every access that reads return the oracle
 * value, with the cross-structure invariants (SWMR, directory precision,
 * remap-table consistency, poisoned-lines-uncached) asserted at regular
 * intervals. A panic anywhere in the machine is captured as a violation
 * rather than aborting the process.
 */

#ifndef PIPM_VERIFY_FAULT_SCHEDULE_HH
#define PIPM_VERIFY_FAULT_SCHEDULE_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "sim/scheme.hh"

namespace pipm
{

/** Result of a fault-schedule checking run. */
struct FaultCheckResult
{
    bool ok = false;
    unsigned schedules = 0;           ///< fault schedules explored
    std::uint64_t accesses = 0;       ///< total accesses driven
    std::uint64_t faultsInjected = 0; ///< faults observed across schedules
    std::uint64_t crashes = 0;        ///< host fail-stop events processed
    std::uint64_t rejoins = 0;        ///< host cold rejoins processed
    std::uint64_t linesLost = 0;      ///< dirty lines lost across crashes
    // Lease-detection mode (DESIGN.md §11) only:
    std::uint64_t suspicions = 0;      ///< leases expired
    std::uint64_t falseSuspicions = 0; ///< alive hosts fenced
    std::uint64_t fencedRequests = 0;  ///< zombie requests NACKed
    std::uint64_t txnTimeouts = 0;     ///< transaction attempts timed out
    std::uint64_t txnRetries = 0;      ///< retries after a timeout
    // Device-metadata corruption mode (DESIGN.md §12) only:
    std::uint64_t metaCorruptions = 0;   ///< metadata entries corrupted
    std::uint64_t scrubRepairs = 0;      ///< entries rebuilt in place
    std::uint64_t scrubUnrepairable = 0; ///< degraded / force-reclaimed
    std::uint64_t journalReplays = 0;    ///< remap entries replayed
    std::uint64_t breakerTrips = 0;      ///< migration breakers opened
    std::uint64_t breakerHalfOpens = 0;  ///< breakers half-opened
    std::string violation;            ///< empty when ok
};

/** What failure machinery the checker layers onto the base fault rates. */
struct FaultCheckOptions
{
    /**
     * Enable the host fail-stop crash/rejoin schedule
     * (paperCrashFaultConfig). Accesses are only issued by currently-
     * alive hosts, and a read must return either the last-writer oracle
     * value or a stale value for a line the system explicitly reported
     * lost (MultiHostSystem::lostLines()).
     */
    bool withCrashes = false;
    /**
     * Enable the lease-based failure detector plus gray-failure stall
     * windows on top of the crash schedule (paperSuspicionFaultConfig).
     * Crashed hosts are reclaimed only when suspected; stalled hosts may
     * be falsely suspected and fenced, losing dirty lines like a real
     * crash. Implies crash handling.
     */
    bool withSuspicion = false;
    /**
     * Layer the device-metadata corruption schedule on top
     * (addPaperMetaFaults): directory entries and PIPM remap entries are
     * quarantined, scrubbed-and-repaired, journal-replayed or degraded,
     * and the per-page-group migration circuit breaker sheds migration
     * under sustained repair activity (DESIGN.md §12). Composes with
     * either of the above; lines the unrepairable fallback reports lost
     * are accepted stale exactly like crash losses.
     */
    bool withMetaCorruption = false;
};

/**
 * Drive `schedules` independently-seeded fault schedules of
 * `accesses_per_schedule` random accesses each against a fault-enabled
 * copy of `cfg` and check data and invariants throughout.
 *
 * @param cfg base configuration; fault injection is forced on with the
 *        paper-default fault rates, reseeded per schedule
 * @param scheme memory-management scheme under test
 * @param seed determinism seed for the access pattern and the schedules
 * @param opt which failure machinery to enable (see FaultCheckOptions)
 */
FaultCheckResult checkFaultSchedules(const SystemConfig &cfg, Scheme scheme,
                                     unsigned schedules,
                                     std::uint64_t accesses_per_schedule,
                                     std::uint64_t seed,
                                     FaultCheckOptions opt);

/** Back-compat overload: `with_crashes` maps to FaultCheckOptions. */
inline FaultCheckResult
checkFaultSchedules(const SystemConfig &cfg, Scheme scheme,
                    unsigned schedules,
                    std::uint64_t accesses_per_schedule,
                    std::uint64_t seed = 1, bool with_crashes = false)
{
    return checkFaultSchedules(cfg, scheme, schedules,
                               accesses_per_schedule, seed,
                               FaultCheckOptions{with_crashes, false});
}

} // namespace pipm

#endif // PIPM_VERIFY_FAULT_SCHEDULE_HH
