#include "verify/multiline_model.hh"

#include <deque>
#include <sstream>
#include <unordered_set>

#include "common/logging.hh"

namespace pipm
{

std::uint64_t
PageProtoState::encode(unsigned num_hosts) const
{
    std::uint64_t bits = 0;
    auto push = [&bits](std::uint64_t v, unsigned width) {
        bits = (bits << width) | v;
    };
    for (const LineView &lv : line) {
        for (unsigned h = 0; h < num_hosts; ++h) {
            push(static_cast<std::uint64_t>(lv.host[h].cache), 2);
            push(lv.host[h].latest ? 1 : 0, 1);
            push(lv.host[h].dirty ? 1 : 0, 1);
        }
        push(lv.memLatest ? 1 : 0, 1);
        push(lv.lineMigrated ? 1 : 0, 1);
        push(lv.localLatest ? 1 : 0, 1);
        push(static_cast<std::uint64_t>(lv.dir), 2);
        push(lv.sharers, num_hosts);
    }
    push(promotedTo == invalidHost ? ProtoState::maxHosts : promotedTo, 3);
    return bits;
}

std::string
PageProtoState::describe(unsigned num_hosts) const
{
    std::ostringstream os;
    os << "promoted=";
    if (promotedTo == invalidHost)
        os << "none";
    else
        os << 'h' << int(promotedTo);
    for (unsigned li = 0; li < numLines; ++li) {
        os << " | L" << li << ": ";
        for (unsigned h = 0; h < num_hosts; ++h) {
            os << toString(line[li].host[h].cache)
               << (line[li].host[h].latest ? "+" : "-");
        }
        os << " mem" << (line[li].memLatest ? "+" : "-") << " bit="
           << (line[li].lineMigrated ? 1 : 0) << " dir="
           << toString(line[li].dir);
    }
    return os.str();
}

MultiLineModel::MultiLineModel(unsigned num_hosts)
    : lineModel_(num_hosts), numHosts_(num_hosts)
{
    panic_if(num_hosts > 3,
             "two-line model supports up to 3 hosts (encoding width)");
}

PageProtoState
MultiLineModel::initial() const
{
    return PageProtoState{};
}

ProtoState
MultiLineModel::toLineState(const PageProtoState &s,
                            unsigned line_idx) const
{
    const PageProtoState::LineView &lv = s.line[line_idx];
    ProtoState out;
    out.host = lv.host;
    out.memLatest = lv.memLatest;
    out.promotedTo = s.promotedTo;
    out.lineMigrated = lv.lineMigrated;
    out.localLatest = lv.localLatest;
    out.dir = lv.dir;
    out.sharers = lv.sharers;
    return out;
}

void
MultiLineModel::fromLineState(PageProtoState &s, unsigned line_idx,
                              const ProtoState &line) const
{
    PageProtoState::LineView &lv = s.line[line_idx];
    lv.host = line.host;
    lv.memLatest = line.memLatest;
    lv.lineMigrated = line.lineMigrated;
    lv.localLatest = line.localLatest;
    lv.dir = line.dir;
    lv.sharers = line.sharers;
    s.promotedTo = line.promotedTo;
}

bool
MultiLineModel::enabled(const PageProtoState &s, ProtoEvent event,
                        HostId h, unsigned line_idx) const
{
    if (event == ProtoEvent::promote || event == ProtoEvent::revoke) {
        // Page-level events: expand them only once (line 0).
        if (line_idx != 0)
            return false;
        return lineModel_.enabled(toLineState(s, 0), event, h);
    }
    return lineModel_.enabled(toLineState(s, line_idx), event, h);
}

PageProtoState
MultiLineModel::apply(const PageProtoState &s, ProtoEvent event, HostId h,
                      unsigned line_idx) const
{
    PageProtoState n = s;
    if (event == ProtoEvent::promote) {
        n.promotedTo = h;
        return n;
    }
    if (event == ProtoEvent::revoke) {
        // §4.2 step 6: every migrated line of the page moves back to its
        // CXL home before the local entry disappears.
        for (unsigned li = 0; li < PageProtoState::numLines; ++li) {
            const ProtoState after =
                lineModel_.apply(toLineState(n, li), ProtoEvent::revoke,
                                 h);
            fromLineState(n, li, after);
            // Keep the entry alive until the last line is processed so
            // every per-line apply sees promotedTo == h.
            n.promotedTo = h;
        }
        n.promotedTo = invalidHost;
        return n;
    }
    const ProtoState after =
        lineModel_.apply(toLineState(s, line_idx), event, h);
    fromLineState(n, line_idx, after);
    // Per-line events never change the page-level entry.
    n.promotedTo = s.promotedTo;
    return n;
}

std::string
MultiLineModel::checkInvariants(const PageProtoState &s) const
{
    for (unsigned li = 0; li < PageProtoState::numLines; ++li) {
        const std::string why =
            lineModel_.checkInvariants(toLineState(s, li));
        if (!why.empty())
            return "line " + std::to_string(li) + ": " + why;
    }
    // Page-level coupling: no migrated line without a live entry.
    for (unsigned li = 0; li < PageProtoState::numLines; ++li) {
        if (s.line[li].lineMigrated && s.promotedTo == invalidHost)
            return "line " + std::to_string(li) +
                   " migrated after the entry was revoked";
    }
    return {};
}

CheckResult
checkMultiLineProtocol(unsigned num_hosts, std::uint64_t max_states)
{
    MultiLineModel model(num_hosts);
    CheckResult result;

    const PageProtoState init = model.initial();
    std::unordered_set<std::uint64_t> visited;
    std::deque<PageProtoState> frontier;

    {
        const std::string why = model.checkInvariants(init);
        if (!why.empty()) {
            result.violation = why;
            return result;
        }
    }
    visited.insert(init.encode(num_hosts));
    frontier.push_back(init);

    while (!frontier.empty()) {
        const PageProtoState s = frontier.front();
        frontier.pop_front();

        bool any_enabled = false;
        for (ProtoEvent event : allProtoEvents) {
            for (unsigned h = 0; h < num_hosts; ++h) {
                for (unsigned li = 0; li < PageProtoState::numLines;
                     ++li) {
                    const auto host = static_cast<HostId>(h);
                    if (!model.enabled(s, event, host, li))
                        continue;
                    any_enabled = true;
                    ++result.transitions;
                    const PageProtoState n =
                        model.apply(s, event, host, li);
                    if (!visited.insert(n.encode(num_hosts)).second)
                        continue;
                    const std::string why = model.checkInvariants(n);
                    if (!why.empty()) {
                        result.violation =
                            why + "\nafter " +
                            std::string(toString(event)) + "(h" +
                            std::to_string(h) + ", line " +
                            std::to_string(li) +
                            ")\nstate: " + n.describe(num_hosts);
                        result.statesExplored = visited.size();
                        return result;
                    }
                    if (visited.size() >= max_states) {
                        result.violation = "state-space bound exceeded";
                        result.statesExplored = visited.size();
                        return result;
                    }
                    frontier.push_back(n);
                }
            }
        }
        if (!any_enabled) {
            result.violation = "deadlock: no event enabled\nstate: " +
                               s.describe(num_hosts);
            result.statesExplored = visited.size();
            return result;
        }
    }

    result.ok = true;
    result.statesExplored = visited.size();
    return result;
}

} // namespace pipm
