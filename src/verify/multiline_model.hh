/**
 * @file
 * Two-line extension of the PIPM protocol model.
 *
 * The single-line model (protocol_model.hh) verifies each line's state
 * machine but cannot exercise *page-level* couplings: two lines of the
 * same page share the promotion state (one local entry, one frame) and a
 * revocation must move every migrated line of the page back at once
 * (§4.2 step 6). This model tracks two lines of one page — per-line
 * cache/memory/bit/directory state plus the shared promotedTo — and the
 * checker explores all interleavings of per-line reads/writes/evictions
 * with page-level promotions and revocations.
 */

#ifndef PIPM_VERIFY_MULTILINE_MODEL_HH
#define PIPM_VERIFY_MULTILINE_MODEL_HH

#include <cstdint>
#include <string>

#include "verify/checker.hh"
#include "verify/protocol_model.hh"

namespace pipm
{

/** State of two lines of one page. */
struct PageProtoState
{
    static constexpr unsigned numLines = 2;

    /** Per-line state minus the page-level fields. */
    struct LineView
    {
        std::array<ProtoState::HostView, ProtoState::maxHosts> host{};
        bool memLatest = true;
        bool lineMigrated = false;
        bool localLatest = false;
        DevState dir = DevState::I;
        std::uint8_t sharers = 0;

        bool operator==(const LineView &) const = default;
    };

    std::array<LineView, numLines> line{};
    HostId promotedTo = invalidHost;

    bool operator==(const PageProtoState &) const = default;

    /** Dense encoding for visited-set hashing (2 hosts x 2 lines). */
    std::uint64_t encode(unsigned num_hosts) const;

    std::string describe(unsigned num_hosts) const;
};

/**
 * Page-level model: per-line transitions delegate to the single-line
 * ProtocolModel; promote/revoke act on the whole page.
 */
class MultiLineModel
{
  public:
    explicit MultiLineModel(unsigned num_hosts);

    PageProtoState initial() const;

    /** Whether (event, host) on `line_idx` is enabled (line_idx ignored
     *  for promote/revoke). */
    bool enabled(const PageProtoState &s, ProtoEvent event, HostId h,
                 unsigned line_idx) const;

    PageProtoState apply(const PageProtoState &s, ProtoEvent event,
                         HostId h, unsigned line_idx) const;

    /** Per-line invariants plus the page-level couplings. */
    std::string checkInvariants(const PageProtoState &s) const;

  private:
    /** Pack one line + the page field into a single-line ProtoState. */
    ProtoState toLineState(const PageProtoState &s,
                           unsigned line_idx) const;

    /** Unpack a single-line result back into the page state. */
    void fromLineState(PageProtoState &s, unsigned line_idx,
                       const ProtoState &line) const;

    ProtocolModel lineModel_;
    unsigned numHosts_;
};

/** Result bundle mirroring checkProtocol() for the two-line model. */
CheckResult checkMultiLineProtocol(unsigned num_hosts,
                                   std::uint64_t max_states = 50'000'000);

} // namespace pipm

#endif // PIPM_VERIFY_MULTILINE_MODEL_HH
