#include "verify/protocol_model.hh"

#include <sstream>

#include "common/logging.hh"

namespace pipm
{

std::uint64_t
ProtoState::encode(unsigned num_hosts) const
{
    std::uint64_t bits = 0;
    auto push = [&bits](std::uint64_t v, unsigned width) {
        bits = (bits << width) | v;
    };
    for (unsigned h = 0; h < num_hosts; ++h) {
        push(static_cast<std::uint64_t>(host[h].cache), 2);
        push(host[h].latest ? 1 : 0, 1);
        push(host[h].dirty ? 1 : 0, 1);
    }
    push(memLatest ? 1 : 0, 1);
    push(promotedTo == invalidHost ? maxHosts : promotedTo, 3);
    push(lineMigrated ? 1 : 0, 1);
    push(localLatest ? 1 : 0, 1);
    push(static_cast<std::uint64_t>(dir), 2);
    push(sharers, maxHosts);
    return bits;
}

std::string
ProtoState::describe(unsigned num_hosts) const
{
    std::ostringstream os;
    for (unsigned h = 0; h < num_hosts; ++h) {
        os << "h" << h << "=" << toString(host[h].cache)
           << (host[h].latest ? "+" : "-") << (host[h].dirty ? "d" : "c")
           << ' ';
    }
    os << "mem" << (memLatest ? "+" : "-") << " promoted=";
    if (promotedTo == invalidHost)
        os << "none";
    else
        os << 'h' << int(promotedTo);
    os << " bit=" << (lineMigrated ? 1 : 0)
       << " local" << (localLatest ? "+" : "-") << " dir="
       << toString(dir) << " sharers=" << int(sharers);
    return os.str();
}

ProtocolModel::ProtocolModel(unsigned num_hosts) : numHosts_(num_hosts)
{
    panic_if(num_hosts < 2 || num_hosts > ProtoState::maxHosts,
             "model supports 2..4 hosts");
}

ProtoState
ProtocolModel::initial() const
{
    return ProtoState{};
}

bool
ProtocolModel::enabled(const ProtoState &s, ProtoEvent event,
                       HostId h) const
{
    if (h >= numHosts_)
        return false;
    switch (event) {
      case ProtoEvent::read:
      case ProtoEvent::write:
        return true;
      case ProtoEvent::evict:
        return s.host[h].cache != HostState::I;
      case ProtoEvent::promote:
        return s.promotedTo == invalidHost && h != invalidHost;
      case ProtoEvent::revoke:
        return s.promotedTo == h;
    }
    return false;
}

void
ProtocolModel::dropAllCached(ProtoState &s, int except)
{
    for (unsigned k = 0; k < ProtoState::maxHosts; ++k) {
        if (static_cast<int>(k) == except)
            continue;
        s.host[k] = ProtoState::HostView{};
    }
}

ProtoState
ProtocolModel::apply(const ProtoState &s, ProtoEvent event, HostId h) const
{
    panic_if(!enabled(s, event, h), "applying a disabled event");
    ProtoState n = s;
    auto &me = n.host[h];

    switch (event) {
      case ProtoEvent::read: {
        if (me.cache != HostState::I)
            return n;   // cache hit: no protocol activity

        if (n.lineMigrated && n.promotedTo == h) {
            // Case 3: I' -> ME, served from local DRAM.
            me.cache = HostState::ME;
            me.latest = n.localLatest;
            me.dirty = false;
            return n;
        }
        if (n.lineMigrated && n.promotedTo != h) {
            const HostId k = n.promotedTo;
            auto &owner = n.host[k];
            if (owner.cache == HostState::ME) {
                // Case 6: inter-host read of an ME line. Owner drops to
                // S; the data migrates back to CXL memory.
                n.memLatest = owner.latest;
                owner.cache = HostState::S;
                owner.dirty = false;
                n.lineMigrated = false;
                n.localLatest = false;
                n.dir = DevState::S;
                n.sharers = static_cast<std::uint8_t>((1u << h) |
                                                      (1u << k));
                me.cache = HostState::S;
                me.latest = owner.latest;
                return n;
            }
            // Case 2: I' uncached at the owner; the local-DRAM copy
            // migrates back and the requester caches exclusively.
            n.memLatest = n.localLatest;
            n.lineMigrated = false;
            n.localLatest = false;
            n.dir = DevState::M;
            n.sharers = static_cast<std::uint8_t>(1u << h);
            me.cache = HostState::M;
            me.latest = s.localLatest;
            me.dirty = false;
            return n;
        }
        // Not migrated: base MESI flows (Fig. 2).
        if (n.dir == DevState::M) {
            const HostId k = static_cast<HostId>([&] {
                for (unsigned i = 0; i < numHosts_; ++i) {
                    if (n.sharers & (1u << i))
                        return i;
                }
                return unsigned(invalidHost);
            }());
            auto &owner = n.host[k];
            // Forward: owner downgrades to S and writes back.
            n.memLatest = owner.latest;
            owner.cache = HostState::S;
            owner.dirty = false;
            n.dir = DevState::S;
            n.sharers |= static_cast<std::uint8_t>(1u << h);
            me.cache = HostState::S;
            me.latest = owner.latest;
            return n;
        }
        if (n.dir == DevState::S) {
            n.sharers |= static_cast<std::uint8_t>(1u << h);
            me.cache = HostState::S;
            me.latest = n.memLatest;
            return n;
        }
        // dir I: exclusive (MESI E folded into M) grant from memory.
        n.dir = DevState::M;
        n.sharers = static_cast<std::uint8_t>(1u << h);
        me.cache = HostState::M;
        me.latest = n.memLatest;
        me.dirty = false;
        return n;
      }

      case ProtoEvent::write: {
        if (me.cache == HostState::M || me.cache == HostState::ME) {
            // Write hit on an exclusive copy.
            me.latest = true;
            me.dirty = true;
            n.memLatest = false;
            if (me.cache == HostState::ME)
                n.localLatest = false;
            return n;
        }
        if (me.cache == HostState::S) {
            // Upgrade: invalidate the other sharers.
            for (unsigned k = 0; k < numHosts_; ++k) {
                if (k != h)
                    n.host[k] = ProtoState::HostView{};
            }
            n.dir = DevState::M;
            n.sharers = static_cast<std::uint8_t>(1u << h);
            me.cache = HostState::M;
            me.latest = true;
            me.dirty = true;
            n.memLatest = false;
            return n;
        }
        // Write miss.
        if (n.lineMigrated && n.promotedTo == h) {
            // Case 3 (Loc-Wr on I'): fill from local DRAM, then write.
            me.cache = HostState::ME;
            me.latest = true;
            me.dirty = true;
            n.localLatest = false;
            n.memLatest = false;
            return n;
        }
        if (n.lineMigrated && n.promotedTo != h) {
            // Cases 5 (owner in ME) and 2 (owner I'): the line migrates
            // back and the requester takes exclusive ownership.
            const HostId k = n.promotedTo;
            n.host[k] = ProtoState::HostView{};
            n.lineMigrated = false;
            n.localLatest = false;
            n.dir = DevState::M;
            n.sharers = static_cast<std::uint8_t>(1u << h);
            me.cache = HostState::M;
            me.latest = true;
            me.dirty = true;
            n.memLatest = false;
            return n;
        }
        if (n.dir == DevState::M || n.dir == DevState::S) {
            // Invalidate every current holder, then take ownership.
            for (unsigned k = 0; k < numHosts_; ++k) {
                if (k != h)
                    n.host[k] = ProtoState::HostView{};
            }
        }
        n.dir = DevState::M;
        n.sharers = static_cast<std::uint8_t>(1u << h);
        me.cache = HostState::M;
        me.latest = true;
        me.dirty = true;
        n.memLatest = false;
        return n;
      }

      case ProtoEvent::evict: {
        if (me.cache == HostState::ME) {
            // Case 4: ME -> I'; a dirty copy writes back to local DRAM.
            n.localLatest = me.latest;
            me = ProtoState::HostView{};
            return n;
        }
        if (me.cache == HostState::M && n.promotedTo == h &&
            !n.lineMigrated) {
            // Case 1: incremental migration on local writeback — the
            // data lands in the local frame, both bits flip, and the
            // device directory entry is released. M -> I'.
            n.lineMigrated = true;
            n.localLatest = me.latest;
            me = ProtoState::HostView{};
            n.dir = DevState::I;
            n.sharers = 0;
            return n;
        }
        if (me.cache == HostState::M) {
            // Normal writeback to CXL memory.
            n.memLatest = me.latest;
            me = ProtoState::HostView{};
            n.dir = DevState::I;
            n.sharers = 0;
            return n;
        }
        // S eviction: silent drop plus directory notification.
        me = ProtoState::HostView{};
        n.sharers &= static_cast<std::uint8_t>(~(1u << h));
        if (n.sharers == 0)
            n.dir = DevState::I;
        return n;
      }

      case ProtoEvent::promote:
        n.promotedTo = h;
        return n;

      case ProtoEvent::revoke: {
        // §4.2 step 6: every migrated line moves back to its CXL home
        // and the local entry disappears. An ME-cached copy is pulled
        // through the cache.
        if (n.host[h].cache == HostState::ME) {
            n.memLatest = n.host[h].latest;
            n.host[h] = ProtoState::HostView{};
            n.lineMigrated = false;
            n.localLatest = false;
        } else if (n.lineMigrated) {
            n.memLatest = n.localLatest;
            n.lineMigrated = false;
            n.localLatest = false;
        }
        n.promotedTo = invalidHost;
        return n;
      }
    }
    return n;
}

std::string
ProtocolModel::checkInvariants(const ProtoState &s) const
{
    unsigned exclusive = 0;
    unsigned shared = 0;
    for (unsigned h = 0; h < numHosts_; ++h) {
        const auto &v = s.host[h];
        switch (v.cache) {
          case HostState::M:
          case HostState::ME:
            ++exclusive;
            if (!v.latest)
                return "exclusive copy is stale at host " +
                       std::to_string(h);
            break;
          case HostState::S:
            ++shared;
            if (!v.latest)
                return "shared copy is stale at host " +
                       std::to_string(h);
            if (v.dirty)
                return "shared copy is dirty at host " +
                       std::to_string(h);
            break;
          case HostState::I:
            break;
        }
    }

    // SWMR.
    if (exclusive > 1)
        return "SWMR violated: multiple exclusive holders";
    if (exclusive == 1 && shared > 0)
        return "SWMR violated: exclusive alongside shared copies";

    // Data-value: the copy a read would find must be the latest.
    if (exclusive == 0 && shared == 0) {
        if (s.lineMigrated) {
            if (!s.localLatest)
                return "uncached migrated line has a stale local copy";
        } else if (!s.memLatest) {
            return "uncached unmigrated line has stale CXL memory";
        }
    }

    // Encoding consistency (Fig. 9): migrated lines use I' (no directory
    // entry); ME only at the promoted host.
    if (s.lineMigrated) {
        if (s.promotedTo == invalidHost)
            return "in-memory bit set without a local entry";
        if (s.dir != DevState::I || s.sharers != 0)
            return "migrated line still has a device directory entry";
        for (unsigned h = 0; h < numHosts_; ++h) {
            if (s.host[h].cache == HostState::S ||
                s.host[h].cache == HostState::M) {
                return "migrated line cached in a non-PIPM state";
            }
            if (s.host[h].cache == HostState::ME && h != s.promotedTo)
                return "ME at a host the line is not migrated to";
        }
    } else {
        for (unsigned h = 0; h < numHosts_; ++h) {
            if (s.host[h].cache == HostState::ME)
                return "ME without the in-memory bit set";
        }
    }

    // Directory precision.
    if (s.dir == DevState::M) {
        unsigned owners = 0;
        for (unsigned h = 0; h < numHosts_; ++h) {
            if (s.sharers & (1u << h)) {
                ++owners;
                if (s.host[h].cache != HostState::M)
                    return "directory M but owner does not cache M";
            }
        }
        if (owners != 1)
            return "directory M with sharer count != 1";
    }
    if (s.dir == DevState::S) {
        if (s.sharers == 0)
            return "directory S with no sharers";
        for (unsigned h = 0; h < numHosts_; ++h) {
            const bool listed = s.sharers & (1u << h);
            const bool cached = s.host[h].cache != HostState::I;
            if (listed && s.host[h].cache != HostState::S)
                return "directory S sharer not caching S";
            if (!listed && cached)
                return "cached copy missing from the sharer list";
        }
    }
    if (s.dir == DevState::I) {
        for (unsigned h = 0; h < numHosts_; ++h) {
            if (s.host[h].cache == HostState::S ||
                s.host[h].cache == HostState::M) {
                return "cached copy with no directory entry";
            }
        }
        if (s.sharers != 0)
            return "directory I with a nonempty sharer list";
    }
    return {};
}

} // namespace pipm
