/**
 * @file
 * Reduced model of the PIPM coherence protocol for explicit-state model
 * checking (the reproduction's analog of the paper's Murphi verification,
 * §5.1.4).
 *
 * The model tracks one cache line of one shared page across N hosts: each
 * host's cache state (I/S/M/ME) with dirty and latest flags, the CXL
 * memory copy, the page's partial-migration state (promoted host, the
 * line's in-memory bit, the local-DRAM copy), and the device directory
 * entry. Data values use the standard latest/stale abstraction: a write
 * marks the writer's copy latest and every other copy stale, making the
 * data-value invariant ("reads return the most recent write") finite-
 * state.
 *
 * Events are the protocol-visible stimuli: Read(h), Write(h), Evict(h)
 * (cache replacement), Promote(h) (the majority vote fires for host h)
 * and Revoke(h) (the local counter drains). Promote/Revoke fire
 * nondeterministically, over-approximating every possible counter
 * behaviour — if no interleaving violates an invariant, no concrete
 * vote policy can either.
 *
 * The transition rules are written directly from Fig. 9 (cases 1-6) and
 * the base MESI flows of Fig. 2, independently of the simulator's
 * implementation, so checking them also cross-checks the design the
 * simulator implements.
 */

#ifndef PIPM_VERIFY_PROTOCOL_MODEL_HH
#define PIPM_VERIFY_PROTOCOL_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "coherence/state.hh"
#include "common/types.hh"

namespace pipm
{

/** Event kinds the checker explores. */
enum class ProtoEvent : std::uint8_t
{
    read,     ///< load by a host
    write,    ///< store by a host
    evict,    ///< cache replacement at a host
    promote,  ///< vote fires: partial migration of the page to a host
    revoke    ///< local counter drains: migration revoked
};

constexpr std::array<ProtoEvent, 5> allProtoEvents = {
    ProtoEvent::read, ProtoEvent::write, ProtoEvent::evict,
    ProtoEvent::promote, ProtoEvent::revoke,
};

constexpr std::string_view
toString(ProtoEvent e)
{
    switch (e) {
      case ProtoEvent::read: return "read";
      case ProtoEvent::write: return "write";
      case ProtoEvent::evict: return "evict";
      case ProtoEvent::promote: return "promote";
      case ProtoEvent::revoke: return "revoke";
    }
    return "?";
}

/** Model state: one line of one page across all hosts. */
struct ProtoState
{
    static constexpr unsigned maxHosts = 4;

    struct HostView
    {
        HostState cache = HostState::I;
        bool latest = false;   ///< cached copy holds the latest value
        bool dirty = false;

        bool operator==(const HostView &) const = default;
    };

    std::array<HostView, maxHosts> host{};
    bool memLatest = true;            ///< CXL memory copy is up to date
    HostId promotedTo = invalidHost;  ///< page has a local entry here
    bool lineMigrated = false;        ///< the line's in-memory bit
    bool localLatest = false;         ///< local-DRAM copy is up to date
    DevState dir = DevState::I;
    std::uint8_t sharers = 0;

    bool operator==(const ProtoState &) const = default;

    /** Dense encoding for visited-set hashing. */
    std::uint64_t encode(unsigned num_hosts) const;

    /** Human-readable dump for counterexample traces. */
    std::string describe(unsigned num_hosts) const;
};

/** Applies protocol transitions; reports invariant violations. */
class ProtocolModel
{
  public:
    explicit ProtocolModel(unsigned num_hosts);

    unsigned numHosts() const { return numHosts_; }

    /** The initial state: line in CXL memory, uncached everywhere. */
    ProtoState initial() const;

    /** Whether `event` by `h` is enabled in `s`. */
    bool enabled(const ProtoState &s, ProtoEvent event, HostId h) const;

    /** Apply an enabled event, returning the successor state. */
    ProtoState apply(const ProtoState &s, ProtoEvent event, HostId h) const;

    /**
     * Check every safety invariant of a state.
     * @return empty string when all hold, else a violation description
     */
    std::string checkInvariants(const ProtoState &s) const;

  private:
    /** Invalidate every cached copy except at `except` (-1: all). */
    static void dropAllCached(ProtoState &s, int except);

    unsigned numHosts_;
};

} // namespace pipm

#endif // PIPM_VERIFY_PROTOCOL_MODEL_HH
