#include "workloads/catalog.hh"

#include "common/logging.hh"

namespace pipm
{

/**
 * Per-benchmark pattern parameters.
 *
 * The parameters encode each suite's documented access structure:
 *
 * - GAPBS kernels partition the Kron vertex set across hosts. Worker
 *   threads scan their own partition's adjacency lists (sequential,
 *   read-mostly, strong affinity — the paper's "worker threads
 *   independently access memory with strong locality") but chase
 *   power-law *hub* vertices that every host touches (globalHot): those
 *   are the harmful-migration bait. PR/CC write rank/label arrays; BFS/
 *   SSSP write frontiers; TC is read-only and the most sequential.
 *
 * - XSBench does random lookups into the unionized energy grid; each
 *   host's particle batches concentrate on material regions, giving
 *   moderate affinity with little spatial locality and heavy compute
 *   between lookups.
 *
 * - PARSEC: streamcluster streams points (own partition) against shared
 *   cluster centres (globalHot); fluidanimate exchanges grid-cell
 *   neighbours so affinity is high but not total; canneal pointer-chases
 *   the whole netlist nearly uniformly; bodytrack mixes per-host image
 *   data with shared model state.
 *
 * - Silo: TPC-C transactions are home-warehouse local (~85% per the
 *   spec) with cross-warehouse payments/new-orders; YCSB (R:W 4:1)
 *   hits a zipfian key space from every host with session-level skew
 *   only — the paper's "random and scattered user-thread accesses" that
 *   bound the achievable gain.
 */
const std::vector<PatternParams> &
table1Patterns()
{
    static const std::vector<PatternParams> patterns = {
        // name, suite, footprint, private, affinity, zipf, read, seq,
        // gap, privFrac, hotFrac, hotSpan, scanFrac, scanSpan, scanShift, phaseRefs, hotLines
        {"sssp", "GAPBS", 48ull << 30, 32ull << 20,
         0.88, 0.85, 0.85, 10, 28, 0.20, 0.15, 0.002, 0.55, 0.028, 0.35, 12000, 8},
        {"bfs", "GAPBS", 48ull << 30, 32ull << 20,
         0.88, 0.80, 0.88, 12, 28, 0.20, 0.15, 0.002, 0.55, 0.028, 0.35, 12000, 8},
        {"pr", "GAPBS", 48ull << 30, 32ull << 20,
         0.92, 0.80, 0.80, 16, 24, 0.18, 0.15, 0.002, 0.70, 0.028, 0.35, 12000, 8},
        {"cc", "GAPBS", 48ull << 30, 32ull << 20,
         0.90, 0.80, 0.82, 14, 28, 0.20, 0.15, 0.002, 0.60, 0.028, 0.35, 12000, 8},
        {"bc", "GAPBS", 48ull << 30, 32ull << 20,
         0.87, 0.85, 0.84, 10, 30, 0.22, 0.15, 0.002, 0.50, 0.030, 0.35, 12000, 8},
        {"tc", "GAPBS", 48ull << 30, 32ull << 20,
         0.90, 0.85, 0.97, 20, 36, 0.18, 0.12, 0.002, 0.65, 0.028, 0.35, 12000, 10},
        {"xsbench", "XSBench", 42ull << 30, 32ull << 20,
         0.85, 0.80, 0.98, 2, 36, 0.30, 0.04, 0.004, 0.25, 0.035, 0.35, 25000, 6},
        {"streamcluster", "PARSEC", 18ull << 30, 32ull << 20,
         0.90, 0.60, 0.90, 24, 40, 0.25, 0.15, 0.001, 0.70, 0.080, 0.35, 20000, 0},
        {"fluidanimate", "PARSEC", 10ull << 30, 32ull << 20,
         0.86, 0.70, 0.75, 12, 48, 0.28, 0.05, 0.002, 0.60, 0.150, 0.35, 20000, 8},
        {"canneal", "PARSEC", 12ull << 30, 32ull << 20,
         0.70, 0.70, 0.85, 1, 36, 0.25, 0.06, 0.003, 0.20, 0.120, 0.35, 20000, 4},
        {"bodytrack", "PARSEC", 8ull << 30, 32ull << 20,
         0.72, 0.70, 0.82, 6, 52, 0.30, 0.08, 0.002, 0.30, 0.180, 0.35, 12000, 8},
        {"tpcc", "Silo", 24ull << 30, 32ull << 20,
         0.85, 0.80, 0.70, 4, 56, 0.30, 0.10, 0.004, 0.15, 0.060, 0.35, 30000, 6},
        {"ycsb", "Silo", 15ull << 30, 32ull << 20,
         0.78, 0.90, 0.80, 2, 48, 0.30, 0.12, 0.004, 0.00, 0.250, 0.35, 40000, 4},
    };
    return patterns;
}

std::vector<std::unique_ptr<Workload>>
table1Workloads(unsigned footprint_scale)
{
    std::vector<std::unique_ptr<Workload>> out;
    out.reserve(table1Patterns().size());
    for (const PatternParams &p : table1Patterns())
        out.push_back(std::make_unique<SyntheticWorkload>(p,
                                                          footprint_scale));
    return out;
}

std::unique_ptr<Workload>
workloadByName(const std::string &name, unsigned footprint_scale)
{
    for (const PatternParams &p : table1Patterns()) {
        if (name == p.name)
            return std::make_unique<SyntheticWorkload>(p, footprint_scale);
    }
    fatal("unknown workload '", name, "'");
}

} // namespace pipm
