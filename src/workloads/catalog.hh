/**
 * @file
 * The Table 1 workload catalog: construction and lookup of the 13
 * evaluated benchmarks.
 */

#ifndef PIPM_WORKLOADS_CATALOG_HH
#define PIPM_WORKLOADS_CATALOG_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/synthetic.hh"

namespace pipm
{

/** Pattern parameters of every Table 1 benchmark, in paper order. */
const std::vector<PatternParams> &table1Patterns();

/** Instantiate all Table 1 workloads at a given footprint scale. */
std::vector<std::unique_ptr<Workload>>
table1Workloads(unsigned footprint_scale);

/** Instantiate one benchmark by name ("sssp", "ycsb", ...). */
std::unique_ptr<Workload> workloadByName(const std::string &name,
                                         unsigned footprint_scale);

} // namespace pipm

#endif // PIPM_WORKLOADS_CATALOG_HH
