#include "workloads/synthetic.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace pipm
{

SyntheticWorkload::SyntheticWorkload(const PatternParams &params,
                                     unsigned footprint_scale)
    : params_(params),
      sharedBytes_(params.footprintFullBytes / footprint_scale),
      privateBytes_(params.privateFullBytes / footprint_scale)
{
    fatal_if(footprint_scale == 0, "footprint scale must be positive");
    fatal_if(sharedBytes_ < pageBytes, "scaled shared heap below one page");
    privateBytes_ = std::max<std::uint64_t>(privateBytes_, 16 * pageBytes);
}

std::string
SyntheticWorkload::fingerprint() const
{
    std::ostringstream os;
    const PatternParams &p = params_;
    os << p.name << ';' << sharedBytes_ << ';' << privateBytes_ << ';'
       << p.partitionAffinity << ';' << p.zipfTheta << ';' << p.readFrac
       << ';' << p.seqRunLines << ';' << p.gapMean << ';' << p.privateFrac
       << ';' << p.globalHotFrac << ';' << p.globalHotSpan << ';'
       << p.scanFrac << ';' << p.scanSpanFrac << ';' << p.scanShiftFrac
       << ';' << p.phaseRefs << ';' << p.hotLinesPerPage;
    return os.str();
}

std::unique_ptr<CoreTrace>
SyntheticWorkload::makeTrace(HostId host, CoreId core,
                             unsigned cores_per_host, unsigned num_hosts,
                             std::uint64_t seed) const
{
    return std::make_unique<SyntheticTrace>(params_, sharedBytes_,
                                            privateBytes_, host, core,
                                            cores_per_host, num_hosts,
                                            seed);
}

SyntheticTrace::SyntheticTrace(const PatternParams &params,
                               std::uint64_t shared_bytes,
                               std::uint64_t private_bytes, HostId host,
                               CoreId core, unsigned cores_per_host,
                               unsigned num_hosts, std::uint64_t seed)
    : params_(params),
      rng_(seed ^ (0x1234567ull * (host * cores_per_host + core + 1))),
      host_(host),
      numHosts_(num_hosts),
      sharedPages_(shared_bytes / pageBytes),
      partitionPages_(std::max<std::uint64_t>(1,
                                              sharedPages_ / num_hosts)),
      privatePages_(private_bytes / pageBytes),
      hotPages_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(sharedPages_) *
                 params.globalHotSpan))),
      zipf_(partitionPages_, params.zipfTheta)
{
    // The scan region sits at the front of the host's partition; a host's
    // cores start at staggered offsets so their misses interleave the way
    // chunked parallel loops do.
    scanBase_ = static_cast<std::uint64_t>(host) * partitionPages_;
    scanPages_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(partitionPages_) *
                                      params.scanSpanFrac));
    windowStart_ = 0;
    scanPage_ = (scanPages_ * core) / std::max(1u, cores_per_host);
    scanLine_ = 0;
    phaseLeft_ = params_.phaseRefs;
    newRun();
}

void
SyntheticTrace::newRun()
{
    // Choose the region: globally-hot pages, own partition, or another
    // host's partition.
    std::uint64_t page;
    if (rng_.chance(params_.globalHotFrac)) {
        // The globally-hot region sits at the front of the heap and is
        // touched uniformly by every host.
        page = rng_.below(hotPages_);
    } else {
        unsigned part;
        std::uint64_t idx;
        if (rng_.chance(params_.partitionAffinity) || numHosts_ == 1) {
            // Own partition: zipf-skewed; the permutation rotates with
            // the phase so hot-page identity drifts over time.
            part = host_;
            const std::uint64_t rank = zipf_.sample(rng_);
            idx = (rank + phase_ * 7919) % partitionPages_;
        } else {
            // Another host's partition: a stranger's touches are not
            // correlated with that host's own hot set, so they spread
            // uniformly (cross-host contention is carried by the
            // globally-hot region instead).
            part = static_cast<unsigned>(rng_.below(numHosts_ - 1));
            if (part >= host_)
                ++part;
            idx = rng_.below(partitionPages_);
        }
        page = static_cast<std::uint64_t>(part) * partitionPages_ + idx;
        if (page >= sharedPages_)
            page = sharedPages_ - 1;
    }
    runPage_ = page;
    if (params_.hotLinesPerPage > 0 &&
        params_.hotLinesPerPage < linesPerPage) {
        // Touch one of the page's hot lines (a record/vertex slot whose
        // position is a deterministic function of the page).
        const unsigned slot = static_cast<unsigned>(
            rng_.below(params_.hotLinesPerPage));
        runLine_ = static_cast<unsigned>(
            (page * 0x9e3779b97f4a7c15ull + slot * 13) % linesPerPage);
    } else {
        runLine_ = static_cast<unsigned>(rng_.below(linesPerPage));
    }
    // Geometric-ish run length around the configured mean.
    runLeft_ = 1 + static_cast<unsigned>(
                       rng_.below(2 * params_.seqRunLines));
}

MemRef
SyntheticTrace::next()
{
    MemRef ref;
    ref.gap = static_cast<std::uint16_t>(
        params_.gapMean / 2 + rng_.below(params_.gapMean + 1));
    ref.op = rng_.chance(params_.readFrac) ? MemOp::read : MemOp::write;

    if (rng_.chance(params_.privateFrac)) {
        // Private data: small working set, high cache-hit rate.
        ref.shared = false;
        ref.page = rng_.below(privatePages_);
        ref.lineIdx = static_cast<std::uint8_t>(rng_.below(linesPerPage));
        return ref;
    }

    ref.shared = true;
    ++sharedRefs_;
    // Countdown instead of `sharedRefs_ % phaseRefs == 0`: same firing
    // pattern without a per-reference integer division.
    if (params_.phaseRefs && --phaseLeft_ == 0) {
        ++phase_;
        phaseLeft_ = params_.phaseRefs;
    }
    if (rng_.chance(params_.scanFrac)) {
        // Cyclic pass over the host's current scan window; the window
        // slides after each pass (frontier drift).
        ref.page = scanBase_ +
                   (windowStart_ + scanPage_) % partitionPages_;
        ref.lineIdx = static_cast<std::uint8_t>(scanLine_);
        if (++scanLine_ >= linesPerPage) {
            scanLine_ = 0;
            if (++scanPage_ >= scanPages_) {
                scanPage_ = 0;
                windowStart_ =
                    (windowStart_ +
                     static_cast<std::uint64_t>(
                         static_cast<double>(scanPages_) *
                         params_.scanShiftFrac)) %
                    partitionPages_;
            }
        }
        return ref;
    }
    ref.page = runPage_;
    ref.lineIdx = static_cast<std::uint8_t>(runLine_);

    // Advance the sequential run.
    if (runLeft_ > 0) {
        --runLeft_;
        if (++runLine_ >= linesPerPage) {
            runLine_ = 0;
            if (runPage_ + 1 < sharedPages_)
                ++runPage_;
        }
    }
    if (runLeft_ == 0)
        newRun();
    return ref;
}

} // namespace pipm
