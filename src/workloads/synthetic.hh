/**
 * @file
 * Parameterised synthetic workload model.
 *
 * Each Table 1 benchmark is expressed as a set of access-pattern
 * parameters (see catalog.cc for the per-benchmark values and the
 * rationale): the shared heap is partitioned across hosts; every
 * reference picks its own partition with probability `partitionAffinity`
 * (else a uniformly random other partition), then a page within the
 * region by a zipf draw (hot-set skew), then either continues a
 * sequential line run (spatial locality) or jumps. Reads/writes and
 * compute gaps follow the benchmark's mix. A fraction of references goes
 * to host-private data (code/stack/locals), which mostly cache-hits and
 * sets the compute baseline.
 *
 * These are the knobs that determine everything a migration policy can
 * observe — which host touches which page how often, with what reuse and
 * what spatial density — which is why a parameterised model can stand in
 * for Pin traces in this study (DESIGN.md §1).
 */

#ifndef PIPM_WORKLOADS_SYNTHETIC_HH
#define PIPM_WORKLOADS_SYNTHETIC_HH

#include <cstdint>

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace pipm
{

/** Access-pattern parameters of one benchmark. */
struct PatternParams
{
    const char *name = "";
    const char *suite = "";
    std::uint64_t footprintFullBytes = 0;   ///< Table 1 column 3
    std::uint64_t privateFullBytes = 32ull << 20;

    /** Probability a shared reference targets the host's own partition. */
    double partitionAffinity = 0.85;
    /** Zipf skew over the pages of the chosen partition. */
    double zipfTheta = 0.7;
    /** Probability a reference is a read. */
    double readFrac = 0.8;
    /** Mean sequential run length in lines (1 = fully random). */
    unsigned seqRunLines = 8;
    /** Mean non-memory instructions between references. */
    unsigned gapMean = 8;
    /** Fraction of references to private data. */
    double privateFrac = 0.25;
    /**
     * Fraction of shared references that target a small globally-hot
     * region accessed uniformly by all hosts (graph hubs, cluster
     * centres, B-tree roots). These are the pages a side-effect-blind
     * policy migrates harmfully.
     */
    double globalHotFrac = 0.05;
    /** Size of that globally-hot region as a fraction of the heap. */
    double globalHotSpan = 0.002;
    /**
     * Fraction of shared references issued by a cyclic sequential scan of
     * the host's own partition (graph-iteration / streaming passes). Scan
     * reuse distance always exceeds the LLC, so every pass re-misses —
     * the access pattern that rewards keeping data in local DRAM.
     */
    double scanFrac = 0.0;
    /** Fraction of the partition covered by the scan region. */
    double scanSpanFrac = 0.25;
    /**
     * Hot-set drift. Real workloads' hot sets move: graph frontiers
     * advance, phases change, OLTP key popularity shifts. Epoch-based OS
     * policies chronically chase yesterday's hot pages; access-driven
     * policies keep up. scanShiftFrac slides the scan window by this
     * fraction of its size after each completed pass; phaseRefs rotates
     * the zipf rank->page permutation after this many shared references
     * (0 = stationary).
     */
    double scanShiftFrac = 0.3;
    std::uint64_t phaseRefs = 0;
    /**
     * Line-granular hotness: number of hot lines per zipf-selected page
     * (0 = all 64 lines uniformly). Real records/vertices occupy a few
     * lines of their page, so page-level hotness concentrates on a small
     * per-page line subset — exactly the pattern where whole-page
     * migration wastes transfer and local capacity and PIPM's partial
     * migration pays off (§4.1 "single-destination and rigid per-page
     * migration").
     */
    unsigned hotLinesPerPage = 0;
};

/** A Workload built from PatternParams. */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param params pattern description
     * @param footprint_scale divisor applied to Table 1 footprints
     *        (must match SystemConfig::footprintScale)
     */
    SyntheticWorkload(const PatternParams &params, unsigned footprint_scale);

    std::string name() const override { return params_.name; }
    std::string suite() const override { return params_.suite; }
    std::uint64_t footprintBytes() const override
    {
        return params_.footprintFullBytes;
    }
    std::uint64_t sharedBytes() const override { return sharedBytes_; }
    std::uint64_t privateBytesPerHost() const override
    {
        return privateBytes_;
    }

    std::unique_ptr<CoreTrace> makeTrace(HostId host, CoreId core,
                                         unsigned cores_per_host,
                                         unsigned num_hosts,
                                         std::uint64_t seed) const override;

    std::string fingerprint() const override;

    const PatternParams &params() const { return params_; }

  private:
    PatternParams params_;
    std::uint64_t sharedBytes_;
    std::uint64_t privateBytes_;
};

/** The reference stream of one core of a SyntheticWorkload. */
class SyntheticTrace : public CoreTrace
{
  public:
    SyntheticTrace(const PatternParams &params, std::uint64_t shared_bytes,
                   std::uint64_t private_bytes, HostId host, CoreId core,
                   unsigned cores_per_host, unsigned num_hosts,
                   std::uint64_t seed);

    MemRef next() override;

  private:
    /** Start a new access run (choose region, page, line). */
    void newRun();

    PatternParams params_;
    Rng rng_;
    HostId host_;
    unsigned numHosts_;
    std::uint64_t sharedPages_;
    std::uint64_t partitionPages_;
    std::uint64_t privatePages_;
    std::uint64_t hotPages_;
    ZipfSampler zipf_;

    // Current sequential run state.
    std::uint64_t runPage_ = 0;
    unsigned runLine_ = 0;
    unsigned runLeft_ = 0;

    // Cyclic partition-scan state.
    std::uint64_t scanBase_ = 0;    ///< first page of the host's partition
    std::uint64_t scanPages_ = 0;   ///< pages in the scan window
    std::uint64_t windowStart_ = 0; ///< window offset within the partition
    std::uint64_t scanPage_ = 0;    ///< cursor within the window
    unsigned scanLine_ = 0;

    // Hot-set drift state.
    std::uint64_t sharedRefs_ = 0;
    std::uint64_t phase_ = 0;
    std::uint64_t phaseLeft_ = 0;   ///< shared refs until the next phase
};

} // namespace pipm

#endif // PIPM_WORKLOADS_SYNTHETIC_HH
