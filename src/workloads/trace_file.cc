#include "workloads/trace_file.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace pipm
{

namespace
{

std::string
corePath(const std::string &dir, unsigned host, unsigned core)
{
    std::ostringstream os;
    os << dir << "/trace_h" << host << "_c" << core << ".bin";
    return os.str();
}

} // namespace

std::uint64_t
packMemRef(const MemRef &ref)
{
    panic_if(ref.page >= (1ull << 40), "page index exceeds 40 bits");
    std::uint64_t word = ref.page;
    word |= static_cast<std::uint64_t>(ref.lineIdx & 63) << 40;
    word |= static_cast<std::uint64_t>(ref.shared ? 1 : 0) << 46;
    word |= static_cast<std::uint64_t>(ref.op == MemOp::write ? 1 : 0)
            << 47;
    word |= static_cast<std::uint64_t>(ref.gap) << 48;
    return word;
}

MemRef
unpackMemRef(std::uint64_t word)
{
    MemRef ref;
    ref.page = word & ((1ull << 40) - 1);
    ref.lineIdx = static_cast<std::uint8_t>((word >> 40) & 63);
    ref.shared = (word >> 46) & 1;
    ref.op = ((word >> 47) & 1) ? MemOp::write : MemOp::read;
    ref.gap = static_cast<std::uint16_t>(word >> 48);
    return ref;
}

void
recordTraces(const Workload &workload, const std::string &dir,
             std::uint64_t refs_per_core, unsigned num_hosts,
             unsigned cores_per_host, std::uint64_t seed)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatal_if(ec, "cannot create trace directory ", dir, ": ",
             ec.message());

    for (unsigned h = 0; h < num_hosts; ++h) {
        for (unsigned c = 0; c < cores_per_host; ++c) {
            auto trace = workload.makeTrace(
                static_cast<HostId>(h), static_cast<CoreId>(c),
                cores_per_host, num_hosts,
                seed + 7919 * (h * 64 + c));
            std::ofstream out(corePath(dir, h, c), std::ios::binary);
            fatal_if(!out, "cannot open ", corePath(dir, h, c));
            for (std::uint64_t i = 0; i < refs_per_core; ++i) {
                const std::uint64_t word = packMemRef(trace->next());
                out.write(reinterpret_cast<const char *>(&word),
                          sizeof word);
            }
        }
    }

    std::ofstream meta(dir + "/meta.txt");
    fatal_if(!meta, "cannot write ", dir, "/meta.txt");
    meta << "name " << workload.name() << '\n'
         << "footprint_bytes " << workload.footprintBytes() << '\n'
         << "shared_bytes " << workload.sharedBytes() << '\n'
         << "private_bytes " << workload.privateBytesPerHost() << '\n'
         << "num_hosts " << num_hosts << '\n'
         << "cores_per_host " << cores_per_host << '\n'
         << "refs_per_core " << refs_per_core << '\n';
}

TraceFileWorkload::TraceFileWorkload(std::string dir)
    : dir_(std::move(dir))
{
    std::ifstream meta(dir_ + "/meta.txt");
    fatal_if(!meta, "no trace metadata at ", dir_, "/meta.txt");
    std::string key;
    while (meta >> key) {
        if (key == "name")
            meta >> name_;
        else if (key == "footprint_bytes")
            meta >> footprint_;
        else if (key == "shared_bytes")
            meta >> sharedBytes_;
        else if (key == "private_bytes")
            meta >> privateBytes_;
        else if (key == "num_hosts")
            meta >> numHosts_;
        else if (key == "cores_per_host")
            meta >> coresPerHost_;
        else if (key == "refs_per_core")
            meta >> refsPerCore_;
        else
            meta.ignore(1024, '\n');
    }
    fatal_if(name_.empty() || numHosts_ == 0 || coresPerHost_ == 0,
             "malformed trace metadata in ", dir_);
}

std::string
TraceFileWorkload::fingerprint() const
{
    std::ostringstream os;
    os << "tracefile;" << dir_ << ';' << name_ << ';' << sharedBytes_
       << ';' << privateBytes_ << ';' << refsPerCore_;
    return os.str();
}

std::unique_ptr<CoreTrace>
TraceFileWorkload::makeTrace(HostId host, CoreId core,
                             unsigned cores_per_host, unsigned num_hosts,
                             std::uint64_t seed) const
{
    (void)seed;
    fatal_if(num_hosts > numHosts_ || cores_per_host > coresPerHost_,
             "trace set ", dir_, " was recorded for ", numHosts_, "x",
             coresPerHost_, " cores; requested ", num_hosts, "x",
             cores_per_host);
    return std::make_unique<FileTrace>(corePath(dir_, host, core));
}

FileTrace::FileTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    fatal_if(!in, "cannot open trace file ", path);
    const std::streamsize bytes = in.tellg();
    fatal_if(bytes < static_cast<std::streamsize>(sizeof(std::uint64_t)),
             "trace file ", path, " is empty");
    fatal_if(bytes % sizeof(std::uint64_t) != 0,
             "trace file ", path, " is truncated");
    words_.resize(static_cast<std::size_t>(bytes) /
                  sizeof(std::uint64_t));
    in.seekg(0);
    in.read(reinterpret_cast<char *>(words_.data()), bytes);
    fatal_if(!in, "short read from ", path);
}

MemRef
FileTrace::next()
{
    const MemRef ref = unpackMemRef(words_[cursor_]);
    if (++cursor_ >= words_.size()) {
        cursor_ = 0;
        ++wraps_;
    }
    return ref;
}

} // namespace pipm
