#include "workloads/trace_file.hh"

#include <sstream>

#include "common/hash.hh"
#include "common/logging.hh"

namespace pipm
{

void
snapshotTrace(const Workload &workload, const std::string &path,
              std::uint64_t refs_per_core, unsigned num_hosts,
              unsigned cores_per_host, std::uint64_t seed)
{
    fatal_if(refs_per_core == 0, "refuse to snapshot an empty trace");
    TraceMeta meta;
    meta.name = workload.name();
    meta.sourceFingerprint = workload.fingerprint();
    meta.numHosts = num_hosts;
    meta.coresPerHost = cores_per_host;
    meta.sharedBytes = workload.sharedBytes();
    meta.privateBytesPerHost = workload.privateBytesPerHost();
    meta.footprintBytes = workload.footprintBytes();

    TraceWriter out(meta);
    for (unsigned h = 0; h < num_hosts; ++h) {
        for (unsigned c = 0; c < cores_per_host; ++c) {
            // The runner's per-core seed derivation (sim/runner.cc):
            // snapshot streams match what a run would consume.
            auto trace = workload.makeTrace(
                static_cast<HostId>(h), static_cast<CoreId>(c),
                cores_per_host, num_hosts,
                seed + 7919 * (h * 64 + c));
            const unsigned stream = meta.streamIndex(h, c);
            for (std::uint64_t i = 0; i < refs_per_core; ++i)
                out.append(stream, trace->next());
        }
    }
    out.writeTo(path);
}

TraceFileWorkload::TraceFileWorkload(std::string path)
    : path_(std::move(path)), reader_(path_)
{
    fatal_if(reader_.meta().pageBytes != pageBytes ||
                 reader_.meta().lineBytes != lineBytes,
             path_, " was recorded with ", reader_.meta().pageBytes,
             "B pages / ", reader_.meta().lineBytes,
             "B lines; this simulator uses ", pageBytes, "/",
             lineBytes);
    fatal_if(reader_.totalRecords() == 0, path_,
             " holds no references");
}

std::string
TraceFileWorkload::fingerprint() const
{
    std::ostringstream os;
    os << "pipmt;" << hashHex(reader_.checksum()) << ';'
       << reader_.meta().name << ';' << reader_.meta().numHosts << 'x'
       << reader_.meta().coresPerHost << ';' << reader_.totalRecords();
    return os.str();
}

std::unique_ptr<CoreTrace>
TraceFileWorkload::makeTrace(HostId host, CoreId core,
                             unsigned cores_per_host,
                             unsigned num_hosts,
                             std::uint64_t seed) const
{
    (void)seed;  // replay is exact: the file is the stream
    const TraceMeta &meta = reader_.meta();
    fatal_if(num_hosts > meta.numHosts ||
                 cores_per_host > meta.coresPerHost,
             "trace ", path_, " was recorded for ", meta.numHosts, "x",
             meta.coresPerHost, " cores; requested ", num_hosts, "x",
             cores_per_host);
    const unsigned stream = meta.streamIndex(host, core);
    fatal_if(reader_.records(stream) == 0, "trace ", path_,
             " stream for core (", unsigned{host}, ",", core,
             ") is empty");
    return std::make_unique<FileTrace>(reader_.decodeStream(stream));
}

FileTrace::FileTrace(std::vector<MemRef> refs) : refs_(std::move(refs))
{
    panic_if(refs_.empty(), "FileTrace needs a non-empty stream");
}

MemRef
FileTrace::next()
{
    const MemRef ref = refs_[cursor_];
    if (++cursor_ >= refs_.size()) {
        cursor_ = 0;
        ++wraps_;
    }
    return ref;
}

} // namespace pipm
