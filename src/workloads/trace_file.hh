/**
 * @file
 * Trace file support: record any workload's per-core reference streams
 * to disk and replay them later, mirroring the paper's trace-driven
 * methodology (§5.1.2, Pin traces replayed through the simulator).
 *
 * A trace set is a directory containing `meta.txt` (name, footprints,
 * geometry) plus one binary file per core (`trace_h<H>_c<C>.bin`). Each
 * reference packs into one little-endian 64-bit word:
 *
 *   bits  0..39  page index            (40 bits)
 *   bits 40..45  line within the page  (6 bits)
 *   bit  46      shared (1) / private (0)
 *   bit  47      write (1) / read (0)
 *   bits 48..63  non-memory gap        (16 bits)
 *
 * Replay loops the file when the stream is exhausted (runner streams are
 * infinite), counting wraps so tools can report coverage.
 */

#ifndef PIPM_WORKLOADS_TRACE_FILE_HH
#define PIPM_WORKLOADS_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace pipm
{

/** Pack one reference into its on-disk word. */
std::uint64_t packMemRef(const MemRef &ref);

/** Unpack an on-disk word. */
MemRef unpackMemRef(std::uint64_t word);

/**
 * Record a workload's traces to a directory.
 * @param workload source workload
 * @param dir output directory (created if missing)
 * @param refs_per_core references recorded per core
 * @param num_hosts / cores_per_host trace-set geometry
 * @param seed generator seed
 */
void recordTraces(const Workload &workload, const std::string &dir,
                  std::uint64_t refs_per_core, unsigned num_hosts,
                  unsigned cores_per_host, std::uint64_t seed);

/** A workload backed by recorded trace files. */
class TraceFileWorkload : public Workload
{
  public:
    /** @param dir a directory produced by recordTraces() */
    explicit TraceFileWorkload(std::string dir);

    std::string name() const override { return name_; }
    std::string suite() const override { return "trace"; }
    std::uint64_t footprintBytes() const override { return footprint_; }
    std::uint64_t sharedBytes() const override { return sharedBytes_; }
    std::uint64_t privateBytesPerHost() const override
    {
        return privateBytes_;
    }
    std::string fingerprint() const override;

    std::unique_ptr<CoreTrace> makeTrace(HostId host, CoreId core,
                                         unsigned cores_per_host,
                                         unsigned num_hosts,
                                         std::uint64_t seed) const override;

    unsigned recordedHosts() const { return numHosts_; }
    unsigned recordedCoresPerHost() const { return coresPerHost_; }
    std::uint64_t refsPerCore() const { return refsPerCore_; }

  private:
    std::string dir_;
    std::string name_;
    std::uint64_t footprint_ = 0;
    std::uint64_t sharedBytes_ = 0;
    std::uint64_t privateBytes_ = 0;
    unsigned numHosts_ = 0;
    unsigned coresPerHost_ = 0;
    std::uint64_t refsPerCore_ = 0;
};

/** Replays one core's recorded file, looping at the end. */
class FileTrace : public CoreTrace
{
  public:
    /** @param path the core's .bin file */
    explicit FileTrace(const std::string &path);

    MemRef next() override;

    /** Times the stream wrapped back to the beginning. */
    std::uint64_t wraps() const { return wraps_; }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t cursor_ = 0;
    std::uint64_t wraps_ = 0;
};

} // namespace pipm

#endif // PIPM_WORKLOADS_TRACE_FILE_HH
