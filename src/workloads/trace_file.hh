/**
 * @file
 * Trace-backed workloads: replay a PIPMT trace file (src/trace,
 * DESIGN.md §14) through the runner, mirroring the paper's
 * trace-driven methodology (§5.1.2, Pin traces replayed through the
 * simulator).
 *
 * A trace produced by TraceRecorder (captured from a live run) or
 * trace_gen replays with the exact per-core streams the file holds:
 * replaying a recorded run under the same SystemConfig/RunConfig
 * reproduces the original RunResult bit-for-bit. Replay loops a
 * stream when it is exhausted (runner streams are infinite), counting
 * wraps so tools can report coverage; an exact record->replay never
 * wraps.
 */

#ifndef PIPM_WORKLOADS_TRACE_FILE_HH
#define PIPM_WORKLOADS_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace pipm
{

/**
 * Pre-generate a workload's reference streams into a PIPMT trace,
 * drawing each core's stream exactly as the runner would (same
 * per-core seed derivation), without running an experiment.
 *
 * @param workload source workload
 * @param path output trace file
 * @param refs_per_core references captured per core
 * @param num_hosts / cores_per_host trace geometry
 * @param seed base seed (the runner's RunConfig::seed analog)
 */
void snapshotTrace(const Workload &workload, const std::string &path,
                   std::uint64_t refs_per_core, unsigned num_hosts,
                   unsigned cores_per_host, std::uint64_t seed);

/** A workload backed by a recorded or generated PIPMT trace file. */
class TraceFileWorkload : public Workload
{
  public:
    /** @param path a PIPMT file; fatal() on any malformation */
    explicit TraceFileWorkload(std::string path);

    /**
     * Reports the *source* workload's name: RunResult.workload and the
     * stats.json meta must match the recorded run's for replay
     * identity.
     */
    std::string name() const override { return reader_.meta().name; }
    std::string suite() const override { return "trace"; }
    std::uint64_t footprintBytes() const override
    {
        return reader_.meta().footprintBytes;
    }
    std::uint64_t sharedBytes() const override
    {
        return reader_.meta().sharedBytes;
    }
    std::uint64_t privateBytesPerHost() const override
    {
        return reader_.meta().privateBytesPerHost;
    }

    /**
     * Content-addressed (payload checksum), deliberately distinct from
     * the source workload's fingerprint so cached bench rows for a
     * replay never alias the synthetic run that produced it.
     */
    std::string fingerprint() const override;

    std::unique_ptr<CoreTrace> makeTrace(HostId host, CoreId core,
                                         unsigned cores_per_host,
                                         unsigned num_hosts,
                                         std::uint64_t seed) const override;

    unsigned recordedHosts() const { return reader_.meta().numHosts; }
    unsigned recordedCoresPerHost() const
    {
        return reader_.meta().coresPerHost;
    }
    std::uint64_t refsIn(unsigned host, unsigned core) const
    {
        return reader_.records(reader_.meta().streamIndex(host, core));
    }
    std::uint64_t totalRefs() const { return reader_.totalRecords(); }
    const TraceReader &reader() const { return reader_; }

  private:
    std::string path_;
    TraceReader reader_;
};

/** Replays one decoded stream, looping at the end. */
class FileTrace : public CoreTrace
{
  public:
    /** @param refs the stream's references; must be non-empty */
    explicit FileTrace(std::vector<MemRef> refs);

    MemRef next() override;

    /** Times the stream wrapped back to the beginning. */
    std::uint64_t wraps() const { return wraps_; }

  private:
    std::vector<MemRef> refs_;
    std::size_t cursor_ = 0;
    std::uint64_t wraps_ = 0;
};

} // namespace pipm

#endif // PIPM_WORKLOADS_TRACE_FILE_HH
