/**
 * @file
 * Workload abstraction: per-core generated memory traces.
 *
 * The paper drives its simulator with Pin traces of 13 memory-intensive
 * benchmarks (Table 1). This reproduction generates equivalent traces
 * synthetically (see DESIGN.md for why that substitution preserves the
 * behaviour under study): each benchmark is a parameterised access-pattern
 * model that reproduces the suite's documented structure — per-host
 * partition affinity, hot-set skew, read/write mix, spatial run lengths
 * and compute gaps.
 *
 * References address *regions*, not physical addresses: shared-heap pages
 * are named by a dense index that the OS layer maps (and remaps, under
 * migration) onto unified physical frames; private data is named by a
 * per-host offset.
 */

#ifndef PIPM_WORKLOADS_WORKLOAD_HH
#define PIPM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace pipm
{

/** One memory reference emitted by a core trace. */
struct MemRef
{
    bool shared = true;        ///< shared heap vs host-private data
    std::uint64_t page = 0;    ///< shared page index, or private page index
    std::uint8_t lineIdx = 0;  ///< line within the page [0, 64)
    MemOp op = MemOp::read;
    std::uint16_t gap = 0;     ///< non-memory instructions preceding this op
};

/** A deterministic per-core reference stream. */
class CoreTrace
{
  public:
    virtual ~CoreTrace() = default;

    /** Produce the next reference. Streams are infinite. */
    virtual MemRef next() = 0;
};

/** A benchmark: names, scaled footprints, and trace construction. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as listed in Table 1 (e.g. "pr", "ycsb"). */
    virtual std::string name() const = 0;

    /** Suite the benchmark belongs to (e.g. "GAPBS"). */
    virtual std::string suite() const = 0;

    /** Unscaled memory footprint in bytes (Table 1 column 3). */
    virtual std::uint64_t footprintBytes() const = 0;

    /** Scaled shared-heap size. */
    virtual std::uint64_t sharedBytes() const = 0;

    /** Scaled private (code/stack/kernel) bytes pinned per host. */
    virtual std::uint64_t privateBytesPerHost() const = 0;

    /**
     * Stable fingerprint of everything that shapes the generated traces
     * (used to key cached experiment results).
     */
    virtual std::string fingerprint() const = 0;

    /**
     * Build the reference stream of one core.
     * @param host the core's host
     * @param core core index within the host
     * @param cores_per_host total cores per host (for partitioning)
     * @param num_hosts total host count
     * @param seed base RNG seed for determinism
     */
    virtual std::unique_ptr<CoreTrace>
    makeTrace(HostId host, CoreId core, unsigned cores_per_host,
              unsigned num_hosts, std::uint64_t seed) const = 0;
};

} // namespace pipm

#endif // PIPM_WORKLOADS_WORKLOAD_HH
