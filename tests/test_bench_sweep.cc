/**
 * @file
 * Tests for the benchmark sweep driver and TSV cache (bench_common):
 * job-count-independent results, canonical cache files, atomic merge
 * writes, and tolerance of malformed cache rows.
 */

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hh"
#include "workloads/catalog.hh"

namespace
{

using namespace pipm;
using namespace pipmbench;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Short-run options writing to a private cache file. */
Options
testOptions(const std::string &cache_path, unsigned jobs)
{
    Options opts;
    opts.measureRefs = 2'000;
    opts.warmupRefs = 500;
    opts.seed = 42;
    opts.cachePath = cache_path;
    opts.jobs = jobs;
    return opts;
}

class SweepTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        for (const std::string &f : cleanup_)
            std::remove(f.c_str());
    }

    std::string
    cachePath(const std::string &name)
    {
        const std::string path = "test_sweep_" + name + ".tsv";
        cleanup_.push_back(path);
        return path;
    }

    std::vector<std::string> cleanup_;
};

TEST_F(SweepTest, JobCountDoesNotChangeResultsOrCacheFile)
{
    const SystemConfig cfg = defaultConfig();
    const auto workload = workloadByName("pr", cfg.footprintScale);
    const Scheme schemes[] = {Scheme::native, Scheme::pipmFull};

    const Options serial = testOptions(cachePath("j1"), 1);
    const Options parallel = testOptions(cachePath("j8"), 8);

    Sweep s1(serial);
    Sweep s8(parallel);
    for (Scheme s : schemes) {
        s1.add(cfg, s, *workload);
        s8.add(cfg, s, *workload);
    }
    EXPECT_EQ(s1.run(), std::size(schemes));
    EXPECT_EQ(s8.run(), std::size(schemes));

    // The cache files must be byte-identical: same rows, same canonical
    // order, regardless of how many worker threads produced them.
    const std::string f1 = slurp(serial.cachePath);
    EXPECT_FALSE(f1.empty());
    EXPECT_EQ(f1, slurp(parallel.cachePath));

    // And the deserialized results must agree field-for-field.
    for (Scheme s : schemes) {
        const RunResult a = cachedRun(cfg, s, *workload, serial);
        const RunResult b = cachedRun(cfg, s, *workload, parallel);
        EXPECT_EQ(a.execCycles, b.execCycles);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
        EXPECT_EQ(a.interHostAccesses, b.interHostAccesses);
        EXPECT_EQ(a.pipmPromotions, b.pipmPromotions);
        EXPECT_EQ(a.pipmLinesIn, b.pipmLinesIn);
    }
}

TEST_F(SweepTest, RerunHitsCacheAndSimulatesNothing)
{
    const SystemConfig cfg = defaultConfig();
    const auto workload = workloadByName("tc", cfg.footprintScale);
    const Options opts = testOptions(cachePath("rerun"), 2);

    Sweep first(opts);
    first.add(cfg, Scheme::native, *workload);
    // Duplicate enqueues dedupe down to one simulation.
    first.add(cfg, Scheme::native, *workload);
    EXPECT_EQ(first.run(), 1u);

    Sweep second(opts);
    second.add(cfg, Scheme::native, *workload);
    EXPECT_EQ(second.run(), 0u);
}

TEST_F(SweepTest, MalformedCacheRowsAreSkippedAndDropped)
{
    const SystemConfig cfg = defaultConfig();
    const auto workload = workloadByName("pr", cfg.footprintScale);
    const Options opts = testOptions(cachePath("malformed"), 1);

    // Seed the cache with garbage: a truncated row, a row with a bad
    // key, and a row whose result columns don't parse.
    {
        std::ofstream out(opts.cachePath);
        out << "short\n";
        out << "zzzzzzzzzzzzzzzz\t1 2 3\n";
        out << "0123456789abcdef\tnot a number\n";
    }

    // The run must ignore the garbage, simulate, and atomically rewrite
    // the cache with only well-formed rows.
    const RunResult r = cachedRun(cfg, Scheme::native, *workload, opts);
    EXPECT_GT(r.execCycles, 0u);

    std::ifstream in(opts.cachePath);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        ASSERT_GT(line.size(), 17u);
        EXPECT_EQ(line[16], '\t');
        for (std::size_t i = 0; i < 16; ++i)
            EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(line[i])));
    }
    EXPECT_EQ(rows, 1u);

    // The surviving row must satisfy a second lookup (cache hit).
    const RunResult again = cachedRun(cfg, Scheme::native, *workload, opts);
    EXPECT_EQ(r.execCycles, again.execCycles);
}

TEST_F(SweepTest, MergePreservesRowsWrittenByOthers)
{
    const SystemConfig cfg = defaultConfig();
    const auto workload = workloadByName("pr", cfg.footprintScale);
    const Options opts = testOptions(cachePath("merge"), 1);

    // First run writes one row.
    cachedRun(cfg, Scheme::native, *workload, opts);
    const std::string before = slurp(opts.cachePath);
    EXPECT_FALSE(before.empty());

    // A second, different experiment merges in without losing the first.
    cachedRun(cfg, Scheme::localOnly, *workload, opts);
    const std::string after = slurp(opts.cachePath);
    EXPECT_NE(before, after);
    EXPECT_NE(after.find(before.substr(0, 16)), std::string::npos);

    std::ifstream in(opts.cachePath);
    std::string line;
    std::vector<std::string> keys;
    while (std::getline(in, line))
        keys.push_back(line.substr(0, 16));
    ASSERT_EQ(keys.size(), 2u);
    // Canonical order: sorted by key.
    EXPECT_LT(keys[0], keys[1]);
}

} // namespace
