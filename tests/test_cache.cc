/**
 * @file
 * Unit tests for the set-associative array and replacement policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/set_assoc.hh"
#include "common/logging.hh"

namespace pipm
{
namespace
{

struct Payload
{
    int v = 0;
};

TEST(SetAssoc, InsertThenLookup)
{
    SetAssoc<Payload> cache(4, 2);
    EXPECT_EQ(cache.lookup(10), nullptr);
    EXPECT_FALSE(cache.insert(10, Payload{7}));
    ASSERT_NE(cache.lookup(10), nullptr);
    EXPECT_EQ(cache.lookup(10)->v, 7);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed)
{
    // Single set, 2 ways: the untouched key is the victim.
    SetAssoc<Payload> cache(1, 2);
    cache.insert(1, Payload{1});
    cache.insert(2, Payload{2});
    cache.lookup(1);   // make key 2 the LRU
    auto evicted = cache.insert(3, Payload{3});
    ASSERT_TRUE(evicted);
    EXPECT_EQ(evicted->key, 2u);
    EXPECT_NE(cache.lookup(1), nullptr);
    EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(SetAssoc, InvalidateRemoves)
{
    SetAssoc<Payload> cache(4, 2);
    cache.insert(5, Payload{5});
    auto out = cache.invalidate(5);
    ASSERT_TRUE(out);
    EXPECT_EQ(out->meta.v, 5);
    EXPECT_EQ(cache.lookup(5), nullptr);
    EXPECT_FALSE(cache.invalidate(5));
}

TEST(SetAssoc, ProbeDoesNotTouchReplacementState)
{
    SetAssoc<Payload> cache(1, 2);
    cache.insert(1, Payload{});
    cache.insert(2, Payload{});
    cache.probe(1);   // must NOT refresh key 1
    auto evicted = cache.insert(3, Payload{});
    ASSERT_TRUE(evicted);
    EXPECT_EQ(evicted->key, 1u);
}

TEST(SetAssoc, CapacityNeverExceeded)
{
    SetAssoc<Payload> cache(8, 4);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        if (!cache.probe(k))
            cache.insert(k, Payload{});
    }
    EXPECT_LE(cache.occupancy(), cache.capacity());
    EXPECT_EQ(cache.capacity(), 32u);
}

TEST(SetAssoc, DuplicateInsertPanics)
{
    detail::throwOnError = true;
    SetAssoc<Payload> cache(4, 2);
    cache.insert(9, Payload{});
    EXPECT_THROW(cache.insert(9, Payload{}), SimError);
    detail::throwOnError = false;
}

TEST(SetAssoc, ForEachVisitsAllValidEntries)
{
    SetAssoc<Payload> cache(8, 2);
    for (int k = 0; k < 10; ++k)
        cache.insert(k, Payload{k});
    std::set<std::uint64_t> keys;
    cache.forEach([&keys](const SetAssoc<Payload>::Entry &e) {
        keys.insert(e.key);
    });
    EXPECT_EQ(keys.size(), cache.occupancy());
}

TEST(SetAssoc, ClearEmptiesEverything)
{
    SetAssoc<Payload> cache(8, 2);
    for (int k = 0; k < 10; ++k)
        cache.insert(k, Payload{});
    cache.clear();
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(SetAssoc, WithCapacityRoundsToPowerOfTwoSets)
{
    auto cache = SetAssoc<Payload>::withCapacity(1000, 8);
    // 1000/8 = 125 sets -> rounded down to 64.
    EXPECT_EQ(cache.sets(), 64u);
    EXPECT_EQ(cache.ways(), 8u);
}

TEST(SetAssoc, RandomPolicyStillBoundsOccupancy)
{
    SetAssoc<Payload> cache(4, 4, ReplPolicy::random, 99);
    for (std::uint64_t k = 0; k < 500; ++k) {
        if (!cache.probe(k))
            cache.insert(k, Payload{});
    }
    EXPECT_LE(cache.occupancy(), 16u);
}

TEST(SetAssoc, SrripEvictsSomethingValid)
{
    SetAssoc<Payload> cache(1, 4, ReplPolicy::srrip);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.insert(k, Payload{});
    auto evicted = cache.insert(100, Payload{});
    ASSERT_TRUE(evicted);
    EXPECT_LT(evicted->key, 4u);
    EXPECT_NE(cache.lookup(100), nullptr);
}

TEST(Replacement, LruVictimIsSmallestStamp)
{
    Replacement repl(ReplPolicy::lru);
    std::vector<ReplWord> words = {5, 2, 9, 3};
    EXPECT_EQ(repl.victim(words), 1u);
}

TEST(Replacement, SrripAgesUntilMax)
{
    Replacement repl(ReplPolicy::srrip);
    std::vector<ReplWord> words = {0, 1, 2, 1};
    const std::size_t v = repl.victim(words);
    EXPECT_EQ(v, 2u);
    // The chosen victim's word must have reached srripMax.
    EXPECT_GE(words[v], srripMax);
}

TEST(Replacement, OnHitRefreshesLru)
{
    Replacement repl(ReplPolicy::lru);
    EXPECT_EQ(repl.onHit(3, 42), 42u);
    EXPECT_EQ(repl.onFill(7), 7u);
}

} // namespace
} // namespace pipm
