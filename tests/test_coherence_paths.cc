/**
 * @file
 * Focused protocol-path tests for MultiHostSystem: device directory
 * precision under eviction notifications and capacity recalls, the
 * S->M upgrade path, owner forwarding, and remapping-cache interactions
 * with promotions and revocations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace pipm
{
namespace
{

class StubWorkload : public Workload
{
  public:
    StubWorkload(std::uint64_t shared_bytes, std::uint64_t private_bytes)
        : shared_(shared_bytes), private_(private_bytes)
    {
    }

    std::string name() const override { return "stub"; }
    std::string suite() const override { return "test"; }
    std::uint64_t footprintBytes() const override { return shared_; }
    std::uint64_t sharedBytes() const override { return shared_; }
    std::uint64_t privateBytesPerHost() const override { return private_; }
    std::string fingerprint() const override { return "stub"; }
    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        return nullptr;
    }

  private:
    std::uint64_t shared_;
    std::uint64_t private_;
};

MemRef
sharedRef(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = op;
    return r;
}

LineAddr
cxlLineOf(MultiHostSystem &sys, std::uint64_t page, unsigned line)
{
    return lineOf(pageBase(sys.space().sharedFrame(page)) +
                  line * lineBytes);
}

TEST(CoherencePaths, ExclusiveReadGrantThenForwardOnSecondReader)
{
    SystemConfig cfg = testConfig();
    StubWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::native, wl, 3);

    sys.access(0, 0, sharedRef(1, 0, MemOp::read), 0);
    const LineAddr line = cxlLineOf(sys, 1, 0);
    // Exclusive grant: host 0 caches in M, directory M.
    EXPECT_EQ(sys.hierarchy(0).stateOf(line), HostState::M);
    const DirEntry *entry = sys.deviceDirectory().probe(line);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DevState::M);
    EXPECT_EQ(entry->owner(2), 0);

    // Second reader: forward + downgrade to S at both hosts.
    const std::uint64_t before = sys.interHostAccesses.value();
    sys.access(1, 0, sharedRef(1, 0, MemOp::read), 1000);
    EXPECT_EQ(sys.interHostAccesses.value(), before + 1);
    EXPECT_EQ(sys.hierarchy(0).stateOf(line), HostState::S);
    EXPECT_EQ(sys.hierarchy(1).stateOf(line), HostState::S);
    entry = sys.deviceDirectory().probe(line);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DevState::S);
    EXPECT_TRUE(entry->has(0));
    EXPECT_TRUE(entry->has(1));
    sys.checkInvariants();
}

TEST(CoherencePaths, UpgradeInvalidatesOtherSharers)
{
    SystemConfig cfg = testConfig();
    StubWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::native, wl, 3);

    sys.access(0, 0, sharedRef(1, 0, MemOp::read), 0);
    sys.access(1, 0, sharedRef(1, 0, MemOp::read), 1000);
    const LineAddr line = cxlLineOf(sys, 1, 0);
    ASSERT_EQ(sys.hierarchy(0).stateOf(line), HostState::S);

    // Host 0 writes its cached S copy: upgrade path.
    const std::uint64_t upgrades = sys.upgradeMisses.value();
    sys.access(0, 0, sharedRef(1, 0, MemOp::write), 2000, 0x42);
    EXPECT_EQ(sys.upgradeMisses.value(), upgrades + 1);
    EXPECT_EQ(sys.hierarchy(0).stateOf(line), HostState::M);
    EXPECT_EQ(sys.hierarchy(1).stateOf(line), HostState::I);
    const DirEntry *entry = sys.deviceDirectory().probe(line);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DevState::M);
    EXPECT_EQ(entry->owner(2), 0);
    sys.checkInvariants();
}

TEST(CoherencePaths, EvictionNotificationsKeepDirectoryPrecise)
{
    SystemConfig cfg = testConfig();
    StubWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::native, wl, 3);

    // Touch many lines; the tiny LLC evicts most of them. Afterwards,
    // every directory entry must describe a line actually cached.
    Cycles now = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
        for (unsigned l = 0; l < linesPerPage; l += 2) {
            sys.access(0, 0, sharedRef(p, l, MemOp::read), now);
            now += 100;
        }
    }
    sys.checkInvariants();
    // Directory occupancy should track the LLC contents, not the whole
    // touched footprint (64 * 32 = 2048 lines touched).
    std::uint64_t dir_entries = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
        for (unsigned l = 0; l < linesPerPage; ++l) {
            if (sys.deviceDirectory().probe(cxlLineOf(sys, p, l)))
                ++dir_entries;
        }
    }
    std::uint64_t cached = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
        for (unsigned l = 0; l < linesPerPage; ++l) {
            if (sys.hierarchy(0).stateOf(cxlLineOf(sys, p, l)) !=
                HostState::I) {
                ++cached;
            }
        }
    }
    EXPECT_EQ(dir_entries, cached);
}

TEST(CoherencePaths, DirectoryRecallInvalidatesSharers)
{
    SystemConfig cfg = testConfig();
    // Shrink the directory so recalls fire while lines are still cached.
    cfg.deviceDirectory.sets = 2;
    cfg.deviceDirectory.ways = 2;
    cfg.deviceDirectory.slices = 2;
    StubWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::native, wl, 3);

    Cycles now = 0;
    for (std::uint64_t p = 0; p < 16; ++p) {
        for (unsigned l = 0; l < 8; ++l) {
            sys.access(0, 0, sharedRef(p, l, MemOp::write), now,
                       p * 100 + l);
            now += 100;
        }
    }
    EXPECT_GT(sys.deviceDirectory().recalls.value(), 0u);
    sys.checkInvariants();
    // Dirty recalled data must still be readable with the right value.
    const AccessResult res =
        sys.access(1, 0, sharedRef(0, 0, MemOp::read), now);
    EXPECT_EQ(res.data, 0u);
}

TEST(CoherencePaths, PipmRevocationFlushesMeLines)
{
    SystemConfig cfg = testConfig();
    StubWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 3);
    PipmState &pipm = *sys.pipmState();

    // Promote page 2 to host 0 and migrate some lines.
    Cycles now = 0;
    for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(2, i, MemOp::write), now, 0x900 + i);
        now += 5'000;
    }
    for (std::uint64_t p = 20; p < 64; ++p) {
        for (unsigned l = 0; l < linesPerPage; l += 2)
            sys.access(0, 0, sharedRef(p, l, MemOp::read), now);
    }
    const PageFrame cxl_page =
        pageOf(pageBase(sys.space().sharedFrame(2)));
    ASSERT_GT(pipm.migratedLinesOn(0), 0u);

    // Re-load one migrated line into ME.
    unsigned me_line = linesPerPage;
    for (unsigned l = 0; l < linesPerPage; ++l) {
        if (pipm.lineMigrated(0, cxl_page, l)) {
            me_line = l;
            break;
        }
    }
    ASSERT_LT(me_line, linesPerPage);
    sys.access(0, 0, sharedRef(2, me_line, MemOp::read), now);
    ASSERT_EQ(sys.hierarchy(0).stateOf(cxlLineOf(sys, 2, me_line)),
              HostState::ME);

    // Revoke deterministically through the software interface (the
    // same performRevocation path the drained local counter takes).
    sys.setPageMigrationAllowed(2, false);
    EXPECT_FALSE(pipm.hasLocalEntry(0, cxl_page));
    // Revocation must have flushed the ME line too, and cleared every
    // in-memory bit of the page (other pages may remain migrated).
    EXPECT_EQ(sys.hierarchy(0).stateOf(cxlLineOf(sys, 2, me_line)),
              HostState::I);
    for (unsigned l = 0; l < linesPerPage; ++l)
        EXPECT_FALSE(pipm.lineMigrated(0, cxl_page, l));
    // And its data must still be readable from CXL.
    const AccessResult res =
        sys.access(1, 0, sharedRef(2, me_line, MemOp::read), now + 5'000);
    EXPECT_EQ(res.data, 0x900u + me_line);
    sys.checkInvariants();
}

TEST(CoherencePaths, RemapCachesTrackPromotionAndRevocation)
{
    SystemConfig cfg = testConfig();
    StubWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 3);

    Cycles now = 0;
    for (unsigned i = 0; i < cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(2, i, MemOp::write), now, i);
        now += 5'000;
    }
    ASSERT_NE(sys.pipmState()->migratedHostOf(
                  pageOf(pageBase(sys.space().sharedFrame(2)))),
              invalidHost);
    // Subsequent misses walk/hit the local remap cache without panics
    // and observe the entry.
    const auto walks_before = sys.localRemapCache(0)->missCount.value();
    for (unsigned i = 0; i < 16; ++i)
        sys.access(0, 0, sharedRef(2, 40 + (i % 8), MemOp::read),
                   now += 1'000);
    EXPECT_GE(sys.localRemapCache(0)->hits.value() +
                  sys.localRemapCache(0)->missCount.value(),
              walks_before + 1);
}

/** Random multi-scheme smoke over a larger page set with invariants. */
class CoherenceStress : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(CoherenceStress, WidePageSetInvariantSweep)
{
    if (GetParam() == Scheme::localOnly)
        GTEST_SKIP();
    SystemConfig cfg = testConfig();
    StubWorkload wl(128 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, GetParam(), wl, 11);
    Rng rng(13);
    Cycles now = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto h = static_cast<HostId>(rng.below(cfg.numHosts));
        now += rng.below(80);
        sys.tick(now);
        sys.access(h, 0,
                   sharedRef(rng.below(128),
                             static_cast<unsigned>(rng.below(64)),
                             rng.chance(0.3) ? MemOp::write
                                             : MemOp::read),
                   now, i);
    }
    sys.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CoherenceStress,
    ::testing::Values(Scheme::native, Scheme::nomad, Scheme::memtis,
                      Scheme::hemem, Scheme::osSkew, Scheme::hwStatic,
                      Scheme::pipmFull, Scheme::pipmNaive),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string name(toString(info.param));
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace pipm
