/**
 * @file
 * Unit tests for the common substrate: RNG, zipf sampling, stats,
 * table printing, logging and configuration validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"

namespace pipm
{
namespace
{

class ThrowOnErrorGuard
{
  public:
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(rng.range(3, 5));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(13);
    constexpr int buckets = 8;
    constexpr int draws = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Zipf, RankZeroIsHottest)
{
    Rng rng(3);
    ZipfSampler zipf(1000, 0.9);
    std::uint64_t rank0 = 0, rank_tail = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t r = zipf.sample(rng);
        ASSERT_LT(r, 1000u);
        if (r == 0)
            ++rank0;
        if (r >= 500)
            ++rank_tail;
    }
    EXPECT_GT(rank0, rank_tail / 4);
    EXPECT_GT(rank0, 1000u);
}

TEST(Zipf, HigherThetaConcentratesMass)
{
    Rng rng_a(5), rng_b(5);
    ZipfSampler mild(10000, 0.4), hot(10000, 0.99);
    std::uint64_t mild_top = 0, hot_top = 0;
    for (int i = 0; i < 50000; ++i) {
        mild_top += mild.sample(rng_a) < 100;
        hot_top += hot.sample(rng_b) < 100;
    }
    EXPECT_GT(hot_top, mild_top * 2);
}

TEST(Stats, CounterAccumulatesAndResets)
{
    Counter c;
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageComputesMean)
{
    Average a;
    a.sample(1.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.count(), 2u);
    a.reset();
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(10, 4);
    h.sample(5);
    h.sample(25);
    h.sample(1000);   // overflow bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
    EXPECT_NEAR(h.mean(), (5 + 25 + 1000) / 3.0, 1e-9);
}

TEST(Stats, AverageEmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Stats, HistogramZeroWidthIsClampedToOne)
{
    // Regression: Histogram(0, ...) used to divide by zero on the first
    // sample. The width clamps to 1 and at least one regular bucket is
    // kept in front of the overflow bucket.
    Histogram h(0, 0);
    EXPECT_EQ(h.bucketWidth(), 1u);
    ASSERT_EQ(h.buckets().size(), 2u);
    h.sample(0);
    h.sample(5);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.buckets()[0], 0u);
}

TEST(Stats, DumpPrintsHistogramBucketsAndOverflow)
{
    StatGroup group("grp");
    Histogram h(10, 4);
    group.addHistogram(&h, "lat", "latency");
    h.sample(5);
    h.sample(5);
    h.sample(1000);
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("grp.lat mean="), std::string::npos);
    EXPECT_NE(dump.find("grp.lat[0,9] 2"), std::string::npos);
    EXPECT_NE(dump.find("grp.lat[40+] 1"), std::string::npos);
    EXPECT_NE(dump.find("# overflow"), std::string::npos);
}

TEST(Stats, DumpFormattingIsFixedPrecision)
{
    // Regression: the default stream precision (6 significant digits)
    // rendered large means in scientific notation, and the global locale
    // could group digits — both made dumps non-reproducible. The dump
    // pins classic-locale fixed notation with 6 decimal places.
    StatGroup group("grp");
    Average a;
    group.addAverage(&a, "big", "large mean");
    a.sample(1234567.5);
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("grp.big 1234567.500000 (n=1)"),
              std::string::npos);
    EXPECT_EQ(dump.find("e+"), std::string::npos);
}

TEST(Stats, GroupDumpContainsNamesAndValues)
{
    StatGroup group("grp");
    Counter c;
    c.inc(7);
    group.addCounter(&c, "seven", "a seven");
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("grp.seven 7"), std::string::npos);
    EXPECT_NE(dump.find("a seven"), std::string::npos);
    group.resetAll();
    EXPECT_EQ(c.value(), 0u);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t("demo");
    t.header({"a", "long_header"});
    t.row({"xxxx", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(1.234, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.5), "50.0%");
}

TEST(Logging, PanicThrowsUnderTestHook)
{
    ThrowOnErrorGuard guard;
    EXPECT_THROW(panic("boom ", 42), SimError);
    EXPECT_THROW(fatal("bad user"), SimError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    ThrowOnErrorGuard guard;
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(true, "always"), SimError);
}

TEST(Config, DefaultIsValidAndMatchesTable2)
{
    const SystemConfig cfg = defaultConfig();
    EXPECT_EQ(cfg.numHosts, 4u);
    EXPECT_EQ(cfg.coresPerHost, 4u);
    EXPECT_EQ(cfg.core.robEntries, 224u);
    EXPECT_EQ(cfg.l1.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.llcPerCore.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.pipm.migrationThreshold, 8u);
    const std::string desc = cfg.describe();
    EXPECT_NE(desc.find("4 hosts"), std::string::npos);
    EXPECT_NE(desc.find("224-entry ROB"), std::string::npos);
}

TEST(Config, AddressMapRegions)
{
    const SystemConfig cfg = testConfig();
    EXPECT_EQ(cfg.regionOf(0), AddrRegion::hostLocal);
    EXPECT_EQ(cfg.homeHostOf(0), 0);
    EXPECT_EQ(cfg.homeHostOf(cfg.localBase(1)), 1);
    EXPECT_EQ(cfg.regionOf(cfg.cxlBase()), AddrRegion::cxlPool);
    EXPECT_LT(cfg.cxlBase(), cfg.addressSpaceEnd());
}

TEST(Config, ValidateRejectsBadValues)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.numHosts = 0;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg = testConfig();
    // Host IDs are 5 bits (directory sharer masks): 32 hosts max.
    cfg.numHosts = 33;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg = testConfig();
    cfg.numHosts = 32;
    EXPECT_NO_THROW(cfg.validate());
    cfg = testConfig();
    cfg.pipm.migrationThreshold = 0;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg = testConfig();
    cfg.pipm.migrationThreshold = 64;   // does not fit 6-bit counter
    EXPECT_THROW(cfg.validate(), SimError);
}

TEST(Config, ScaledEpochAndCosts)
{
    SystemConfig cfg = defaultConfig();
    // 10 ms at 4 GHz is 40M cycles; divided by timeScale.
    EXPECT_EQ(cfg.osEpochCycles(), nsToCycles(10e6) / cfg.timeScale);
    EXPECT_EQ(cfg.osPageInitiatorCycles(),
              nsToCycles(20e3) / cfg.timeScale);
    EXPECT_GT(cfg.osPageTransferBytes(), 0u);
}

TEST(Config, OsEpochCyclesNeverRoundsToZero)
{
    // Regression: a timeScale larger than the epoch in cycles rounded
    // osEpochCycles() down to 0, turning the OS policy timer into an
    // every-cycle busy loop. The scaled epoch clamps to >= 1.
    SystemConfig cfg = defaultConfig();
    cfg.osMigration.intervalMs = 0.001;   // 4000 cycles at 4 GHz
    cfg.timeScale = 1'000'000;
    EXPECT_EQ(cfg.osEpochCycles(), 1u);
}

TEST(Config, ValidateRejectsNonPositiveEpoch)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.osMigration.intervalMs = 0.0;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg.osMigration.intervalMs = -5.0;
    EXPECT_THROW(cfg.validate(), SimError);
}

TEST(Types, AddressHelpers)
{
    const PhysAddr pa = (5ull << pageShift) + 3 * lineBytes + 7;
    EXPECT_EQ(pageOf(pa), 5u);
    EXPECT_EQ(lineInPage(pa), 3u);
    EXPECT_EQ(pageBase(5), 5ull << pageShift);
    EXPECT_EQ(pageOfLine(lineOf(pa)), 5u);
}

} // namespace
} // namespace pipm
