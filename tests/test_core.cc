/**
 * @file
 * Unit tests for the trace-replay out-of-order core model: dispatch
 * width, ROB/LQ/SQ/MSHR limits and latency overlap.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "sim/core.hh"

namespace pipm
{
namespace
{

CoreConfig
smallCore()
{
    CoreConfig cfg;
    cfg.width = 2;
    cfg.robEntries = 16;
    cfg.loadQueue = 4;
    cfg.storeQueue = 4;
    cfg.mshrs = 4;
    return cfg;
}

TEST(OooCore, GapAdvancesAtDispatchWidth)
{
    OooCore core(smallCore());
    core.advanceGap(20);
    EXPECT_EQ(core.now(), 10u);   // 20 instructions / width 2
    EXPECT_EQ(core.instructions(), 20u);
}

TEST(OooCore, ShortLoadsOverlapCompletely)
{
    OooCore core(smallCore());
    for (int i = 0; i < 4; ++i)
        core.issueLoad(2);
    // Four loads dispatched at width 2: two cycles of dispatch.
    EXPECT_EQ(core.now(), 2u);
}

TEST(OooCore, LoadQueueLimitSerialisesBursts)
{
    OooCore core(smallCore());
    // 5 loads of 100 cycles with LQ/MSHR of 4: the 5th must wait for the
    // first to complete.
    for (int i = 0; i < 5; ++i)
        core.issueLoad(100);
    EXPECT_GE(core.now(), 100u);
    EXPECT_LT(core.now(), 200u);
}

TEST(OooCore, MshrsBoundLongLatencyParallelism)
{
    CoreConfig cfg = smallCore();
    cfg.loadQueue = 16;   // LQ no longer the binding limit
    cfg.robEntries = 256;
    OooCore core(cfg);
    for (int i = 0; i < 5; ++i)
        core.issueLoad(1000);
    // MSHRs = 4: the 5th long load waits for the first.
    EXPECT_GE(core.now(), 1000u);
}

TEST(OooCore, CacheHitsDoNotOccupyMshrs)
{
    CoreConfig cfg = smallCore();
    cfg.loadQueue = 64;
    cfg.robEntries = 256;
    OooCore core(cfg);
    // Many short loads (below the MSHR threshold) never stall on MSHRs.
    for (int i = 0; i < 32; ++i)
        core.issueLoad(4);
    EXPECT_LT(core.now(), 40u);
}

TEST(OooCore, RobLimitsRunahead)
{
    CoreConfig cfg = smallCore();
    cfg.loadQueue = 64;
    cfg.mshrs = 64;
    cfg.robEntries = 8;
    OooCore core(cfg);
    core.issueLoad(10'000);
    // Dispatch can run only robEntries instructions past the load.
    core.advanceGap(8);
    core.issueLoad(1);   // 9 instructions past the pending load: waits
    EXPECT_GE(core.now(), 10'000u);
}

TEST(OooCore, StoresArePostedUntilSqFills)
{
    OooCore core(smallCore());
    for (int i = 0; i < 4; ++i)
        core.issueStore(500);
    EXPECT_LT(core.now(), 10u);     // all posted
    core.issueStore(500);           // SQ full: waits for the oldest
    EXPECT_GE(core.now(), 500u);
}

TEST(OooCore, DrainWaitsForEverything)
{
    OooCore core(smallCore());
    core.issueLoad(300);
    core.issueStore(700);
    core.drainAll();
    EXPECT_GE(core.now(), 700u);
}

TEST(OooCore, StallAdvancesTimeDirectly)
{
    OooCore core(smallCore());
    core.stall(123);
    EXPECT_EQ(core.now(), 123u);
}

TEST(OooCore, ThroughputMatchesLatencyOverMlp)
{
    // With latency L and MLP m, steady-state throughput approaches m/L
    // loads per cycle.
    CoreConfig cfg = smallCore();
    cfg.loadQueue = 8;
    cfg.mshrs = 8;
    cfg.robEntries = 512;
    OooCore core(cfg);
    constexpr int loads = 800;
    for (int i = 0; i < loads; ++i)
        core.issueLoad(400);
    core.drainAll();
    const double cycles_per_load =
        static_cast<double>(core.now()) / loads;
    EXPECT_NEAR(cycles_per_load, 400.0 / 8, 10.0);
}

} // namespace
} // namespace pipm
