/**
 * @file
 * Host fail-stop crash and recovery tests (DESIGN.md §8): crash-schedule
 * generation and determinism, directory sweeps of S/M entries, remap
 * reintegration with a partial line bitmap, crash during an in-flight
 * promotion, the poison recovery policy, cold rejoin with epoch-based
 * rejection of stale in-flight references, zero-crash-rate bit-identity
 * with the plain fault schedule, and the randomised crash-schedule
 * checker over 4 hosts.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "verify/fault_schedule.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

struct ThrowOnErrorGuard
{
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

/** A trivial workload wrapper so tests can size the heap directly. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::uint64_t shared_bytes, std::uint64_t private_bytes)
        : shared_(shared_bytes), private_(private_bytes)
    {
    }

    std::string name() const override { return "tiny"; }
    std::string suite() const override { return "test"; }
    std::uint64_t footprintBytes() const override { return shared_; }
    std::uint64_t sharedBytes() const override { return shared_; }
    std::uint64_t privateBytesPerHost() const override { return private_; }
    std::string fingerprint() const override { return "tiny"; }

    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        panic("TinyWorkload has no traces; drive the system directly");
    }

  private:
    std::uint64_t shared_;
    std::uint64_t private_;
};

MemRef
sharedRef(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = op;
    return r;
}

/** Fault config with every rate zero but crashHost() callable. */
FaultConfig
quietFaults(std::uint64_t seed = 1)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    return f;
}

/** Home line address of (shared page, line index). */
LineAddr
homeLine(MultiHostSystem &system, std::uint64_t page, unsigned line)
{
    return lineOf(pageBase(system.space().sharedMapping(page).frame) +
                  static_cast<PhysAddr>(line) * lineBytes);
}

/** A small synthetic workload compatible with testConfig capacities. */
std::unique_ptr<Workload>
smallWorkload()
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = 0.9;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = 0.5;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    return std::make_unique<SyntheticWorkload>(p, 256);
}

RunConfig
shortRun()
{
    RunConfig run;
    run.warmupRefsPerCore = 2'000;
    run.measureRefsPerCore = 8'000;
    run.footprintSampleEvery = 8'000;
    return run;
}

// ---- Configuration and schedule generation ------------------------------

TEST(CrashConfig, ValidationAndPaperConfig)
{
    ThrowOnErrorGuard guard;
    FaultConfig f;
    f.crashMeanIntervalNs = -1.0;
    EXPECT_THROW(f.validate(), SimError);

    f = FaultConfig{};
    f.crashMeanIntervalNs = 1'000.0;
    f.crashRejoinNs = -5.0;
    EXPECT_THROW(f.validate(), SimError);

    f = FaultConfig{};
    f.crashMeanIntervalNs = 1'000.0;
    f.crashMaxEvents = 0;
    EXPECT_THROW(f.validate(), SimError);

    EXPECT_NO_THROW(paperCrashFaultConfig().validate());
    EXPECT_GT(paperCrashFaultConfig().crashMeanIntervalNs, 0.0);
}

TEST(CrashSchedule, DeterministicAndWellFormed)
{
    const FaultConfig f = paperCrashFaultConfig(11, 50'000.0, 20'000.0);
    FaultInjector a(f, 4, 99);
    FaultInjector b(f, 4, 99);
    ASSERT_FALSE(a.crashSchedule().empty());
    ASSERT_EQ(a.crashSchedule().size(), b.crashSchedule().size());
    for (std::size_t i = 0; i < a.crashSchedule().size(); ++i) {
        const CrashEvent &ea = a.crashSchedule()[i];
        const CrashEvent &eb = b.crashSchedule()[i];
        EXPECT_EQ(ea.at, eb.at);
        EXPECT_EQ(ea.host, eb.host);
        EXPECT_EQ(ea.rejoin, eb.rejoin);
        EXPECT_LT(ea.host, 4);
        if (i > 0)
            EXPECT_GE(ea.at, a.crashSchedule()[i - 1].at);
    }
    // With a rejoin delay every crash eventually has a matching rejoin.
    std::uint64_t crashes = 0;
    std::uint64_t rejoins = 0;
    for (const CrashEvent &e : a.crashSchedule())
        (e.rejoin ? rejoins : crashes)++;
    EXPECT_EQ(crashes, rejoins);

    // A different injector seed yields a different schedule.
    FaultInjector c(f, 4, 100);
    bool same = c.crashSchedule().size() == a.crashSchedule().size();
    if (same) {
        for (std::size_t i = 0; i < a.crashSchedule().size(); ++i)
            same = same && a.crashSchedule()[i].at ==
                               c.crashSchedule()[i].at;
    }
    EXPECT_FALSE(same);

    // Zero mean interval: no schedule at all.
    FaultInjector quiet(quietFaults(), 4, 99);
    EXPECT_TRUE(quiet.crashSchedule().empty());
    EXPECT_EQ(quiet.nextCrashEvent(maxCycles - 1), nullptr);
}

TEST(CrashSchedule, NeverCrashesLastAliveHost)
{
    // Without rejoin, at most numHosts-1 crashes can ever be scheduled.
    const FaultConfig f = paperCrashFaultConfig(5, 10'000.0, 0.0);
    FaultInjector inj(f, 2, 7);
    EXPECT_LE(inj.crashSchedule().size(), 1u);
    FaultInjector inj4(f, 4, 7);
    EXPECT_LE(inj4.crashSchedule().size(), 3u);
    for (const CrashEvent &e : inj4.crashSchedule())
        EXPECT_FALSE(e.rejoin);
}

// ---- Hardened DirEntry::owner() -----------------------------------------

TEST(CrashDirectory, OwnerScanBoundedByHostCount)
{
    DirEntry e;
    e.state = DevState::M;
    e.sharers = 1u << 2;
    EXPECT_EQ(e.owner(4), 2);
    // Garbage bits beyond the configured host count are never reported.
    e.sharers = 1u << 5;
    EXPECT_EQ(e.owner(4), invalidHost);
}

// ---- Directory sweep ----------------------------------------------------

TEST(CrashSweep, SharedSharerDowngradedWithoutLoss)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);

    Cycles now = 0;
    system.access(0, 0, sharedRef(0, 0, MemOp::write), now, 7);
    now += 1'000;
    const AccessResult r1 =
        system.access(1, 0, sharedRef(0, 0, MemOp::read), now);
    EXPECT_EQ(r1.data, 7u);

    const LineAddr line = homeLine(system, 0, 0);
    ASSERT_NE(system.deviceDirectory().probe(line), nullptr);
    EXPECT_TRUE(system.deviceDirectory().probe(line)->has(1));

    now += 1'000;
    system.crashHost(1, now);
    EXPECT_FALSE(system.hostAlive(1));
    EXPECT_EQ(system.hostEpoch(1), 1u);

    // The S entry survives for the live sharer, minus the dead host.
    const DirEntry *entry = system.deviceDirectory().probe(line);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->has(0));
    EXPECT_FALSE(entry->has(1));
    // S copies are clean: nothing was lost.
    EXPECT_TRUE(system.lostLines().empty());
    EXPECT_EQ(system.faultInjector()->crashDirtyLinesLost.value(), 0u);
    EXPECT_GT(system.faultInjector()->crashDirSwept.value(), 0u);

    now += 1'000;
    const AccessResult r2 =
        system.access(0, 0, sharedRef(0, 0, MemOp::read), now);
    EXPECT_EQ(r2.data, 7u);
}

TEST(CrashSweep, DirtyOwnerLinesAreLostAndServedStale)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);

    Cycles now = 0;
    system.access(1, 0, sharedRef(2, 3, MemOp::write), now, 42);
    const LineAddr line = homeLine(system, 2, 3);
    const std::uint64_t stale = system.memory().read(line);
    ASSERT_NE(stale, 42u);   // the write is still cached dirty

    now += 1'000;
    system.crashHost(1, now);

    // The dead-owned M entry is gone and the loss is recorded.
    EXPECT_EQ(system.deviceDirectory().probe(line), nullptr);
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_EQ(system.lostLines()[0], line);
    EXPECT_EQ(system.faultInjector()->crashDirtyLinesLost.value(), 1u);

    // Survivors read the stale device copy (default recovery policy).
    now += 1'000;
    const AccessResult r =
        system.access(0, 0, sharedRef(2, 3, MemOp::read), now);
    EXPECT_EQ(r.data, stale);
}

TEST(CrashSweep, L1AndLlcDirtyLineCountedOnceWithLatestValue)
{
    // Regression for the flushHostVolatile capture semantics: a line that
    // is dirty in an L1 *and* the LLC at crash time must be captured
    // exactly once, and the *latest* written value decides lost-ness.
    // The first write here stores the device's current value back (a
    // no-op if it were the one compared), the second stores a different
    // value — keeping the stale first capture (emplace semantics) would
    // compare equal to the device copy and silently miss the loss.
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.coresPerHost = 2;
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);

    Cycles now = 0;
    const LineAddr line = homeLine(system, 3, 1);
    const std::uint64_t stale = system.memory().read(line);
    system.access(1, 0, sharedRef(3, 1, MemOp::write), now, stale);
    now += 1'000;
    system.access(1, 1, sharedRef(3, 1, MemOp::write), now, stale + 1);
    EXPECT_EQ(system.hierarchy(1).dataOf(line), stale + 1);
    EXPECT_EQ(system.memory().read(line), stale);   // still cached dirty

    now += 1'000;
    system.crashHost(1, now);

    // One loss, counted once, against the latest value.
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_EQ(system.lostLines()[0], line);
    EXPECT_EQ(system.faultInjector()->crashDirtyLinesLost.value(), 1u);

    // Survivors read the stale device copy (default recovery policy).
    now += 1'000;
    const AccessResult r =
        system.access(0, 0, sharedRef(3, 1, MemOp::read), now);
    EXPECT_EQ(r.data, stale);
}

TEST(CrashSweep, DirtyLineMatchingDeviceCopyIsNotLost)
{
    // The converse direction: a dirty cached line whose latest value
    // equals the device copy loses nothing at crash time — loss is a
    // value comparison, not a dirty-bit count.
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);

    Cycles now = 0;
    const LineAddr line = homeLine(system, 3, 2);
    const std::uint64_t same = system.memory().read(line);
    system.access(1, 0, sharedRef(3, 2, MemOp::write), now, same);

    now += 1'000;
    system.crashHost(1, now);
    EXPECT_TRUE(system.lostLines().empty());
    EXPECT_EQ(system.faultInjector()->crashDirtyLinesLost.value(), 0u);

    now += 1'000;
    const AccessResult r =
        system.access(0, 0, sharedRef(3, 2, MemOp::read), now);
    EXPECT_EQ(r.data, same);
}

TEST(CrashSweep, PoisonPolicyPoisonsLostLines)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    cfg.fault.crashRecovery = CrashRecoveryPolicy::poison;
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);

    Cycles now = 0;
    system.access(1, 0, sharedRef(4, 5, MemOp::write), now, 77);
    const LineAddr line = homeLine(system, 4, 5);
    const std::uint64_t stale = system.memory().read(line);

    now += 1'000;
    system.crashHost(1, now);
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_TRUE(system.faultInjector()->linePersistentlyPoisoned(line));

    // The lost line is served via the uncacheable degraded path.
    now += 1'000;
    const AccessResult r =
        system.access(0, 0, sharedRef(4, 5, MemOp::read), now);
    EXPECT_EQ(r.data, stale);
    EXPECT_GT(system.faultInjector()->degradedAccesses.value(), 0u);
    EXPECT_EQ(system.hierarchy(0).stateOf(line), HostState::I);
}

// ---- Remap-state recovery ----------------------------------------------

TEST(CrashSweep, LocalOnlyIdealExemptFromSwmrCheck)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::localOnly, wl, 1);

    // The Local-only ideal models no cross-host coherence: both hosts
    // fill the same shared line exclusively in their own hierarchies.
    Cycles now = 0;
    system.access(0, 0, sharedRef(0, 0, MemOp::write), now, 7);
    system.access(1, 0, sharedRef(0, 0, MemOp::write), now, 9);
    const LineAddr line = homeLine(system, 0, 0);
    EXPECT_NE(system.hierarchy(0).stateOf(line), HostState::I);
    EXPECT_NE(system.hierarchy(1).stateOf(line), HostState::I);

    // The invariant checker must not apply SWMR to the idealisation
    // (it used to panic here the first time a crash event ran under
    // localOnly with a multiply-cached line).
    EXPECT_NO_THROW(system.checkInvariants());
    now += 1'000;
    EXPECT_NO_THROW(system.crashHost(1, now));

    // The dead-host check still applies: host 1's caches were flushed.
    EXPECT_EQ(system.hierarchy(1).stateOf(line), HostState::I);
    now += 1'000;
    EXPECT_NO_THROW(system.rejoinHost(1, now));
}

TEST(CrashRemap, InFlightPromotionAborted)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::pipmFull, wl, 1);
    PipmState *pipm = system.pipmState();
    ASSERT_NE(pipm, nullptr);

    // Distinct-line reads from host 0 fire the vote (threshold 8) but
    // migrate no line: the local entry's bitmap is still empty.
    Cycles now = 0;
    const PageFrame page =
        pageOf(pageBase(system.space().sharedMapping(0).frame));
    for (unsigned li = 0; li < 16 && !pipm->hasLocalEntry(0, page); ++li) {
        system.access(0, 0, sharedRef(0, li, MemOp::read), now);
        now += 1'000;
    }
    ASSERT_TRUE(pipm->hasLocalEntry(0, page));
    EXPECT_EQ(pipm->migratedLinesOn(0), 0u);

    system.crashHost(0, now);

    // The crash resolved the in-flight promotion via the abort path:
    // pre-vote state, no losses, no revocation counted.
    EXPECT_FALSE(pipm->hasLocalEntry(0, page));
    EXPECT_EQ(pipm->migratedHostOf(page), invalidHost);
    EXPECT_TRUE(system.lostLines().empty());
    EXPECT_EQ(pipm->revocations.value(), 0u);
    EXPECT_GT(system.faultInjector()->crashPagesReclaimed.value(), 0u);

    // The survivor still reads the page normally.
    const AccessResult r =
        system.access(1, 0, sharedRef(0, 0, MemOp::read), now + 1'000);
    (void)r;
}

TEST(CrashRemap, PartialBitmapReintegratedWithLossAccounting)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::pipmFull, wl, 1);
    PipmState *pipm = system.pipmState();

    Cycles now = 0;
    const PageFrame page =
        pageOf(pageBase(system.space().sharedMapping(0).frame));

    // Promote page 0 to host 0 and dirty all its lines.
    for (unsigned li = 0; li < linesPerPage; ++li) {
        system.access(0, 0, sharedRef(0, li, MemOp::write), now,
                      1'000 + li);
        now += 500;
    }
    ASSERT_TRUE(pipm->hasLocalEntry(0, page));

    // Stream reads over many other pages to evict page 0's M lines,
    // incrementally migrating them into host 0's local frame (case 1).
    for (std::uint64_t p = 8; p < 56; ++p) {
        for (unsigned li = 0; li < linesPerPage; ++li) {
            system.access(0, 0, sharedRef(p, li, MemOp::read), now);
            now += 100;
        }
    }
    ASSERT_GT(pipm->migratedLinesOn(0), 0u);

    system.crashHost(0, now);

    // All remap state of the dead host is reclaimed; the dirtied lines of
    // page 0 (whose latest values lived only with host 0) are lost.
    EXPECT_EQ(pipm->migratedLinesOn(0), 0u);
    EXPECT_EQ(pipm->migratedPagesOn(0), 0u);
    EXPECT_EQ(pipm->migratedHostOf(page), invalidHost);
    EXPECT_GE(system.lostLines().size(), 1u);
    EXPECT_GT(system.faultInjector()->crashLinesReclaimed.value(), 0u);
    EXPECT_GT(system.faultInjector()->crashRecoveryCycles.value(), 0u);

    // Every line of page 0 now serves the (stale) CXL home copy.
    for (unsigned li = 0; li < 4; ++li) {
        const LineAddr line = homeLine(system, 0, li);
        const std::uint64_t home = system.memory().read(line);
        const AccessResult r =
            system.access(1, 0, sharedRef(0, li, MemOp::read),
                          now + 1'000 * (li + 1));
        EXPECT_EQ(r.data, home);
        EXPECT_NE(r.data, 1'000u + li);   // the written values died
    }
}

// ---- Rejoin and epochs --------------------------------------------------

TEST(CrashRejoin, ColdStructuresAndStaleEpochRejection)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);

    Cycles now = 0;
    system.access(1, 0, sharedRef(1, 0, MemOp::write), now, 9);
    const LineAddr warm = homeLine(system, 1, 0);
    const std::uint64_t warm_home = system.memory().read(warm);
    ASSERT_NE(system.hierarchy(1).stateOf(warm), HostState::I);

    now += 1'000;
    system.crashHost(1, now, now + 5'000);
    EXPECT_EQ(system.hostDownUntil(1), now + 5'000);
    EXPECT_THROW(
        system.access(1, 0, sharedRef(1, 0, MemOp::read), now + 100),
        SimError);

    now += 5'000;
    system.rejoinHost(1, now);
    EXPECT_TRUE(system.hostAlive(1));
    EXPECT_EQ(system.hostEpoch(1), 2u);
    EXPECT_EQ(system.hostDownUntil(1), 0u);
    // Cold caches after rejoin.
    EXPECT_EQ(system.hierarchy(1).stateOf(warm), HostState::I);

    // Hand-craft a stale in-flight reference: an M entry stamped under
    // host 1's pre-crash epoch. The next access must reject it on the
    // epoch check and serve the device copy instead of forwarding.
    const LineAddr stale_line = homeLine(system, 1, 1);
    const std::uint64_t home = system.memory().read(stale_line);
    DirEntry e;
    e.state = DevState::M;
    e.sharers = 1u << 1;
    e.ownerEpoch = 0;   // host 1 now runs in epoch 2
    system.deviceDirectory().allocate(stale_line, e);

    const AccessResult r =
        system.access(0, 0, sharedRef(1, 1, MemOp::read), now + 1'000);
    EXPECT_EQ(r.data, home);
    EXPECT_EQ(system.faultInjector()->staleEpochDrops.value(), 1u);
    system.checkInvariants();

    // The rejoined host participates normally again — but its own
    // pre-crash write of 9 died dirty in its cache, so it reads back the
    // stale device copy of the line it lost.
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_EQ(system.lostLines()[0], warm);
    const AccessResult r2 =
        system.access(1, 0, sharedRef(1, 0, MemOp::read), now + 2'000);
    EXPECT_EQ(r2.data, warm_home);
}

TEST(CrashRejoin, RejoinBeforeSuspicionReclaimsFirst)
{
    // Under the lease detector (DESIGN.md §11) a crash is reclaimed
    // lazily. A host whose outage is shorter than its lease must still
    // not readmit over its own stale directory state: rejoin forces the
    // deferred reclamation (counting the suspicion) before coming back.
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults();
    cfg.fault.leaseNs = 20'000.0;
    cfg.fault.heartbeatIntervalNs = 4'000.0;
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem system(cfg, Scheme::native, wl, 1);
    ASSERT_TRUE(system.detectionEnabled());

    Cycles now = 0;
    system.access(1, 0, sharedRef(2, 3, MemOp::write), now, 42);
    const LineAddr line = homeLine(system, 2, 3);

    now += 1'000;
    system.crashHost(1, now, now + 5'000);   // outage << 80k-cycle lease
    // Deferred: the dead host's M entry is still in the directory.
    ASSERT_NE(system.deviceDirectory().probe(line), nullptr);
    EXPECT_TRUE(system.lostLines().empty());

    now += 5'000;
    system.rejoinHost(1, now);
    EXPECT_TRUE(system.hostAlive(1));
    EXPECT_EQ(system.hostEpoch(1), 2u);
    // The rejoin swept the old state first and accounted the loss.
    EXPECT_EQ(system.faultInjector()->suspicions.value(), 1u);
    EXPECT_EQ(system.faultInjector()->falseSuspicions.value(), 0u);
    EXPECT_EQ(system.deviceDirectory().probe(line), nullptr);
    ASSERT_EQ(system.lostLines().size(), 1u);
    EXPECT_EQ(system.lostLines()[0], line);
    system.checkInvariants();

    // The readmitted host reads back the stale surviving copy.
    const AccessResult r = system.access(
        1, 0, sharedRef(2, 3, MemOp::read), now + 1'000);
    EXPECT_EQ(r.data, system.memory().read(line));
}

// ---- Full-run behaviour -------------------------------------------------

TEST(CrashRun, ZeroCrashRateBitIdenticalToFaultOnlyConfig)
{
    SystemConfig pr1 = testConfig();
    pr1.fault = paperFaultConfig(3);
    SystemConfig zero = testConfig();
    zero.fault = paperCrashFaultConfig(3, 0.0, 0.0);

    auto wl = smallWorkload();
    const RunResult a = runExperiment(pr1, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(zero, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
    EXPECT_EQ(a.linkCrcErrors, b.linkCrcErrors);
    EXPECT_EQ(a.poisonEvents, b.poisonEvents);
    EXPECT_EQ(a.migrationAborts, b.migrationAborts);
    EXPECT_EQ(a.pipmLinesIn, b.pipmLinesIn);
    EXPECT_EQ(b.hostCrashes, 0u);
    EXPECT_EQ(b.hostRejoins, 0u);
    EXPECT_EQ(b.crashDirtyLinesLost, 0u);
}

TEST(CrashRun, SameSeedReplayIsDeterministic)
{
    SystemConfig cfg = testConfig();
    cfg.fault = paperCrashFaultConfig(3, 20'000.0, 10'000.0);

    auto wl = smallWorkload();
    const RunResult a = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.hostCrashes, b.hostCrashes);
    EXPECT_EQ(a.hostRejoins, b.hostRejoins);
    EXPECT_EQ(a.crashLinesReclaimed, b.crashLinesReclaimed);
    EXPECT_EQ(a.crashDirtyLinesLost, b.crashDirtyLinesLost);
    EXPECT_EQ(a.crashRecoveryCycles, b.crashRecoveryCycles);
    EXPECT_GT(a.hostCrashes, 0u);
}

TEST(CrashRun, NeverRejoiningHostRetiresItsCores)
{
    SystemConfig cfg = testConfig();
    cfg.fault = paperCrashFaultConfig(7, 20'000.0, 0.0);

    auto wl = smallWorkload();
    RunConfig run = shortRun();
    run.checkInvariantsEvery = 4'096;
    // Measure from cycle 0: a crash landing in warmup would be wiped
    // from the counters by the measurement-start stats reset.
    run.warmupRefsPerCore = 0;
    const RunResult r = runExperiment(cfg, Scheme::pipmFull, *wl, run);
    // With 2 hosts the schedule can kill at most one; the run still
    // completes with the survivor doing all remaining work.
    EXPECT_EQ(r.hostCrashes, 1u);
    EXPECT_EQ(r.hostRejoins, 0u);
}

// ---- Randomised crash-schedule acceptance -------------------------------

TEST(CrashAcceptance, FourHostScheduleCleanAgainstOracle)
{
    SystemConfig cfg = testConfig();
    cfg.numHosts = 4;

    const FaultCheckResult res = checkFaultSchedules(
        cfg, Scheme::pipmFull, 2, 20'000, 1, /*with_crashes=*/true);
    EXPECT_TRUE(res.ok) << res.violation;
    EXPECT_GE(res.crashes, 2u);
    EXPECT_GE(res.rejoins, 1u);
}

TEST(CrashAcceptance, EnvKnobRunsPeriodicInvariantChecks)
{
    SystemConfig cfg = testConfig();
    cfg.fault = paperCrashFaultConfig(9, 20'000.0, 10'000.0);

    setenv("PIPM_CHECK_INVARIANTS", "2048", 1);
    auto wl = smallWorkload();
    const RunResult r = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    unsetenv("PIPM_CHECK_INVARIANTS");
    EXPECT_GT(r.hostCrashes, 0u);
}

TEST(CrashAcceptance, CombinedFailureClassesUnderInvariantChecks)
{
    // Crashes, gray-failure stalls, lease detection, poison and link
    // faults all at once, with the periodic cross-structure invariant
    // checks armed: the run must complete clean and replay bit-for-bit.
    SystemConfig cfg = testConfig();
    cfg.fault = paperSuspicionFaultConfig(9);
    cfg.fault.poisonRate = 0.01;
    cfg.fault.crashMeanIntervalNs = 200'000.0;
    cfg.fault.crashRejoinNs = 50'000.0;

    setenv("PIPM_CHECK_INVARIANTS", "2048", 1);
    auto wl = smallWorkload();
    const RunResult a = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    unsetenv("PIPM_CHECK_INVARIANTS");
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.suspicions, b.suspicions);
    EXPECT_EQ(a.falseSuspicions, b.falseSuspicions);
    EXPECT_EQ(a.txnRetries, b.txnRetries);
    EXPECT_EQ(a.stallWindows, b.stallWindows);
    EXPECT_GT(a.linkCrcErrors, 0u);
}

} // namespace
} // namespace pipm
