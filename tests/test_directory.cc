/**
 * @file
 * Unit tests for the device coherence directory.
 */

#include <gtest/gtest.h>

#include "coherence/device_directory.hh"

namespace pipm
{
namespace
{

DirectoryConfig
tinyDirectory()
{
    DirectoryConfig cfg;
    cfg.sets = 2;
    cfg.ways = 2;
    cfg.slices = 2;
    return cfg;
}

TEST(DirEntry, SharerSetOperations)
{
    DirEntry e;
    e.add(3);
    e.add(7);
    EXPECT_TRUE(e.has(3));
    EXPECT_TRUE(e.has(7));
    EXPECT_FALSE(e.has(0));
    e.remove(3);
    EXPECT_FALSE(e.has(3));
    e.state = DevState::M;
    EXPECT_EQ(e.owner(8), 7);
    // The scan is bounded by the configured host count: sharer bits
    // beyond it are never reported as an owner.
    EXPECT_EQ(e.owner(4), invalidHost);
}

TEST(DeviceDirectory, AllocateLookupDeallocate)
{
    DeviceDirectory dir(tinyDirectory());
    DirEntry e;
    e.state = DevState::M;
    e.add(1);
    EXPECT_FALSE(dir.allocate(42, e));
    DirEntry *found = dir.lookup(42);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->state, DevState::M);
    EXPECT_EQ(found->owner(8), 1);
    auto removed = dir.deallocate(42);
    ASSERT_TRUE(removed);
    EXPECT_EQ(dir.lookup(42), nullptr);
}

TEST(DeviceDirectory, CapacityRecall)
{
    DeviceDirectory dir(tinyDirectory());
    // 2 sets x 2 slices x 2 ways = 8 entries; the 9th+ recalls victims.
    bool recalled = false;
    for (LineAddr l = 0; l < 64; ++l) {
        DirEntry e;
        e.state = DevState::S;
        e.add(0);
        if (dir.allocate(l, e))
            recalled = true;
    }
    EXPECT_TRUE(recalled);
    EXPECT_GT(dir.recalls.value(), 0u);
}

TEST(DeviceDirectory, AccessLatencyIncludesSliceContention)
{
    DeviceDirectory dir(tinyDirectory());
    const Cycles first = dir.accessLatency(0, 0);
    // Hammer the same slice at the same instant.
    Cycles last = first;
    for (int i = 0; i < 20; ++i)
        last = dir.accessLatency(0, 0);   // line 0 -> slice 0
    EXPECT_GT(last, first);
    // A different slice at the same instant is uncontended.
    const Cycles other = dir.accessLatency(1, 0);
    EXPECT_EQ(other, first);
}

TEST(DeviceDirectory, ProbeDoesNotDisturbState)
{
    DeviceDirectory dir(tinyDirectory());
    DirEntry e;
    e.state = DevState::S;
    e.add(2);
    dir.allocate(9, e);
    const DirEntry *p = dir.probe(9);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->has(2));
    EXPECT_EQ(dir.probe(10), nullptr);
}

} // namespace
} // namespace pipm
