/**
 * @file
 * Unit tests for the DDR5 channel/bank timing model.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/dram.hh"

namespace pipm
{
namespace
{

DramConfig
oneBankConfig()
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    return cfg;
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    DramDevice dram(oneBankConfig(), "d");
    const Cycles first = dram.access(0, 0, false);        // row miss
    const Cycles second = dram.access(64, 1'000'000, false);  // same row
    EXPECT_LT(second, first);
    EXPECT_EQ(dram.rowMisses.value(), 1u);
    EXPECT_EQ(dram.rowHits.value(), 1u);
}

TEST(Dram, RowConflictReopensRow)
{
    DramConfig cfg = oneBankConfig();
    DramDevice dram(cfg, "d");
    dram.access(0, 0, false);
    // Far-apart row in the same (only) bank.
    dram.access(cfg.rowBytes * 7, 1'000'000, false);
    EXPECT_EQ(dram.rowMisses.value(), 2u);
}

TEST(Dram, BackToBackRowHitsPipelineAtBurstRate)
{
    DramDevice dram(oneBankConfig(), "d");
    dram.access(0, 0, false);
    // Stream the open row with zero think time; throughput should
    // approach one access per burst, far below the full CAS latency.
    Cycles start = 2'000'000;
    Cycles total = 0;
    constexpr int accesses = 64;
    Cycles last_done = 0;
    for (int i = 0; i < accesses; ++i) {
        const Cycles lat = dram.access(64ull * (i % 8), start, false);
        last_done = start + lat;
        total += lat;
    }
    const double per_access =
        static_cast<double>(last_done - start) / accesses;
    // tCL alone is 80 cycles; pipelined streaming must be well below it.
    EXPECT_LT(per_access, 40.0);
    (void)total;
}

TEST(Dram, BanksOperateInParallel)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 8;
    DramDevice multi(cfg, "multi");
    DramDevice single(oneBankConfig(), "single");

    // Interleave row-missing accesses across banks vs one bank.
    auto run = [](DramDevice &d, const DramConfig &c, unsigned stride_rows) {
        Cycles done = 0;
        for (int i = 0; i < 32; ++i) {
            const PhysAddr pa =
                static_cast<PhysAddr>(i) * c.rowBytes * stride_rows;
            const Cycles lat = d.access(pa, 0, false);
            done = std::max(done, lat);
        }
        return done;
    };
    const Cycles parallel_done = run(multi, cfg, 1);
    const Cycles serial_done = run(single, cfg, 1);
    EXPECT_LT(parallel_done, serial_done);
}

TEST(Dram, PostedWritesReleaseQuickly)
{
    DramDevice dram(oneBankConfig(), "d");
    const Cycles w = dram.access(0, 0, true);
    EXPECT_LT(w, nsToCycles(15.0));
    EXPECT_EQ(dram.writes.value(), 1u);
}

TEST(Dram, LatencyIncludesControllerOverhead)
{
    DramConfig cfg = oneBankConfig();
    DramDevice dram(cfg, "d");
    const Cycles lat = dram.access(0, 0, false);
    EXPECT_GE(lat, nsToCycles(cfg.controllerNs + cfg.tRCDns + cfg.tCLns));
}

TEST(Dram, SaturationPushesLatencyUp)
{
    DramDevice dram(oneBankConfig(), "d");
    // Flood a single bank with conflicting rows at the same instant.
    Cycles first = dram.access(0, 0, false);
    Cycles last = 0;
    DramConfig cfg = oneBankConfig();
    for (int i = 1; i < 50; ++i)
        last = dram.access(static_cast<PhysAddr>(i) * cfg.rowBytes * 3, 0,
                           false);
    EXPECT_GT(last, first * 10);
}

} // namespace
} // namespace pipm
