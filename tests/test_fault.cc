/**
 * @file
 * Fault-injection subsystem tests: configuration validation, deterministic
 * replay, zero-rate identity, link CRC replay and retraining behaviour,
 * poisoned-line handling (transient scrub and persistent degraded path),
 * migration abort/rollback, link-degradation backoff, and the randomised
 * fault-schedule checker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "verify/fault_schedule.hh"
#include "workloads/catalog.hh"

namespace pipm
{
namespace
{

struct ThrowOnErrorGuard
{
    ThrowOnErrorGuard() { detail::throwOnError = true; }
    ~ThrowOnErrorGuard() { detail::throwOnError = false; }
};

/** A trivial workload wrapper so tests can size the heap directly. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::uint64_t shared_bytes, std::uint64_t private_bytes)
        : shared_(shared_bytes), private_(private_bytes)
    {
    }

    std::string name() const override { return "tiny"; }
    std::string suite() const override { return "test"; }
    std::uint64_t footprintBytes() const override { return shared_; }
    std::uint64_t sharedBytes() const override { return shared_; }
    std::uint64_t privateBytesPerHost() const override { return private_; }
    std::string fingerprint() const override { return "tiny"; }

    std::unique_ptr<CoreTrace>
    makeTrace(HostId, CoreId, unsigned, unsigned,
              std::uint64_t) const override
    {
        panic("TinyWorkload has no traces; drive the system directly");
    }

  private:
    std::uint64_t shared_;
    std::uint64_t private_;
};

MemRef
sharedRef(std::uint64_t page, unsigned line, MemOp op)
{
    MemRef r;
    r.shared = true;
    r.page = page;
    r.lineIdx = static_cast<std::uint8_t>(line);
    r.op = op;
    return r;
}

/** Fault config with every rate zero (but injection "enabled"). */
FaultConfig
quietFaults(std::uint64_t seed = 1)
{
    FaultConfig f;
    f.enabled = true;
    f.seed = seed;
    return f;
}

/** A small synthetic workload compatible with testConfig capacities. */
std::unique_ptr<Workload>
smallWorkload()
{
    PatternParams p;
    p.name = "small";
    p.suite = "test";
    p.footprintFullBytes = 8ull << 30;
    p.partitionAffinity = 0.9;
    p.zipfTheta = 0.8;
    p.readFrac = 0.8;
    p.seqRunLines = 8;
    p.gapMean = 20;
    p.privateFrac = 0.2;
    p.globalHotFrac = 0.08;
    p.scanFrac = 0.5;
    p.scanSpanFrac = 0.05;
    p.phaseRefs = 20'000;
    return std::make_unique<SyntheticWorkload>(p, 256);
}

RunConfig
shortRun()
{
    RunConfig run;
    run.warmupRefsPerCore = 2'000;
    run.measureRefsPerCore = 8'000;
    run.footprintSampleEvery = 8'000;
    return run;
}

TEST(FaultConfigValidate, RejectsNonsense)
{
    ThrowOnErrorGuard guard;
    FaultConfig f;
    f.linkErrorRate = 1.5;
    EXPECT_THROW(f.validate(), SimError);

    f = FaultConfig{};
    f.retrainIntervalNs = 1'000.0;
    f.retrainWindowNs = 1'000.0;   // window must be < interval
    EXPECT_THROW(f.validate(), SimError);

    f = FaultConfig{};
    f.backoffWindow = 0;
    EXPECT_THROW(f.validate(), SimError);

    f = FaultConfig{};
    f.persistentPoisonFrac = -0.1;
    EXPECT_THROW(f.validate(), SimError);

    EXPECT_NO_THROW(paperFaultConfig().validate());
}

TEST(FaultConfigValidate, SystemValidateCoversMachineGeometry)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.link.bytesPerNs = 0.0;
    EXPECT_THROW(cfg.validate(), SimError);

    cfg = testConfig();
    cfg.pipm.globalCounterBits = 0;
    EXPECT_THROW(cfg.validate(), SimError);

    cfg = testConfig();
    cfg.cxlDram.channels = 0;
    EXPECT_THROW(cfg.validate(), SimError);

    // runExperiment and the system constructor both reject early.
    cfg = testConfig();
    cfg.fault.enabled = true;
    cfg.fault.poisonRate = 2.0;
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    EXPECT_THROW(runExperiment(cfg, Scheme::native, wl, shortRun()),
                 SimError);
}

TEST(FaultReplay, ZeroRatesAreIdenticalToDisabled)
{
    SystemConfig plain = testConfig();
    SystemConfig quiet = testConfig();
    quiet.fault = quietFaults();

    auto wl = smallWorkload();
    const RunResult a = runExperiment(plain, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(quiet, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
    EXPECT_EQ(a.pipmLinesIn, b.pipmLinesIn);
    EXPECT_EQ(a.pipmPromotions, b.pipmPromotions);
    EXPECT_EQ(b.linkCrcErrors, 0u);
    EXPECT_EQ(b.linkRetrainEvents, 0u);
    EXPECT_EQ(b.poisonEvents, 0u);
    EXPECT_EQ(b.migrationAborts, 0u);
}

TEST(FaultReplay, SameSeedIsBitForBitDeterministic)
{
    SystemConfig cfg = testConfig();
    cfg.fault = paperFaultConfig(3);

    auto wl = smallWorkload();
    const RunResult a = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
    EXPECT_EQ(a.linkCrcErrors, b.linkCrcErrors);
    EXPECT_EQ(a.linkRetrainEvents, b.linkRetrainEvents);
    EXPECT_EQ(a.poisonEvents, b.poisonEvents);
    EXPECT_EQ(a.migrationAborts, b.migrationAborts);
    EXPECT_EQ(a.migrationsDeferred, b.migrationsDeferred);
    EXPECT_GT(a.linkCrcErrors, 0u);

    SystemConfig other = cfg;
    other.fault.seed = 4;
    const RunResult c = runExperiment(other, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_NE(a.execCycles, c.execCycles);
}

TEST(FaultReplay, MetaCorruptionOffLeavesFaultRunsBitIdentical)
{
    // The §12 machinery must be invisible while its master switch is
    // off: with metaCorruptMeanIntervalNs == 0, tweaking every other
    // meta knob must replay the heaviest existing schedule
    // (crash + lease detector + gray-failure stalls) bit-for-bit.
    SystemConfig plain = testConfig();
    plain.fault = paperSuspicionFaultConfig(3);

    SystemConfig tweaked = plain;
    tweaked.fault.metaShadowHitFrac = 0.95;
    tweaked.fault.metaJournalPages = 2;
    tweaked.fault.metaScrubIntervalNs = 1.0;
    tweaked.fault.metaScrubBudget = 1;
    tweaked.fault.metaBreakerThreshold = 1;
    tweaked.fault.metaBreakerGroupPages = 1;
    tweaked.fault.metaCorruptMeanIntervalNs = 0.0;   // master switch off

    auto wl = smallWorkload();
    const RunResult a = runExperiment(plain, Scheme::pipmFull, *wl,
                                      shortRun());
    const RunResult b = runExperiment(tweaked, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.sharedLlcMisses, b.sharedLlcMisses);
    EXPECT_EQ(a.linkCrcErrors, b.linkCrcErrors);
    EXPECT_EQ(a.linkRetrainEvents, b.linkRetrainEvents);
    EXPECT_EQ(a.poisonEvents, b.poisonEvents);
    EXPECT_EQ(a.migrationAborts, b.migrationAborts);
    EXPECT_EQ(a.migrationsDeferred, b.migrationsDeferred);
    EXPECT_GT(a.linkCrcErrors, 0u);
}

TEST(FaultLink, CrcReplayAddsLatencyAndWireBytes)
{
    const SystemConfig cfg = testConfig();
    FaultConfig f = quietFaults(5);
    f.linkErrorRate = 1.0;   // corrupt every message
    FaultInjector faults(f, 1, 5);

    CxlLink clean(cfg.link, "clean");
    CxlLink faulty(cfg.link, "faulty");
    faulty.attachFaults(&faults, 0);

    const Cycles base = clean.transfer(LinkDir::toDevice, CxlFlits::data,
                                       0);
    const Cycles replayed = faulty.transfer(LinkDir::toDevice,
                                            CxlFlits::data, 0);
    EXPECT_GT(replayed, base);
    EXPECT_EQ(faulty.crcErrors.value(), 1u);
    EXPECT_EQ(faulty.replayBytes.value(), CxlFlits::data);
    EXPECT_EQ(faulty.bytesToDevice.value(), 2u * CxlFlits::data);
    EXPECT_EQ(faults.linkErrors.value(), 1u);
}

TEST(FaultLink, RetrainingStallsTheLinkOncePerWindow)
{
    FaultConfig f = quietFaults(7);
    f.retrainIntervalNs = 1'000.0;
    f.retrainWindowNs = 100.0;
    FaultInjector faults(f, 2, 7);

    const Cycles interval = nsToCycles(1'000.0);
    bool stalled = false;
    for (Cycles now = 0; now < 3 * interval; now += 7)
        stalled = faults.retrainDelay(0, now) > 0 || stalled;
    EXPECT_TRUE(stalled);
    // The sweep spans three interval lengths; depending on where the
    // host's random phase falls it clips either the first or an extra
    // trailing window.
    EXPECT_GE(faults.retrainEvents.value(), 3u);
    EXPECT_LE(faults.retrainEvents.value(), 4u);
    EXPECT_GT(faults.retrainStallCycles.value(), 0u);

    // Host 1 has its own phase; with zero interval nothing ever stalls.
    FaultConfig off = quietFaults(7);
    FaultInjector no_retrain(off, 2, 7);
    for (Cycles now = 0; now < 3 * interval; now += 7)
        EXPECT_EQ(no_retrain.retrainDelay(1, now), 0u);
    EXPECT_EQ(no_retrain.retrainEvents.value(), 0u);
}

TEST(FaultPoison, PersistentPoisonServedByDegradedUncacheablePath)
{
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults(11);
    cfg.fault.poisonRate = 1.0;
    cfg.fault.persistentPoisonFrac = 1.0;   // every line poisoned forever
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    FaultInjector &faults = *sys.faultInjector();

    Cycles now = 0;
    const AccessResult w =
        sys.access(0, 0, sharedRef(1, 3, MemOp::write), now, 777);
    now += 10'000;
    const AccessResult r =
        sys.access(1, 0, sharedRef(1, 3, MemOp::read), now);
    EXPECT_EQ(r.data, 777u);
    EXPECT_GT(w.latency, 0u);
    EXPECT_GE(faults.poisonPersistent.value(), 1u);
    EXPECT_EQ(faults.degradedAccesses.value(), 2u);

    // The poisoned line is never cached on either host and never gets a
    // directory entry; checkInvariants asserts exactly this.
    const LineAddr line =
        lineOf(pageBase(sys.space().sharedFrame(1)) + 3 * lineBytes);
    EXPECT_EQ(sys.hierarchy(0).stateOf(line), HostState::I);
    EXPECT_EQ(sys.hierarchy(1).stateOf(line), HostState::I);
    EXPECT_EQ(sys.deviceDirectory().probe(line), nullptr);
    sys.checkInvariants();
}

TEST(FaultPoison, TransientPoisonIsScrubbedByOneRetry)
{
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults(13);
    cfg.fault.poisonRate = 1.0;
    cfg.fault.persistentPoisonFrac = 0.0;   // every hit scrubs clean
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    FaultInjector &faults = *sys.faultInjector();

    const AccessResult w =
        sys.access(0, 0, sharedRef(2, 4, MemOp::write), 0, 42);
    (void)w;
    EXPECT_GE(faults.poisonTransient.value(), 1u);
    EXPECT_EQ(faults.poisonPersistent.value(), 0u);
    EXPECT_EQ(faults.degradedAccesses.value(), 0u);

    // Scrubbed: the line cached normally and reads back the new value.
    const LineAddr line =
        lineOf(pageBase(sys.space().sharedFrame(2)) + 4 * lineBytes);
    EXPECT_EQ(sys.hierarchy(0).stateOf(line), HostState::M);
    const AccessResult r =
        sys.access(0, 0, sharedRef(2, 4, MemOp::read), 10'000);
    EXPECT_EQ(r.data, 42u);
    sys.checkInvariants();
}

TEST(FaultMigration, PromotionAbortRollsBackCleanly)
{
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults(17);
    cfg.fault.migrationAbortRate = 1.0;   // every migration fault-aborts
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    PipmState &pipm = *sys.pipmState();
    FaultInjector &faults = *sys.faultInjector();

    Cycles now = 0;
    for (unsigned i = 0; i < 4 * cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(2, i % linesPerPage, MemOp::write),
                   now, i);
        now += 10'000;
    }
    // Every firing was rolled back: no local entry, no migrated host, no
    // leaked frames — and the rollback left the vote free to re-fire.
    const PageFrame cxl_page =
        pageOf(pageBase(sys.space().sharedFrame(2)));
    EXPECT_EQ(pipm.migratedHostOf(cxl_page), invalidHost);
    EXPECT_FALSE(pipm.hasLocalEntry(0, cxl_page));
    EXPECT_GE(faults.promotionAborts.value(), 2u);
    EXPECT_EQ(pipm.promotions.value(), faults.promotionAborts.value());
    EXPECT_EQ(pipm.migratedLinesOn(0), 0u);
    sys.checkInvariants();
}

TEST(FaultMigration, LineMigrationAbortDrawsAreCounted)
{
    FaultConfig f = quietFaults(19);
    f.migrationAbortRate = 1.0;
    FaultInjector faults(f, 2, 19);
    EXPECT_TRUE(faults.abortLineMigration());
    EXPECT_TRUE(faults.abortLineMigration());
    EXPECT_EQ(faults.lineAborts.value(), 2u);

    FaultInjector quiet(quietFaults(19), 2, 19);
    EXPECT_FALSE(quiet.abortLineMigration());
    EXPECT_FALSE(quiet.abortPromotion());
    EXPECT_EQ(quiet.lineAborts.value(), 0u);
}

TEST(FaultBackoff, HighErrorRateDefersMigrations)
{
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults(23);
    cfg.fault.linkErrorRate = 1.0;    // hopeless link
    cfg.fault.backoffWindow = 4;
    cfg.fault.backoffBaseNs = 1e6;    // back off for a long time
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    PipmState &pipm = *sys.pipmState();
    FaultInjector &faults = *sys.faultInjector();

    Cycles now = 0;
    for (unsigned i = 0; i < 4 * cfg.pipm.migrationThreshold; ++i) {
        sys.access(0, 0, sharedRef(2, i % linesPerPage, MemOp::write),
                   now, i);
        now += 100;
    }
    const PageFrame cxl_page =
        pageOf(pageBase(sys.space().sharedFrame(2)));
    EXPECT_GT(faults.backoffEntries.value(), 0u);
    EXPECT_GT(faults.migrationsDeferred.value(), 0u);
    EXPECT_TRUE(faults.migrationsSuspended(now));
    EXPECT_EQ(pipm.migratedHostOf(cxl_page), invalidHost);
    EXPECT_EQ(pipm.promotions.value(), 0u);
    sys.checkInvariants();
}

TEST(FaultSchedules, SameInstantEventsHaveAPinnedTotalOrder)
{
    // Regression for the schedule sort: events falling on the same cycle
    // are processed in a pinned total order — rejoins before crashes
    // (alive counts stay conservative), then by host id — so replay is
    // independent of the generator's emission order.
    auto ev = [](Cycles at, HostId host, bool rejoin) {
        CrashEvent e;
        e.at = at;
        e.host = host;
        e.rejoin = rejoin;
        return e;
    };
    std::vector<CrashEvent> events = {
        ev(100, 2, false), ev(100, 0, true), ev(100, 1, false),
        ev(100, 1, true), ev(50, 3, false),
    };
    std::sort(events.begin(), events.end(), FaultInjector::eventBefore);

    const std::vector<CrashEvent> expect = {
        ev(50, 3, false), ev(100, 0, true), ev(100, 1, true),
        ev(100, 1, false), ev(100, 2, false),
    };
    ASSERT_EQ(events.size(), expect.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].at, expect[i].at) << i;
        EXPECT_EQ(events[i].host, expect[i].host) << i;
        EXPECT_EQ(events[i].rejoin, expect[i].rejoin) << i;
    }

    // Strict weak ordering: irreflexive and asymmetric on equal keys.
    EXPECT_FALSE(FaultInjector::eventBefore(events[0], events[0]));
    EXPECT_FALSE(FaultInjector::eventBefore(events[1], events[1]));

    // Generated schedules come out sorted under exactly this order.
    const FaultConfig f = paperCrashFaultConfig(11, 50'000.0, 20'000.0);
    FaultInjector inj(f, 4, 99);
    const auto &sched = inj.crashSchedule();
    ASSERT_FALSE(sched.empty());
    for (std::size_t i = 1; i < sched.size(); ++i)
        EXPECT_FALSE(FaultInjector::eventBefore(sched[i], sched[i - 1]));
}

TEST(FaultCombined, PoisonSuspectedHostAndRetrainWindowCoexist)
{
    ThrowOnErrorGuard guard;
    SystemConfig cfg = testConfig();
    cfg.fault = quietFaults(31);
    cfg.fault.poisonRate = 1.0;
    cfg.fault.persistentPoisonFrac = 1.0;   // every line degraded
    cfg.fault.retrainIntervalNs = 20'000.0;
    cfg.fault.retrainWindowNs = 2'000.0;
    cfg.fault.leaseNs = 20'000.0;
    cfg.fault.heartbeatIntervalNs = 4'000.0;
    TinyWorkload wl(64 * pageBytes, 8 * pageBytes);
    MultiHostSystem sys(cfg, Scheme::pipmFull, wl, 7);
    FaultInjector &faults = *sys.faultInjector();
    ASSERT_TRUE(sys.detectionEnabled());

    // Both hosts touch poisoned lines across several retrain intervals.
    Cycles now = 0;
    for (unsigned i = 0; i < 16; ++i) {
        sys.access(0, 0, sharedRef(1, i % linesPerPage, MemOp::write),
                   now, i);
        now += nsToCycles(5'000.0);
        sys.access(1, 0, sharedRef(1, i % linesPerPage, MemOp::read),
                   now);
        now += nsToCycles(5'000.0);
    }
    EXPECT_GE(faults.poisonPersistent.value(), 1u);
    EXPECT_GT(faults.degradedAccesses.value(), 0u);
    // Whether a demand message landed inside one of the short retrain
    // windows depends on the drawn phases; a dense probe pins down that
    // the windows were really scheduled alongside the other classes.
    const Cycles interval = nsToCycles(cfg.fault.retrainIntervalNs);
    for (Cycles t = 0; t < 3 * interval; t += 7)
        (void)faults.retrainDelay(0, t);
    EXPECT_GE(faults.retrainEvents.value(), 1u);
    sys.checkInvariants();

    // Fence host 1 mid-traffic (false suspicion on an alive host): all
    // three fault classes are now live at once; invariants still hold.
    sys.suspectHost(1, now);
    EXPECT_EQ(faults.falseSuspicions.value(), 1u);
    EXPECT_FALSE(sys.hostAlive(1));
    sys.checkInvariants();

    // The survivor keeps accessing through the degraded path while the
    // zombie is fenced, then the zombie readmits and participates.
    const AccessResult r0 = sys.access(
        0, 0, sharedRef(1, 0, MemOp::read), now + 1'000);
    EXPECT_EQ(r0.data, 0u);   // host 0's first write of value 0
    sys.tick(sys.hostDownUntil(1));
    EXPECT_TRUE(sys.hostAlive(1));
    EXPECT_EQ(faults.fencedRequests.value(), 1u);
    const AccessResult r1 = sys.access(
        1, 0, sharedRef(1, 0, MemOp::read), now + 200'000);
    EXPECT_EQ(r1.data, 0u);
    sys.checkInvariants();
}

TEST(FaultSchedules, RandomisedCheckingFindsNoViolations)
{
    const FaultCheckResult pipm_res =
        checkFaultSchedules(testConfig(), Scheme::pipmFull, 2, 5'000, 2);
    EXPECT_TRUE(pipm_res.ok) << pipm_res.violation;
    EXPECT_EQ(pipm_res.accesses, 10'000u);
    EXPECT_GT(pipm_res.faultsInjected, 0u);

    const FaultCheckResult hw_res =
        checkFaultSchedules(testConfig(), Scheme::hwStatic, 1, 5'000, 3);
    EXPECT_TRUE(hw_res.ok) << hw_res.violation;
}

TEST(FaultSchedules, PaperDefaultsProduceAllFaultClasses)
{
    SystemConfig cfg = testConfig();
    cfg.fault = paperFaultConfig(29);
    cfg.fault.retrainIntervalNs = 20'000.0;   // shrink to test scale
    cfg.fault.migrationAbortRate = 0.2;

    auto wl = smallWorkload();
    const RunResult r = runExperiment(cfg, Scheme::pipmFull, *wl,
                                      shortRun());
    EXPECT_GT(r.linkCrcErrors, 0u);
    EXPECT_GE(r.linkRetrainEvents, 1u);
    EXPECT_GE(r.migrationAborts, 1u);
}

} // namespace
} // namespace pipm
